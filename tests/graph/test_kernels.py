"""Tests for the DSP kernel library — each kernel is checked against an
independent pure-Python model of its mathematics."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import kernels
from repro.graph.cdfg import MASK32, _signed

small = st.integers(min_value=-1000, max_value=1000)


def u32(x: int) -> int:
    return x & MASK32


class TestFir:
    @given(xs=st.lists(small, min_size=8, max_size=8),
           cs=st.lists(small, min_size=8, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_fir8_matches_dot_product(self, xs, cs):
        g = kernels.fir(8)
        inputs = {f"x{i}": u32(x) for i, x in enumerate(xs)}
        inputs.update({f"c{i}": u32(c) for i, c in enumerate(cs)})
        expect = u32(sum(c * x for c, x in zip(cs, xs)))
        assert g.evaluate(inputs)["y"] == expect

    def test_fir_tap_counts(self):
        for n in (1, 3, 8, 16):
            g = kernels.fir(n)
            assert len(g.inputs()) == 2 * n
            from repro.graph.cdfg import OpKind

            assert g.op_histogram()[OpKind.MUL] == n

    def test_fir_rejects_zero_taps(self):
        with pytest.raises(ValueError):
            kernels.fir(0)

    def test_fir_adder_tree_is_logarithmic(self):
        assert kernels.fir(16).depth() == 5  # 1 mul + 4 adder levels


class TestBiquad:
    @given(x=small, x1=small, x2=small, y1=small, y2=small)
    @settings(max_examples=20, deadline=None)
    def test_biquad_matches_formula(self, x, x1, x2, y1, y2):
        b0, b1, b2, a1, a2 = 3, -2, 5, 1, -4
        g = kernels.iir_biquad()
        inputs = {k: u32(v) for k, v in dict(
            x=x, x1=x1, x2=x2, y1=y1, y2=y2, b0=b0, b1=b1, b2=b2, a1=a1, a2=a2
        ).items()}
        expect = u32(b0 * x + b1 * x1 + b2 * x2 - a1 * y1 - a2 * y2)
        assert g.evaluate(inputs)["y"] == expect


class TestButterfly:
    @given(ar=small, ai=small, br=small, bi=small, wr=small, wi=small)
    @settings(max_examples=20, deadline=None)
    def test_butterfly_matches_complex_math(self, ar, ai, br, bi, wr, wi):
        g = kernels.fft_butterfly()
        inputs = {k: u32(v) for k, v in dict(
            ar=ar, ai=ai, br=br, bi=bi, wr=wr, wi=wi
        ).items()}
        t = complex(wr, wi) * complex(br, bi)
        out = g.evaluate(inputs)
        assert out["xr"] == u32(ar + int(t.real))
        assert out["xi"] == u32(ai + int(t.imag))
        assert out["yr"] == u32(ar - int(t.real))
        assert out["yi"] == u32(ai - int(t.imag))


class TestEwf:
    def test_op_mix_matches_published_benchmark(self):
        from repro.graph.cdfg import OpKind

        g = kernels.elliptic_wave_filter()
        hist = g.op_histogram()
        assert hist[OpKind.MUL] == 8
        assert hist[OpKind.ADD] == 26

    def test_all_state_outputs_present(self):
        g = kernels.elliptic_wave_filter()
        names = {o.name for o in g.outputs()}
        assert names == {
            "sv2_next", "sv13_next", "sv18_next", "sv26_next",
            "sv33_next", "sv38_next", "sv39_next", "y",
        }

    def test_deterministic_evaluation(self):
        g = kernels.elliptic_wave_filter()
        inputs = {o.name: i + 1 for i, o in enumerate(g.inputs())}
        assert g.evaluate(inputs) == g.evaluate(inputs)


class TestDct:
    @given(xs=st.lists(small, min_size=4, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_dct4_y0_is_sum(self, xs):
        g = kernels.dct4()
        inputs = {f"x{i}": u32(x) for i, x in enumerate(xs)}
        inputs.update({"c1": 2, "c2": 3, "c3": 4})
        out = g.evaluate(inputs)
        assert out["y0"] == u32(sum(xs))
        assert out["y2"] == u32(((xs[0] + xs[3]) - (xs[1] + xs[2])) * 3)


class TestCrc:
    def crc_ref(self, crc: int, byte: int) -> int:
        acc = (crc ^ byte) & MASK32
        for _ in range(8):
            if acc & 1:
                acc = (acc >> 1) ^ 0xEDB88320
            else:
                acc >>= 1
        return acc

    @given(crc=st.integers(0, MASK32), byte=st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_crc_step_matches_reference(self, crc, byte):
        g = kernels.crc_step()
        assert g.evaluate({"crc": crc, "byte": byte})["crc_next"] == \
            self.crc_ref(crc, byte)


class TestMatmul:
    @given(vals=st.lists(small, min_size=8, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_matmul2_matches_numpy(self, vals):
        import numpy as np

        a = np.array(vals[:4]).reshape(2, 2)
        b = np.array(vals[4:]).reshape(2, 2)
        c = a @ b
        g = kernels.matmul2()
        inputs = {}
        for i in range(2):
            for j in range(2):
                inputs[f"a{i}{j}"] = u32(int(a[i, j]))
                inputs[f"b{i}{j}"] = u32(int(b[i, j]))
        out = g.evaluate(inputs)
        for i in range(2):
            for j in range(2):
                assert out[f"c{i}{j}"] == u32(int(c[i, j]))


class TestHistogramBin:
    @given(x=small, lo=small, hi=small, count=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_count_increments_iff_in_range(self, x, lo, hi, count):
        g = kernels.histogram_bin()
        out = g.evaluate(
            {"x": u32(x), "lo": u32(lo), "hi": u32(hi), "count": count}
        )
        expect = count + 1 if lo <= x < hi else count
        assert _signed(out["count_next"]) == expect


class TestViterbiAcs:
    @given(pm0=st.integers(0, 1000), pm1=st.integers(0, 1000),
           bm0=st.integers(0, 100), bm1=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_acs_keeps_minimum_path(self, pm0, pm1, bm0, bm1):
        g = kernels.viterbi_acs()
        out = g.evaluate({"pm0": pm0, "pm1": pm1, "bm0": bm0, "bm1": bm1})
        assert out["pm_even"] == min(pm0 + bm0, pm1 + bm1)
        assert out["pm_odd"] == min(pm0 + bm1, pm1 + bm0)
        assert out["dec_even"] == int(pm1 + bm1 < pm0 + bm0)

    def test_acs_operand_reuse_blocks_fusion(self):
        """The full ACS exports its decision bits, so every intermediate
        has multiple consumers — a two-operand custom instruction cannot
        cover it (a real limitation the miner must respect)."""
        from repro.asip.custom import mine_candidates

        assert mine_candidates({"acs": (kernels.viterbi_acs(), 1.0)}) == []

    def test_pure_min_select_mines_compare_select(self):
        """Without the exported decision bit, compare+select fuses into
        the classic 'min' custom instruction."""
        from repro.asip.custom import mine_candidates
        from repro.graph.cdfg import CDFG, MASK32

        g = CDFG("minsel")
        a, b = g.inp("a"), g.inp("b")
        g.out("m", g.mux(g.lt(a, b), a, b))
        cands = mine_candidates({"minsel": (g, 1.0)})
        assert [(c.key[0], c.key[1]) for c in cands] == [("lt", "mux")]
        assert cands[0].semantics(3, 9) == 3
        assert cands[0].semantics(9, 3) == 3


class TestLms:
    @given(mu_e=st.integers(-100, 100),
           taps=st.lists(st.tuples(small, small), min_size=4, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_lms_update_formula(self, mu_e, taps):
        g = kernels.lms_update(4)
        inputs = {"mu_e": u32(mu_e)}
        for i, (w, x) in enumerate(taps):
            inputs[f"w{i}"] = u32(w)
            inputs[f"x{i}"] = u32(x)
        out = g.evaluate(inputs)
        for i, (w, x) in enumerate(taps):
            assert out[f"w{i}_next"] == u32(w + mu_e * x)

    def test_lms_rejects_zero_taps(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            kernels.lms_update(0)


class TestTaskGraphKernels:
    def test_jpeg_pipeline_structure(self):
        g = kernels.jpeg_encoder_taskgraph()
        g.validate()
        assert g.sources() == ["rgb2ycc"]
        assert g.sinks() == ["huffman"]
        assert g.width() == 1

    def test_jpeg_nature_of_computation(self):
        g = kernels.jpeg_encoder_taskgraph()
        # DCT is the hardware-affine stage; huffman the software-affine one
        assert g.task("dct2d").speedup > g.task("huffman").speedup
        assert g.task("huffman").modifiability > g.task("dct2d").modifiability

    def test_modem_has_parallel_arms(self):
        g = kernels.modem_taskgraph()
        g.validate()
        assert g.width() == 2

    def test_all_registries_build(self):
        for make in kernels.ALL_CDFG_KERNELS.values():
            cdfg = make()
            assert len(cdfg) > 0
        for make in kernels.ALL_TASKGRAPH_KERNELS.values():
            tg = make()
            tg.validate()
