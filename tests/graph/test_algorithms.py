"""Tests for repro.graph.algorithms."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import algorithms as alg
from repro.graph.generators import random_layered_graph
from repro.graph.kernels import jpeg_encoder_taskgraph, modem_taskgraph
from repro.graph.taskgraph import Task, TaskGraph


def diamond() -> TaskGraph:
    g = TaskGraph("diamond")
    g.add_task(Task("a", sw_time=1.0))
    g.add_task(Task("b", sw_time=2.0))
    g.add_task(Task("c", sw_time=5.0))
    g.add_task(Task("d", sw_time=1.0))
    g.add_edge("a", "b", 10.0)
    g.add_edge("a", "c", 1.0)
    g.add_edge("b", "d", 1.0)
    g.add_edge("c", "d", 1.0)
    return g


class TestLevels:
    def test_t_levels_no_comm(self):
        g = diamond()
        tl = alg.t_levels(g)
        assert tl == {"a": 0.0, "b": 1.0, "c": 1.0, "d": 6.0}

    def test_t_levels_with_comm(self):
        g = diamond()
        tl = alg.t_levels(g, comm=1.0)
        assert tl["b"] == pytest.approx(11.0)  # a(1) + 10 volume
        assert tl["d"] == pytest.approx(max(11.0 + 2 + 1, 2.0 + 5 + 1))

    def test_b_levels(self):
        g = diamond()
        bl = alg.b_levels(g)
        assert bl["d"] == 1.0
        assert bl["c"] == 6.0
        assert bl["b"] == 3.0
        assert bl["a"] == 7.0

    def test_priority_list_decreasing_blevel(self):
        g = diamond()
        plist = alg.priority_list(g)
        assert plist == ["a", "c", "b", "d"]

    def test_slack_zero_on_critical_path(self):
        g = diamond()
        sl = alg.slack(g)
        assert sl["a"] == pytest.approx(0.0)
        assert sl["c"] == pytest.approx(0.0)
        assert sl["d"] == pytest.approx(0.0)
        assert sl["b"] > 0.0

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 30))
    def test_blevel_of_source_equals_critical_path(self, seed, n):
        g = random_layered_graph(random.Random(seed), n_tasks=n)
        bl = alg.b_levels(g)
        cp, _ = g.critical_path("sw")
        assert max(bl.values()) == pytest.approx(cp)


class TestClustering:
    def test_linear_clusters_cover_all_tasks_once(self):
        g = modem_taskgraph()
        clusters = alg.linear_clusters(g)
        flat = [n for c in clusters for n in c]
        assert sorted(flat) == sorted(g.task_names)

    def test_linear_clusters_are_chains(self):
        g = modem_taskgraph()
        for chain in alg.linear_clusters(g):
            for u, v in zip(chain, chain[1:]):
                assert g.has_edge(u, v)

    def test_first_linear_cluster_is_heaviest_path(self):
        g = jpeg_encoder_taskgraph()
        clusters = alg.linear_clusters(g)
        # jpeg is a pure pipeline: one cluster containing everything
        assert clusters == [g.task_names]

    def test_communication_clusters_count(self):
        g = modem_taskgraph()
        for k in (1, 2, 3, len(g)):
            clusters = alg.communication_clusters(g, k)
            assert len(clusters) == k
            flat = [n for c in clusters for n in c]
            assert sorted(flat) == sorted(g.task_names)

    def test_communication_clusters_reduce_cut(self):
        g = modem_taskgraph()
        smart = alg.communication_clusters(g, 2)
        smart_cut = alg.inter_cluster_volume(g, smart)
        # worst-case: alternate tasks between clusters
        names = g.task_names
        naive = [names[0::2], names[1::2]]
        naive_cut = alg.inter_cluster_volume(g, naive)
        assert smart_cut <= naive_cut

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            alg.communication_clusters(modem_taskgraph(), 0)


class TestConvexity:
    def test_convex_group(self):
        g = jpeg_encoder_taskgraph()
        assert alg.is_convex(g, {"dct2d", "quant"})

    def test_non_convex_group(self):
        g = jpeg_encoder_taskgraph()
        # skipping quant: dct2d -> quant -> zigzag makes {dct2d, zigzag}
        # non-convex
        assert not alg.is_convex(g, {"dct2d", "zigzag"})

    def test_singletons_and_whole_graph_convex(self):
        g = modem_taskgraph()
        assert alg.is_convex(g, {"equalizer"})
        assert alg.is_convex(g, set(g.task_names))


class TestMerge:
    def test_merge_costs(self):
        g = jpeg_encoder_taskgraph()
        sw = g.task("dct2d").sw_time + g.task("quant").sw_time
        area = g.task("dct2d").hw_area + g.task("quant").hw_area
        merged = alg.merge_tasks(g, ["dct2d", "quant"], "dctq")
        t = merged.task("dctq")
        assert t.sw_time == pytest.approx(sw)
        assert t.hw_area == pytest.approx(area)
        # hw time is the chain through the group
        assert t.hw_time == pytest.approx(
            g.task("dct2d").hw_time + g.task("quant").hw_time
        )

    def test_merge_rewires_edges(self):
        g = jpeg_encoder_taskgraph()
        merged = alg.merge_tasks(g, ["dct2d", "quant"], "dctq")
        assert merged.has_edge("rgb2ycc", "dctq")
        assert merged.has_edge("dctq", "zigzag")
        merged.validate()

    def test_merge_non_convex_rejected(self):
        g = jpeg_encoder_taskgraph()
        with pytest.raises(ValueError):
            alg.merge_tasks(g, ["dct2d", "zigzag"], "bad")

    def test_merge_unknown_task_rejected(self):
        g = jpeg_encoder_taskgraph()
        with pytest.raises(KeyError):
            alg.merge_tasks(g, ["dct2d", "ghost"], "bad")

    def test_merge_parallel_branches_hw_time_is_max(self):
        g = modem_taskgraph()
        merged = alg.merge_tasks(g, ["demod_i", "demod_q"], "demod")
        t = merged.task("demod")
        assert t.hw_time == pytest.approx(
            max(g.task("demod_i").hw_time, g.task("demod_q").hw_time)
        )
        assert t.sw_time == pytest.approx(
            g.task("demod_i").sw_time + g.task("demod_q").sw_time
        )
