"""Tests for the synthetic workload generators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import generators as gen


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = gen.random_layered_graph(random.Random(7), n_tasks=15)
        b = gen.random_layered_graph(random.Random(7), n_tasks=15)
        assert a.task_names == b.task_names
        assert [(e.src, e.dst, e.volume) for e in a.edges] == [
            (e.src, e.dst, e.volume) for e in b.edges
        ]
        assert [t.sw_time for t in a] == [t.sw_time for t in b]

    def test_different_seeds_differ(self):
        a = gen.random_layered_graph(random.Random(1), n_tasks=15)
        b = gen.random_layered_graph(random.Random(2), n_tasks=15)
        assert [t.sw_time for t in a] != [t.sw_time for t in b]


class TestShapes:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**6), n=st.integers(1, 40))
    def test_layered_graph_is_valid_dag_of_requested_size(self, seed, n):
        g = gen.random_layered_graph(random.Random(seed), n_tasks=n)
        assert len(g) == n
        g.validate()

    def test_layered_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            gen.random_layered_graph(random.Random(0), n_tasks=0)

    def test_pipeline_is_a_chain(self):
        g = gen.pipeline_graph(random.Random(0), n_stages=5)
        assert len(g) == 5
        assert len(g.edges) == 4
        assert g.width() == 1

    def test_fork_join_shape(self):
        g = gen.fork_join_graph(random.Random(0), n_branches=4, branch_len=2)
        assert len(g) == 2 + 4 * 2
        assert g.sources() == ["fork"]
        assert g.sinks() == ["join"]
        assert g.width() == 4

    def test_tree_shape(self):
        g = gen.tree_graph(random.Random(0), depth=3, fanout=2)
        assert len(g) == 1 + 2 + 4 + 8
        assert len(g.sinks()) == 8

    def test_series_parallel_valid(self):
        g = gen.series_parallel_graph(random.Random(3), n_expansions=10)
        g.validate()
        assert len(g) == 12


class TestSkewedWorkloads:
    def test_communication_skew_creates_hot_edges(self):
        g = gen.communication_skewed_graph(
            random.Random(5), n_tasks=12, hot_pairs=3, hot_volume=200.0
        )
        hot = [e for e in g.edges if e.volume > 100.0]
        assert len(hot) == 3

    def test_parallelism_skew_creates_fast_hw_tasks(self):
        g = gen.parallelism_skewed_graph(
            random.Random(5), n_tasks=12, n_parallel=3
        )
        fast = [t for t in g if t.parallelism >= 16.0]
        assert len(fast) == 3
        for t in fast:
            assert t.sw_time / t.hw_time == pytest.approx(t.parallelism)


class TestPeriodicTaskset:
    def test_utilization_is_respected(self):
        g = gen.periodic_taskset(
            random.Random(9), n_tasks=14, period=100.0, utilization=0.6
        )
        assert g.total_time("sw") == pytest.approx(60.0)
        for t in g:
            assert t.period == 100.0
            assert t.deadline == 100.0

    def test_scaling_preserves_speedups(self):
        rng_a, rng_b = random.Random(9), random.Random(9)
        raw = gen.random_layered_graph(rng_a, n_tasks=14, name="periodic")
        scaled = gen.periodic_taskset(rng_b, n_tasks=14, period=100.0)
        for t_raw, t_scaled in zip(raw, scaled):
            assert t_raw.speedup == pytest.approx(t_scaled.speedup)


class TestCostModel:
    def test_make_task_within_ranges(self):
        model = gen.TaskCostModel()
        rng = random.Random(0)
        for i in range(50):
            t = model.make_task(rng, f"t{i}")
            assert model.sw_time[0] <= t.sw_time <= model.sw_time[1]
            assert model.hw_speedup[0] <= t.speedup <= model.hw_speedup[1] + 1e-9
            assert 0.0 <= t.modifiability <= 1.0
