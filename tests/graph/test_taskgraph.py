"""Unit tests for repro.graph.taskgraph."""

import pytest

from repro.graph.taskgraph import CycleError, Task, TaskGraph


def diamond() -> TaskGraph:
    g = TaskGraph("diamond")
    for name in "abcd":
        g.add_task(Task(name, sw_time=2.0, hw_time=1.0, hw_area=5.0))
    g.add_edge("a", "b", 3.0)
    g.add_edge("a", "c", 4.0)
    g.add_edge("b", "d", 5.0)
    g.add_edge("c", "d", 6.0)
    return g


class TestTask:
    def test_defaults_fill_hw_time(self):
        t = Task("x", sw_time=8.0)
        assert t.hw_time == pytest.approx(2.0)
        assert t.speedup == pytest.approx(4.0)

    def test_rejects_nonpositive_sw_time(self):
        with pytest.raises(ValueError):
            Task("x", sw_time=0.0)

    def test_rejects_negative_area(self):
        with pytest.raises(ValueError):
            Task("x", sw_time=1.0, hw_area=-1.0)

    def test_rejects_bad_modifiability(self):
        with pytest.raises(ValueError):
            Task("x", sw_time=1.0, modifiability=1.5)

    def test_rejects_parallelism_below_one(self):
        with pytest.raises(ValueError):
            Task("x", sw_time=1.0, parallelism=0.5)

    def test_time_on_falls_back_to_sw_time(self):
        t = Task("x", sw_time=7.0, wcet={"dsp": 3.0})
        assert t.time_on("dsp") == 3.0
        assert t.time_on("riscy") == 7.0


class TestConstruction:
    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task(Task("a"))
        with pytest.raises(ValueError):
            g.add_task(Task("a"))

    def test_edge_to_unknown_task_rejected(self):
        g = TaskGraph()
        g.add_task(Task("a"))
        with pytest.raises(KeyError):
            g.add_edge("a", "b")
        with pytest.raises(KeyError):
            g.add_edge("z", "a")

    def test_self_edge_rejected(self):
        g = TaskGraph()
        g.add_task(Task("a"))
        with pytest.raises(ValueError):
            g.add_edge("a", "a")

    def test_duplicate_edge_rejected(self):
        g = diamond()
        with pytest.raises(ValueError):
            g.add_edge("a", "b")

    def test_negative_volume_rejected(self):
        g = diamond()
        g.add_task(Task("e"))
        with pytest.raises(ValueError):
            g.add_edge("d", "e", volume=-1.0)

    def test_remove_task_drops_incident_edges(self):
        g = diamond()
        g.remove_task("b")
        assert "b" not in g
        assert g.successors("a") == ["c"]
        assert g.predecessors("d") == ["c"]

    def test_set_edge_volume(self):
        g = diamond()
        g.set_edge_volume("a", "b", 99.0)
        assert g.edge("a", "b").volume == 99.0
        with pytest.raises(KeyError):
            g.set_edge_volume("b", "a", 1.0)


class TestQueries:
    def test_sources_and_sinks(self):
        g = diamond()
        assert g.sources() == ["a"]
        assert g.sinks() == ["d"]

    def test_topological_order_respects_edges(self):
        g = diamond()
        order = g.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for e in g.edges:
            assert pos[e.src] < pos[e.dst]

    def test_cycle_detection(self):
        g = TaskGraph()
        g.add_task(Task("a"))
        g.add_task(Task("b"))
        g.add_edge("a", "b")
        # force a cycle through the private structures to test detection
        g._succ["b"]["a"] = g._pred["a"]["b"] = g.edge("a", "b")
        with pytest.raises(CycleError):
            g.topological_order()

    def test_critical_path_sw(self):
        g = diamond()
        length, path = g.critical_path("sw")
        assert length == pytest.approx(6.0)
        assert path[0] == "a" and path[-1] == "d" and len(path) == 3

    def test_critical_path_modes_differ(self):
        g = diamond()
        assert g.critical_path("hw")[0] == pytest.approx(3.0)
        assert g.critical_path("min")[0] == pytest.approx(3.0)
        with pytest.raises(ValueError):
            g.critical_path("bogus")

    def test_total_time_and_area(self):
        g = diamond()
        assert g.total_time("sw") == pytest.approx(8.0)
        assert g.total_area() == pytest.approx(20.0)

    def test_levels_and_width(self):
        g = diamond()
        levels = g.levels()
        assert levels == {"a": 0, "b": 1, "c": 1, "d": 2}
        assert g.width() == 2

    def test_descendants_ancestors(self):
        g = diamond()
        assert set(g.descendants("a")) == {"b", "c", "d"}
        assert set(g.ancestors("d")) == {"a", "b", "c"}
        assert g.descendants("d") == []

    def test_cut_volume(self):
        g = diamond()
        # group {a, b}: crossing edges a->c (4), b->d (5)
        assert g.cut_volume({"a", "b"}) == pytest.approx(9.0)
        assert g.cut_volume(set(g.task_names)) == 0.0

    def test_copy_is_independent(self):
        g = diamond()
        c = g.copy()
        c.task("a").sw_time = 100.0
        c.remove_task("b")
        assert g.task("a").sw_time == 2.0
        assert "b" in g

    def test_to_networkx_roundtrip_shape(self):
        g = diamond()
        nx_graph = g.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
        assert nx_graph["a"]["b"]["volume"] == 3.0

    def test_empty_graph_edge_cases(self):
        g = TaskGraph()
        assert g.topological_order() == []
        assert g.critical_path()[0] == 0.0
        assert g.width() == 0
        assert len(g) == 0
