"""Unit and property tests for repro.graph.cdfg."""

import pytest
from hypothesis import given, strategies as st

from repro.graph.cdfg import CDFG, MASK32, Op, OpKind, _signed

words = st.integers(min_value=0, max_value=MASK32)


def mac_graph() -> CDFG:
    g = CDFG("mac")
    a, b, c = g.inp("a"), g.inp("b"), g.inp("c")
    g.out("y", g.add(g.mul(a, b), c))
    return g


class TestConstruction:
    def test_arity_enforced(self):
        g = CDFG()
        a = g.inp("a")
        with pytest.raises(ValueError):
            g.add_op(OpKind.ADD, (a,))
        with pytest.raises(ValueError):
            Op("bad", OpKind.MUX, ("a", "b"))

    def test_const_requires_value(self):
        with pytest.raises(ValueError):
            Op("k", OpKind.CONST)

    def test_unknown_argument_rejected(self):
        g = CDFG()
        with pytest.raises(KeyError):
            g.add_op(OpKind.NOT, ("ghost",))

    def test_duplicate_name_rejected(self):
        g = CDFG()
        g.inp("a")
        with pytest.raises(ValueError):
            g.inp("a")

    def test_auto_names_unique(self):
        g = CDFG()
        a, b = g.inp("a"), g.inp("b")
        names = {g.add(a, b) for _ in range(10)}
        assert len(names) == 10

    def test_uses_tracking(self):
        g = mac_graph()
        mul_name = next(o.name for o in g if o.kind is OpKind.MUL)
        assert g.uses("a") == [mul_name]


class TestQueries:
    def test_inputs_outputs_compute(self):
        g = mac_graph()
        assert [o.name for o in g.inputs()] == ["a", "b", "c"]
        assert [o.name for o in g.outputs()] == ["y"]
        assert len(g.compute_ops()) == 2

    def test_histogram(self):
        g = mac_graph()
        h = g.op_histogram()
        assert h[OpKind.INPUT] == 3
        assert h[OpKind.ADD] == 1
        assert h[OpKind.MUL] == 1

    def test_depth_counts_compute_chain(self):
        g = mac_graph()
        assert g.depth() == 2

    def test_critical_path_uses_delay_table(self):
        g = mac_graph()
        assert g.critical_path_delay() == pytest.approx(4.0)  # mul 3 + add 1
        # uniform table: input -> mul -> add -> output = 4 unit delays
        assert g.critical_path_delay({k: 1.0 for k in OpKind}) == 4.0

    def test_topological_order_is_insertion_order(self):
        g = mac_graph()
        order = g.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for op in g:
            for arg in op.args:
                assert pos[arg] < pos[op.name]


class TestEvaluate:
    def test_mac(self):
        g = mac_graph()
        assert g.evaluate({"a": 3, "b": 4, "c": 5}) == {"y": 17}

    def test_missing_input_raises(self):
        g = mac_graph()
        with pytest.raises(KeyError):
            g.evaluate({"a": 1, "b": 2})

    def test_division_by_zero_raises(self):
        g = CDFG()
        a, b = g.inp("a"), g.inp("b")
        g.out("q", g.div(a, b))
        with pytest.raises(ZeroDivisionError):
            g.evaluate({"a": 1, "b": 0})

    def test_division_truncates_toward_zero(self):
        g = CDFG()
        a, b = g.inp("a"), g.inp("b")
        g.out("q", g.div(a, b))
        minus7 = (-7) & MASK32
        assert _signed(g.evaluate({"a": minus7, "b": 2})["q"]) == -3

    def test_mux_selects(self):
        g = CDFG()
        c, a, b = g.inp("c"), g.inp("a"), g.inp("b")
        g.out("y", g.mux(c, a, b))
        assert g.evaluate({"c": 1, "a": 10, "b": 20})["y"] == 10
        assert g.evaluate({"c": 0, "a": 10, "b": 20})["y"] == 20

    def test_load_store_memory(self):
        g = CDFG()
        addr, val = g.inp("addr"), g.inp("val")
        stored = g.add_op(OpKind.STORE, (addr, val))
        g.out("echo", stored)
        g2 = CDFG()
        a2 = g2.inp("addr")
        g2.out("got", g2.add_op(OpKind.LOAD, (a2,)))
        mem = {}
        g.evaluate({"addr": 100, "val": 42}, memory=mem)
        assert mem[100] == 42
        assert g2.evaluate({"addr": 100}, memory=mem)["got"] == 42
        assert g2.evaluate({"addr": 101}, memory=mem)["got"] == 0

    def test_signed_comparisons(self):
        g = CDFG()
        a, b = g.inp("a"), g.inp("b")
        g.out("lt", g.lt(a, b))
        minus1 = (-1) & MASK32
        assert g.evaluate({"a": minus1, "b": 0})["lt"] == 1
        assert g.evaluate({"a": 0, "b": minus1})["lt"] == 0

    @given(a=words, b=words)
    def test_add_matches_modular_arithmetic(self, a, b):
        g = CDFG()
        x, y = g.inp("x"), g.inp("y")
        g.out("s", g.add(x, y))
        assert g.evaluate({"x": a, "y": b})["s"] == (a + b) & MASK32

    @given(a=words, b=words)
    def test_sub_then_add_roundtrips(self, a, b):
        g = CDFG()
        x, y = g.inp("x"), g.inp("y")
        g.out("r", g.add(g.sub(x, y), y))
        assert g.evaluate({"x": a, "y": b})["r"] == a

    @given(a=words)
    def test_double_negation_is_identity(self, a):
        g = CDFG()
        x = g.inp("x")
        g.out("r", g.neg(g.neg(x)))
        assert g.evaluate({"x": a})["r"] == a

    @given(a=words, sh=st.integers(min_value=0, max_value=31))
    def test_shift_right_matches_logical(self, a, sh):
        g = CDFG()
        x, s = g.inp("x"), g.inp("s")
        g.out("r", g.shr(x, s))
        assert g.evaluate({"x": a, "s": sh})["r"] == (a >> sh)

    @given(a=words, b=words)
    def test_xor_is_involutive(self, a, b):
        g = CDFG()
        x, y = g.inp("x"), g.inp("y")
        g.out("r", g.bxor(g.bxor(x, y), y))
        assert g.evaluate({"x": a, "y": b})["r"] == a


class TestSigned:
    def test_signed_boundaries(self):
        assert _signed(0) == 0
        assert _signed(0x7FFFFFFF) == 2**31 - 1
        assert _signed(0x80000000) == -(2**31)
        assert _signed(MASK32) == -1
