"""The store's flight-recorder half: the ``telemetry`` table, the
latest-heartbeat view, and heartbeat-aware lease reclaim.

The reclaim contract: owners that never heartbeat are judged exactly
as before (deadline + dead pid), so a telemetry-off campaign's lease
discipline is unchanged; owners that *do* heartbeat are additionally
presumed dead once silent past ``heartbeat_timeout_s`` — catching
hung-but-alive shards long before their lease deadline."""

import os
import time

from repro.campaign.store import CampaignStore
from repro.obs import StoreRecorder, TelemetryEmitter, TelemetrySample
from repro.sweep import expand_grid, run_sweep


def beat_doc(owner, wall_time, seq=0, **data):
    return TelemetrySample(
        kind="heartbeat", owner=owner, role="shard",
        wall_time=wall_time, mono_time=wall_time, seq=seq, data=data,
    ).to_dict()


def jobs(n):
    return [(f"cell-{i:02d}", {"i": i}) for i in range(n)]


class TestTelemetryTable:
    def test_record_and_read_back_in_order(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite")
        docs = [beat_doc("pid:1", 100.0, seq=0, done=0),
                beat_doc("pid:1", 101.0, seq=1, done=3)]
        assert store.record_telemetry(docs) == 2
        rows = store.telemetry()
        assert [r["seq"] for r in rows] == [0, 1]
        assert rows[1]["data"] == {"done": 3}
        assert rows[1]["owner"] == "pid:1"

    def test_kind_and_owner_filters(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite")
        emitter = TelemetryEmitter(StoreRecorder(store), owner="pid:1")
        emitter.heartbeat(done=0)
        emitter.emit("queue", pending=4)
        other = TelemetryEmitter(StoreRecorder(store), owner="pid:2")
        other.heartbeat(done=1)
        assert len(store.telemetry()) == 3
        assert len(store.telemetry(kind="heartbeat")) == 2
        assert len(store.telemetry(owner="pid:1")) == 2
        assert len(store.telemetry(kind="queue", owner="pid:1")) == 1

    def test_latest_heartbeats_is_newest_per_owner(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite")
        store.record_telemetry([
            beat_doc("pid:1", 100.0, seq=0, done=0),
            beat_doc("pid:2", 100.5, seq=0, done=0),
            beat_doc("pid:1", 101.0, seq=1, done=7),
        ])
        latest = store.latest_heartbeats()
        assert set(latest) == {"pid:1", "pid:2"}
        assert latest["pid:1"]["seq"] == 1
        assert latest["pid:1"]["data"] == {"done": 7}

    def test_clear_wipes_telemetry_too(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite")
        store.record_telemetry([beat_doc("pid:1", 100.0)])
        store.clear()
        assert store.telemetry() == []

    def test_leased_jobs_lists_live_leases(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite")
        store.enqueue(jobs(3))
        claimed = store.claim("pid:123", 2)
        held = store.leased_jobs()
        assert [fp for fp, _o, _d, _a in held] == \
            sorted(fp for fp, _payload in claimed)
        assert all(owner == "pid:123" for _fp, owner, _d, _a in held)
        assert all(deadline > time.time()
                   for _fp, _o, deadline, _a in held)


class TestHeartbeatAwareReclaim:
    """All cases use this process's own (alive) pid as the owner, so
    only the heartbeat rule — never the dead-pid rule — can fire."""

    def make(self, tmp_path, **kw):
        kw.setdefault("lease_s", 60.0)
        kw.setdefault("heartbeat_timeout_s", 5.0)
        store = CampaignStore(tmp_path / "c.sqlite", **kw)
        store.enqueue(jobs(2))
        owner = f"pid:{os.getpid()}"
        claimed = store.claim(owner, 1)
        assert claimed
        return store, owner

    def test_silent_heartbeat_owner_is_reclaimed(self, tmp_path):
        store, owner = self.make(tmp_path)
        store.record_telemetry(
            [beat_doc(owner, time.time() - 60.0, done=1)]
        )
        assert store.reclaim_stale() == 1
        assert store.leased_jobs() == []

    def test_fresh_heartbeat_keeps_the_lease(self, tmp_path):
        store, owner = self.make(tmp_path)
        store.record_telemetry([beat_doc(owner, time.time(), done=1)])
        assert store.reclaim_stale() == 0
        assert len(store.leased_jobs()) == 1

    def test_owner_that_never_heartbeat_is_untouched(self, tmp_path):
        # telemetry-off behaviour: live pid + live deadline = live
        # lease, even with other owners' samples in the table
        store, _owner = self.make(tmp_path)
        store.record_telemetry(
            [beat_doc("pid:999999", time.time() - 60.0, done=1)]
        )
        assert store.reclaim_stale() == 0
        assert len(store.leased_jobs()) == 1

    def test_expired_deadline_wins_over_fresh_heartbeat(self, tmp_path):
        store, owner = self.make(tmp_path, lease_s=0.01,
                                 heartbeat_timeout_s=60.0)
        time.sleep(0.05)
        store.record_telemetry([beat_doc(owner, time.time(), done=1)])
        assert store.reclaim_stale() == 1

    def test_only_the_silent_owner_loses_its_lease(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite", lease_s=60.0,
                              heartbeat_timeout_s=5.0)
        store.enqueue(jobs(4))
        quiet = f"pid:{os.getpid()}"
        hung = f"hung:{os.getpid()}"
        store.claim(quiet, 1)
        hung_fp = store.claim(hung, 1)[0][0]
        store.record_telemetry(
            [beat_doc(hung, time.time() - 60.0, done=0)]
        )
        assert store.reclaim_stale() == 1
        still_held = {owner for _fp, owner, _d, _a
                      in store.leased_jobs()}
        assert still_held == {quiet}
        # the reclaimed cell is immediately claimable again
        refp = [fp for fp, _payload in store.claim("pid:777", 4)]
        assert hung_fp in refp


class TestServiceHeartbeats:
    def test_sharded_run_records_all_streams(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite")
        grid = expand_grid(generators=("layered",), n_tasks=(6,),
                           heuristics=("greedy",), seeds=range(4))
        run_sweep(grid, workers=2, cache=store,
                  recorder=StoreRecorder(store))
        rows = store.telemetry()
        kinds = {r["kind"] for r in rows}
        assert "heartbeat" in kinds and "queue" in kinds
        roles = {r["role"] for r in rows}
        assert "coordinator" in roles and "shard" in roles
        # shard owners are their lease owners, so reclaim and the
        # post-mortem can match heartbeats to leases
        shard_owners = {r["owner"] for r in rows
                        if r["role"] == "shard"}
        assert shard_owners
        assert all(o.startswith("pid:") for o in shard_owners)
        # the coordinator's last heartbeat says it exited cleanly
        coord = [r for r in rows if r["role"] == "coordinator"
                 and r["kind"] == "heartbeat"]
        assert coord[-1]["data"].get("exiting") is True

    def test_in_process_run_records_both_streams(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite")
        grid = expand_grid(generators=("layered",), n_tasks=(6,),
                           heuristics=("greedy",), seeds=range(2))
        run_sweep(grid, workers=1, cache=store,
                  recorder=StoreRecorder(store))
        roles = {r["role"] for r in store.telemetry()}
        assert roles == {"coordinator", "shard"}
        # distinct owner prefixes keep the two same-pid streams apart
        owners = {r["owner"] for r in store.telemetry()}
        assert f"coord:{os.getpid()}" in owners
        assert f"pid:{os.getpid()}" in owners
