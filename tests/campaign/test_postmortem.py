"""Crash post-mortems: synthetic verdict/suspect units, and the
acceptance test from the issue — SIGKILL a sharded campaign with the
flight recorder armed, then reconstruct, from the store alone, which
shard died, its last heartbeat, and the exact uncommitted cells it
was holding.

The SIGKILL harness mirrors ``tests/campaign/test_resume.py``: the
victim runs in its own process group so one ``killpg`` takes down
coordinator and shards together."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignStore
from repro.obs import SpanTracer, TelemetrySample, post_mortem
from repro.obs.postmortem import owner_pid


def beat(owner, wall_time, role="shard", seq=0, **data):
    return TelemetrySample(
        kind="heartbeat", owner=owner, role=role,
        wall_time=wall_time, mono_time=wall_time, seq=seq, data=data,
    )


class TestOwnerPid:
    def test_parses_every_owner_shape(self):
        assert owner_pid("pid:123") == 123
        assert owner_pid("coord:45") == 45
        assert owner_pid("explore:6") == 6
        assert owner_pid("7") == 7

    def test_rejects_pidless_owners(self):
        assert owner_pid("gpu-box-3") is None
        assert owner_pid("pid:12:extra") is None


class TestVerdicts:
    NOW = 1000.0

    def report(self, samples, alive=(), timeout=10.0):
        return post_mortem(
            samples=samples, now_wall=self.NOW,
            silence_timeout_s=timeout,
            pid_alive=lambda pid: pid in alive,
        )

    def test_exited_dead_hung_live(self):
        report = self.report(
            [
                beat("coord:1", self.NOW - 50.0, role="coordinator",
                     exiting=True),
                beat("pid:2", self.NOW - 50.0, done=3),
                beat("pid:3", self.NOW - 50.0, done=4),
                beat("pid:4", self.NOW - 1.0, done=5),
            ],
            alive={3, 4},
        )
        verdicts = {o["owner"]: o["verdict"] for o in report.owners}
        assert verdicts == {
            "coord:1": "exited",   # said goodbye: pid gone is fine
            "pid:2": "dead",       # pid gone, no goodbye
            "pid:3": "hung",       # alive but silent past timeout
            "pid:4": "live",
        }
        assert report.dead_owners() == ["pid:2", "pid:3"]

    def test_last_heartbeat_is_preserved_verbatim(self):
        sample = beat("pid:2", self.NOW - 3.0, seq=9, done=7,
                      in_flight=2)
        report = self.report([beat("pid:2", self.NOW - 8.0, seq=8),
                              sample], alive={2})
        (owner,) = report.owners
        assert owner["last_heartbeat"] == sample.to_dict()
        assert owner["age_s"] == pytest.approx(3.0)


class TestStoreReconstruction:
    def make_store(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite", max_attempts=1)
        store.enqueue([(f"cell-{i}", {"i": i}) for i in range(5)])
        return store

    def test_suspects_are_leases_of_gone_owners(self, tmp_path):
        store = self.make_store(tmp_path)
        dead_fp = store.claim("pid:21", 1)[0][0]
        live_fp = store.claim("pid:22", 1)[0][0]
        ghost_fp = store.claim("pid:23", 1)[0][0]  # never heartbeat
        now = time.time()
        store.record_telemetry([
            beat("pid:21", now).to_dict(),
            beat("pid:22", now).to_dict(),
        ])
        report = post_mortem(store=store, now_wall=now,
                             pid_alive=lambda pid: pid == 22)
        assert {u["fingerprint"] for u in report.uncommitted} == \
            {dead_fp, live_fp, ghost_fp}
        # dead heartbeater + dead never-heartbeater are suspects; the
        # live owner's lease is work in progress, not a suspect
        assert sorted(report.suspects) == sorted([dead_fp, ghost_fp])
        assert report.queue["leased"] == 3
        assert report.queue["pending"] == 2

    def test_failed_cells_are_reported(self, tmp_path):
        store = self.make_store(tmp_path)
        fp = store.claim("pid:21", 1)[0][0]
        store.fail("pid:21", fp, "ValueError: boom")
        report = post_mortem(store=store,
                             pid_alive=lambda pid: True)
        assert report.failed == [
            {"fingerprint": fp, "error": "ValueError: boom"}
        ]

    def test_markdown_names_owners_and_suspects(self, tmp_path):
        store = self.make_store(tmp_path)
        fp = store.claim("pid:21", 1)[0][0]
        now = time.time()
        store.record_telemetry(
            [beat("pid:21", now, seq=4, done=2).to_dict()]
        )
        report = post_mortem(store=store, now_wall=now,
                             pid_alive=lambda pid: False)
        text = report.to_markdown()
        assert "`pid:21`" in text and "**dead**" in text
        assert "seq=4" in text and '"done": 2' in text
        assert f"`{fp}`" in text and "**suspect**" in text

    def test_json_roundtrips(self, tmp_path):
        import json

        store = self.make_store(tmp_path)
        store.claim("pid:21", 1)
        report = post_mortem(store=store,
                             pid_alive=lambda pid: False)
        doc = json.loads(report.to_json())
        assert doc["suspects"] == report.suspects
        assert len(doc["uncommitted"]) == 1

    def test_post_mortem_is_read_only(self, tmp_path):
        store = self.make_store(tmp_path)
        store.claim("pid:21", 1)
        before = (store.queue_counts(), store.leased_jobs(),
                  len(store.telemetry()))
        post_mortem(store=store, pid_alive=lambda pid: False)
        after = (store.queue_counts(), store.leased_jobs(),
                 len(store.telemetry()))
        assert before == after


class TestUnfinishedSpans:
    def test_open_spans_appear_in_the_report(self):
        tracer = SpanTracer(pid=1, tid=1)
        # hold the managers open: these spans never close, like a run
        # that died mid-cell
        outer = tracer.span("campaign")
        inner = tracer.span("cell", fingerprint="abc")
        outer.__enter__()
        inner.__enter__()
        report = post_mortem(span_tracer=tracer)
        names = [s["name"] for s in report.unfinished_spans]
        assert names == ["campaign", "cell"]
        assert "`cell`" in report.to_markdown()


#: Same sizing as test_resume.py: annealing is slow enough that the
#: kill lands mid-campaign with leases in flight.
VICTIM = """\
import sys
from repro.campaign import CampaignStore
from repro.obs import StoreRecorder
from repro.sweep import expand_grid, run_sweep

store = CampaignStore(sys.argv[1])
grid = expand_grid(generators=("layered",), n_tasks=(14,),
                   heuristics=("annealing",), seeds=range(8))
run_sweep(grid, workers=2, cache=store,
          recorder=StoreRecorder(store))
"""


def _env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


@pytest.mark.slow
def test_sigkill_post_mortem_names_the_dead(tmp_path):
    store_path = tmp_path / "campaign.sqlite"
    victim = subprocess.Popen(
        [sys.executable, "-c", VICTIM, str(store_path)],
        env=_env(), start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        # wait for committed progress, shard heartbeats, and in-flight
        # leases, then pull the plug
        store = CampaignStore(store_path)
        deadline = time.time() + 120
        while time.time() < deadline:
            if victim.poll() is not None:
                break
            if (store_path.exists() and len(store) >= 2
                    and store.leased_jobs()
                    and any(o.startswith("pid:")
                            for o in store.latest_heartbeats())):
                break
            time.sleep(0.05)
        os.killpg(victim.pid, signal.SIGKILL)
    finally:
        victim.wait(timeout=30)

    assert len(store) >= 1, "campaign was killed before any commit"
    leased = store.leased_jobs()
    assert leased, "no leases in flight at kill time; grow the grid"
    heartbeats = store.latest_heartbeats()

    # every owner that heartbeat is now dead — but the killed shards
    # linger as zombies until init reaps them, so give the verdict a
    # short grace period
    deadline = time.time() + 10
    while True:
        report = post_mortem(store=store)
        verdicts = {o["owner"]: o["verdict"] for o in report.owners}
        assert verdicts, "no telemetry recorded before the kill"
        if set(verdicts.values()) == {"dead"} or time.time() > deadline:
            break
        time.sleep(0.05)
    assert set(verdicts.values()) == {"dead"}
    dead_shards = [o for o in report.owners if o["role"] == "shard"]
    assert dead_shards, "no shard ever heartbeat"

    # the report carries each dead shard's actual last heartbeat
    for owner in dead_shards:
        got = TelemetrySample.from_dict(owner["last_heartbeat"])
        want = TelemetrySample.from_dict(heartbeats[owner["owner"]])
        assert got == want

    # ... and the exact uncommitted fingerprints, all suspects
    expected = {fp for fp, _o, _d, _a in leased}
    assert {u["fingerprint"] for u in report.uncommitted} == expected
    assert set(report.suspects) == expected

    text = report.to_markdown()
    for owner in dead_shards:
        assert f"`{owner['owner']}`" in text
    for fingerprint in expected:
        assert f"`{fingerprint}`" in text
    assert "**suspect**" in text

    # liveness epilogue: the same store still resumes cleanly
    from repro.sweep import expand_grid, run_sweep

    grid = expand_grid(generators=("layered",), n_tasks=(14,),
                       heuristics=("annealing",), seeds=range(8))
    resumed = run_sweep(grid, workers=2, cache=store)
    reference = run_sweep(grid, workers=2)
    assert resumed.to_json() == reference.to_json()
