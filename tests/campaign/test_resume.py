"""The acceptance test for checkpoint/resume: SIGKILL a sharded
campaign mid-flight, resume against the same store, and get the exact
table an uninterrupted run produces — recomputing only uncommitted
cells.

The victim runs in its own session (process group), so one ``killpg``
takes down coordinator and shards together — the closest safe
approximation of a power cut.  Resume relies on two store behaviours
tested in isolation elsewhere: batched claim/commit transactions (a
kill never leaves a half-committed cell) and dead-pid lease reclaim
(the killed shards' cells are runnable again immediately).
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignStore
from repro.cosim.metrics import MetricsRegistry
from repro.sweep import expand_grid, run_sweep

#: ~0.5-0.7s/cell (annealing) so the kill lands mid-campaign even on
#: fast hosts, without making the test crawl.
GRID_KW = dict(
    generators=("layered",),
    n_tasks=(14,),
    heuristics=("annealing",),
    seeds=range(8),
)

VICTIM = """\
import sys
from repro.campaign import CampaignStore
from repro.sweep import expand_grid, run_sweep

grid = expand_grid(generators=("layered",), n_tasks=(14,),
                   heuristics=("annealing",), seeds=range(8))
run_sweep(grid, workers=2, cache=CampaignStore(sys.argv[1]))
"""


def _env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


@pytest.mark.slow
def test_sigkill_resume_is_byte_identical(tmp_path):
    grid = expand_grid(**GRID_KW)
    store_path = tmp_path / "campaign.sqlite"

    victim = subprocess.Popen(
        [sys.executable, "-c", VICTIM, str(store_path)],
        env=_env(), start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        # wait until real progress is committed, then pull the plug
        store = CampaignStore(store_path)
        deadline = time.time() + 120
        while time.time() < deadline:
            if victim.poll() is not None:
                break
            if store_path.exists() and len(store) >= 2:
                break
            time.sleep(0.05)
        os.killpg(victim.pid, signal.SIGKILL)
    finally:
        victim.wait(timeout=30)

    committed = set(store.fingerprints())
    total = {c.fingerprint for c in grid}
    assert committed, "campaign was killed before any commit"
    assert committed < total, (
        "campaign finished before the kill; grow the grid"
    )
    # the killed shards left leases behind; none of them half-committed
    for fingerprint in committed:
        assert store.get(fingerprint) is not None

    # resume: only the uncommitted cells are recomputed
    metrics = MetricsRegistry()
    resumed = run_sweep(grid, workers=2, cache=store, metrics=metrics)
    assert metrics.counter("sweep.cells.computed").value == \
        len(total - committed)
    assert metrics.counter("sweep.cache.hits").value == len(committed)

    # and the final table is byte-identical to an uninterrupted run
    reference = run_sweep(grid, workers=2)
    assert resumed.to_json() == reference.to_json()

    # a second resume touches nothing at all
    again = MetricsRegistry()
    rerun = run_sweep(grid, workers=2, cache=store, metrics=again)
    assert again.counter("sweep.cells.computed").value == 0
    assert rerun.to_json() == reference.to_json()
