"""Tests for the campaign service (store, queue, shards, resume)."""
