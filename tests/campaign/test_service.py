"""Tests for the coordinator + shard service and engine integration."""

import pytest

from repro.campaign import (
    CampaignCellError,
    CampaignStore,
    register_runner,
    run_store_jobs,
)
from repro.campaign.runners import RUNNERS
from repro.cosim.metrics import MetricsRegistry
from repro.sweep import SweepCellError, expand_grid, run_cell, run_sweep


def small_grid(heuristics=("greedy", "vulcan"), seeds=range(2)):
    return expand_grid(
        generators=("layered", "pipeline"),
        n_tasks=(6,),
        heuristics=heuristics,
        seeds=seeds,
    )


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "store.sqlite")


class TestRunStoreJobs:
    def test_inline_end_to_end(self, store):
        grid = small_grid()
        done = {}
        run_store_jobs(
            store, "sweep",
            [(c.fingerprint, {"config": c.to_dict(), "weights": None})
             for c in grid],
            workers=1,
            on_done=lambda fp, record, obs, el: done.update({fp: record}),
        )
        assert set(done) == {c.fingerprint for c in grid}
        for config in grid:
            assert done[config.fingerprint] == run_cell(config)
            assert store.get(config.fingerprint) == done[config.fingerprint]

    def test_sharded_matches_inline(self, tmp_path):
        grid = small_grid()
        jobs = [
            (c.fingerprint, {"config": c.to_dict(), "weights": None})
            for c in grid
        ]
        inline, sharded = {}, {}
        run_store_jobs(CampaignStore(tmp_path / "a.sqlite"), "sweep",
                       jobs, workers=1,
                       on_done=lambda fp, r, o, e: inline.update({fp: r}))
        run_store_jobs(CampaignStore(tmp_path / "b.sqlite"), "sweep",
                       jobs, workers=3,
                       on_done=lambda fp, r, o, e: sharded.update({fp: r}))
        assert inline == sharded

    def test_elapsed_is_in_worker_time(self, store):
        grid = small_grid(heuristics=("greedy",), seeds=range(1))
        timings = []
        run_store_jobs(
            store, "sweep",
            [(c.fingerprint, {"config": c.to_dict(), "weights": None})
             for c in grid],
            workers=1,
            on_done=lambda fp, r, o, elapsed: timings.append(elapsed),
        )
        assert all(0.0 < t < 60.0 for t in timings)

    def test_failed_cell_raises_with_fingerprint(self, store):
        register_runner("test_boom", _boom_runner)
        try:
            jobs = [("a" * 64, {"ok": True}), ("b" * 64, {"boom": True})]
            done = {}
            with pytest.raises(CampaignCellError) as exc:
                run_store_jobs(store, "test_boom", jobs, workers=1,
                               on_done=lambda fp, r, o, e:
                               done.update({fp: r}))
            assert "b" * 64 in str(exc.value)
            assert set(exc.value.failures) == {"b" * 64}
            # the good cell was committed and delivered before the raise
            assert done == {"a" * 64: {"ok": True}}
            assert store.get("a" * 64) == {"ok": True}
            # the failure burned every attempt
            assert store.queue_counts()["failed"] == 1
        finally:
            del RUNNERS["test_boom"]

    def test_unknown_runner_name(self, store):
        with pytest.raises(KeyError, match="no_such_runner"):
            run_store_jobs(store, "no_such_runner",
                           [("a" * 64, {})], workers=1,
                           on_done=lambda *a: None)

    def test_rejects_bad_worker_count(self, store):
        with pytest.raises(ValueError):
            run_store_jobs(store, "sweep", [], workers=0,
                           on_done=lambda *a: None)


def _boom_runner(payload):
    if payload.get("boom"):
        raise RuntimeError("cell exploded")
    return dict(payload), None


class TestRunSweepOnStore:
    def test_tables_byte_identical_across_modes(self, tmp_path):
        grid = small_grid()
        plain = run_sweep(grid, workers=1)
        inline = run_sweep(grid, workers=1,
                           cache=CampaignStore(tmp_path / "a.sqlite"))
        sharded = run_sweep(grid, workers=2,
                            cache=CampaignStore(tmp_path / "b.sqlite"))
        assert inline.to_json() == plain.to_json()
        assert sharded.to_json() == plain.to_json()

    def test_warm_store_recomputes_nothing(self, tmp_path):
        grid = small_grid()
        store = CampaignStore(tmp_path / "s.sqlite")
        run_sweep(grid, workers=2, cache=store)
        metrics = MetricsRegistry()
        warm = run_sweep(grid, workers=2, cache=store, metrics=metrics)
        assert metrics.counter("sweep.cells.computed").value == 0
        assert metrics.counter("sweep.cache.hits").value == len(grid)
        assert warm.to_json() == run_sweep(grid, workers=1).to_json()

    def test_failed_cell_surfaces_as_sweep_cell_error(self, store):
        register_runner("sweep", _sweep_boom, )
        try:
            grid = small_grid(heuristics=("greedy",), seeds=range(2))
            with pytest.raises(SweepCellError) as exc:
                run_sweep(grid, workers=1, cache=store)
            assert exc.value.fingerprint in {c.fingerprint for c in grid}
        finally:
            from repro.campaign.runners import run_sweep_payload

            register_runner("sweep", run_sweep_payload)

    def test_campaign_metrics_counters(self, store):
        grid = small_grid(heuristics=("greedy",))
        metrics = MetricsRegistry()
        run_sweep(grid, workers=1, cache=store, metrics=metrics)
        snap = metrics.snapshot()["counters"]
        assert snap["campaign.jobs.enqueued"] == len(grid)
        assert snap["campaign.jobs.committed"] == len(grid)


def _sweep_boom(payload):
    raise RuntimeError("sweep cell exploded")
