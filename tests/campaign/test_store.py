"""Tests for the SQLite result store: ResultCache parity, migration,
and multi-process write safety."""

import json
import multiprocessing
import os

import pytest

from repro.campaign import CampaignStore
from repro.sweep import CACHE_VERSION, CacheVersionError, ResultCache

RECORD = {"fingerprint": "f" * 64, "cost": 12.5, "hw_tasks": ["a", "b"]}


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "store.sqlite")


class TestResultSurface:
    """The store is a drop-in for ResultCache's cache surface."""

    def test_roundtrip(self, store):
        fp = "a" * 64
        assert store.get(fp) is None
        store.put(fp, RECORD)
        assert store.get(fp) == RECORD
        assert fp in store
        assert len(store) == 1

    def test_miss_on_absent(self, store):
        assert store.get("b" * 64) is None
        assert ("b" * 64) not in store

    def test_put_many_batches(self, store):
        items = [(f"{i}" * 64, {"cost": float(i)}) for i in range(5)]
        assert store.put_many(items) == 5
        assert len(store) == 5
        assert store.fingerprints() == sorted(fp for fp, _ in items)

    def test_overwrite_replaces(self, store):
        fp = "f" * 64
        store.put(fp, {"cost": 1.0})
        store.put(fp, {"cost": 2.0})
        assert store.get(fp) == {"cost": 2.0}
        assert len(store) == 1

    def test_newer_version_raises_clear_error(self, store):
        fp = "d" * 64
        store.conn.execute(
            "INSERT INTO results (fingerprint, version, record) "
            "VALUES (?, ?, ?)",
            (fp, CACHE_VERSION + 1, json.dumps(RECORD)),
        )
        with pytest.raises(CacheVersionError) as exc:
            store.get(fp)
        message = str(exc.value)
        assert str(CACHE_VERSION + 1) in message
        assert str(CACHE_VERSION) in message

    def test_older_version_reads_as_miss(self, store):
        fp = "e" * 64
        store.conn.execute(
            "INSERT INTO results (fingerprint, version, record) "
            "VALUES (?, ?, ?)",
            (fp, CACHE_VERSION - 1, json.dumps(RECORD)),
        )
        assert store.get(fp) is None

    def test_clear_drops_results_and_queue(self, store):
        store.put("a" * 64, RECORD)
        store.enqueue([("b" * 64, {"x": 1})])
        assert store.clear() == 1
        assert len(store) == 0
        assert store.queue_counts()["pending"] == 0

    def test_creates_parent_directory(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "store.sqlite"
        CampaignStore(path)
        assert path.exists()


class TestMigration:
    def test_import_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "json")
        for i in range(4):
            cache.put(f"{i}" * 64, {"cost": float(i)})
        store = CampaignStore(tmp_path / "store.sqlite")
        assert store.import_cache(cache) == 4
        for i in range(4):
            assert store.get(f"{i}" * 64) == {"cost": float(i)}

    def test_import_skips_unreadable_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "json")
        cache.put("a" * 64, RECORD)
        cache.path_for("b" * 64).write_text("{corrupt", encoding="utf-8")
        store = CampaignStore(tmp_path / "store.sqlite")
        assert store.import_cache(cache) == 1
        assert store.get("a" * 64) == RECORD
        assert store.get("b" * 64) is None


def _forked_child(store, out):
    """Child side of the fork-safety test (fork keeps the object)."""
    store.put("b" * 64, {"ok": True})
    out.put(store.get("a" * 64))


def _hammer(path, start, count, out):
    """Write ``count`` records; every pid also writes the shared fp."""
    store = CampaignStore(path)
    for i in range(start, start + count):
        store.put(f"{i:064d}", {"value": i})
    store.put("s" * 64, {"value": "shared"})
    out.put(os.getpid())


class TestConcurrentWriters:
    def test_two_processes_no_lost_updates(self, tmp_path):
        path = tmp_path / "store.sqlite"
        CampaignStore(path)  # create schema before forking
        ctx = multiprocessing.get_context()
        out = ctx.Queue()
        procs = [
            ctx.Process(target=_hammer, args=(path, i * 50, 50, out))
            for i in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        store = CampaignStore(path)
        assert len(store) == 101  # 2 x 50 disjoint + 1 shared
        for i in range(100):
            assert store.get(f"{i:064d}") == {"value": i}
        assert store.get("s" * 64) == {"value": "shared"}

    def test_store_reopens_after_fork(self, tmp_path):
        """A store object crossing a fork must not share the parent's
        sqlite connection."""
        path = tmp_path / "store.sqlite"
        store = CampaignStore(path)
        store.put("a" * 64, RECORD)
        ctx = multiprocessing.get_context()
        out = ctx.Queue()
        p = ctx.Process(target=_forked_child, args=(store, out))
        p.start()
        p.join(timeout=60)
        assert p.exitcode == 0
        assert out.get(timeout=10) == RECORD
        assert store.get("b" * 64) == {"ok": True}
