"""Lease-boundary edge cases of the campaign store's job queue.

The claim predicate, the reclaim sweep, and the retry budget each have
a boundary where off-by-one or lost-update bugs live:

* a lease whose deadline is *exactly* the claim instant is NOT yet
  stealable (the predicate is strictly ``deadline < now``) — one
  microsecond later it is;
* reclaiming a dead owner's lease must not clobber work that owner
  already committed (reclaim flips ``leased`` rows only, and commit
  marks the row ``done`` in the same transaction as the result);
* a job that fails on every attempt settles as permanently ``failed``
  — reported by :meth:`failed_jobs`, excluded from
  :meth:`remaining_runnable`, never re-queued forever.
"""

import os
import time
from unittest import mock

import pytest

from repro.campaign import CampaignStore

JOB = ("a" * 64, {"cell": 1})
RECORD = {"cost": 1.0}


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "store.sqlite", lease_s=10.0,
                         max_attempts=3)


def _lease_deadline(store, fingerprint):
    return store.conn.execute(
        "SELECT lease_deadline FROM jobs WHERE fingerprint = ?",
        (fingerprint,),
    ).fetchone()[0]


def _state(store, fingerprint):
    return store.conn.execute(
        "SELECT state, attempts FROM jobs WHERE fingerprint = ?",
        (fingerprint,),
    ).fetchone()


class TestDeadlineExactlyAtClaimTime:
    """The strict-< boundary: an expiring lease becomes stealable one
    tick *after* its deadline, never at it."""

    def test_deadline_equal_to_now_is_not_stealable(self, store):
        store.enqueue([JOB])
        claimed = store.claim("owner-1", 1)
        assert len(claimed) == 1
        deadline = _lease_deadline(store, JOB[0])

        # freeze the thief's clock to exactly the lease deadline
        with mock.patch("repro.campaign.store.time.time",
                        return_value=deadline):
            assert store.claim("thief", 1) == []
        assert _state(store, JOB[0])[0] == "leased"

    def test_deadline_just_past_is_stealable(self, store):
        store.enqueue([JOB])
        store.claim("owner-1", 1)
        deadline = _lease_deadline(store, JOB[0])

        with mock.patch("repro.campaign.store.time.time",
                        return_value=deadline + 1e-6):
            stolen = store.claim("thief", 1)
        assert [fp for fp, _ in stolen] == [JOB[0]]
        state, attempts = _state(store, JOB[0])
        assert state == "leased" and attempts == 2

    def test_reclaim_respects_the_same_boundary(self, store):
        store.enqueue([JOB])
        # lease under an owner that is NOT a live pid, so only the
        # deadline clause can trigger the reclaim
        store.claim("remote:worker", 1)
        deadline = _lease_deadline(store, JOB[0])

        with mock.patch("repro.campaign.store.time.time",
                        return_value=deadline):
            assert store.reclaim_stale() == 0
        with mock.patch("repro.campaign.store.time.time",
                        return_value=deadline + 1e-6):
            assert store.reclaim_stale() == 1
        assert _state(store, JOB[0])[0] == "pending"


class TestDeadPidReclaimVsLiveCommit:
    """A dead-owner reclaim racing the owner's own commit must never
    lose the committed result."""

    def _claim_as_dead_pid(self, store):
        # a pid that cannot be running: fork one, let it exit, use it
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        owner = f"pid:{pid}"
        claimed = store.claim(owner, 1)
        assert [fp for fp, _ in claimed] == [JOB[0]]
        return owner

    def test_commit_first_then_reclaim_keeps_the_result(self, store):
        store.enqueue([JOB])
        owner = self._claim_as_dead_pid(store)
        # the "dead" owner actually finished: its commit landed before
        # the coordinator's reclaim sweep ran
        store.commit(owner, [(JOB[0], RECORD, None, 0.01)])
        assert store.reclaim_stale() == 0  # done rows are not leased
        assert _state(store, JOB[0])[0] == "done"
        assert store.get(JOB[0]) == RECORD

    def test_reclaim_first_then_recompute_is_consistent(self, store):
        store.enqueue([JOB])
        self._claim_as_dead_pid(store)
        # coordinator notices the dead pid before any commit arrives
        assert store.reclaim_stale() == 1
        assert _state(store, JOB[0])[0] == "pending"
        # another worker claims and commits; the queue converges
        stolen = store.claim("pid:%d" % os.getpid(), 1)
        assert [fp for fp, _ in stolen] == [JOB[0]]
        store.commit("pid:%d" % os.getpid(),
                     [(JOB[0], RECORD, None, 0.01)])
        assert _state(store, JOB[0])[0] == "done"
        assert store.get(JOB[0]) == RECORD

    def test_live_pid_is_not_reclaimed(self, store):
        store.enqueue([JOB])
        store.claim(f"pid:{os.getpid()}", 1)  # us; alive by definition
        assert store.reclaim_stale() == 0
        assert _state(store, JOB[0])[0] == "leased"


class TestRetryBudgetExhaustion:
    """max_attempts claims, each failed → permanently failed, reported,
    and not runnable — never an infinite requeue loop."""

    def test_exhaustion_marks_failed_not_requeued(self, store):
        store.enqueue([JOB])
        for attempt in range(store.max_attempts):
            claimed = store.claim("owner", 1)
            assert len(claimed) == 1, f"attempt {attempt} not granted"
            store.fail("owner", JOB[0], f"boom {attempt}")

        # the budget is spent: no claim, no runnable work, reported
        assert store.claim("owner", 1) == []
        assert store.remaining_runnable() == 0
        assert store.failed_jobs() == [(JOB[0], "boom 2")]
        state, attempts = _state(store, JOB[0])
        assert state == "failed" and attempts == store.max_attempts

    def test_failed_with_attempts_left_is_still_runnable(self, store):
        store.enqueue([JOB])
        store.claim("owner", 1)
        store.fail("owner", JOB[0], "transient")
        assert store.remaining_runnable() == 1
        assert store.failed_jobs() == []  # not permanent yet
        assert len(store.claim("owner", 1)) == 1

    def test_success_after_failures_clears_the_error(self, store):
        store.enqueue([JOB])
        store.claim("owner", 1)
        store.fail("owner", JOB[0], "first try broke")
        store.claim("owner", 1)
        store.commit("owner", [(JOB[0], RECORD, None, 0.01)])
        assert store.failed_jobs() == []
        assert store.remaining_runnable() == 0
        row = store.conn.execute(
            "SELECT state, error FROM jobs WHERE fingerprint = ?",
            (JOB[0],),
        ).fetchone()
        assert row == ("done", None)

    def test_expiring_lease_burns_an_attempt_each_steal(self, store):
        """Work stealing and the retry budget compose: every steal is
        a claim, so a job that keeps timing out cannot ping-pong
        between thieves forever."""
        store.enqueue([JOB])
        deadline = None
        for i in range(store.max_attempts):
            now = deadline + 1e-6 if deadline is not None else None
            if now is None:
                claimed = store.claim(f"remote:{i}", 1)
            else:
                with mock.patch("repro.campaign.store.time.time",
                                return_value=now):
                    claimed = store.claim(f"remote:{i}", 1)
            assert len(claimed) == 1
            deadline = _lease_deadline(store, JOB[0])
        # three expired leases later the budget is gone even though
        # no worker ever called fail()
        with mock.patch("repro.campaign.store.time.time",
                        return_value=deadline + 1e-6):
            assert store.claim("remote:last", 1) == []
        assert store.failed_jobs() == \
            [(JOB[0], "lease expired with retry budget exhausted")]
        assert store.remaining_runnable() == 0
