"""Tests for the job queue: leases, work stealing, reclaim, drain."""

import multiprocessing
import subprocess
import sys
import time

import pytest

from repro.campaign import CampaignStore

JOBS = [(f"{i}" * 64, {"cell": i}) for i in range(6)]


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "store.sqlite")


class TestEnqueue:
    def test_enqueue_counts_remaining(self, store):
        assert store.enqueue(JOBS) == len(JOBS)
        counts = store.queue_counts()
        assert counts["pending"] == len(JOBS)

    def test_enqueue_is_idempotent(self, store):
        store.enqueue(JOBS)
        assert store.enqueue(JOBS) == len(JOBS)
        assert store.queue_counts()["pending"] == len(JOBS)

    def test_enqueue_marks_committed_results_done(self, store):
        """Resume semantics: cells already in the result store are
        never recomputed."""
        done_fp, done_payload = JOBS[0]
        store.put(done_fp, {"answer": 42})
        assert store.enqueue(JOBS) == len(JOBS) - 1
        counts = store.queue_counts()
        assert counts["done"] == 1
        assert counts["pending"] == len(JOBS) - 1
        claimed = {fp for fp, _ in store.claim("pid:1", 100)}
        assert done_fp not in claimed


class TestClaim:
    def test_claim_leases_and_excludes(self, store):
        store.enqueue(JOBS)
        first = store.claim("owner-a", 2)
        assert [fp for fp, _ in first] == [JOBS[0][0], JOBS[1][0]]
        second = store.claim("owner-b", 100)
        assert {fp for fp, _ in second}.isdisjoint(
            {fp for fp, _ in first}
        )
        assert len(first) + len(second) == len(JOBS)

    def test_claim_returns_payloads(self, store):
        store.enqueue(JOBS)
        (fp, payload), = store.claim("o", 1)
        assert payload == {"cell": 0}

    def test_expired_lease_is_stolen(self, tmp_path):
        store = CampaignStore(tmp_path / "s.sqlite", lease_s=0.05)
        store.enqueue(JOBS[:1])
        assert store.claim("slow-worker", 1)
        assert store.claim("thief", 1) == []  # lease still live
        time.sleep(0.06)
        stolen = store.claim("thief", 1)
        assert [fp for fp, _ in stolen] == [JOBS[0][0]]

    def test_claim_burns_attempts(self, tmp_path):
        store = CampaignStore(tmp_path / "s.sqlite", lease_s=0.01,
                              max_attempts=2)
        store.enqueue(JOBS[:1])
        for _ in range(2):
            assert store.claim("o", 1)
            store.fail("o", JOBS[0][0], "boom")
        # attempts exhausted: not claimable, reported as failed
        assert store.claim("o", 1) == []
        assert store.failed_jobs() == [(JOBS[0][0], "boom")]
        assert store.remaining_runnable() == 0


class TestCommitAndDrain:
    def test_commit_is_atomic_result_plus_done(self, store):
        store.enqueue(JOBS)
        claimed = store.claim("o", 2)
        store.commit("o", [
            (fp, {"out": payload["cell"]}, None, 0.25)
            for fp, payload in claimed
        ])
        counts = store.queue_counts()
        assert counts["done"] == 2 and counts["leased"] == 0
        for fp, payload in claimed:
            assert store.get(fp) == {"out": payload["cell"]}

    def test_drain_delivers_exactly_once(self, store):
        store.enqueue(JOBS[:2])
        claimed = store.claim("o", 2)
        store.commit("o", [
            (fp, {"out": 1}, {"pid": 7, "spans": []}, 0.5)
            for fp, _ in claimed
        ])
        drained = store.drain_completed()
        assert len(drained) == 2
        fp, record, obs, elapsed = drained[0]
        assert record == {"out": 1}
        assert obs == {"pid": 7, "spans": []}
        assert elapsed == 0.5
        assert store.drain_completed() == []


class TestReclaim:
    def test_reclaims_past_deadline(self, tmp_path):
        store = CampaignStore(tmp_path / "s.sqlite", lease_s=0.01)
        store.enqueue(JOBS[:3])
        store.claim("anyone", 3)
        time.sleep(0.02)
        assert store.reclaim_stale() == 3
        assert store.queue_counts()["pending"] == 3

    def test_reclaims_dead_pid_before_deadline(self, store):
        """SIGKILL'd same-box workers release their cells instantly,
        without waiting out the lease deadline."""
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        dead_pid = proc.pid
        store.enqueue(JOBS[:2])
        claimed = store.claim(f"pid:{dead_pid}", 2)
        assert len(claimed) == 2
        assert store.reclaim_stale() == 2
        assert store.queue_counts()["pending"] == 2

    def test_live_pid_lease_is_kept(self, store):
        import os

        store.enqueue(JOBS[:1])
        store.claim(f"pid:{os.getpid()}", 1)
        assert store.reclaim_stale() == 0
        assert store.queue_counts()["leased"] == 1


def _contend(path, owner, out):
    store = CampaignStore(path)
    claimed = []
    while True:
        batch = store.claim(owner, 2)
        if not batch:
            break
        claimed.extend(fp for fp, _ in batch)
        store.commit(owner, [(fp, {"by": owner}, None, 0.0)
                             for fp, _ in batch])
    out.put((owner, claimed))


class TestConcurrentClaimers:
    def test_no_double_lease_across_processes(self, tmp_path):
        path = tmp_path / "s.sqlite"
        store = CampaignStore(path)
        jobs = [(f"{i:064d}", {"i": i}) for i in range(40)]
        store.enqueue(jobs)
        ctx = multiprocessing.get_context()
        out = ctx.Queue()
        procs = [
            ctx.Process(target=_contend, args=(path, f"w{i}", out))
            for i in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        seen = {}
        for _ in procs:
            owner, claimed = out.get(timeout=10)
            for fp in claimed:
                assert fp not in seen, (
                    f"{fp} claimed by both {owner} and {seen[fp]}"
                )
                seen[fp] = owner
        assert len(seen) == len(jobs)
        assert store.queue_counts()["done"] == len(jobs)
