"""The flagship property: three implementations of random behaviors agree.

For randomly generated CDFGs (random shapes, op mixes, constants,
sharing of intermediate values) the framework must produce identical
results from:

1. the CDFG interpreter (golden reference),
2. the compiled R32 machine code executed on the CPU model
   (with register pressure high enough to exercise spilling),
3. the HLS datapath simulated from schedule + binding
   (under several schedulers).

This is Section 3.2's "unified understanding of hardware and software
functionality" tested adversarially: any divergence between the
compiler, the CPU semantics, the scheduler, or the binder fails here.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.cdfg import CDFG, MASK32, OpKind
from repro.hls.synthesize import HlsConstraints, synthesize
from repro.isa.codegen import compile_cdfg

#: op kinds safe for random generation (DIV/MOD need nonzero divisors,
#: LOAD/STORE need a memory model — exercised by dedicated tests)
RANDOM_KINDS = [
    OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.AND, OpKind.OR,
    OpKind.XOR, OpKind.SHL, OpKind.SHR, OpKind.NOT, OpKind.NEG,
    OpKind.LT, OpKind.LE, OpKind.EQ, OpKind.NE, OpKind.GE, OpKind.GT,
    OpKind.MUX,
]


def random_cdfg(rng: random.Random, n_inputs: int, n_ops: int) -> CDFG:
    """A random DAG of operations over ``n_inputs`` inputs.

    Every op draws its operands from all previously defined values, so
    value sharing (multiple consumers) and long chains both occur; a
    random subset of values becomes outputs (always at least one).
    """
    g = CDFG(f"rand{rng.randrange(1 << 30)}")
    values = [g.inp(f"in{i}") for i in range(n_inputs)]
    for _ in range(rng.randrange(3)):
        values.append(g.const(rng.randrange(0, 1 << 16)))
    for _ in range(n_ops):
        kind = rng.choice(RANDOM_KINDS)
        args = [rng.choice(values) for _ in range(kind.arity)]
        values.append(g.add_op(kind, args))
    compute = [op.name for op in g.compute_ops()]
    sinks = [name for name in compute if not g.uses(name)]
    outputs = sinks or compute[-1:]
    for i, name in enumerate(outputs[:6]):
        g.out(f"out{i}", name)
    return g


def random_inputs(rng: random.Random, g: CDFG):
    return {op.name: rng.randrange(0, MASK32 + 1) for op in g.inputs()}


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_compiler_matches_interpreter(seed):
    rng = random.Random(seed)
    g = random_cdfg(rng, n_inputs=rng.randint(1, 6),
                    n_ops=rng.randint(1, 40))
    inputs = random_inputs(rng, g)
    expected = g.evaluate(dict(inputs))
    compiled = compile_cdfg(g)
    got, cycles = compiled.run(dict(inputs))
    assert got == expected
    assert cycles > 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_hls_matches_interpreter(seed):
    rng = random.Random(seed)
    g = random_cdfg(rng, n_inputs=rng.randint(1, 5),
                    n_ops=rng.randint(1, 25))
    inputs = random_inputs(rng, g)
    expected = g.evaluate(dict(inputs))
    for constraints in (
        HlsConstraints(scheduler="asap"),
        HlsConstraints(scheduler="list", resources={
            "adder": 1, "multiplier": 1, "logic_unit": 1,
            "divider": 1, "mem_port": 1,
        }),
    ):
        result = synthesize(g, constraints)
        assert result.simulate(dict(inputs)) == expected, (
            constraints.scheduler
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_three_way_agreement_under_pressure(seed):
    """High op counts force spilling in the compiler and FU sharing in
    HLS simultaneously; all three implementations must still agree."""
    rng = random.Random(seed)
    g = random_cdfg(rng, n_inputs=6, n_ops=60)
    inputs = random_inputs(rng, g)
    expected = g.evaluate(dict(inputs))
    sw, _cycles = compile_cdfg(g).run(dict(inputs))
    hw = synthesize(g, HlsConstraints(
        scheduler="list",
        resources={"adder": 2, "multiplier": 1, "logic_unit": 1,
                   "divider": 1, "mem_port": 1},
    )).simulate(dict(inputs))
    assert sw == expected
    assert hw == expected


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_force_directed_also_agrees(seed):
    rng = random.Random(seed)
    g = random_cdfg(rng, n_inputs=4, n_ops=15)
    inputs = random_inputs(rng, g)
    expected = g.evaluate(dict(inputs))
    from repro.hls.scheduling import asap

    bound = asap(g).length + rng.randint(0, 4)
    result = synthesize(g, HlsConstraints(scheduler="force",
                                          latency_bound=bound))
    assert result.simulate(dict(inputs)) == expected
    assert result.latency_cycles <= bound
