"""Cross-module invariants checked on random workloads."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cosynth import Allocation, schedule_on
from repro.cosynth.multiproc.library import execution_time
from repro.estimate.communication import CommModel, TIGHT
from repro.estimate.software import default_processor_library
from repro.graph.generators import random_layered_graph
from repro.partition.evaluate import evaluate_partition
from repro.partition.problem import PartitionProblem

LIB = default_processor_library()
NO_COMM = CommModel(sync_overhead_ns=0.0, word_time_ns=0.0)


def graph_for(seed, n=10):
    return random_layered_graph(random.Random(seed), n_tasks=n)


class TestPartitionEvaluationInvariants:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6), hw_seed=st.integers(0, 10**6))
    def test_latency_bounds(self, seed, hw_seed):
        """Any partition's latency sits between the all-fast critical
        path (no comm) and the all-slow serial sum (plus comm)."""
        graph = graph_for(seed)
        rng = random.Random(hw_seed)
        hw = frozenset(
            n for n in graph.task_names if rng.random() < 0.5
        )
        problem = PartitionProblem(graph, comm=TIGHT, hw_parallelism=None)
        ev = evaluate_partition(problem, hw)
        lower = graph.critical_path("min")[0]
        upper = graph.total_time("sw") + ev.comm_ns
        assert lower - 1e-6 <= ev.latency_ns <= upper + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6), hw_seed=st.integers(0, 10**6))
    def test_comm_matches_cut_cost(self, seed, hw_seed):
        """The evaluator's charged communication equals the analytic cut
        cost of the communication model — they must never drift."""
        graph = graph_for(seed)
        rng = random.Random(hw_seed)
        hw = frozenset(
            n for n in graph.task_names if rng.random() < 0.5
        )
        problem = PartitionProblem(graph, comm=TIGHT)
        ev = evaluate_partition(problem, hw)
        assert ev.comm_ns == pytest.approx(
            problem.comm.cut_cost(graph, hw)
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_more_hw_parallelism_never_hurts(self, seed):
        graph = graph_for(seed)
        hw = frozenset(graph.task_names)
        latencies = []
        for k in (1, 2, None):
            problem = PartitionProblem(graph, comm=NO_COMM,
                                       hw_parallelism=k)
            latencies.append(evaluate_partition(problem, hw).latency_ns)
        assert latencies[0] >= latencies[1] - 1e-9
        assert latencies[1] >= latencies[2] - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_busy_times_conserve_work(self, seed):
        graph = graph_for(seed)
        hw = frozenset(list(graph.task_names)[::2])
        problem = PartitionProblem(graph, comm=NO_COMM,
                                   hw_parallelism=None)
        ev = evaluate_partition(problem, hw)
        sw_work = sum(
            graph.task(n).sw_time for n in graph.task_names if n not in hw
        )
        hw_work = sum(graph.task(n).hw_time for n in hw)
        assert ev.cpu_busy_ns == pytest.approx(sw_work)
        assert ev.hw_busy_ns == pytest.approx(hw_work)


class TestMultiprocSchedulerInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6), n_pes=st.integers(1, 4))
    def test_makespan_bounds(self, seed, n_pes):
        graph = graph_for(seed)
        alloc = Allocation.of({"r32": n_pes}, LIB)
        sched = schedule_on(graph, alloc, NO_COMM)
        serial = graph.total_time("sw")
        critical = graph.critical_path("sw")[0]
        assert critical - 1e-6 <= sched.makespan <= serial + 1e-6
        # work conservation: total busy time equals total work
        assert sum(sched.pe_load().values()) == pytest.approx(serial)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_mapping_times_respected(self, seed):
        """Every task's span equals its execution time on its PE."""
        graph = graph_for(seed)
        alloc = Allocation.of({"micro16": 1, "dsp": 1}, LIB)
        sched = schedule_on(graph, alloc, TIGHT)
        pes = {pe.name: pe for pe in alloc.instances}
        for name in graph.task_names:
            pe = pes[sched.mapping[name]]
            span = sched.finish[name] - sched.start[name]
            assert span == pytest.approx(
                execution_time(graph.task(name), pe.processor)
            )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_no_pe_overlap(self, seed):
        """No two tasks overlap on one processing element."""
        graph = graph_for(seed)
        alloc = Allocation.of({"r32": 2, "micro16": 1}, LIB)
        sched = schedule_on(graph, alloc, TIGHT)
        by_pe = {}
        for name, pe in sched.mapping.items():
            by_pe.setdefault(pe, []).append(
                (sched.start[name], sched.finish[name])
            )
        for pe, spans in by_pe.items():
            spans.sort()
            for (s1, f1), (s2, f2) in zip(spans, spans[1:]):
                assert f1 <= s2 + 1e-9, pe

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_precedence_respected_with_comm(self, seed):
        graph = graph_for(seed)
        alloc = Allocation.of({"r32": 3}, LIB)
        sched = schedule_on(graph, alloc, TIGHT)
        for edge in graph.edges:
            delay = (
                TIGHT.transfer_ns(edge.volume)
                if sched.mapping[edge.src] != sched.mapping[edge.dst]
                else 0.0
            )
            assert sched.start[edge.dst] + 1e-9 >= \
                sched.finish[edge.src] + delay


class TestFlowAgreementInvariant:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_simulation_and_schedule_agree_on_random_graphs(self, seed):
        """The independent DES and the analytic list schedule must agree
        on arbitrary partitions (they share the cost model, not the
        code).  The tolerance is asymmetric because the two kinds of
        disagreement mean different things: a *low* ratio (simulation
        slower than the model) means the DES found contention the
        evaluator missed — the bug class this invariant exists to catch —
        so it stays tight.  A *high* ratio only reflects the evaluator's
        non-insertion list scheduling, which lets a prioritized task
        whose data is still in flight hold its unit idle while the DES
        dispatches whoever is ready; that pessimism approaches 2x on
        adversarial graphs and is not a defect."""
        from repro.core.flow import simulate_partition

        graph = graph_for(seed, n=8)
        rng = random.Random(seed + 1)
        hw = frozenset(n for n in graph.task_names if rng.random() < 0.5)
        problem = PartitionProblem(graph, comm=TIGHT, hw_parallelism=2)
        analytic = evaluate_partition(problem, hw).latency_ns
        simulated = simulate_partition(problem, hw).latency_ns
        ratio = analytic / simulated
        assert 0.55 <= ratio <= 2.5, (sorted(hw), ratio)
