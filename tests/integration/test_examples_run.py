"""Every shipped example must run to completion, cleanly.

Examples are the public face of the library; this test keeps them from
rotting as the API evolves.  Each runs in a subprocess with a generous
timeout and must exit 0 with the output markers its narrative promises.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["speedup over all-software", "cost breakdown"],
    "coprocessor_codesign.py": ["PASS", "vulcan"],
    "multiprocessor_synthesis.py": ["deadline", "binpack"],
    "asip_exploration.py": ["speedup", "reconfigurable"],
    "cosim_abstraction_ladder.py": ["PASS", "pin"],
    "embedded_interface.py": ["UART transmitted", "timer interrupts:  3"],
    "executable_spec_refinement.py": ["step 1", "hardware: yes"],
    "mixed_system.py": ["Mixed Type I / Type II", "matches"],
}


def test_every_example_is_listed():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_MARKERS), (
        "examples on disk and the marker table disagree"
    )


@pytest.mark.parametrize("name", sorted(EXPECTED_MARKERS))
def test_example_runs(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for marker in EXPECTED_MARKERS[name]:
        assert marker in proc.stdout, (
            f"{name}: expected {marker!r} in output"
        )
