"""Every shipped example must run to completion, cleanly.

Examples are the public face of the library; this test keeps them from
rotting as the API evolves.  Each runs in a subprocess with a generous
timeout and must exit 0 with the output markers its narrative promises.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["speedup over all-software", "cost breakdown"],
    "coprocessor_codesign.py": ["PASS", "vulcan"],
    "multiprocessor_synthesis.py": ["deadline", "binpack"],
    "asip_exploration.py": ["speedup", "reconfigurable"],
    "cosim_abstraction_ladder.py": ["PASS", "pin"],
    "cosim_trace_ladder.py": [
        "JSON trace written", "VCD waveform written", "per-process metrics",
    ],
    "embedded_interface.py": ["UART transmitted", "timer interrupts:  3"],
    "executable_spec_refinement.py": ["step 1", "hardware: yes"],
    "fault_campaign.py": [
        "detection coverage", "outcome classes reached",
    ],
    "campaign_top.py": ["campaign post-mortem", "queue: done="],
    "mixed_system.py": ["Mixed Type I / Type II", "matches"],
    "partition_sweep.py": ["cells", "heuristic", "wins"],
    "obs_report.py": ["flamegraph", "convergence", "schema valid"],
    "design_explore.py": [
        "pareto front", "weighted-sum pick",
        "front identical at 1 and",
    ],
}


def run_example(name, *args):
    """Run one example in a subprocess with src/ explicitly on the path,
    so examples are exercised against the working tree even when the
    package is not installed."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
        env=env,
    )


def test_every_example_is_listed():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_MARKERS), (
        "examples on disk and the marker table disagree"
    )


#: Per-example CLI args for the generic run test (keeps slow examples
#: inside their smoke configurations).
EXAMPLE_ARGS = {
    "campaign_top.py": ["--smoke"],
    "obs_report.py": ["--smoke"],
    "fault_campaign.py": ["--smoke"],
    "design_explore.py": ["--smoke"],
}


@pytest.mark.slow  # subprocess per example: the smoke lane skips
@pytest.mark.parametrize("name", sorted(EXPECTED_MARKERS))
def test_example_runs(name):
    proc = run_example(name, *EXAMPLE_ARGS.get(name, []))
    assert proc.returncode == 0, proc.stderr[-2000:]
    for marker in EXPECTED_MARKERS[name]:
        assert marker in proc.stdout, (
            f"{name}: expected {marker!r} in output"
        )


def test_obs_report_exports_are_well_formed(tmp_path):
    """The observability report must leave behind a schema-valid
    Perfetto trace and a mergeable metrics snapshot, in both modes."""
    from repro.obs import validate_trace_events

    for mode_args in (["--smoke"], ["--mode", "cosim"]):
        outdir = tmp_path / mode_args[-1].lstrip("-")
        proc = run_example("obs_report.py", *mode_args,
                           "--out", str(outdir))
        assert proc.returncode == 0, proc.stderr[-2000:]
        doc = json.loads((outdir / "obs_trace.json").read_text())
        assert validate_trace_events(doc) == []
        assert doc["traceEvents"], "trace has no events"
        metrics = json.loads((outdir / "obs_metrics.json").read_text())
        assert metrics["counters"], "metrics snapshot has no counters"


def test_trace_ladder_exports_are_well_formed(tmp_path):
    """The tracing example must leave behind a parseable JSON trace and
    a structurally valid VCD in the requested output directory."""
    proc = run_example("cosim_trace_ladder.py", str(tmp_path))
    assert proc.returncode == 0, proc.stderr[-2000:]
    doc = json.loads((tmp_path / "pin_trace.json").read_text())
    assert doc["records"], "JSON trace has no records"
    assert doc["metrics"]["counters"], "JSON trace has no metrics"
    vcd = (tmp_path / "pin_wave.vcd").read_text()
    assert "$enddefinitions $end" in vcd
    assert "$var wire" in vcd
    assert any(line.startswith("#") for line in vcd.splitlines())
