"""Robustness and failure-injection checks across modules."""

import random

import pytest

from repro.cosim.kernel import Simulator
from repro.cosim.msglevel import Channel
from repro.isa.codegen import compile_cdfg
from repro.isa.cpu import CpuError
from repro.isa.instructions import CustomOp, Isa


class TestKernelDeterminismUnderLoad:
    def build_and_run(self):
        """A soak scenario: 40 producer/consumer pairs over shared
        channels with mixed latencies."""
        sim = Simulator()
        rng = random.Random(99)
        totals = []
        for pair in range(40):
            chan = Channel(
                sim, f"c{pair}",
                capacity=rng.choice([None, 0, 2]),
                latency_per_message=rng.choice([0.0, 1.5, 7.0]),
            )
            count = rng.randint(1, 8)

            def producer(chan=chan, count=count, base=pair):
                for i in range(count):
                    yield from chan.send(base * 100 + i)

            def consumer(chan=chan, count=count, acc=totals):
                got = 0
                for _ in range(count):
                    item = yield from chan.receive()
                    got += item
                acc.append(got)

            sim.process(producer(), name=f"p{pair}")
            sim.process(consumer(), name=f"q{pair}")
        sim.run()
        return sim.now, sim.activations, sorted(totals)

    def test_identical_runs_are_bit_identical(self):
        a = self.build_and_run()
        b = self.build_and_run()
        assert a == b

    def test_all_pairs_complete(self):
        _now, _act, totals = self.build_and_run()
        assert len(totals) == 40


class TestFailureInjection:
    def test_binary_with_custom_ops_faults_on_stock_isa(self):
        """A binary compiled for an extended ISA must fault loudly (not
        silently mis-execute) on a processor lacking the extension."""
        from repro.asip.custom import fusions_for, install, mine_candidates
        from repro.graph.cdfg import CDFG

        g = CDFG("sa")
        a, b = g.inp("a"), g.inp("b")
        three = g.const(3)
        g.out("y", g.add(g.shl(a, three), b))
        cands = mine_candidates({"sa": (g, 1.0)})
        extended = Isa("ext")
        install(extended, cands)
        compiled = compile_cdfg(g, extended,
                                fusions=fusions_for(cands, "sa"))
        with pytest.raises(CpuError):
            compiled.run({"a": 1, "b": 2})  # stock ISA by default

    def test_wrong_custom_semantics_caught_by_verification(self):
        """If a functional unit's semantics are wrong, the three-way
        co-verification must catch it — the safety net behind every
        partitioning decision."""
        from repro.graph.cdfg import CDFG
        from repro.isa.codegen import Fusion

        g = CDFG("sa")
        a, b = g.inp("a"), g.inp("b")
        three = g.const(3)
        shl = g.shl(a, three)
        add = g.add(shl, b)
        g.out("y", add)
        isa = Isa("buggy")
        isa.add_custom(CustomOp(
            "badfx", 0x80,
            lambda x, y: ((x << 2) + y) & 0xFFFFFFFF,  # wrong shift!
        ))
        compiled = compile_cdfg(
            g, isa,
            fusions={add: Fusion(outer=add, inner=shl,
                                 mnemonic="badfx", externals=(a, b))},
        )
        got, _cycles = compiled.run({"a": 1, "b": 2}, isa=isa)
        reference = g.evaluate({"a": 1, "b": 2})
        assert got != reference, (
            "the injected defect must be observable (otherwise the "
            "cross-checks in this suite prove nothing)"
        )

    def test_channel_stress_respects_capacity_invariant(self):
        sim = Simulator()
        chan = Channel(sim, "c", capacity=3)
        peak = {"n": 0}

        def producer():
            for i in range(50):
                yield from chan.send(i)
                peak["n"] = max(peak["n"], chan.pending)

        def consumer():
            for _ in range(50):
                yield from chan.receive()
                yield sim.timeout(1.0)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert peak["n"] <= 3
        assert chan.received == 50
