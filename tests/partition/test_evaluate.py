"""Tests for schedule-based partition evaluation."""

import pytest

from repro.estimate.communication import CommModel
from repro.graph.kernels import jpeg_encoder_taskgraph, modem_taskgraph
from repro.graph.taskgraph import Task, TaskGraph
from repro.partition.evaluate import evaluate_partition, hardware_area
from repro.partition.problem import PartitionProblem

NO_COMM = CommModel(sync_overhead_ns=0.0, word_time_ns=0.0)


def two_parallel_tasks():
    g = TaskGraph()
    g.add_task(Task("a", sw_time=10.0, hw_time=2.0, hw_area=50.0))
    g.add_task(Task("b", sw_time=10.0, hw_time=2.0, hw_area=50.0))
    return g


class TestScheduling:
    def test_all_sw_serializes_on_cpu(self):
        problem = PartitionProblem(two_parallel_tasks(), comm=NO_COMM)
        ev = evaluate_partition(problem, [])
        assert ev.latency_ns == pytest.approx(20.0)
        assert ev.cpu_busy_ns == pytest.approx(20.0)
        assert ev.hw_area == 0.0

    def test_hw_and_sw_overlap(self):
        problem = PartitionProblem(two_parallel_tasks(), comm=NO_COMM)
        ev = evaluate_partition(problem, ["b"])
        # a on CPU (10) overlaps b in HW (2)
        assert ev.latency_ns == pytest.approx(10.0)
        assert ev.overlap_fraction > 0.0

    def test_hw_parallelism_limits_concurrency(self):
        g = TaskGraph()
        for n in "abc":
            g.add_task(Task(n, sw_time=10.0, hw_time=4.0))
        serial = PartitionProblem(g, comm=NO_COMM, hw_parallelism=1)
        parallel = PartitionProblem(g, comm=NO_COMM, hw_parallelism=None)
        ev_serial = evaluate_partition(serial, "abc")
        ev_parallel = evaluate_partition(parallel, "abc")
        assert ev_serial.latency_ns == pytest.approx(12.0)
        assert ev_parallel.latency_ns == pytest.approx(4.0)

    def test_dependencies_respected(self):
        g = TaskGraph()
        g.add_task(Task("a", sw_time=5.0, hw_time=1.0))
        g.add_task(Task("b", sw_time=5.0, hw_time=1.0))
        g.add_edge("a", "b", 1.0)
        problem = PartitionProblem(g, comm=NO_COMM)
        ev = evaluate_partition(problem, [])
        assert ev.start_times["b"] >= 5.0
        assert ev.latency_ns == pytest.approx(10.0)

    def test_communication_charged_on_boundary_only(self):
        g = TaskGraph()
        g.add_task(Task("a", sw_time=5.0, hw_time=1.0))
        g.add_task(Task("b", sw_time=5.0, hw_time=1.0))
        g.add_edge("a", "b", 8.0)
        comm = CommModel(sync_overhead_ns=10.0, word_time_ns=1.0)
        problem = PartitionProblem(g, comm=comm)
        same_side = evaluate_partition(problem, [])
        split = evaluate_partition(problem, ["b"])
        assert same_side.comm_ns == 0.0
        assert split.comm_ns == pytest.approx(18.0)
        assert split.latency_ns == pytest.approx(5.0 + 18.0 + 1.0)

    def test_unknown_task_rejected(self):
        problem = PartitionProblem(two_parallel_tasks())
        with pytest.raises(KeyError):
            evaluate_partition(problem, ["ghost"])

    def test_deadline_flag(self):
        problem = PartitionProblem(
            two_parallel_tasks(), comm=NO_COMM, deadline_ns=15.0
        )
        assert not evaluate_partition(problem, []).deadline_met
        assert evaluate_partition(problem, ["a", "b"]).deadline_met


class TestArea:
    def test_sharing_area_below_naive(self):
        g = modem_taskgraph()
        shared = PartitionProblem(g, use_sharing=True)
        naive = PartitionProblem(g, use_sharing=False)
        hw = ["demod_i", "demod_q", "equalizer"]
        assert hardware_area(shared, hw) < hardware_area(naive, hw)

    def test_empty_partition_zero_area(self):
        problem = PartitionProblem(modem_taskgraph())
        assert hardware_area(problem, []) == 0.0

    def test_sw_size_counts_only_software(self):
        g = two_parallel_tasks()
        problem = PartitionProblem(g, comm=NO_COMM)
        total = sum(t.sw_size for t in g)
        ev_sw = evaluate_partition(problem, [])
        ev_half = evaluate_partition(problem, ["a"])
        assert ev_sw.sw_size == pytest.approx(total)
        assert ev_half.sw_size == pytest.approx(g.task("b").sw_size)


class TestValidation:
    def test_bad_parallelism_rejected(self):
        with pytest.raises(ValueError):
            PartitionProblem(two_parallel_tasks(), hw_parallelism=0)

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            PartitionProblem(two_parallel_tasks(), hw_area_budget=-1.0)


class TestTracedEvaluation:
    def test_tracer_records_schedule_profile(self):
        from repro.cosim.trace import COMM, TASK, Tracer

        g = TaskGraph()
        g.add_task(Task("a", sw_time=5.0, hw_time=1.0))
        g.add_task(Task("b", sw_time=5.0, hw_time=2.0))
        g.add_edge("a", "b", 4.0)
        comm = CommModel(sync_overhead_ns=3.0, word_time_ns=1.0)
        problem = PartitionProblem(g, comm=comm)
        tracer = Tracer()
        ev = evaluate_partition(problem, ["b"], tracer=tracer)

        spans = {r.name: r for r in tracer.records_of(TASK)}
        assert spans["a"].data["domain"] == "sw"
        assert spans["b"].data["domain"] == "hw"
        assert spans["a"].time == pytest.approx(ev.start_times["a"])
        assert spans["b"].time == pytest.approx(ev.start_times["b"])

        crossings = tracer.records_of(COMM)
        assert len(crossings) == 1
        assert crossings[0].name == "a->b"
        assert crossings[0].data["delay"] == pytest.approx(ev.comm_ns)

        counters = tracer.metrics.counters
        assert counters["partition.sw.tasks"].value == 1
        assert counters["partition.hw.tasks"].value == 1

    def test_tracer_does_not_change_the_evaluation(self):
        from repro.cosim.trace import Tracer

        g = two_parallel_tasks()
        problem = PartitionProblem(g, comm=NO_COMM)
        plain = evaluate_partition(problem, ["b"])
        traced = evaluate_partition(problem, ["b"], tracer=Tracer())
        assert plain.latency_ns == traced.latency_ns
        assert plain.start_times == traced.start_times
