"""Tests for the GCLP (Kalavade-Lee style) partitioner."""

import random

import pytest

from repro.estimate.communication import TIGHT
from repro.graph.generators import random_layered_graph
from repro.graph.kernels import jpeg_encoder_taskgraph, modem_taskgraph
from repro.graph.taskgraph import Task, TaskGraph
from repro.partition.cost import partition_cost
from repro.partition.gclp import _percentile_ranks, gclp_partition
from repro.partition.greedy import greedy_partition
from repro.partition.problem import PartitionProblem


def problem(**kwargs):
    defaults = dict(comm=TIGHT, hw_parallelism=None)
    defaults.update(kwargs)
    return PartitionProblem(jpeg_encoder_taskgraph(), **defaults)


class TestPercentiles:
    def test_ranks_span_unit_interval(self):
        ranks = _percentile_ranks([5.0, 1.0, 3.0])
        assert sorted(ranks) == [0.0, 0.5, 1.0]
        assert ranks[1] == 0.0  # smallest value
        assert ranks[0] == 1.0  # largest value

    def test_single_value(self):
        assert _percentile_ranks([7.0]) == [0.0]


class TestGclp:
    def test_meets_deadline_when_feasible(self):
        result = gclp_partition(problem(deadline_ns=90.0))
        assert result.evaluation.deadline_met

    def test_no_deadline_still_produces_sane_design(self):
        result = gclp_partition(problem())
        idle_cost, _b, _e = partition_cost(problem(), [])
        assert result.cost <= idle_cost + 1e-9

    def test_respects_area_budget(self):
        result = gclp_partition(
            problem(deadline_ns=90.0, hw_area_budget=350.0)
        )
        assert result.evaluation.hw_area <= 350.0

    def test_extremities_steer_placement(self):
        """A node with huge speedup and tiny area (hardware extremity)
        must land in hardware; its mirror image in software."""
        g = TaskGraph()
        g.add_task(Task("hw_ext", sw_time=50.0, hw_time=2.0, hw_area=20.0))
        g.add_task(Task("sw_ext", sw_time=10.0, hw_time=9.0, hw_area=900.0))
        g.add_task(Task("mid", sw_time=20.0, hw_time=10.0, hw_area=100.0))
        p = PartitionProblem(g, comm=TIGHT, deadline_ns=40.0)
        result = gclp_partition(p)
        assert "hw_ext" in result.hw_tasks
        assert "sw_ext" not in result.hw_tasks

    def test_single_pass_is_cheaper_than_greedy(self):
        """GCLP's selling point: O(n) evaluations per design."""
        p = problem(deadline_ns=90.0)
        gclp = gclp_partition(p)
        greedy = greedy_partition(p)
        assert gclp.moves_evaluated < greedy.moves_evaluated

    def test_deterministic(self):
        a = gclp_partition(problem(deadline_ns=90.0))
        b = gclp_partition(problem(deadline_ns=90.0))
        assert a.hw_tasks == b.hw_tasks

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_random_graphs_feasible_designs(self, seed):
        graph = random_layered_graph(random.Random(seed), n_tasks=12)
        deadline = graph.critical_path("sw")[0] * 0.8
        p = PartitionProblem(graph, comm=TIGHT, deadline_ns=deadline,
                             hw_parallelism=None)
        result = gclp_partition(p)
        assert result.algorithm == "gclp"
        # GCLP should find the deadline reachable on these instances
        assert result.evaluation.deadline_met, seed

    def test_available_through_flow(self):
        from repro.core.flow import CodesignFlow

        report = CodesignFlow(modem_taskgraph(), deadline_ns=90.0,
                              algorithm="gclp").run()
        assert report.simulated_latency_ns > 0
