"""Tests for the six-factor cost model."""

import pytest

from repro.estimate.communication import CommModel
from repro.graph.taskgraph import Task, TaskGraph
from repro.partition.cost import CostWeights, cost_terms, partition_cost
from repro.partition.evaluate import evaluate_partition
from repro.partition.problem import PartitionProblem

NO_COMM = CommModel(sync_overhead_ns=0.0, word_time_ns=0.0)


def graph():
    g = TaskGraph()
    g.add_task(Task("par", sw_time=20.0, hw_time=2.0, hw_area=100.0,
                    parallelism=8.0, modifiability=0.0))
    g.add_task(Task("ser", sw_time=20.0, hw_time=15.0, hw_area=100.0,
                    parallelism=1.0, modifiability=0.9))
    g.add_edge("par", "ser", 16.0)
    return g


class TestFactorTerms:
    def test_all_factors_present(self):
        problem = PartitionProblem(graph(), comm=NO_COMM)
        ev = evaluate_partition(problem, ["par"])
        terms = cost_terms(problem, ev, ["par"])
        assert set(terms) == set(CostWeights.factors())

    def test_deadline_violation_penalized(self):
        tight = PartitionProblem(graph(), comm=NO_COMM, deadline_ns=1.0)
        loose = PartitionProblem(graph(), comm=NO_COMM, deadline_ns=1e9)
        ev_t = evaluate_partition(tight, [])
        ev_l = evaluate_partition(loose, [])
        t_terms = cost_terms(tight, ev_t, [])
        l_terms = cost_terms(loose, ev_l, [])
        assert t_terms["performance"] > l_terms["performance"]

    def test_area_budget_violation_penalized(self):
        small = PartitionProblem(graph(), comm=NO_COMM, hw_area_budget=1.0)
        big = PartitionProblem(graph(), comm=NO_COMM, hw_area_budget=1e9)
        hw = ["par", "ser"]
        ev_s = evaluate_partition(small, hw)
        ev_b = evaluate_partition(big, hw)
        assert cost_terms(small, ev_s, hw)["implementation_cost"] > \
            cost_terms(big, ev_b, hw)["implementation_cost"]

    def test_modifiability_counts_hw_tasks_only(self):
        problem = PartitionProblem(graph(), comm=NO_COMM)
        ev = evaluate_partition(problem, ["ser"])
        terms = cost_terms(problem, ev, ["ser"])
        assert terms["modifiability"] == pytest.approx(0.9)
        ev2 = evaluate_partition(problem, ["par"])
        terms2 = cost_terms(problem, ev2, ["par"])
        assert terms2["modifiability"] == pytest.approx(0.0)

    def test_nature_prefers_parallel_in_hw(self):
        problem = PartitionProblem(graph(), comm=NO_COMM)
        good = cost_terms(problem, evaluate_partition(problem, ["par"]),
                          ["par"])
        bad = cost_terms(problem, evaluate_partition(problem, ["ser"]),
                         ["ser"])
        assert good["nature"] < bad["nature"]

    def test_concurrency_term_rewards_overlap(self):
        g = TaskGraph()
        g.add_task(Task("a", sw_time=10.0, hw_time=10.0))
        g.add_task(Task("b", sw_time=10.0, hw_time=10.0))
        problem = PartitionProblem(g, comm=NO_COMM)
        overlap = cost_terms(
            problem, evaluate_partition(problem, ["b"]), ["b"]
        )
        serial = cost_terms(problem, evaluate_partition(problem, []), [])
        assert overlap["concurrency"] < serial["concurrency"]

    def test_communication_term_is_cut_time(self):
        comm = CommModel(sync_overhead_ns=5.0, word_time_ns=1.0)
        problem = PartitionProblem(graph(), comm=comm)
        ev = evaluate_partition(problem, ["par"])
        terms = cost_terms(problem, ev, ["par"])
        assert terms["communication"] == pytest.approx(5.0 + 16.0)


class TestWeights:
    def test_ablate_zeroes_one_factor(self):
        w = CostWeights().ablate("communication")
        assert w.communication == 0.0
        assert w.performance == CostWeights().performance

    def test_ablate_unknown_factor_rejected(self):
        with pytest.raises(AttributeError):
            CostWeights().ablate("vibes")

    def test_cost_is_weighted_sum(self):
        problem = PartitionProblem(graph(), comm=NO_COMM)
        weights = CostWeights()
        cost, breakdown, ev = partition_cost(problem, ["par"], weights)
        assert cost == pytest.approx(sum(breakdown.values()))
        raw = cost_terms(problem, ev, ["par"])
        for factor in CostWeights.factors():
            assert breakdown[factor] == pytest.approx(
                getattr(weights, factor) * raw[factor]
            )

    def test_reuse_precomputed_evaluation(self):
        problem = PartitionProblem(graph(), comm=NO_COMM)
        ev = evaluate_partition(problem, ["par"])
        cost1, _b1, _e1 = partition_cost(problem, ["par"], evaluation=ev)
        cost2, _b2, _e2 = partition_cost(problem, ["par"])
        assert cost1 == pytest.approx(cost2)
