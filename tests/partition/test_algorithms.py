"""Tests for the five partitioning algorithms."""

import random

import pytest

from repro.estimate.communication import TIGHT, CommModel
from repro.graph.generators import random_layered_graph
from repro.graph.kernels import jpeg_encoder_taskgraph, modem_taskgraph
from repro.partition import (
    HEURISTICS,
    CostWeights,
    PartitionProblem,
    cosyma_partition,
    evaluate_partition,
    greedy_partition,
    kernighan_lin,
    simulated_annealing,
    vulcan_partition,
)

ALGOS = {
    "greedy": greedy_partition,
    "kl": kernighan_lin,
    "vulcan": vulcan_partition,
    "cosyma": cosyma_partition,
    "sa": lambda p, **kw: simulated_annealing(
        p, rng=random.Random(7), **kw
    ),
}


def jpeg_problem(**kwargs):
    defaults = dict(hw_area_budget=600.0, deadline_ns=90.0, comm=TIGHT)
    defaults.update(kwargs)
    return PartitionProblem.from_task_graph(
        jpeg_encoder_taskgraph(), **defaults
    )


class TestAllAlgorithms:
    @pytest.mark.parametrize("name", sorted(ALGOS))
    def test_beats_all_software_on_jpeg(self, name):
        problem = jpeg_problem()
        result = ALGOS[name](problem)
        all_sw = evaluate_partition(problem, [])
        assert result.evaluation.latency_ns < all_sw.latency_ns
        assert result.evaluation.deadline_met

    @pytest.mark.parametrize("name", sorted(ALGOS))
    def test_partitions_are_valid_subsets(self, name):
        problem = jpeg_problem()
        result = ALGOS[name](problem)
        names = set(problem.graph.task_names)
        assert set(result.hw_tasks) <= names
        assert set(result.sw_tasks) == names - set(result.hw_tasks)

    @pytest.mark.parametrize("name", sorted(ALGOS))
    def test_result_reports_consistent_cost(self, name):
        from repro.partition.cost import partition_cost

        problem = jpeg_problem()
        result = ALGOS[name](problem)
        recomputed, _b, _e = partition_cost(problem, result.hw_tasks)
        assert result.cost == pytest.approx(recomputed)

    @pytest.mark.parametrize("name", sorted(ALGOS))
    def test_deterministic(self, name):
        a = ALGOS[name](jpeg_problem())
        b = ALGOS[name](jpeg_problem())
        assert a.hw_tasks == b.hw_tasks
        assert a.cost == pytest.approx(b.cost)


class TestAlgorithmCharacter:
    def test_vulcan_starts_hardware_first(self):
        """Vulcan must keep performance at the all-HW level (no deadline
        given) while shedding hardware."""
        problem = PartitionProblem.from_task_graph(
            modem_taskgraph(), comm=TIGHT
        )
        result = vulcan_partition(problem, slack_factor=1.0)
        all_hw = evaluate_partition(problem, problem.graph.task_names)
        assert result.evaluation.latency_ns <= all_hw.latency_ns + 1e-9
        assert result.evaluation.hw_area <= all_hw.hw_area

    def test_vulcan_slack_trades_area_for_time(self):
        problem = PartitionProblem.from_task_graph(
            modem_taskgraph(), comm=TIGHT
        )
        strict = vulcan_partition(problem, slack_factor=1.0)
        relaxed = vulcan_partition(problem, slack_factor=2.0)
        assert relaxed.evaluation.hw_area <= strict.evaluation.hw_area

    def test_cosyma_moves_hot_tasks_first(self):
        """With a deadline, COSYMA-style extraction targets the stages
        with the best speedup-per-area (the DCT, not the Huffman)."""
        problem = jpeg_problem(deadline_ns=120.0)
        result = cosyma_partition(problem)
        assert "dct2d" in result.hw_tasks
        assert "huffman" not in result.hw_tasks

    def test_cosyma_respects_area_budget(self):
        problem = jpeg_problem(hw_area_budget=150.0, deadline_ns=None)
        result = cosyma_partition(problem)
        assert result.evaluation.hw_area <= 150.0

    def test_kl_escapes_greedy_trap(self):
        """On a comm-heavy pipeline, single moves are all losing but the
        full-pipeline move wins; KL's lookahead must do at least as well
        as greedy."""
        expensive = CommModel(sync_overhead_ns=20.0, word_time_ns=2.0)
        problem = jpeg_problem(comm=expensive, deadline_ns=90.0)
        g = greedy_partition(problem)
        k = kernighan_lin(problem)
        assert k.cost <= g.cost + 1e-9

    def test_sa_seed_controls_trajectory(self):
        problem = jpeg_problem()
        a = simulated_annealing(problem, rng=random.Random(1))
        b = simulated_annealing(problem, rng=random.Random(1))
        assert a.hw_tasks == b.hw_tasks

    def test_moves_evaluated_counted(self):
        result = greedy_partition(jpeg_problem())
        assert result.moves_evaluated > 0


class TestSeedPlumbing:
    """ISSUE 2: every heuristic accepts the uniform ``seed``/``rng``
    interface, and seeds actually steer the stochastic ones."""

    @pytest.mark.parametrize("name", sorted(HEURISTICS))
    def test_uniform_seed_interface(self, name):
        """The sweep engine calls every heuristic the same way."""
        result = HEURISTICS[name](jpeg_problem(), seed=3)
        assert result.hw_tasks is not None

    @pytest.mark.parametrize("name", sorted(HEURISTICS))
    def test_seed_and_rng_are_exclusive(self, name):
        with pytest.raises(ValueError):
            HEURISTICS[name](
                jpeg_problem(), seed=1, rng=random.Random(1)
            )

    def test_sa_seed_kwarg_is_deterministic(self):
        problem = jpeg_problem()
        a = simulated_annealing(problem, seed=5)
        b = simulated_annealing(problem, seed=5)
        assert a.hw_tasks == b.hw_tasks
        assert a.cost == pytest.approx(b.cost)

    def test_sa_seed_matches_equivalent_rng(self):
        problem = jpeg_problem()
        by_seed = simulated_annealing(problem, seed=9)
        by_rng = simulated_annealing(problem, rng=random.Random(9))
        assert by_seed.hw_tasks == by_rng.hw_tasks

    def test_sa_default_still_random_zero(self):
        """No seed and no rng keeps the historical Random(0) default."""
        problem = jpeg_problem()
        default = simulated_annealing(problem)
        explicit = simulated_annealing(problem, seed=0)
        assert default.hw_tasks == explicit.hw_tasks

    def test_sa_distinct_seeds_explore_distinct_neighborhoods(self):
        """Regression for the hardcoded-Random(0) bug: distinct seeds
        must produce distinct search trajectories.  A short hot schedule
        keeps the walk from converging, so trajectory differences stay
        visible in the outcome."""
        graph = random_layered_graph(random.Random(17), n_tasks=12)
        problem = PartitionProblem.from_task_graph(graph, comm=TIGHT)
        outcomes = {
            simulated_annealing(
                problem, seed=s, steps_per_temperature=2,
                cooling=0.5, final_temperature_ratio=0.5,
            ).hw_tasks
            for s in range(6)
        }
        assert len(outcomes) > 1


class TestOnRandomGraphs:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_partitioners_agree_on_feasibility(self, seed):
        graph = random_layered_graph(random.Random(seed), n_tasks=10)
        deadline = graph.critical_path("sw")[0] * 0.7
        problem = PartitionProblem.from_task_graph(
            graph, deadline_ns=deadline, comm=TIGHT,
            hw_parallelism=None,
        )
        results = {
            name: fn(problem) for name, fn in ALGOS.items()
        }
        # at least the explicitly deadline-driven methods must meet it
        assert results["cosyma"].evaluation.deadline_met
        assert results["vulcan"].evaluation.deadline_met
        # nobody may return a *worse* cost than doing nothing
        from repro.partition.cost import partition_cost

        idle_cost, _b, _e = partition_cost(problem, [])
        for name, result in results.items():
            assert result.cost <= idle_cost + 1e-9, name

    def test_summary_text(self):
        result = greedy_partition(jpeg_problem())
        text = result.summary()
        assert "greedy" in text
        assert "latency" in text
