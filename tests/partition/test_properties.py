"""Property-based randomized tests for the six partition heuristics.

Plain seeded ``random`` (not hypothesis): ~200 random problems per
heuristic, drawn from every generator family and cost model, checking
the shared invariants via the differential harness's ``check_result``:

* assignment totality (every task on exactly one side);
* budget feasibility flags (respected or honestly flagged);
* carried evaluation == from-scratch evaluation, and the incremental
  area estimator == the memoized from-scratch evaluation;
* reported cost == recomputed cost.

Failures print the offending case seeds so any violation reproduces
with a one-liner.
"""

import hashlib
import random

import pytest

from repro.partition import CostWeights, HEURISTICS
from repro.sweep import SweepConfig, check_result, random_problem_config

#: cases per heuristic; cheap parameters keep stochastic search short
#: without changing what the invariants require
CASES = 200

#: per-heuristic keyword overrides that shrink search effort (the
#: invariants are effort-independent; 200 full annealing schedules per
#: run would be all heat and no light)
FAST = {
    "annealing": dict(steps_per_temperature=4, cooling=0.8,
                      final_temperature_ratio=1e-2),
    "kl": dict(max_passes=3),
}


def case_config(case_rng: random.Random, heuristic: str) -> SweepConfig:
    base = random_problem_config(case_rng, n_tasks=(4, 8))
    return SweepConfig.from_dict(
        {**base.to_dict(), "heuristic": heuristic}
    )


@pytest.mark.slow  # hypothesis over every heuristic
@pytest.mark.parametrize("heuristic", sorted(HEURISTICS))
def test_invariants_hold_on_random_problems(heuristic):
    weights = CostWeights()
    failures = []
    for case in range(CASES):
        salt = int(hashlib.sha256(heuristic.encode()).hexdigest()[:8], 16)
        case_rng = random.Random(salt * 100003 + case)
        config = case_config(case_rng, heuristic)
        problem = config.build_problem()
        result = HEURISTICS[heuristic](
            problem, weights=weights, seed=config.heuristic_seed(),
            **FAST.get(heuristic, {}),
        )
        label = (f"case {case} "
                 f"(repro: SweepConfig.from_dict({config.to_dict()!r}))")
        failures.extend(
            check_result(problem, result, weights=weights, label=label)
        )
    assert not failures, (
        f"{len(failures)} invariant violations for {heuristic}; "
        "failing cases:\n" + "\n".join(failures[:10])
    )
