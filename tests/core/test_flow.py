"""Tests for the end-to-end co-design flow and its validation cosim."""

import pytest

from repro.core.flow import CodesignFlow, simulate_partition
from repro.estimate.communication import TIGHT, CommModel
from repro.graph.kernels import jpeg_encoder_taskgraph, modem_taskgraph
from repro.graph.taskgraph import Task, TaskGraph
from repro.partition.problem import PartitionProblem

NO_COMM = CommModel(sync_overhead_ns=0.0, word_time_ns=0.0)


class TestSimulatePartition:
    def test_all_software_latency_is_serial_sum(self):
        g = modem_taskgraph()
        problem = PartitionProblem(g, comm=NO_COMM)
        simulated = simulate_partition(problem, frozenset())
        assert simulated.latency_ns == pytest.approx(g.total_time("sw"))
        assert simulated.messages == 0

    def test_boundary_edges_become_messages(self):
        g = TaskGraph()
        g.add_task(Task("a", sw_time=5.0, hw_time=1.0))
        g.add_task(Task("b", sw_time=5.0, hw_time=1.0))
        g.add_edge("a", "b", 8.0)
        comm = CommModel(sync_overhead_ns=10.0, word_time_ns=1.0)
        problem = PartitionProblem(g, comm=comm)
        simulated = simulate_partition(problem, frozenset({"b"}))
        assert simulated.messages == 1
        assert simulated.latency_ns == pytest.approx(5.0 + 18.0 + 1.0)

    def test_hw_parallelism_respected_in_simulation(self):
        g = TaskGraph()
        for n in "abc":
            g.add_task(Task(n, sw_time=10.0, hw_time=4.0))
        serial = PartitionProblem(g, comm=NO_COMM, hw_parallelism=1)
        parallel = PartitionProblem(g, comm=NO_COMM, hw_parallelism=3)
        s = simulate_partition(serial, frozenset("abc"))
        p = simulate_partition(parallel, frozenset("abc"))
        assert s.latency_ns == pytest.approx(12.0)
        assert p.latency_ns == pytest.approx(4.0)

    def test_simulation_agrees_with_analytic_evaluation(self):
        """The independent DES must land close to the list-schedule
        evaluator on realistic partitions (they share the cost model but
        not the scheduling code)."""
        from repro.partition.evaluate import evaluate_partition

        g = modem_taskgraph()
        problem = PartitionProblem(g, comm=TIGHT, hw_parallelism=2)
        for hw in (frozenset(), frozenset({"equalizer", "demod_i"}),
                   frozenset(g.task_names)):
            analytic = evaluate_partition(problem, hw)
            simulated = simulate_partition(problem, hw)
            ratio = analytic.latency_ns / simulated.latency_ns
            assert 0.75 <= ratio <= 1.25, (hw, ratio)


class TestCodesignFlow:
    def test_flow_end_to_end(self):
        flow = CodesignFlow(
            modem_taskgraph(), deadline_ns=90.0, hw_area_budget=600.0
        )
        report = flow.run()
        assert report.partition.evaluation.deadline_met
        assert report.simulated_latency_ns > 0
        assert 0.7 <= report.agreement <= 1.3

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            CodesignFlow(modem_taskgraph(), algorithm="magic")

    @pytest.mark.parametrize("algorithm", ["greedy", "kl", "vulcan",
                                           "cosyma", "annealing"])
    def test_all_algorithms_pluggable(self, algorithm):
        flow = CodesignFlow(
            jpeg_encoder_taskgraph(), deadline_ns=100.0,
            algorithm=algorithm,
        )
        report = flow.run()
        assert report.simulated_latency_ns > 0

    def test_summary_reports_both_latencies(self):
        report = CodesignFlow(modem_taskgraph()).run()
        text = report.summary()
        assert "co-simulation" in text
        assert "agreement" in text
