"""Tests for the Mixed Type I/Type II system (the paper's open case)."""

import pytest

from repro.core.mixed import (
    FIR_COEFFS,
    N_TAPS,
    build_and_run_mixed_system,
    coprocessor_device_spec,
    mixed_system_model,
)
from repro.core.taxonomy import SystemType, classify_system


class TestStructure:
    def test_model_classifies_as_mixed(self):
        result = classify_system(mixed_system_model())
        assert result.system_type is SystemType.MIXED
        assert "executes" in result.rationale
        assert "peers" in result.rationale

    def test_device_spec_shape(self):
        spec = coprocessor_device_spec(4)
        assert spec.has_interrupt
        names = [r.name for r in spec.registers]
        assert names == ["arg0", "arg1", "arg2", "arg3", "cmd", "result"]
        assert not spec.register("result").access.writable
        assert not spec.register("cmd").access.readable


class TestEndToEnd:
    def test_default_run_matches_reference(self):
        result = build_and_run_mixed_system()
        assert result.functionally_correct
        assert result.classification.system_type is SystemType.MIXED

    def test_result_travels_through_both_boundaries(self):
        """The value the UART saw crossed the Type II boundary (copro ->
        registers) and the Type I boundary (driver -> software)."""
        samples = [1, 2, 3, 4]
        expected = sum(c * x for c, x in zip(FIR_COEFFS, samples))
        result = build_and_run_mixed_system(samples)
        assert result.outputs["y"] == expected & 0xFFFFFFFF
        assert result.uart_bytes == [expected & 0xFFFFFFFF]

    def test_coprocessor_latency_is_the_synthesized_latency(self):
        result = build_and_run_mixed_system()
        assert result.hls.latency_ns > 0
        # the co-simulation must take at least the datapath latency
        assert result.simulated_ns >= result.hls.latency_ns

    def test_wrong_sample_count_rejected(self):
        with pytest.raises(ValueError):
            build_and_run_mixed_system([1, 2])

    def test_deterministic(self):
        a = build_and_run_mixed_system()
        b = build_and_run_mixed_system()
        assert a.outputs == b.outputs
        assert a.simulated_ns == b.simulated_ns

    def test_summary_text(self):
        result = build_and_run_mixed_system()
        text = result.summary()
        assert "Mixed" in text
        assert "matches" in text
