"""Tests for the criteria engine and the paper-example registry."""

import pytest

from repro.core.criteria import (
    Characterization,
    CriteriaError,
    Methodology,
    MethodologyRegistry,
    characterize,
    comparison_table,
)
from repro.core.examples import paper_examples, paper_registry
from repro.core.taxonomy import (
    DesignTask,
    InterfaceLevel,
    PartitionFactor,
    SystemType,
    classify_system,
)


def minimal(name="m", **kwargs):
    defaults = dict(
        system_type=SystemType.TYPE_II,
        tasks=frozenset({DesignTask.COSIMULATION}),
        cosim_levels=frozenset({InterfaceLevel.MESSAGE}),
    )
    defaults.update(kwargs)
    return Methodology(name=name, **defaults)


class TestCharacterize:
    def test_task_closure_applied(self):
        m = minimal(tasks={DesignTask.PARTITIONING}, cosim_levels=frozenset(),
                    partition_factors={PartitionFactor.PERFORMANCE})
        c = characterize(m)
        assert DesignTask.COSYNTHESIS in c.tasks
        assert DesignTask.CODESIGN in c.tasks

    def test_cosim_levels_require_cosimulation(self):
        m = minimal(tasks={DesignTask.COSYNTHESIS},
                    cosim_levels={InterfaceLevel.SIGNAL})
        with pytest.raises(CriteriaError):
            characterize(m)

    def test_partition_factors_require_partitioning(self):
        m = minimal(tasks={DesignTask.COSIMULATION},
                    partition_factors={PartitionFactor.COST})
        with pytest.raises(CriteriaError):
            characterize(m)

    def test_type_i_rejects_physical_factors(self):
        """Concurrency/communication only arise from physical
        partitioning (Section 3.3)."""
        m = minimal(
            system_type=SystemType.TYPE_I,
            tasks={DesignTask.PARTITIONING},
            cosim_levels=frozenset(),
            partition_factors={PartitionFactor.CONCURRENCY},
        )
        with pytest.raises(CriteriaError):
            characterize(m)

    def test_type_ii_accepts_physical_factors(self):
        m = minimal(
            tasks={DesignTask.PARTITIONING},
            cosim_levels=frozenset(),
            partition_factors={PartitionFactor.CONCURRENCY,
                               PartitionFactor.COMMUNICATION},
        )
        c = characterize(m)
        assert PartitionFactor.CONCURRENCY in c.partition_factors


class TestRegistry:
    def test_register_validates(self):
        registry = MethodologyRegistry()
        with pytest.raises(CriteriaError):
            registry.register(minimal(
                tasks={DesignTask.COSYNTHESIS},
                cosim_levels={InterfaceLevel.SIGNAL},
            ))
        assert len(registry) == 0

    def test_duplicate_rejected(self):
        registry = MethodologyRegistry()
        registry.register(minimal("a"))
        with pytest.raises(CriteriaError):
            registry.register(minimal("a"))

    def test_inhabitants_by_task(self):
        registry = paper_registry()
        # Figure 2: every activity subset is inhabited
        for task in DesignTask:
            assert registry.inhabitants(task), task


class TestPaperExamples:
    def test_six_examples(self):
        assert len(paper_examples()) == 6

    def test_classifier_rederives_paper_types(self):
        """E1: structural classification matches the paper's assertion
        for every Section 4 example."""
        for name, ex in paper_examples().items():
            derived = classify_system(ex.system_model)
            assert derived.system_type is ex.methodology.system_type, name

    def test_paper_type_split(self):
        examples = paper_examples()
        types = {
            name: ex.methodology.system_type
            for name, ex in examples.items()
        }
        assert types["embedded_micro"] is SystemType.TYPE_I
        assert types["asip"] is SystemType.TYPE_I
        assert types["coprocessor"] is SystemType.TYPE_II
        assert types["multithreaded_coprocessor"] is SystemType.TYPE_II

    def test_multithread_factors_all_but_modifiability(self):
        """[10] 'considers all the factors outlined in Section 3.3
        except for modifiability'."""
        ex = paper_examples()["multithreaded_coprocessor"]
        factors = ex.methodology.partition_factors
        assert PartitionFactor.MODIFIABILITY not in factors
        assert len(factors) == 5

    def test_chinook_does_no_partitioning(self):
        """[11] 'The Chinook system ... does no hardware/software
        partitioning.'"""
        ex = paper_examples()["embedded_micro"]
        c = characterize(ex.methodology)
        assert not c.addresses(DesignTask.PARTITIONING)
        assert c.addresses(DesignTask.COSIMULATION)

    def test_multiproc_synthesis_without_partitioning(self):
        """Section 4.2: 'an instance of hardware/software co-synthesis
        but not of hardware/software partitioning.'"""
        c = characterize(
            paper_examples()["heterogeneous_multiproc"].methodology
        )
        assert c.addresses(DesignTask.COSYNTHESIS)
        assert not c.addresses(DesignTask.PARTITIONING)

    def test_every_example_names_its_implementation(self):
        for name, ex in paper_examples().items():
            assert ex.methodology.implemented_by.startswith("repro."), name

    @pytest.mark.parametrize("name", sorted(paper_examples()))
    def test_demos_run(self, name):
        """The registry is executable: every example's demo builds and
        validates a working instance on this library."""
        ex = paper_examples()[name]
        assert ex.methodology.demo is not None
        result = ex.methodology.demo()
        assert result is not None


class TestComparisonTable:
    def test_table_contains_all_rows(self):
        table = comparison_table(paper_registry().all())
        for ex in paper_examples().values():
            assert ex.methodology.name in table

    def test_table_encodes_criteria(self):
        table = comparison_table(paper_registry().all())
        assert "II" in table
        assert "sim+syn+part" in table
        assert "message" in table
        assert "modifiability" in table
