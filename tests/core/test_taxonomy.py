"""Tests for the Type I / Type II taxonomy and vocabulary."""

import pytest

from repro.core.taxonomy import (
    Abstraction,
    ComponentModel,
    DesignTask,
    Domain,
    InterfaceLevel,
    PartitionFactor,
    SystemModel,
    SystemType,
    classify_system,
)


def comp(name, domain, level):
    return ComponentModel(name, domain, level)


HW, SW = Domain.HARDWARE, Domain.SOFTWARE


class TestClassification:
    def test_type_i_from_executes_relationship(self):
        model = SystemModel(
            components=[
                comp("cpu", HW, Abstraction.GATE),
                comp("app", SW, Abstraction.HLL),
            ],
            executes=[("cpu", "app")],
        )
        result = classify_system(model)
        assert result.system_type is SystemType.TYPE_I
        assert "executes" in result.rationale

    def test_type_ii_from_peer_communication(self):
        model = SystemModel(
            components=[
                comp("sw_behavior", SW, Abstraction.BEHAVIOR),
                comp("coproc", HW, Abstraction.BEHAVIOR),
            ],
            communicates=[("sw_behavior", "coproc")],
        )
        assert classify_system(model).system_type is SystemType.TYPE_II

    def test_mixed_when_both_boundaries_present(self):
        model = SystemModel(
            components=[
                comp("cpu", HW, Abstraction.GATE),
                comp("app", SW, Abstraction.BEHAVIOR),
                comp("coproc", HW, Abstraction.BEHAVIOR),
            ],
            executes=[("cpu", "app")],
            communicates=[("app", "coproc")],
        )
        assert classify_system(model).system_type is SystemType.MIXED

    def test_wide_abstraction_gap_is_not_type_ii(self):
        """Software at HLL talking to gate-level glue is not a peer
        boundary — that link carries no Type II evidence."""
        model = SystemModel(
            components=[
                comp("cpu", HW, Abstraction.GATE),
                comp("glue", HW, Abstraction.GATE),
                comp("app", SW, Abstraction.HLL),
            ],
            executes=[("cpu", "app")],
            communicates=[("glue", "app")],
        )
        assert classify_system(model).system_type is SystemType.TYPE_I

    def test_same_domain_links_ignored(self):
        model = SystemModel(
            components=[
                comp("cpu", HW, Abstraction.GATE),
                comp("glue", HW, Abstraction.GATE),
                comp("app", SW, Abstraction.HLL),
            ],
            executes=[("cpu", "app")],
            communicates=[("cpu", "glue")],
        )
        assert classify_system(model).system_type is SystemType.TYPE_I

    def test_no_boundary_rejected(self):
        model = SystemModel(
            components=[comp("a", HW, Abstraction.GATE),
                        comp("b", HW, Abstraction.GATE)],
            communicates=[("a", "b")],
        )
        with pytest.raises(ValueError):
            classify_system(model)

    def test_executes_direction_validated(self):
        model = SystemModel(
            components=[comp("app", SW, Abstraction.HLL),
                        comp("cpu", HW, Abstraction.GATE)],
            executes=[("app", "cpu")],  # wrong way round
        )
        with pytest.raises(ValueError):
            classify_system(model)

    def test_executes_must_cross_abstraction(self):
        model = SystemModel(
            components=[comp("cpu", HW, Abstraction.BEHAVIOR),
                        comp("app", SW, Abstraction.BEHAVIOR)],
            executes=[("cpu", "app")],
        )
        with pytest.raises(ValueError):
            classify_system(model)

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError):
            SystemModel(
                components=[comp("a", HW, Abstraction.GATE)],
                executes=[("a", "ghost")],
            )

    def test_duplicate_components_rejected(self):
        with pytest.raises(ValueError):
            SystemModel(components=[
                comp("a", HW, Abstraction.GATE),
                comp("a", SW, Abstraction.HLL),
            ])


class TestDesignTaskContainment:
    def test_partitioning_implies_cosynthesis_and_codesign(self):
        implied = DesignTask.PARTITIONING.implies()
        assert implied == {
            DesignTask.PARTITIONING,
            DesignTask.COSYNTHESIS,
            DesignTask.CODESIGN,
        }

    def test_cosimulation_implies_codesign_only(self):
        assert DesignTask.COSIMULATION.implies() == {
            DesignTask.COSIMULATION, DesignTask.CODESIGN,
        }

    def test_codesign_is_the_root(self):
        assert DesignTask.CODESIGN.parent is None
        assert DesignTask.CODESIGN.implies() == {DesignTask.CODESIGN}


class TestInterfaceLevels:
    def test_ladder_ordering(self):
        assert InterfaceLevel.SIGNAL < InterfaceLevel.REGISTER \
            < InterfaceLevel.BUS_TRANSACTION < InterfaceLevel.MESSAGE

    def test_performance_accuracy_guidance(self):
        assert InterfaceLevel.SIGNAL.accurate_for_performance
        assert not InterfaceLevel.MESSAGE.accurate_for_performance

    def test_descriptions_match_figure_3(self):
        assert "pins" in InterfaceLevel.SIGNAL.description
        assert "interrupts" in InterfaceLevel.REGISTER.description
        assert "send" in InterfaceLevel.MESSAGE.description


class TestPartitionFactors:
    def test_six_factors(self):
        assert len(PartitionFactor) == 6

    def test_type_ii_specific_factors(self):
        assert PartitionFactor.CONCURRENCY.type_ii_specific
        assert PartitionFactor.COMMUNICATION.type_ii_specific
        assert not PartitionFactor.MODIFIABILITY.type_ii_specific
