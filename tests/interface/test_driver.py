"""Unit tests for the generated driver and glue, clean and under fault.

These two modules previously had no dedicated tests — they were only
exercised end-to-end through the Chinook flow.  Here the register
read/write paths are pinned down directly, then re-checked with the
fault layer injecting bit-flips on both sides of the interface: into
the device register file behind the glue (``reg_flip``) and into the
CPU register carrying the driver's argument (``cpu_reg_flip``).
"""

import pytest

from repro.cosim.kernel import Simulator
from repro.fault import FaultSpec, System, arm_fault
from repro.interface.chinook import synthesize_interface
from repro.interface.driver import generate_driver
from repro.interface.glue import build_glue
from repro.interface.regmap import allocate_register_map
from repro.interface.spec import gpio_spec, timer_spec, uart_spec
from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa

ALL = [uart_spec(), timer_spec(), gpio_spec()]


# ----------------------------------------------------------------------
# glue units
# ----------------------------------------------------------------------
class TestGlue:
    def test_decoder_routes_every_mapped_register(self):
        regmap = allocate_register_map(ALL)
        glue = build_glue(regmap)
        for name, spec in regmap.devices.items():
            for reg in spec.registers:
                addr = regmap.address_of(name, reg.name)
                decoded = glue.decode(addr)
                assert decoded is not None
                dev, offset = decoded
                assert dev == name
                assert regmap.address_of(name, reg.name) == \
                    regmap.window_of(name)[0] + offset

    def test_unmapped_address_decodes_to_none(self):
        glue = build_glue(allocate_register_map(ALL))
        assert glue.decode(0x0) is None

    def test_irq_status_word_is_priority_encoded(self):
        glue = build_glue(allocate_register_map(ALL))
        assert glue.irq_lines  # at least the uart interrupts
        first = glue.irq_lines[0]
        assert glue.irq_status_word({first: True}) == 1
        assert glue.irq_status_word({}) == 0
        everything = {name: True for name in glue.irq_lines}
        assert glue.irq_status_word(everything) == \
            (1 << len(glue.irq_lines)) - 1

    def test_area_grows_with_device_count(self):
        small = build_glue(allocate_register_map([uart_spec()]))
        large = build_glue(allocate_register_map(ALL))
        assert 0 < small.area < large.area

    def test_netlist_mentions_every_device(self):
        glue = build_glue(allocate_register_map(ALL))
        text = glue.netlist_text()
        for entry in glue.decoder:
            assert f"{entry.device}_sel" in text


# ----------------------------------------------------------------------
# driver units
# ----------------------------------------------------------------------
class TestDriverCode:
    def test_routines_respect_access_modes(self):
        regmap = allocate_register_map(ALL)
        driver = generate_driver(regmap, build_glue(regmap))
        assert "read_uart_status" in driver.routines
        assert "write_uart_status" not in driver.routines
        with pytest.raises(KeyError, match="access mode"):
            driver.label_for("uart", "status", "write")

    def test_asm_assembles_and_covers_dispatch(self):
        regmap = allocate_register_map(ALL)
        glue = build_glue(regmap)
        driver = generate_driver(regmap, glue)
        program = assemble(driver.asm)
        assert program.size > 10
        assert "irq_dispatch" in driver.routines
        for name in glue.irq_lines:
            assert f"svc_{name}" in driver.routines

    def test_routine_addresses_match_regmap(self):
        regmap = allocate_register_map(ALL)
        driver = generate_driver(regmap, build_glue(regmap))
        addr = regmap.address_of("uart", "data")
        assert f"lw r2, {addr:#x}(r0)" in driver.asm
        assert f"sw r1, {addr:#x}(r0)" in driver.asm


# ----------------------------------------------------------------------
# deployed register paths, clean and under injected bit-flips
# ----------------------------------------------------------------------
class _RegFile:
    """A device model backed by a plain register list — exactly the
    ``.regs`` surface the ``reg_flip`` injector expects."""

    def __init__(self, n_registers: int = 4) -> None:
        self.regs = [0] * n_registers

    def model(self, offset: int, value: int, is_write: bool) -> int:
        if is_write:
            self.regs[offset] = value
            return 0
        return self.regs[offset]


def _deploy(main_asm):
    design = synthesize_interface(ALL)
    program = design.build_program(main_asm)
    memory = Memory()
    memory.load_image(program.image)
    cpu = Cpu(Isa(), memory, pc=program.entry)
    sim = Simulator()
    files = {d.name: _RegFile() for d in ALL}
    models = {name: rf.model for name, rf in files.items()}
    design.deploy(sim, cpu, models)
    return cpu, sim, files


MAIN = """
        li  r1, 0x21
        jal write_uart_data
        addi r4, r0, 60        ; burn deterministic time between the
burn:   addi r4, r4, -1        ; write and the read-back
        bne  r4, r0, burn
        jal read_uart_data
        sw  r2, 0x400(r0)
        halt
"""


class TestDeployedPaths:
    def test_clean_write_then_read_roundtrips(self):
        cpu, sim, files = _deploy(MAIN)
        sim.run(until=1e6)
        assert cpu.halted
        assert files["uart"].regs[0] == 0x21
        assert cpu.memory.ram[0x400] == 0x21

    def test_reg_flip_behind_the_glue_surfaces_on_read(self):
        # flip bit 4 of the uart data register while the CPU burns
        # time: the driver's read path must faithfully report the
        # corrupted hardware state
        cpu, sim, files = _deploy(MAIN)
        arm_fault(
            System(sim, devices={"uart": files["uart"]}),
            FaultSpec(kind="reg_flip", target="uart", index=0, bit=4,
                      time=600.0))
        sim.run(until=1e6)
        assert cpu.halted
        assert files["uart"].regs[0] == 0x21 ^ 0x10
        assert cpu.memory.ram[0x400] == 0x21 ^ 0x10

    def test_cpu_reg_flip_corrupts_the_written_value(self):
        # corrupt r1 (the driver's argument register) after the second
        # retired instruction — between `li r1` and the routine's `sw`
        cpu, sim, files = _deploy(MAIN)
        arm_fault(
            System(sim, cpu=cpu),
            FaultSpec(kind="cpu_reg_flip", target="cpu", index=1,
                      bit=2, count=2))
        sim.run(until=1e6)
        assert cpu.halted
        assert files["uart"].regs[0] == 0x21 ^ 0x04
        # the read-back then reports the corrupted store faithfully
        assert cpu.memory.ram[0x400] == 0x21 ^ 0x04

    def test_flip_after_readback_is_invisible_to_software(self):
        cpu, sim, files = _deploy(MAIN)
        arm_fault(
            System(sim, devices={"uart": files["uart"]}),
            FaultSpec(kind="reg_flip", target="uart", index=0, bit=4,
                      time=50_000.0))
        sim.run(until=1e6)
        assert cpu.halted
        assert cpu.memory.ram[0x400] == 0x21       # software saw clean
        assert files["uart"].regs[0] == 0x21 ^ 0x10  # hardware flipped
