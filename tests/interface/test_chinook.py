"""End-to-end Chinook flow tests: generated drivers executed against
generated glue under co-simulation (the Figure 4 scenario)."""

import pytest

from repro.cosim.kernel import Simulator
from repro.interface.chinook import synthesize_interface
from repro.interface.spec import gpio_spec, timer_spec, uart_spec
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa

ALL = [uart_spec(), timer_spec(), gpio_spec()]


def deployed(main_asm, models=None, devices=None):
    devices = devices if devices is not None else ALL
    design = synthesize_interface(devices)
    program = design.build_program(main_asm)
    isa = Isa()
    mem = Memory()
    mem.load_image(program.image)
    cpu = Cpu(isa, mem, pc=program.entry)
    sim = Simulator()
    stores = {d.name: {} for d in devices}

    def model_for(name):
        def model(offset, value, is_write):
            if is_write:
                stores[name][offset] = value
                return 0
            return stores[name].get(offset, 0)
        return model

    models = models or {d.name: model_for(d.name) for d in devices}
    backplane = design.deploy(sim, cpu, models)
    return design, cpu, sim, backplane, stores


class TestDriverGeneration:
    def test_driver_routines_cover_access_modes(self):
        design = synthesize_interface(ALL)
        assert "read_uart_data" in design.driver.routines
        assert "write_uart_data" in design.driver.routines
        assert "read_uart_status" in design.driver.routines
        assert "write_uart_status" not in design.driver.routines  # RO
        with pytest.raises(KeyError):
            design.driver.label_for("uart", "status", "write")

    def test_driver_assembles_standalone(self):
        from repro.isa.assembler import assemble

        design = synthesize_interface(ALL)
        program = assemble(design.driver.asm)
        assert program.size > 20

    def test_report_text(self):
        design = synthesize_interface(ALL)
        report = design.report()
        assert "devices" in report
        assert "UART_DATA" in report
        assert "decoder" in report


class TestDeployedAccess:
    def test_generated_driver_reaches_device_model(self):
        main = """
            li  r1, 0x5A
            jal write_uart_data
            jal read_uart_data
            sw  r2, 0x400(r0)
            halt
        """
        _design, cpu, sim, _bp, stores = deployed(main)
        sim.run(until=1e6)
        assert cpu.halted
        assert stores["uart"][0] == 0x5A
        assert cpu.memory.ram[0x400] == 0x5A

    def test_distinct_devices_do_not_alias(self):
        main = """
            li  r1, 11
            jal write_uart_ctrl
            li  r1, 22
            jal write_timer_ctrl
            li  r1, 33
            jal write_gpio_dout
            halt
        """
        design, cpu, sim, _bp, stores = deployed(main)
        sim.run(until=1e6)
        assert cpu.halted
        assert stores["uart"][design.devices[0].offset_of("ctrl")] == 11
        assert stores["timer"][timer_spec().offset_of("ctrl")] == 22
        assert stores["gpio"][gpio_spec().offset_of("dout")] == 33

    def test_wait_states_cost_time(self):
        fast_main = """
            jal read_gpio_din       ; 0 wait states
            halt
        """
        slow_main = """
            jal read_uart_data      ; 1 wait state
            halt
        """
        _d, _c, sim_fast, _b, _s = deployed(fast_main)
        sim_fast.run(until=1e6)
        _d, _c, sim_slow, _b, _s = deployed(slow_main)
        sim_slow.run(until=1e6)
        assert sim_slow.now > sim_fast.now

    def test_missing_model_rejected(self):
        design = synthesize_interface(ALL)
        sim = Simulator()
        cpu = Cpu(Isa(), Memory())
        with pytest.raises(KeyError):
            design.deploy(sim, cpu, models={})


class TestDeployedInterrupts:
    MAIN = """
            addi r1, r0, 0
        loop:
            addi r1, r1, 1
            addi r2, r0, 300
            bne  r1, r2, loop
            halt
    """

    def test_device_irq_reaches_generated_dispatch(self):
        design, cpu, sim, backplane, _stores = deployed(self.MAIN)

        def device():
            yield sim.timeout(400.0)
            backplane.raise_device_irq("timer")

        sim.process(device(), name="timer_hw")
        sim.run(until=1e7)
        assert cpu.halted
        # the generated dispatch bumped timer's counter
        timer_bit = design.glue.irq_lines.index("timer")
        counter = design.driver.irq_counter_base + timer_bit
        assert cpu.memory.ram.get(counter, 0) == 1

    def test_two_devices_both_serviced(self):
        design, cpu, sim, backplane, _stores = deployed(self.MAIN)

        def devices():
            yield sim.timeout(300.0)
            backplane.raise_device_irq("uart")
            backplane.raise_device_irq("timer")

        sim.process(devices(), name="hw")
        sim.run(until=1e7)
        assert cpu.halted
        for name in ("uart", "timer"):
            bit = design.glue.irq_lines.index(name)
            counter = design.driver.irq_counter_base + bit
            assert cpu.memory.ram.get(counter, 0) == 1, name

    def test_unknown_device_irq_rejected(self):
        _design, _cpu, _sim, backplane, _stores = deployed(self.MAIN)
        with pytest.raises(KeyError):
            backplane.raise_device_irq("ghost")

    def test_isr_preserves_interrupted_context(self):
        """Regression: the generated ISR must save/restore r2, r3, and
        ra — an interrupt landing between a load and its compare must
        not corrupt the interrupted loop."""
        main = """
                addi r1, r0, 0
            spin:
                lw   r2, 0x600(r0)      ; always 0 in RAM
                addi r3, r0, 1
                addi r1, r1, 1
                addi r4, r0, 500
                blt  r2, r3, next       ; r2(0) < r3(1): always taken
                halt                    ; reached only if r2/r3 corrupted
            next:
                bne  r1, r4, spin
                addi r5, r0, 777        ; clean exit marker
                halt
        """
        design, cpu, sim, backplane, _stores = deployed(main)

        def storm():
            for _ in range(20):
                yield sim.timeout(130.0)
                backplane.raise_device_irq("timer")
                backplane.raise_device_irq("uart")

        sim.process(storm(), name="storm")
        sim.run(until=1e7)
        assert cpu.halted
        assert cpu.get_reg(5) == 777, "ISR corrupted interrupted registers"
        assert cpu.irq_count >= 10
