"""Tests for device specs, register-map allocation, and glue logic."""

import pytest

from repro.interface.glue import build_glue
from repro.interface.regmap import RegmapError, allocate_register_map
from repro.interface.spec import (
    Access,
    DeviceSpec,
    RegisterSpec,
    gpio_spec,
    timer_spec,
    uart_spec,
)

ALL = [uart_spec(), timer_spec(), gpio_spec()]


class TestSpec:
    def test_size_rounds_to_power_of_two(self):
        assert uart_spec().size == 4    # 4 registers
        assert timer_spec().size == 4   # 3 registers -> 4
        dev = DeviceSpec("d", [RegisterSpec("a")])
        assert dev.size == 1

    def test_offsets_follow_declaration_order(self):
        uart = uart_spec()
        assert uart.offset_of("data") == 0
        assert uart.offset_of("baud") == 3
        with pytest.raises(KeyError):
            uart.offset_of("ghost")

    def test_access_modes(self):
        assert Access.RO.readable and not Access.RO.writable
        assert Access.WO.writable and not Access.WO.readable
        assert Access.RW.readable and Access.RW.writable

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad name", [RegisterSpec("a")])
        with pytest.raises(ValueError):
            DeviceSpec("dev", [])
        with pytest.raises(ValueError):
            DeviceSpec("dev", [RegisterSpec("a"), RegisterSpec("a")])
        with pytest.raises(ValueError):
            RegisterSpec("not valid")


class TestRegmap:
    def test_windows_are_aligned_and_disjoint(self):
        regmap = allocate_register_map(ALL)
        windows = [regmap.window_of(d.name) for d in ALL]
        for base, size in windows:
            assert base % size == 0
        spans = sorted((b, b + s) for b, s in windows)
        for (lo1, hi1), (lo2, hi2) in zip(spans, spans[1:]):
            assert hi1 <= lo2

    def test_addresses_inside_io_window(self):
        regmap = allocate_register_map(ALL, io_base=0x800, io_size=0x100)
        for symbol, addr in regmap.symbols().items():
            assert 0x800 <= addr < 0x900, symbol

    def test_address_of(self):
        regmap = allocate_register_map(ALL)
        base = regmap.bases["uart"]
        assert regmap.address_of("uart", "baud") == base + 3

    def test_window_overflow_rejected(self):
        with pytest.raises(RegmapError):
            allocate_register_map(ALL, io_size=4)

    def test_duplicate_devices_rejected(self):
        with pytest.raises(RegmapError):
            allocate_register_map([uart_spec(), uart_spec()])

    def test_symbols_table_complete(self):
        regmap = allocate_register_map(ALL)
        symbols = regmap.symbols()
        assert "UART_DATA" in symbols
        assert "TIMER_RELOAD" in symbols
        assert "GPIO_BASE" in symbols

    def test_deterministic_allocation(self):
        a = allocate_register_map(ALL)
        b = allocate_register_map([gpio_spec(), uart_spec(), timer_spec()])
        assert a.bases == b.bases


class TestGlue:
    def test_decoder_routes_every_register(self):
        regmap = allocate_register_map(ALL)
        glue = build_glue(regmap)
        for dev in ALL:
            for reg in dev.registers:
                addr = regmap.address_of(dev.name, reg.name)
                assert glue.decode(addr) == (
                    dev.name, dev.offset_of(reg.name)
                )

    def test_unmapped_address_decodes_to_none(self):
        regmap = allocate_register_map(ALL)
        glue = build_glue(regmap)
        assert glue.decode(0x10) is None
        assert glue.decode(regmap.end + 100) is None

    def test_irq_lines_only_for_interrupting_devices(self):
        glue = build_glue(allocate_register_map(ALL))
        assert set(glue.irq_lines) == {"uart", "timer"}

    def test_irq_status_word_encodes_priority_bits(self):
        glue = build_glue(allocate_register_map(ALL))
        word = glue.irq_status_word(
            {glue.irq_lines[0]: True, glue.irq_lines[1]: False}
        )
        assert word == 1
        word = glue.irq_status_word({n: True for n in glue.irq_lines})
        assert word == 0b11

    def test_area_grows_with_device_count(self):
        small = build_glue(allocate_register_map([gpio_spec()]))
        large = build_glue(allocate_register_map(ALL))
        assert large.area > small.area

    def test_wait_states_recorded(self):
        glue = build_glue(allocate_register_map(ALL))
        assert glue.wait_states["uart"] == 1
        assert glue.wait_states["gpio"] == 0

    def test_netlist_text_mentions_every_device(self):
        glue = build_glue(allocate_register_map(ALL))
        text = glue.netlist_text()
        for dev in ALL:
            assert dev.name in text
