"""Tests for heterogeneous multiprocessor co-synthesis (Figure 5)."""

import random

import pytest

from repro.cosynth import (
    Allocation,
    PeInstance,
    binpack_synthesis,
    ilp_synthesis,
    schedule_on,
    sensitivity_synthesis,
)
from repro.cosynth.multiproc.library import execution_time
from repro.estimate.communication import CommModel
from repro.estimate.software import Processor, default_processor_library
from repro.graph.generators import periodic_taskset
from repro.graph.taskgraph import Task, TaskGraph

LIB = default_processor_library()
SMALL_LIB = {k: LIB[k] for k in ("micro16", "r32", "dsp")}
NO_COMM = CommModel(sync_overhead_ns=0.0, word_time_ns=0.0)


def taskset(seed=5, n=10, utilization=1.5):
    return periodic_taskset(
        random.Random(seed), n_tasks=n, period=100.0,
        utilization=utilization,
    )


class TestExecutionTime:
    def test_wcet_override_wins(self):
        task = Task("t", sw_time=100.0, wcet={"dsp": 7.0})
        assert execution_time(task, LIB["dsp"]) == 7.0

    def test_scaling_by_throughput(self):
        task = Task("t", sw_time=100.0)
        assert execution_time(task, LIB["r32"]) == pytest.approx(100.0)
        assert execution_time(task, LIB["micro8"]) == pytest.approx(800.0)
        assert execution_time(task, LIB["dsp"]) == pytest.approx(32.0)


class TestAllocation:
    def test_of_counts(self):
        alloc = Allocation.of({"r32": 2, "dsp": 1}, LIB)
        assert len(alloc) == 3
        assert alloc.cost == pytest.approx(2 * 100 + 260)
        assert alloc.counts == {"r32": 2, "dsp": 1}

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Allocation.of({"r32": -1}, LIB)


class TestScheduler:
    def test_single_pe_serializes(self):
        g = taskset()
        alloc = Allocation.of({"r32": 1}, LIB)
        sched = schedule_on(g, alloc, NO_COMM)
        assert sched.makespan == pytest.approx(g.total_time("sw"))
        assert sched.utilization() == pytest.approx(1.0)

    def test_more_pes_never_slower(self):
        g = taskset()
        one = schedule_on(g, Allocation.of({"r32": 1}, LIB), NO_COMM)
        two = schedule_on(g, Allocation.of({"r32": 2}, LIB), NO_COMM)
        assert two.makespan <= one.makespan + 1e-9

    def test_comm_charged_between_pes_only(self):
        g = TaskGraph()
        g.add_task(Task("a", sw_time=10.0))
        g.add_task(Task("b", sw_time=10.0))
        g.add_edge("a", "b", 16.0)
        comm = CommModel(sync_overhead_ns=50.0, word_time_ns=1.0)
        one = schedule_on(g, Allocation.of({"r32": 1}, LIB), comm)
        assert one.comm_ns == 0.0
        pinned = schedule_on(
            g, Allocation.of({"r32": 2}, LIB), comm,
            mapping={"a": "r32#0", "b": "r32#1"},
        )
        assert pinned.comm_ns == pytest.approx(66.0)
        assert pinned.makespan == pytest.approx(10 + 66 + 10)

    def test_heft_avoids_needless_comm(self):
        """With huge comm costs, free scheduling keeps a chain on one PE."""
        g = TaskGraph()
        for n in "abc":
            g.add_task(Task(n, sw_time=10.0))
        g.add_edge("a", "b", 100.0)
        g.add_edge("b", "c", 100.0)
        comm = CommModel(sync_overhead_ns=100.0, word_time_ns=10.0)
        sched = schedule_on(g, Allocation.of({"r32": 3}, LIB), comm)
        assert len(set(sched.mapping.values())) == 1
        assert sched.comm_ns == 0.0

    def test_pinned_mapping_respected(self):
        g = taskset(n=6)
        alloc = Allocation.of({"r32": 2}, LIB)
        names = [pe.name for pe in alloc.instances]
        mapping = {
            t: names[i % 2] for i, t in enumerate(g.task_names)
        }
        sched = schedule_on(g, alloc, NO_COMM, mapping=mapping)
        assert sched.mapping == mapping

    def test_empty_allocation_rejected(self):
        with pytest.raises(ValueError):
            schedule_on(taskset(), Allocation([]), NO_COMM)


class TestSynthesizers:
    @pytest.mark.parametrize("seed", [5, 9, 13])
    def test_all_three_feasible_and_ilp_cheapest(self, seed):
        """The exact method must never be beaten on cost by heuristics
        evaluated under the same capacity model."""
        g = taskset(seed)
        ilp = ilp_synthesis(g, 100.0, SMALL_LIB, max_instances_per_type=2)
        bp = binpack_synthesis(g, 100.0, SMALL_LIB)
        sens = sensitivity_synthesis(g, 100.0, SMALL_LIB)
        assert ilp is not None and ilp.feasible
        assert bp is not None and bp.feasible
        assert sens is not None and sens.feasible
        assert ilp.cost <= bp.cost + 1e-9
        assert ilp.cost <= sens.cost + 1e-9

    def test_loose_deadline_buys_cheap_processors(self):
        """Figure 5's trade-off: relaxing the deadline lets every
        synthesizer move to cheaper allocations."""
        g = taskset(7)
        tight = binpack_synthesis(g, 80.0, LIB)
        loose = binpack_synthesis(g, 800.0, LIB)
        assert tight is not None and loose is not None
        assert loose.cost <= tight.cost
        tight_s = sensitivity_synthesis(g, 80.0, LIB)
        loose_s = sensitivity_synthesis(g, 800.0, LIB)
        assert loose_s.cost <= tight_s.cost

    def test_impossible_deadline_infeasible(self):
        g = taskset(5)
        assert binpack_synthesis(g, 0.5, LIB) is None
        assert sensitivity_synthesis(g, 0.5, LIB) is None
        assert ilp_synthesis(g, 0.5, SMALL_LIB) is None

    def test_binpack_respects_memory_dimension(self):
        """A task too big for a small processor's memory must not be
        packed onto it even if the time fits."""
        g = TaskGraph()
        g.add_task(Task("big", sw_time=5.0, sw_size=512.0))  # > micro8 mem
        tiny_lib = {"micro8": LIB["micro8"], "r32": LIB["r32"]}
        result = binpack_synthesis(g, 1000.0, tiny_lib)
        assert result is not None
        assert result.allocation.counts == {"r32": 1}

    def test_sensitivity_walks_cost_down(self):
        g = taskset(11, utilization=0.8)
        result = sensitivity_synthesis(g, 200.0, LIB)
        assert result is not None and result.feasible
        # with that much slack a single cheap processor should win over
        # the fastest-type starting point
        fastest_cost = max(p.cost for p in LIB.values())
        assert result.cost < fastest_cost

    def test_summary_text(self):
        g = taskset(5)
        result = binpack_synthesis(g, 100.0, LIB)
        assert "binpack" in result.summary()
        assert "meets" in result.summary()

    def test_deterministic(self):
        g1, g2 = taskset(5), taskset(5)
        a = sensitivity_synthesis(g1, 100.0, LIB)
        b = sensitivity_synthesis(g2, 100.0, LIB)
        assert a.allocation.counts == b.allocation.counts
        assert a.schedule.makespan == pytest.approx(b.schedule.makespan)
