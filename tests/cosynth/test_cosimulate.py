"""Tests for co-simulation validation of multiprocessor schedules."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cosynth import Allocation, binpack_synthesis, schedule_on
from repro.cosynth.multiproc.cosimulate import simulate_schedule
from repro.estimate.communication import CommModel, TIGHT
from repro.estimate.software import default_processor_library
from repro.graph.generators import periodic_taskset, random_layered_graph
from repro.graph.taskgraph import Task, TaskGraph

LIB = default_processor_library()
NO_COMM = CommModel(sync_overhead_ns=0.0, word_time_ns=0.0)


class TestBasics:
    def test_single_pe_serializes_exactly(self):
        graph = random_layered_graph(random.Random(2), n_tasks=8)
        alloc = Allocation.of({"r32": 1}, LIB)
        schedule = schedule_on(graph, alloc, NO_COMM)
        sim = simulate_schedule(graph, schedule, NO_COMM)
        assert sim.latency_ns == pytest.approx(graph.total_time("sw"))
        assert sim.messages == 0
        assert sim.agreement(schedule) == pytest.approx(1.0)

    def test_cross_pe_edges_become_messages(self):
        graph = TaskGraph()
        graph.add_task(Task("a", sw_time=10.0))
        graph.add_task(Task("b", sw_time=10.0))
        graph.add_edge("a", "b", 8.0)
        alloc = Allocation.of({"r32": 2}, LIB)
        comm = CommModel(sync_overhead_ns=5.0, word_time_ns=1.0)
        schedule = schedule_on(graph, alloc, comm,
                               mapping={"a": "r32#0", "b": "r32#1"})
        sim = simulate_schedule(graph, schedule, comm)
        assert sim.messages == 1
        assert sim.latency_ns == pytest.approx(10 + 13 + 10)
        assert sim.agreement(schedule) == pytest.approx(1.0)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6), n_pes=st.integers(1, 3))
    def test_simulation_agrees_with_scheduler(self, seed, n_pes):
        """The DES must land within 30% of the analytic makespan on
        arbitrary mappings (it shares the cost model, not the code)."""
        graph = random_layered_graph(random.Random(seed), n_tasks=9)
        alloc = Allocation.of({"r32": n_pes}, LIB)
        schedule = schedule_on(graph, alloc, TIGHT)
        sim = simulate_schedule(graph, schedule, TIGHT)
        assert 0.7 <= sim.agreement(schedule) <= 1.3

    def test_validates_synthesizer_output(self):
        """The Figure 2 nesting: co-synthesis results pass through
        co-simulation before being believed."""
        graph = periodic_taskset(random.Random(5), n_tasks=10,
                                 period=100.0, utilization=1.2)
        result = binpack_synthesis(graph, 100.0, LIB)
        assert result is not None
        sim = simulate_schedule(graph, result.schedule)
        # the simulated system must still meet the deadline (with a
        # modest tolerance for resource-ordering differences)
        assert sim.latency_ns <= result.deadline * 1.25
        assert len(sim.finish_times) == len(graph)


class TestTracedValidation:
    def test_tracer_captures_task_spans_and_pe_contention(self):
        from repro.cosim.trace import TASK, Tracer

        graph = random_layered_graph(random.Random(2), n_tasks=8)
        alloc = Allocation.of({"r32": 1}, LIB)
        schedule = schedule_on(graph, alloc, NO_COMM)
        tracer = Tracer()
        sim = simulate_schedule(graph, schedule, NO_COMM, tracer=tracer)
        spans = tracer.records_of(TASK)
        assert len(spans) == len(graph)
        # span end times match the measured finish times
        for r in spans:
            assert r.time + r.data["duration"] == pytest.approx(
                sim.finish_times[r.name]
            )
        # the serial PE shows up as a traced resource
        grants = tracer.metrics.counters["resource.r32#0.acquisitions"]
        assert grants.value == len(graph)
        assert sim.activations > 0
        assert sum(sim.pe_busy_ns.values()) == pytest.approx(
            graph.total_time("sw")
        )

    def test_untraced_run_matches_traced_run(self):
        from repro.cosim.trace import Tracer

        graph = random_layered_graph(random.Random(7), n_tasks=9)
        alloc = Allocation.of({"r32": 2}, LIB)
        schedule = schedule_on(graph, alloc, TIGHT)
        plain = simulate_schedule(graph, schedule, TIGHT)
        traced = simulate_schedule(graph, schedule, TIGHT,
                                   tracer=Tracer())
        assert plain.latency_ns == pytest.approx(traced.latency_ns)
        assert plain.activations == traced.activations
        assert plain.finish_times == traced.finish_times
