"""Tests for the Figure 9 multi-threaded co-processor flow."""

import random

import pytest

from repro.cosynth.multithread import (
    MultithreadDesign,
    communication_blind_partition,
    synthesize_multithreaded,
)
from repro.estimate.communication import TIGHT
from repro.graph.generators import fork_join_graph
from repro.graph.kernels import modem_taskgraph


def concurrent_graph(seed=3):
    """A fork-join workload with plenty of thread-level parallelism."""
    return fork_join_graph(
        random.Random(seed), n_branches=4, branch_len=2
    )


class TestSweep:
    def test_sweep_covers_requested_range(self):
        design = synthesize_multithreaded(concurrent_graph(), max_threads=4)
        assert [k for k, _c in design.sweep] == [1, 2, 3, 4]

    def test_concurrent_workload_prefers_multiple_threads(self):
        """Figure 9's premise: with parallel branches in hardware, more
        controllers buy latency."""
        design = synthesize_multithreaded(
            concurrent_graph(), max_threads=4
        )
        single = synthesize_multithreaded(
            concurrent_graph(), max_threads=1
        )
        assert design.latency_ns <= single.latency_ns
        assert design.threads >= 2

    def test_controller_overhead_charged(self):
        design = synthesize_multithreaded(concurrent_graph(), max_threads=3)
        if design.threads > 1:
            assert design.controller_area > 0
            assert design.total_hw_area > design.partition.evaluation.hw_area

    def test_bad_thread_count_rejected(self):
        with pytest.raises(ValueError):
            synthesize_multithreaded(concurrent_graph(), max_threads=0)

    def test_deterministic(self):
        a = synthesize_multithreaded(concurrent_graph(), max_threads=3)
        b = synthesize_multithreaded(concurrent_graph(), max_threads=3)
        assert a.threads == b.threads
        assert a.partition.hw_tasks == b.partition.hw_tasks


class TestThreadAssignment:
    def test_assignment_covers_hw_tasks(self):
        design = synthesize_multithreaded(concurrent_graph(), max_threads=3)
        clusters = design.hw_thread_assignment()
        flat = sorted(n for c in clusters for n in c)
        assert flat == sorted(design.partition.hw_tasks)
        assert len(clusters) <= design.threads

    def test_empty_hw_partition_empty_assignment(self):
        design = synthesize_multithreaded(
            modem_taskgraph(), hw_area_budget=0.0, max_threads=2
        )
        if not design.partition.hw_tasks:
            assert design.hw_thread_assignment() == []


class TestCommAwareness:
    def test_comm_aware_no_worse_than_blind(self):
        """E9's claim: the partitioner that sees communication and
        concurrency finds designs at least as good as one that cannot,
        when both are judged by the real evaluation."""
        graph = modem_taskgraph()
        aware = synthesize_multithreaded(
            graph, comm=TIGHT, max_threads=3
        )
        blind = communication_blind_partition(
            graph, comm=TIGHT, max_threads=3
        )
        # judged on actual latency + realized communication time
        aware_score = (aware.latency_ns, aware.partition.evaluation.comm_ns)
        blind_score = (blind.latency_ns, blind.partition.evaluation.comm_ns)
        assert aware_score <= blind_score

    def test_summary_text(self):
        design = synthesize_multithreaded(concurrent_graph(), max_threads=2)
        assert "k=" in design.summary()
