"""Tests for multi-rate periodic synthesis (the SOS problem form)."""

import random

import pytest

from repro.cosynth.multiproc.periodic import (
    PeriodicSpecError,
    hyperperiod,
    periodic_synthesis,
    unroll_hyperperiod,
    utilization,
)
from repro.estimate.communication import CommModel
from repro.estimate.software import default_processor_library
from repro.graph.taskgraph import Task, TaskGraph

LIB = default_processor_library()
NO_COMM = CommModel(sync_overhead_ns=0.0, word_time_ns=0.0)


def multirate_graph():
    """Three rates: 50/100/200 ns periods, hyperperiod 200."""
    g = TaskGraph("multirate")
    g.add_task(Task("fast", sw_time=10.0, period=50.0))
    g.add_task(Task("mid", sw_time=20.0, period=100.0))
    g.add_task(Task("slow", sw_time=40.0, period=200.0))
    g.add_edge("fast", "mid", 4.0)
    g.add_edge("mid", "slow", 4.0)
    return g


class TestHyperperiod:
    def test_lcm_of_periods(self):
        assert hyperperiod(multirate_graph()) == pytest.approx(200.0)

    def test_fractional_periods(self):
        g = TaskGraph()
        g.add_task(Task("a", sw_time=1.0, period=2.5))
        g.add_task(Task("b", sw_time=1.0, period=1.5))
        assert hyperperiod(g) == pytest.approx(7.5)

    def test_missing_period_rejected(self):
        g = TaskGraph()
        g.add_task(Task("a", sw_time=1.0))
        with pytest.raises(PeriodicSpecError):
            hyperperiod(g)


class TestUtilization:
    def test_utilization_formula(self):
        task = Task("t", sw_time=25.0, period=100.0)
        assert utilization(task, LIB["r32"]) == pytest.approx(0.25)
        assert utilization(task, LIB["micro8"]) == pytest.approx(2.0)

    def test_requires_period(self):
        with pytest.raises(PeriodicSpecError):
            utilization(Task("t", sw_time=1.0), LIB["r32"])


class TestUnrolling:
    def test_job_counts_match_rates(self):
        unrolled, H = unroll_hyperperiod(multirate_graph())
        assert H == pytest.approx(200.0)
        names = unrolled.task_names
        assert sum(n.startswith("fast@") for n in names) == 4
        assert sum(n.startswith("mid@") for n in names) == 2
        assert sum(n.startswith("slow@") for n in names) == 1

    def test_successive_jobs_serialized(self):
        unrolled, _h = unroll_hyperperiod(multirate_graph())
        assert unrolled.has_edge("fast@0", "fast@1")
        assert unrolled.has_edge("mid@0", "mid@1")

    def test_rate_crossing_edges_land_in_windows(self):
        unrolled, _h = unroll_hyperperiod(multirate_graph())
        # fast@2 releases at t=100, inside mid@1's window [100, 200)
        assert unrolled.has_edge("fast@2", "mid@1")
        assert unrolled.has_edge("fast@0", "mid@0")

    def test_job_deadlines_are_window_ends(self):
        unrolled, _h = unroll_hyperperiod(multirate_graph())
        assert unrolled.task("fast@0").deadline == pytest.approx(50.0)
        assert unrolled.task("fast@3").deadline == pytest.approx(200.0)

    def test_unrolled_graph_is_acyclic(self):
        unrolled, _h = unroll_hyperperiod(multirate_graph())
        unrolled.validate()


class TestPeriodicSynthesis:
    def test_finds_feasible_allocation(self):
        result = periodic_synthesis(multirate_graph(), LIB, NO_COMM)
        assert result is not None
        assert result.feasible
        # total utilization is 0.8 on the reference processor: one r32
        # class PE should suffice
        assert len(result.allocation) <= 2

    def test_infeasible_rates_return_none(self):
        g = TaskGraph()
        # demands 5x a dsp's throughput at its rate
        g.add_task(Task("hog", sw_time=100.0, period=10.0))
        assert periodic_synthesis(g, LIB, NO_COMM) is None

    def test_higher_load_costs_more(self):
        light = TaskGraph()
        heavy = TaskGraph()
        for i in range(4):
            light.add_task(Task(f"t{i}", sw_time=10.0, period=100.0))
            heavy.add_task(Task(f"t{i}", sw_time=60.0, period=100.0))
        cheap = periodic_synthesis(light, LIB, NO_COMM)
        costly = periodic_synthesis(heavy, LIB, NO_COMM)
        assert cheap is not None and costly is not None
        assert cheap.cost < costly.cost

    def test_bad_bound_rejected(self):
        with pytest.raises(PeriodicSpecError):
            periodic_synthesis(multirate_graph(), LIB, NO_COMM,
                               u_bound=0.0)

    def test_summary_text(self):
        result = periodic_synthesis(multirate_graph(), LIB, NO_COMM)
        assert "hyperperiod" in result.summary()
        assert "utilization" in result.summary()
