"""Tests for the Figure 8 co-processor synthesis flow."""

import pytest

from repro.cosynth.coprocessor import (
    characterize_behavior,
    synthesize_coprocessor,
)
from repro.graph import kernels


def behavior_set():
    return {
        "dct": kernels.dct4(),
        "fir": kernels.fir(8),
        "crc": kernels.crc_step(),
    }


DATAFLOW = [("fir", "dct", 8.0), ("dct", "crc", 4.0)]


class TestCharacterization:
    def test_task_fields_come_from_real_implementations(self):
        impl = characterize_behavior("fir", kernels.fir(8))
        assert impl.task.sw_time > impl.task.hw_time  # HW wins on DSP code
        assert impl.task.hw_area == impl.hls.area
        assert impl.task.sw_size == impl.software.code_size

    def test_parallel_kernel_scores_high_parallelism(self):
        fir = characterize_behavior("fir", kernels.fir(8))
        crc = characterize_behavior("crc", kernels.crc_step())
        assert fir.task.parallelism > crc.task.parallelism

    def test_verify_checks_three_implementations(self):
        impl = characterize_behavior("dct", kernels.dct4())
        inputs = {op.name: i + 1 for i, op in enumerate(impl.cdfg.inputs())}
        assert impl.verify(inputs)


class TestFlow:
    def test_flow_produces_working_design(self):
        design = synthesize_coprocessor(
            behavior_set(), DATAFLOW, deadline_ns=2000.0
        )
        assert set(design.hw_behaviors) | set(design.sw_behaviors) == \
            set(behavior_set())
        assert design.verify_all()

    def test_hw_gets_the_dsp_kernels_not_the_crc(self):
        """Nature of computation: with the nature factor weighted up, the
        parallel FIR belongs in hardware and the serial bit-twiddling CRC
        stays in software (its dependence chain wastes a datapath)."""
        from repro.partition.cost import CostWeights

        design = synthesize_coprocessor(
            behavior_set(), DATAFLOW,
            algorithm="greedy",
            weights=CostWeights(nature=5.0),
        )
        assert "fir" in design.hw_behaviors
        assert "crc" in design.sw_behaviors

    def test_speedup_over_all_software(self):
        design = synthesize_coprocessor(
            behavior_set(), DATAFLOW, deadline_ns=1200.0
        )
        assert design.speedup_vs_all_software() > 1.0

    def test_area_budget_respected(self):
        design = synthesize_coprocessor(
            behavior_set(), DATAFLOW, hw_area_budget=10.0,
            algorithm="cosyma",
        )
        assert design.coprocessor_area <= 10.0
        assert design.hw_behaviors == []

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            synthesize_coprocessor(behavior_set(), algorithm="magic")

    def test_summary_text(self):
        design = synthesize_coprocessor(behavior_set(), DATAFLOW)
        text = design.summary()
        assert "HW=" in text and "speedup" in text
