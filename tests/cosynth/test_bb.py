"""Tests for the 0/1 branch-and-bound ILP solver, cross-validated
against scipy's HiGHS MILP solver on random instances."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cosynth.multiproc.bb import (
    IlpError,
    ZeroOneProblem,
    solve_binary,
)


class TestBasics:
    def test_trivial_minimum(self):
        # min x0 + 2 x1 s.t. x0 + x1 >= 1  (as -x0 - x1 <= -1)
        problem = ZeroOneProblem(
            c=[1.0, 2.0],
            a_ub=[[-1.0, -1.0]],
            b_ub=[-1.0],
        )
        sol = solve_binary(problem)
        assert sol.value == pytest.approx(1.0)
        assert list(sol.x) == [1.0, 0.0]

    def test_equality_constraint(self):
        # exactly one of three, minimize cost
        problem = ZeroOneProblem(
            c=[5.0, 3.0, 4.0],
            a_eq=[[1.0, 1.0, 1.0]],
            b_eq=[1.0],
        )
        sol = solve_binary(problem)
        assert sol.value == pytest.approx(3.0)

    def test_infeasible_returns_none(self):
        problem = ZeroOneProblem(
            c=[1.0],
            a_eq=[[1.0]],
            b_eq=[2.0],  # x must equal 2: impossible for binary
        )
        assert solve_binary(problem) is None

    def test_knapsack(self):
        # max value <=> min -value, weight <= 5
        values = [6.0, 10.0, 12.0]
        weights = [1.0, 2.0, 3.0]
        problem = ZeroOneProblem(
            c=[-v for v in values],
            a_ub=[weights],
            b_ub=[5.0],
        )
        sol = solve_binary(problem)
        assert sol.value == pytest.approx(-22.0)  # items 1 + 2

    def test_node_budget_enforced(self):
        # root LP is fractional (sum x <= 2.5), so branching is required
        problem = ZeroOneProblem(
            c=[-1.0, -1.0, -1.0],
            a_ub=[[1.0, 1.0, 1.0]],
            b_ub=[2.5],
        )
        with pytest.raises(IlpError):
            solve_binary(problem, max_nodes=1)


class TestAgainstHighs:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_matches_scipy_milp_on_random_set_partition(self, seed):
        """Random small set-partition-with-knapsack instances: our B&B
        must find the same optimal value as HiGHS."""
        from scipy.optimize import Bounds, LinearConstraint, milp

        rng = np.random.RandomState(seed)
        n_items, n_bins = 5, 3
        n = n_items * n_bins
        cost = rng.randint(1, 10, size=n).astype(float)
        # each item in exactly one bin
        a_eq = np.zeros((n_items, n))
        for i in range(n_items):
            a_eq[i, i * n_bins:(i + 1) * n_bins] = 1.0
        b_eq = np.ones(n_items)
        # each bin holds at most 2 items
        a_ub = np.zeros((n_bins, n))
        for b in range(n_bins):
            a_ub[b, b::n_bins] = 1.0
        b_ub = np.full(n_bins, 2.0)

        ours = solve_binary(ZeroOneProblem(
            c=cost, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq
        ))
        ref = milp(
            c=cost,
            constraints=[
                LinearConstraint(a_eq, b_eq, b_eq),
                LinearConstraint(a_ub, -np.inf, b_ub),
            ],
            integrality=np.ones(n),
            bounds=Bounds(0, 1),
        )
        if ref.status == 0:
            assert ours is not None
            assert ours.value == pytest.approx(ref.fun, abs=1e-6)
        else:
            assert ours is None

    def test_branch_priority_changes_search_not_answer(self):
        problem_args = dict(
            c=[3.0, 2.0, 4.0, 1.0],
            a_ub=[[-1.0, -1.0, -1.0, -1.0]],
            b_ub=[-2.0],
        )
        plain = solve_binary(ZeroOneProblem(**problem_args))
        biased = solve_binary(ZeroOneProblem(
            **problem_args, branch_priority=[5.0, 0.0, 0.0, 5.0]
        ))
        assert plain.value == pytest.approx(biased.value)
