"""Tests for signals, clocks, and tracing."""

import pytest

from repro.cosim.kernel import Simulator
from repro.cosim.signals import Clock, Signal, Trace


class TestSignal:
    def test_set_changes_value_and_fires(self):
        sim = Simulator()
        sig = Signal(sim, "s", init=0)
        got = []

        def watcher():
            v = yield sig.changed
            got.append((v, sim.now))

        def driver():
            yield sim.timeout(3.0)
            sig.set(7)

        sim.process(watcher())
        sim.process(driver())
        sim.run()
        assert sig.value == 7
        assert got == [(7, 3.0)]

    def test_set_same_value_does_not_fire(self):
        sim = Simulator()
        sig = Signal(sim, "s", init=5)
        fired = []

        def watcher():
            yield sig.changed
            fired.append(sim.now)

        def driver():
            yield sim.timeout(1.0)
            sig.set(5)  # no-op
            yield sim.timeout(1.0)
            sig.set(6)

        sim.process(watcher())
        sim.process(driver())
        sim.run()
        assert fired == [2.0]

    def test_wait_for_returns_immediately_when_satisfied(self):
        sim = Simulator()
        sig = Signal(sim, "s", init=3)
        log = []

        def proc():
            yield from sig.wait_for(3)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [0.0]

    def test_wait_for_skips_intermediate_values(self):
        sim = Simulator()
        sig = Signal(sim, "s", init=0)
        log = []

        def proc():
            yield from sig.wait_for(9)
            log.append(sim.now)

        def driver():
            for i, v in enumerate((1, 5, 9), start=1):
                yield sim.timeout(1.0)
                sig.set(v)

        sim.process(proc())
        sim.process(driver())
        sim.run()
        assert log == [3.0]

    def test_edges(self):
        sim = Simulator()
        sig = Signal(sim, "s", init=0)
        log = []

        def rise():
            yield from sig.rising_edge()
            log.append(("rise", sim.now))

        def fall():
            yield from sig.falling_edge()
            log.append(("fall", sim.now))

        def driver():
            yield sim.timeout(1.0)
            sig.set(1)
            yield sim.timeout(1.0)
            sig.set(0)

        sim.process(rise())
        sim.process(fall())
        sim.process(driver())
        sim.run()
        assert ("rise", 1.0) in log and ("fall", 2.0) in log


class TestClock:
    def test_clock_toggles_with_period(self):
        sim = Simulator()
        trace = Trace()
        Clock(sim, period=10.0, until=35.0, trace=trace)
        sim.run(until=50.0)
        changes = trace.changes("clk")
        # init 0 at t=0, then 1@0, 0@5, 1@10, 0@15, 1@20, 0@25, 1@30, 0@35
        values = [v for _t, v in changes]
        assert values[:3] == [0, 1, 0]
        times = [t for t, _v in changes[1:]]
        assert times == pytest.approx([0, 5, 10, 15, 20, 25, 30, 35])

    def test_clock_rejects_bad_period(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Clock(sim, period=0.0)

    def test_cycle_count(self):
        sim = Simulator()
        clk = Clock(sim, period=2.0, until=19.0)
        sim.run(until=100.0)
        assert clk.cycles == 10


class TestTrace:
    def test_value_at_reconstruction(self):
        trace = Trace()
        trace.record(0.0, "x", 1)
        trace.record(5.0, "x", 2)
        trace.record(9.0, "x", 3)
        assert trace.value_at("x", 0.0) == 1
        assert trace.value_at("x", 4.9) == 1
        assert trace.value_at("x", 5.0) == 2
        assert trace.value_at("x", 100.0) == 3
        assert trace.value_at("y", 1.0) is None

    def test_edge_count_excludes_initial(self):
        trace = Trace()
        trace.record(0.0, "x", 0)
        trace.record(1.0, "x", 1)
        trace.record(2.0, "x", 0)
        assert trace.edge_count("x") == 2
        assert trace.edge_count("ghost") == 0

    def test_signals_in_first_appearance_order(self):
        trace = Trace()
        trace.record(0.0, "b", 0)
        trace.record(0.0, "a", 0)
        trace.record(1.0, "b", 1)
        assert trace.signals() == ["b", "a"]

    def test_dump_contains_all_changes(self):
        trace = Trace()
        trace.record(0.0, "x", 1)
        trace.record(2.5, "y", 3)
        dump = trace.dump_vcd_like()
        assert "#0.000 x = 1" in dump
        assert "#2.500 y = 3" in dump
