"""Tests for the metrics layer: counters, histograms, registry."""

import json

import pytest

from repro.cosim.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5


class TestHistogram:
    def test_tracks_count_sum_min_max_mean(self):
        h = Histogram("lat")
        for v in (1.0, 3.0, 8.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(12.0)
        assert h.min == pytest.approx(1.0)
        assert h.max == pytest.approx(8.0)
        assert h.mean == pytest.approx(4.0)

    def test_empty_histogram_is_safe(self):
        h = Histogram("lat")
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        d = h.to_dict()
        assert d["count"] == 0
        assert d["min"] == 0.0

    def test_bucketing_with_custom_bounds(self):
        h = Histogram("lat", bounds=[10.0, 100.0])
        for v in (5.0, 10.0, 50.0, 500.0):
            h.observe(v)
        # buckets: <=10, <=100, >100
        assert h.buckets == [2, 1, 1]

    def test_default_bounds_are_powers_of_two(self):
        h = Histogram("lat")
        h.observe(3.0)  # lands in the le_4 bucket
        assert h.to_dict()["buckets"] == {"le_4": 1}

    def test_quantile_is_monotone_and_bounded(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        q50, q90, q99 = h.quantile(0.5), h.quantile(0.9), h.quantile(0.99)
        assert q50 <= q90 <= q99 <= h.max

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)


class TestMetricsRegistry:
    def test_get_or_create_semantics(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.histogram("h") is m.histogram("h")
        m.counter("a").inc()
        assert m.counters["a"].value == 1

    def test_to_dict_is_json_serializable(self):
        m = MetricsRegistry()
        m.counter("events").inc(7)
        m.histogram("wait").observe(2.5)
        doc = json.loads(json.dumps(m.to_dict()))
        assert doc["counters"]["events"] == 7
        assert doc["histograms"]["wait"]["count"] == 1

    def test_summary_table_lists_every_metric(self):
        m = MetricsRegistry()
        m.counter("process.cpu.activations").inc(3)
        m.histogram("process.cpu.wait_ns").observe(10.0)
        table = m.summary_table()
        assert "process.cpu.activations" in table
        assert "process.cpu.wait_ns" in table
        assert "counters:" in table and "histograms:" in table

    def test_empty_registry_summary(self):
        assert "no metrics" in MetricsRegistry().summary_table()
