"""Tests for the metrics layer: counters, histograms, registry."""

import json

import pytest

from repro.cosim.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5


class TestHistogram:
    def test_tracks_count_sum_min_max_mean(self):
        h = Histogram("lat")
        for v in (1.0, 3.0, 8.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(12.0)
        assert h.min == pytest.approx(1.0)
        assert h.max == pytest.approx(8.0)
        assert h.mean == pytest.approx(4.0)

    def test_empty_histogram_is_safe(self):
        h = Histogram("lat")
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        d = h.to_dict()
        assert d["count"] == 0
        assert d["min"] == 0.0

    def test_bucketing_with_custom_bounds(self):
        h = Histogram("lat", bounds=[10.0, 100.0])
        for v in (5.0, 10.0, 50.0, 500.0):
            h.observe(v)
        # buckets: <=10, <=100, >100
        assert h.buckets == [2, 1, 1]

    def test_default_bounds_are_powers_of_two(self):
        h = Histogram("lat")
        h.observe(3.0)  # lands in the le_4 bucket
        assert h.to_dict()["buckets"] == {"le_4": 1}

    def test_quantile_is_monotone_and_bounded(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        q50, q90, q99 = h.quantile(0.5), h.quantile(0.9), h.quantile(0.99)
        assert q50 <= q90 <= q99 <= h.max

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)


class TestMetricsRegistry:
    def test_get_or_create_semantics(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.histogram("h") is m.histogram("h")
        m.counter("a").inc()
        assert m.counters["a"].value == 1

    def test_to_dict_is_json_serializable(self):
        m = MetricsRegistry()
        m.counter("events").inc(7)
        m.histogram("wait").observe(2.5)
        doc = json.loads(json.dumps(m.to_dict()))
        assert doc["counters"]["events"] == 7
        assert doc["histograms"]["wait"]["count"] == 1

    def test_summary_table_lists_every_metric(self):
        m = MetricsRegistry()
        m.counter("process.cpu.activations").inc(3)
        m.histogram("process.cpu.wait_ns").observe(10.0)
        table = m.summary_table()
        assert "process.cpu.activations" in table
        assert "process.cpu.wait_ns" in table
        assert "counters:" in table and "histograms:" in table

    def test_empty_registry_summary(self):
        assert "no metrics" in MetricsRegistry().summary_table()


class TestSnapshotMerge:
    """snapshot()/merge() as a standalone API: take a delta in one
    registry, ship it as JSON, fold it into another."""

    def loaded_registry(self):
        m = MetricsRegistry()
        m.counter("cells").inc(3)
        m.counter("moves").inc(40)
        h = m.histogram("wait", bounds=[1.0, 10.0])
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        return m

    def test_snapshot_is_lossless_and_json_serializable(self):
        m = self.loaded_registry()
        snap = json.loads(json.dumps(m.snapshot()))
        assert snap["counters"] == {"cells": 3, "moves": 40}
        h = snap["histograms"]["wait"]
        assert h["bounds"] == [1.0, 10.0]
        assert h["buckets"] == [1, 1, 1]  # every bucket, not just nonzero
        assert h["count"] == 3
        assert h["total"] == pytest.approx(55.5)
        assert h["min"] == pytest.approx(0.5)
        assert h["max"] == pytest.approx(50.0)

    def test_merge_into_empty_registry_reproduces_state(self):
        source = self.loaded_registry()
        target = MetricsRegistry()
        target.merge(json.loads(json.dumps(source.snapshot())))
        assert target.snapshot() == source.snapshot()

    def test_merge_adds_counters_and_buckets(self):
        a = self.loaded_registry()
        b = self.loaded_registry()
        b.counter("extra").inc()
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"cells": 6, "moves": 80, "extra": 1}
        h = snap["histograms"]["wait"]
        assert h["buckets"] == [2, 2, 2]
        assert h["count"] == 6
        assert h["min"] == pytest.approx(0.5)
        assert h["max"] == pytest.approx(50.0)

    def test_merge_order_does_not_matter(self):
        deltas = []
        for seed in (1, 2, 3):
            m = MetricsRegistry()
            m.counter("n").inc(seed)
            m.histogram("h").observe(float(seed))
            deltas.append(m.snapshot())
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for d in deltas:
            fwd.merge(d)
        for d in reversed(deltas):
            rev.merge(d)
        assert fwd.snapshot() == rev.snapshot()

    def test_histogram_merge_rejects_mismatched_bounds(self):
        a = Histogram("h", bounds=[1.0, 2.0])
        b = Histogram("h", bounds=[10.0])
        with pytest.raises(ValueError, match="bounds"):
            a.merge_snapshot(b.snapshot())

    def test_registry_merge_creates_histogram_with_snapshot_bounds(self):
        source = MetricsRegistry()
        source.histogram("lat", bounds=[5.0, 25.0]).observe(7.0)
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.histograms["lat"].bounds == [5.0, 25.0]
        assert target.histograms["lat"].count == 1

    def test_empty_snapshot_merge_is_a_no_op(self):
        m = self.loaded_registry()
        before = m.snapshot()
        m.merge(MetricsRegistry().snapshot())
        m.merge({})
        assert m.snapshot() == before

    def test_merged_empty_histogram_does_not_clobber_min_max(self):
        a = Histogram("h")
        a.observe(4.0)
        b = Histogram("h")  # count 0: min/max are sentinels
        a.merge_snapshot(b.snapshot())
        assert a.count == 1
        assert a.min == pytest.approx(4.0)
        assert a.max == pytest.approx(4.0)
