"""Backplane tests: the CPU coupled to hardware at all four levels."""

import pytest

from repro.cosim.backplane import (
    Backplane,
    MessageAdapter,
    PinLevelAdapter,
    RegisterAdapter,
    TransactionAdapter,
)
from repro.cosim.bus import SystemBus
from repro.cosim.kernel import SimulationError, Simulator
from repro.cosim.msglevel import Channel
from repro.cosim.pinlevel import (
    PinBus,
    PinBusMaster,
    PinBusSlave,
    run_until_complete,
)
from repro.cosim.signals import Clock
from repro.cosim.translevel import RegisterDevice
from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa

LOOPBACK_PROGRAM = """
    li  r1, 5
    sw  r1, 0x800(r0)
    lw  r2, 0x800(r0)
    sw  r2, 0x400(r0)      ; result to plain RAM for checking
    halt
"""


def make_cpu(text):
    isa = Isa()
    prog = assemble(text, isa)
    mem = Memory()
    mem.load_image(prog.image)
    return Cpu(isa, mem)


def run_backplane(adapter_factory, program=LOOPBACK_PROGRAM):
    sim = Simulator()
    cpu = make_cpu(program)
    bp = Backplane(sim, cpu, clock_period=10.0)
    adapter = adapter_factory(sim)
    bp.mount(0x800, 16, adapter)
    proc = bp.start()
    run_until_complete(sim, [proc], limit=1e7)
    assert cpu.halted, "CPU did not halt"
    return sim, cpu, bp


def register_factory(sim):
    return RegisterAdapter(RegisterDevice(sim, "dev", 16, access_time=2.0))


def transaction_factory(sim):
    bus = SystemBus(sim, arbitration_time=1.0, setup_time=1.0, word_time=2.0)
    store = [0] * 16

    def ram(offset, value, is_write):
        if is_write:
            store[offset] = value
            return 0
        return store[offset]

    bus.attach_slave("ram", 0x800, 16, ram)
    return TransactionAdapter(bus, 0x800)


def pin_factory(sim):
    clk = Clock(sim, period=10.0)
    bus = PinBus(sim, clk)
    store = [0] * 16

    def ram(offset, value, is_write):
        if is_write:
            store[offset] = value
            return 0
        return store[offset]

    PinBusSlave(bus, "ram", base=0x800, size=16, handler=ram)
    return PinLevelAdapter(PinBusMaster(bus), base=0x800)


LEVELS = {
    "register": register_factory,
    "transaction": transaction_factory,
    "pin": pin_factory,
}


class TestFunctionalEquivalence:
    """E12: functional verification works at every abstraction level."""

    @pytest.mark.parametrize("level", sorted(LEVELS))
    def test_loopback_result_identical(self, level):
        _sim, cpu, _bp = run_backplane(LEVELS[level])
        assert cpu.memory.ram[0x400] == 5
        assert cpu.get_reg(2) == 5


class TestTimingLadder:
    """Figure 3: lower levels cost more time and more events."""

    def collect(self):
        stats = {}
        for level, factory in LEVELS.items():
            sim, cpu, bp = run_backplane(factory)
            stats[level] = (sim.now, sim.activations, bp.stall_time)
        return stats

    def test_pin_level_slowest_and_most_events(self):
        stats = self.collect()
        assert stats["pin"][0] > stats["transaction"][0]
        assert stats["pin"][1] > stats["transaction"][1]
        assert stats["pin"][1] > stats["register"][1]

    def test_stall_time_reflects_interface_cost(self):
        stats = self.collect()
        assert stats["pin"][2] > stats["transaction"][2] > 0
        assert stats["register"][2] > 0


class TestMessageLevel:
    def test_send_receive_with_echo_hardware(self):
        program = """
            li  r1, 10
            sw  r1, 0x900(r0)   ; send to HW
            lw  r2, 0x900(r0)   ; receive from HW
            sw  r2, 0x400(r0)
            halt
        """
        sim = Simulator()
        cpu = make_cpu(program)
        bp = Backplane(sim, cpu, clock_period=10.0)
        to_hw = Channel(sim, "to_hw")
        from_hw = Channel(sim, "from_hw")
        bp.mount(0x900, 4, MessageAdapter(to_hw=to_hw, from_hw=from_hw))

        def hardware():
            item = yield from to_hw.receive()
            yield from from_hw.send(item * 3)

        sim.process(hardware(), name="hw")
        bp.start()
        sim.run(until=1e6)
        assert cpu.halted
        assert cpu.memory.ram[0x400] == 30

    def test_write_to_receive_only_window_faults(self):
        sim = Simulator()
        cpu = make_cpu("sw r1, 0x900(r0)\nhalt")
        bp = Backplane(sim, cpu)
        bp.mount(0x900, 4, MessageAdapter(from_hw=Channel(sim, "c")))
        bp.start()
        with pytest.raises(SimulationError):
            sim.run(until=1e6)

    def test_adapter_requires_a_channel(self):
        with pytest.raises(ValueError):
            MessageAdapter()


class TestBackplaneMechanics:
    def test_unmounted_external_access_faults(self):
        sim = Simulator()
        cpu = make_cpu("sw r1, 0x800(r0)\nhalt")
        cpu.memory.add_region("ext", 0x800, 4, external=True)
        bp = Backplane(sim, cpu)
        bp.start()
        with pytest.raises(SimulationError):
            sim.run(until=1e6)

    def test_double_start_rejected(self):
        sim = Simulator()
        cpu = make_cpu("halt")
        bp = Backplane(sim, cpu)
        bp.start()
        with pytest.raises(SimulationError):
            bp.start()

    def test_bad_batch_size_rejected(self):
        sim = Simulator()
        cpu = make_cpu("halt")
        with pytest.raises(ValueError):
            Backplane(sim, cpu, batch_instructions=0)

    def test_batching_preserves_functionality(self):
        results = []
        for batch in (1, 16):
            sim = Simulator()
            cpu = make_cpu(LOOPBACK_PROGRAM)
            bp = Backplane(sim, cpu, clock_period=10.0,
                           batch_instructions=batch)
            bp.mount(0x800, 16, register_factory(sim))
            bp.start()
            sim.run(until=1e6)
            results.append((cpu.memory.ram[0x400], cpu.cycle_count))
        assert results[0][0] == results[1][0] == 5

    def test_batching_reduces_activations(self):
        counts = []
        program = "\n".join(["addi r1, r1, 1"] * 100) + "\nhalt"
        for batch in (1, 32):
            sim = Simulator()
            cpu = make_cpu(program)
            bp = Backplane(sim, cpu, batch_instructions=batch)
            bp.start()
            sim.run(until=1e7)
            counts.append(sim.activations)
        assert counts[1] < counts[0] / 4

    def test_cpu_cycles_include_interface_stalls(self):
        def slow_register_factory(sim):
            return RegisterAdapter(
                RegisterDevice(sim, "dev", 16, access_time=50.0)
            )

        _sim, cpu_reg, _bp = run_backplane(slow_register_factory)
        # pure-software run of the same program with the window as RAM
        cpu_sw = make_cpu(LOOPBACK_PROGRAM)
        cpu_sw.run()
        assert cpu_reg.cycle_count > cpu_sw.cycle_count

    def test_external_access_counter(self):
        _sim, _cpu, bp = run_backplane(register_factory)
        assert bp.external_accesses == 2  # one sw + one lw


class TestInterruptCoupling:
    def test_device_interrupt_reaches_handler(self):
        program = """
                addi r1, r0, 0
            loop:
                addi r1, r1, 1
                addi r2, r0, 200
                bne  r1, r2, loop
                halt
            .org 0x40
            handler:
                addi r5, r5, 1
                reti
        """
        sim = Simulator()
        cpu = make_cpu(program)
        bp = Backplane(sim, cpu, clock_period=10.0)

        def device():
            yield sim.timeout(500.0)
            bp.irq()

        sim.process(device(), name="device")
        bp.start()
        sim.run(until=1e6)
        assert cpu.halted
        assert cpu.get_reg(5) == 1
        assert cpu.irq_count == 1
