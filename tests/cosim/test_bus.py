"""Tests for the transaction-level system bus."""

import pytest

from repro.cosim.bus import SystemBus
from repro.cosim.kernel import SimulationError, Simulator


def make_ram(size=64):
    store = [0] * size

    def handler(offset, value, is_write):
        if is_write:
            store[offset] = value
            return 0
        return store[offset]

    return store, handler


class TestAddressDecode:
    def test_attach_and_decode(self):
        sim = Simulator()
        bus = SystemBus(sim)
        _store, ram = make_ram()
        bus.attach_slave("ram", 0x100, 64, ram)
        assert bus.decode(0x100).name == "ram"
        assert bus.decode(0x13F).name == "ram"
        with pytest.raises(SimulationError):
            bus.decode(0x140)

    def test_overlapping_slaves_rejected(self):
        sim = Simulator()
        bus = SystemBus(sim)
        _s, ram = make_ram()
        bus.attach_slave("a", 0x0, 16, ram)
        with pytest.raises(ValueError):
            bus.attach_slave("b", 0x8, 16, ram)

    def test_zero_size_rejected(self):
        sim = Simulator()
        bus = SystemBus(sim)
        _s, ram = make_ram()
        with pytest.raises(ValueError):
            bus.attach_slave("a", 0, 0, ram)

    def test_burst_crossing_window_rejected(self):
        sim = Simulator()
        bus = SystemBus(sim)
        _s, ram = make_ram(8)
        bus.attach_slave("ram", 0, 8, ram)

        def proc():
            yield from bus.write(6, [1, 2, 3])

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestTransfers:
    def test_write_then_read_roundtrip(self):
        sim = Simulator()
        bus = SystemBus(sim)
        store, ram = make_ram()
        bus.attach_slave("ram", 0, 64, ram)
        got = []

        def proc():
            yield from bus.write(4, [11, 22, 33])
            data = yield from bus.read(4, 3)
            got.append(data)

        sim.process(proc())
        sim.run()
        assert got == [[11, 22, 33]]
        assert store[4:7] == [11, 22, 33]

    def test_transfer_timing(self):
        sim = Simulator()
        bus = SystemBus(sim, arbitration_time=1.0, setup_time=2.0,
                        word_time=3.0)
        _s, ram = make_ram()
        bus.attach_slave("ram", 0, 64, ram)

        def proc():
            yield from bus.write(0, [1, 2])  # 1 + 2 + 2*3 = 9
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.result == pytest.approx(9.0)

    def test_wait_states_slow_transfer(self):
        sim = Simulator()
        bus = SystemBus(sim, arbitration_time=0.0, setup_time=0.0,
                        word_time=2.0)
        _s, ram = make_ram()
        bus.attach_slave("slow", 0, 64, ram, extra_cycles=3)

        def proc():
            yield from bus.read(0, 1)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.result == pytest.approx(2.0 * 4)

    def test_zero_length_transfer_rejected(self):
        sim = Simulator()
        bus = SystemBus(sim)
        _s, ram = make_ram()
        bus.attach_slave("ram", 0, 64, ram)

        def proc():
            yield from bus.write(0, [])

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestContention:
    def test_masters_serialize_on_the_bus(self):
        sim = Simulator()
        bus = SystemBus(sim, arbitration_time=1.0, setup_time=1.0,
                        word_time=2.0)
        _s, ram = make_ram()
        bus.attach_slave("ram", 0, 64, ram)
        finish = {}

        def master(tag, addr):
            yield from bus.write(addr, [1] * 4)  # 1+1+8 = 10 each
            finish[tag] = sim.now

        sim.process(master("m0", 0))
        sim.process(master("m1", 8))
        sim.run()
        assert finish["m0"] == pytest.approx(10.0)
        assert finish["m1"] == pytest.approx(20.0)

    def test_stats_accumulate(self):
        sim = Simulator()
        bus = SystemBus(sim, arbitration_time=1.0, setup_time=1.0,
                        word_time=2.0)
        _s, ram = make_ram()
        bus.attach_slave("ram", 0, 64, ram)

        def master(addr):
            yield from bus.write(addr, [1, 2])

        sim.process(master(0))
        sim.process(master(8))
        sim.run()
        assert bus.stats.transfers == 2
        assert bus.stats.words == 4
        assert bus.stats.busy_time == pytest.approx(12.0)
        assert bus.stats.wait_time == pytest.approx(6.0)
        assert bus.stats.utilization(sim.now) == pytest.approx(1.0)
