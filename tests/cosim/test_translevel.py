"""Tests for register/interrupt-level devices."""

import pytest

from repro.cosim.kernel import SimulationError, Simulator
from repro.cosim.translevel import FifoDevice, InterruptLine, RegisterDevice


class TestInterruptLine:
    def test_assert_wakes_waiter(self):
        sim = Simulator()
        irq = InterruptLine(sim)
        log = []

        def handler():
            yield from irq.wait()
            log.append(sim.now)
            irq.acknowledge()

        def device():
            yield sim.timeout(6.0)
            irq.assert_()

        sim.process(handler())
        sim.process(device())
        sim.run()
        assert log == [6.0]
        assert not irq.pending

    def test_wait_on_pending_is_immediate(self):
        sim = Simulator()
        irq = InterruptLine(sim)
        irq.assert_()
        log = []

        def handler():
            yield sim.timeout(1.0)
            yield from irq.wait()
            log.append(sim.now)

        sim.process(handler())
        sim.run()
        assert log == [1.0]

    def test_assert_is_idempotent_while_pending(self):
        sim = Simulator()
        irq = InterruptLine(sim)
        irq.assert_()
        irq.assert_()
        assert irq.assertions == 1

    def test_ack_idle_rejected(self):
        sim = Simulator()
        irq = InterruptLine(sim)
        with pytest.raises(SimulationError):
            irq.acknowledge()

    def test_latency_accounting(self):
        sim = Simulator()
        irq = InterruptLine(sim)

        def device():
            yield sim.timeout(2.0)
            irq.assert_()

        def handler():
            yield from irq.wait()
            yield sim.timeout(5.0)
            irq.acknowledge()

        sim.process(device())
        sim.process(handler())
        sim.run()
        assert irq.mean_latency == pytest.approx(5.0)


class TestRegisterDevice:
    def test_read_write_with_latency(self):
        sim = Simulator()
        dev = RegisterDevice(sim, "dev", n_registers=4, access_time=3.0)
        got = []

        def proc():
            yield from dev.write(2, 99)
            value = yield from dev.read(2)
            got.append((value, sim.now))

        sim.process(proc())
        sim.run()
        assert got == [(99, 6.0)]
        assert dev.accesses == 2

    def test_out_of_range_register(self):
        sim = Simulator()
        dev = RegisterDevice(sim, "dev", n_registers=2)

        def proc():
            yield from dev.read(5)

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestFifoDevice:
    def test_push_sets_status_and_irq(self):
        sim = Simulator()
        irq = InterruptLine(sim)
        dev = FifoDevice(sim, depth=2, irq=irq)
        assert dev.on_read(FifoDevice.STATUS) == 0
        dev.push(5)
        assert irq.pending
        assert dev.on_read(FifoDevice.STATUS) == 1
        dev.push(6)
        assert dev.on_read(FifoDevice.STATUS) == 3  # not-empty | full

    def test_overrun_counted(self):
        sim = Simulator()
        dev = FifoDevice(sim, depth=1)
        assert dev.push(1)
        assert not dev.push(2)
        assert dev.overruns == 1

    def test_data_read_pops_and_clears_irq_when_empty(self):
        sim = Simulator()
        irq = InterruptLine(sim)
        dev = FifoDevice(sim, depth=4, irq=irq)
        dev.push(10)
        dev.push(20)
        got = []

        def consumer():
            while True:
                status = yield from dev.read(FifoDevice.STATUS)
                if not status & 1:
                    break
                got.append((yield from dev.read(FifoDevice.DATA)))

        sim.process(consumer())
        sim.run()
        assert got == [10, 20]
        assert not irq.pending

    def test_write_to_readonly_register_rejected(self):
        sim = Simulator()
        dev = FifoDevice(sim)

        def proc():
            yield from dev.write(FifoDevice.STATUS, 1)

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_level_register(self):
        sim = Simulator()
        dev = FifoDevice(sim, depth=8)
        for i in range(3):
            dev.push(i)
        assert dev.on_read(FifoDevice.LEVEL) == 3
