"""Tests for message-level (send/receive/wait) channels."""

import pytest

from repro.cosim.kernel import Simulator
from repro.cosim.msglevel import Channel, Mailbox


class TestUnboundedChannel:
    def test_fifo_order(self):
        sim = Simulator()
        chan = Channel(sim, "c")
        got = []

        def producer():
            for i in range(5):
                yield from chan.send(i)

        def consumer():
            for _ in range(5):
                item = yield from chan.receive()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_receive_blocks_until_send(self):
        sim = Simulator()
        chan = Channel(sim, "c")
        got = []

        def consumer():
            item = yield from chan.receive()
            got.append((item, sim.now))

        def producer():
            yield sim.timeout(9.0)
            yield from chan.send("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("late", 9.0)]

    def test_send_never_blocks(self):
        sim = Simulator()
        chan = Channel(sim, "c")

        def producer():
            for i in range(100):
                yield from chan.send(i)
            return sim.now

        proc = sim.process(producer())
        sim.run()
        assert proc.result == 0.0
        assert chan.pending == 100


class TestBoundedChannel:
    def test_send_blocks_when_full(self):
        sim = Simulator()
        chan = Channel(sim, "c", capacity=2)
        log = []

        def producer():
            for i in range(3):
                yield from chan.send(i)
                log.append(("sent", i, sim.now))

        def consumer():
            yield sim.timeout(10.0)
            item = yield from chan.receive()
            log.append(("got", item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        sent_times = {i: t for op, i, t in log if op == "sent"}
        assert sent_times[0] == 0.0
        assert sent_times[1] == 0.0
        assert sent_times[2] == 10.0  # blocked until the consumer drained one

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Channel(Simulator(), capacity=-1)


class TestRendezvous:
    def test_sender_blocks_until_receiver(self):
        sim = Simulator()
        chan = Channel(sim, "c", capacity=0)
        log = []

        def producer():
            yield from chan.send("x")
            log.append(("send done", sim.now))

        def consumer():
            yield sim.timeout(5.0)
            item = yield from chan.receive()
            log.append(("received", item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("received", "x", 5.0) in log
        assert ("send done", 5.0) in log

    def test_receiver_first_rendezvous(self):
        sim = Simulator()
        chan = Channel(sim, "c", capacity=0)
        got = []

        def consumer():
            item = yield from chan.receive()
            got.append((item, sim.now))

        def producer():
            yield sim.timeout(3.0)
            yield from chan.send("y")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("y", 3.0)]


class TestLatencyModel:
    def test_message_latency_applied(self):
        sim = Simulator()
        chan = Channel(sim, "c", latency_per_message=4.0, latency_per_word=0.5)
        got = []

        def producer():
            yield from chan.send("data", words=8)

        def consumer():
            item = yield from chan.receive()
            got.append((item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [("data", 8.0)]  # 4 + 8*0.5

    def test_transfer_delay_formula(self):
        chan = Channel(Simulator(), latency_per_message=2.0,
                       latency_per_word=3.0)
        assert chan.transfer_delay(10) == pytest.approx(32.0)


class TestWait:
    def test_wait_does_not_consume(self):
        sim = Simulator()
        chan = Channel(sim, "c")
        log = []

        def watcher():
            yield from chan.wait()
            log.append(("woke", sim.now, chan.pending))

        def producer():
            yield sim.timeout(2.0)
            yield from chan.send("m")

        sim.process(watcher())
        sim.process(producer())
        sim.run()
        assert log == [("woke", 2.0, 1)]

    def test_wait_on_nonempty_returns_immediately(self):
        sim = Simulator()
        chan = Channel(sim, "c")
        log = []

        def producer():
            yield from chan.send("m")

        def watcher():
            yield sim.timeout(1.0)
            yield from chan.wait()
            log.append(sim.now)

        sim.process(producer())
        sim.process(watcher())
        sim.run()
        assert log == [1.0]


class TestMailbox:
    def test_channel_created_once(self):
        sim = Simulator()
        box = Mailbox(sim)
        a = box.channel("ctrl", capacity=4)
        b = box.channel("ctrl")
        assert a is b
        assert a.capacity == 4
        assert len(list(box)) == 1

    def test_counting(self):
        sim = Simulator()
        chan = Channel(sim, "c")

        def producer():
            yield from chan.send(1)
            yield from chan.send(2)

        def consumer():
            yield from chan.receive()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert chan.sent == 2
        assert chan.received == 1
        assert chan.pending == 1
