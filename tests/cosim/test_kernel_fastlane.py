"""Differential tests for the kernel's same-time scheduling fast lane.

The zero-delay FIFO lane bypasses heapq for the dominant pin-level
case, but the kernel's determinism contract — simultaneous events fire
in the order they were scheduled, globally by ``(time, seq)`` — must
hold bit-for-bit.  A ``_HeapOnlySimulator`` that routes *everything*
through the heap (the pre-fast-lane behavior) is the reference;
hypothesis-generated workloads mixing zero and non-zero delays, event
fires, joins, interrupts, and resource contention must produce
identical resume logs, times, and activation counts on both.
"""

import heapq

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cosim.kernel import (
    AnyOf,
    HangDetected,
    Interrupt,
    Resource,
    Simulator,
    Watchdog,
)

COMMON = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


class _HeapOnlySimulator(Simulator):
    """Reference scheduler: every wakeup pays full heapq churn."""

    def _schedule(self, delay, proc, value, token):
        self._seq += 1
        heapq.heappush(
            self._queue, (self.now + delay, self._seq, proc, value, token)
        )


# ----------------------------------------------------------------------
# workload generator: per-process op scripts over shared events/resource
# ----------------------------------------------------------------------
N_EVENTS = 4

op_st = st.one_of(
    st.tuples(st.just("timeout"),
              st.sampled_from([0.0, 0.0, 0.0, 1.0, 2.5, 7.0])),
    st.tuples(st.just("wait"), st.integers(0, N_EVENTS - 1)),
    st.tuples(st.just("fire"), st.integers(0, N_EVENTS - 1)),
    st.tuples(st.just("anyof"), st.integers(0, N_EVENTS - 2)),
    st.tuples(st.just("join"), st.integers(0, 3)),
    st.tuples(st.just("interrupt"), st.integers(0, 3)),
    st.tuples(st.just("resource"),
              st.sampled_from([0.0, 0.0, 1.0])),
)

scripts_st = st.lists(
    st.lists(op_st, min_size=1, max_size=6), min_size=1, max_size=5)


def run_workload(sim_cls, scripts):
    """Execute the scripted workload; return the full resume log."""
    sim = sim_cls()
    events = [sim.event(f"e{i}") for i in range(N_EVENTS)]
    resource = Resource(sim, "res")
    procs = []
    log = []

    def body(pid, script):
        for n, (op, arg) in enumerate(script):
            log.append((pid, n, op, sim.now, sim.activations))
            if op == "timeout":
                got = yield sim.timeout(arg, value=(pid, n))
                log.append((pid, n, "woke", sim.now, got))
            elif op == "wait":
                if not events[arg].triggered:
                    got = yield events[arg]
                    log.append((pid, n, "got", sim.now, got))
            elif op == "fire":
                if not events[arg].triggered:
                    events[arg].succeed((pid, n))
            elif op == "anyof":
                pair = yield AnyOf(events[arg:arg + 2])
                log.append((pid, n, "any", sim.now, pair[1]))
            elif op == "join":
                if arg < len(procs) and procs[arg] is not None:
                    got = yield procs[arg]
                    log.append((pid, n, "joined", sim.now, got))
            elif op == "interrupt":
                if arg < len(procs) and procs[arg] is not None:
                    procs[arg].interrupt(cause=(pid, n))
            elif op == "resource":
                try:
                    yield from resource.acquire()
                except Interrupt:
                    log.append((pid, n, "intr", sim.now, None))
                    continue
                yield sim.timeout(arg)
                resource.release()
        return pid

    for pid, script in enumerate(scripts):
        # pad procs as we go so "join"/"interrupt" targets resolve the
        # same way on both simulators
        procs.append(None)
        gen = body(pid, script)

        def wrapper(gen=gen, pid=pid):
            try:
                result = yield from gen
            except Interrupt:
                log.append((pid, -1, "killed", sim.now, None))
                result = None
            return result

        procs[pid] = sim.process(wrapper(), name=f"p{pid}")

    final = sim.run()
    return log, final, sim.activations, sim.now


class TestSchedulingDifferential:
    @settings(max_examples=80, **COMMON)
    @given(scripts=scripts_st)
    def test_fast_lane_matches_heap_only(self, scripts):
        fast = run_workload(Simulator, scripts)
        ref = run_workload(_HeapOnlySimulator, scripts)
        assert fast == ref

    def test_simultaneous_events_fire_in_scheduling_order(self):
        """The documented determinism contract, pinned explicitly: a
        zero-delay wakeup scheduled *after* a timed wakeup landing at
        the same instant fires second (global (time, seq) order)."""
        for sim_cls in (Simulator, _HeapOnlySimulator):
            sim = sim_cls()
            order = []

            def timed():
                yield sim.timeout(5.0)
                order.append("timed")

            def firer():
                yield sim.timeout(5.0)  # same instant, later seq
                order.append("firer")

            sim.process(timed(), name="timed")
            sim.process(firer(), name="firer")
            sim.run()
            assert order == ["timed", "firer"], sim_cls.__name__

    def test_zero_delay_storm_interleaves_with_heap_entries(self):
        """Zero-delay chains must not starve or overtake a same-time
        heap entry scheduled earlier."""

        def chain(sim, log, n):
            for i in range(n):
                log.append(("chain", i, sim.now))
                yield sim.timeout(0.0)

        def sleeper(sim, log):
            yield sim.timeout(0.0)
            log.append(("sleeper", 0, sim.now))
            yield sim.timeout(3.0)
            log.append(("sleeper", 1, sim.now))

        logs = []
        for sim_cls in (Simulator, _HeapOnlySimulator):
            sim = sim_cls()
            log = []
            sim.process(chain(sim, log, 6), name="chain")
            sim.process(sleeper(sim, log), name="sleeper")
            sim.run()
            logs.append((log, sim.activations, sim.now))
        assert logs[0] == logs[1]


class TestRunHorizon:
    def make(self, sim_cls):
        sim = sim_cls()

        def ticker():
            while True:
                yield sim.timeout(0.0)
                yield sim.timeout(2.0)

        sim.process(ticker(), name="ticker")
        return sim

    @pytest.mark.parametrize("sim_cls", [Simulator, _HeapOnlySimulator])
    def test_until_stops_at_horizon(self, sim_cls):
        sim = self.make(sim_cls)
        assert sim.run(until=7.0) == 7.0
        assert sim.now == 7.0

    @pytest.mark.parametrize("sim_cls", [Simulator, _HeapOnlySimulator])
    def test_until_in_past_never_rewinds(self, sim_cls):
        sim = self.make(sim_cls)
        sim.run(until=6.0)
        assert sim.run(until=2.0) == 6.0
        assert sim.now == 6.0

    def test_until_now_with_ready_entries_fires_them(self):
        """Entries in the zero-delay lane sit at the current time, so a
        horizon of exactly `now` must still let them fire."""
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(0.0)
            fired.append(sim.now)

        sim.process(proc(), name="p")
        sim.run(until=0.0)
        assert fired == [0.0]


class TestWatchdogFastLane:
    def test_spin_hang_detected_at_identical_point(self):
        """A zero-delay spin loop lives entirely in the fast lane; the
        watchdog must still see every resumption and both schedulers
        must kill the run at the same activation count."""
        counts = []
        for sim_cls in (Simulator, _HeapOnlySimulator):
            sim = sim_cls()

            def spin():
                while True:
                    yield sim.timeout(0.0)

            sim.process(spin(), name="spinner")
            with pytest.raises(HangDetected) as err:
                sim.run(watchdog=Watchdog(max_stalled_activations=500))
            assert "spinner" in str(err.value)
            counts.append(sim.activations)
        assert counts[0] == counts[1]

    @settings(max_examples=25, **COMMON)
    @given(scripts=scripts_st)
    def test_watched_run_matches_unwatched(self, scripts):
        """A generous watchdog must not perturb scheduling at all."""
        plain = run_workload(Simulator, scripts)
        watched = run_workload_watched(scripts)
        assert plain == watched


def run_workload_watched(scripts):
    """run_workload, but through the watched run loop."""
    original_run = Simulator.run

    def watched_run(self, until=None, watchdog=None):
        return original_run(
            self, until,
            watchdog or Watchdog(max_stalled_activations=10_000_000))

    Simulator.run = watched_run
    try:
        return run_workload(Simulator, scripts)
    finally:
        Simulator.run = original_run


class TestIntrospection:
    def test_repr_counts_both_lanes(self):
        sim = Simulator()

        def p():
            yield sim.timeout(0.0)
            yield sim.timeout(5.0)

        sim.process(p(), name="p")   # ready lane
        sim.process(p(), name="q")   # ready lane
        assert "pending=2" in repr(sim)

    def test_stalled_suspects_sees_ready_lane(self):
        sim = Simulator()

        def p():
            yield sim.timeout(0.0)

        sim.process(p(), name="zed")
        assert "zed" in sim._stalled_suspects()

    def test_slots_hold(self):
        """Event/Process carry no __dict__ anymore — attribute typos
        now fail loudly instead of silently growing per-object dicts."""
        sim = Simulator()
        event = sim.event("e")
        proc = sim.process((x for x in ()), name="p")
        for obj in (event, proc):
            with pytest.raises(AttributeError):
                obj.no_such_attribute = 1
            assert not hasattr(obj, "__dict__")
