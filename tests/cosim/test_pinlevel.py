"""Tests for pin-level bus modeling."""

import pytest

from repro.cosim.kernel import SimulationError, Simulator
from repro.cosim.pinlevel import (
    PinBus,
    PinBusMaster,
    PinBusSlave,
    run_until_complete,
)
from repro.cosim.signals import Clock, Trace


def make_ram(size=32):
    store = [0] * size

    def handler(offset, value, is_write):
        if is_write:
            store[offset] = value
            return 0
        return store[offset]

    return store, handler


def build(trace=None, wait_states=0):
    sim = Simulator()
    clk = Clock(sim, period=10.0, trace=trace)
    bus = PinBus(sim, clk, trace=trace)
    store, ram = make_ram()
    slave = PinBusSlave(bus, "ram", base=0x10, size=32, handler=ram,
                        wait_states=wait_states)
    return sim, bus, store, slave


class TestHandshake:
    def test_write_then_read_roundtrip(self):
        sim, bus, store, _slave = build()
        master = PinBusMaster(bus)
        got = []

        def proc():
            yield from master.write(0x14, 77)
            value = yield from master.read(0x14)
            got.append(value)

        p = sim.process(proc())
        run_until_complete(sim, [p], limit=10_000)
        assert got == [77]
        assert store[4] == 77

    def test_burst_roundtrip(self):
        sim, bus, store, _slave = build()
        master = PinBusMaster(bus)
        got = []

        def proc():
            yield from master.burst_write(0x10, [1, 2, 3, 4])
            data = yield from master.burst_read(0x10, 4)
            got.append(data)

        p = sim.process(proc())
        run_until_complete(sim, [p], limit=10_000)
        assert got == [[1, 2, 3, 4]]
        assert bus.word_transfers == 8

    def test_wait_states_stretch_transfer(self):
        def run_with(ws):
            sim, bus, _store, _slave = build(wait_states=ws)
            master = PinBusMaster(bus)

            def proc():
                yield from master.read(0x10)
                return sim.now

            p = sim.process(proc())
            run_until_complete(sim, [p], limit=100_000)
            return p.result

        assert run_with(4) > run_with(0)

    def test_transfer_takes_multiple_cycles(self):
        sim, bus, _store, _slave = build()
        master = PinBusMaster(bus)

        def proc():
            yield from master.read(0x10)
            return sim.now

        p = sim.process(proc())
        run_until_complete(sim, [p], limit=10_000)
        assert p.result >= 2 * 10.0  # at least two full clock periods


class TestSignalActivity:
    def test_trace_records_handshake_wiggles(self):
        trace = Trace()
        sim, bus, _store, _slave = build(trace=trace)
        master = PinBusMaster(bus)

        def proc():
            yield from master.write(0x11, 5)

        p = sim.process(proc())
        run_until_complete(sim, [p], limit=10_000)
        assert trace.edge_count("pinbus.req") == 2  # rise and fall
        assert trace.edge_count("pinbus.ack") == 2
        assert trace.value_at("pinbus.wdata", sim.now) == 5

    def test_pin_level_costs_more_events_than_payload(self):
        sim, bus, _store, _slave = build()
        master = PinBusMaster(bus)

        def proc():
            yield from master.burst_write(0x10, [9] * 4)

        p = sim.process(proc())
        run_until_complete(sim, [p], limit=10_000)
        # 4 words moved but far more kernel activations than 4
        assert sim.activations > 4 * 5


class TestArbitration:
    def test_two_masters_interleave_safely(self):
        sim, bus, store, _slave = build()
        m0 = PinBusMaster(bus, "m0")
        m1 = PinBusMaster(bus, "m1")

        def writer(master, base, vals):
            for i, v in enumerate(vals):
                yield from master.write(base + i, v)

        p0 = sim.process(writer(m0, 0x10, [1, 2, 3]))
        p1 = sim.process(writer(m1, 0x18, [7, 8, 9]))
        run_until_complete(sim, [p0, p1], limit=100_000)
        assert store[0:3] == [1, 2, 3]
        assert store[8:11] == [7, 8, 9]


class TestSlaveValidation:
    def test_zero_size_slave_rejected(self):
        sim = Simulator()
        clk = Clock(sim, period=10.0)
        bus = PinBus(sim, clk)
        _store, ram = make_ram()
        with pytest.raises(ValueError):
            PinBusSlave(bus, "bad", base=0, size=0, handler=ram)

    def test_unmapped_address_deadlocks_with_limit(self):
        sim, bus, _store, _slave = build()
        master = PinBusMaster(bus)

        def proc():
            yield from master.read(0x1000)  # nobody decodes this

        p = sim.process(proc())
        with pytest.raises(SimulationError):
            run_until_complete(sim, [p], limit=500.0)
