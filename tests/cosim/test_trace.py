"""Tests for the structured tracing layer and its exporters."""

import json

import pytest

from repro.cosim import trace as tr
from repro.cosim.bus import SystemBus
from repro.cosim.kernel import Interrupt, Resource, Simulator
from repro.cosim.msglevel import Channel
from repro.cosim.signals import Signal
from repro.cosim.trace import Tracer
from repro.cosim.translevel import InterruptLine, RegisterDevice


def two_phase_sim(tracer=None):
    """A tiny simulation: a worker and a poker exchanging one event."""
    sim = Simulator(tracer=tracer)
    go = sim.event("go")

    def worker():
        yield sim.timeout(5.0)
        yield go
        return "done"

    def poker():
        yield sim.timeout(10.0)
        go.succeed("now")

    sim.process(worker(), name="worker")
    sim.process(poker(), name="poker")
    sim.run()
    return sim


class TestKernelHooks:
    def test_process_lifecycle_is_recorded(self):
        tracer = Tracer()
        two_phase_sim(tracer)
        kinds = tracer.by_kind()
        assert kinds[tr.SPAWN] == 2
        assert kinds[tr.FINISH] == 2
        assert kinds[tr.EVENT] >= 1  # "go" (plus .done events)
        names = [r.name for r in tracer.records_of(tr.SPAWN)]
        assert names == ["worker", "poker"]

    def test_resume_records_match_activation_count(self):
        tracer = Tracer()
        sim = two_phase_sim(tracer)
        assert len(tracer.records_of(tr.RESUME)) == sim.activations

    def test_tracing_does_not_change_activations(self):
        plain = two_phase_sim(None)
        traced = two_phase_sim(Tracer())
        assert plain.activations == traced.activations
        assert plain.now == traced.now

    def test_metrics_count_per_process_activations(self):
        tracer = Tracer()
        sim = two_phase_sim(tracer)
        counters = tracer.metrics.counters
        per_proc = (
            counters["process.worker.activations"].value
            + counters["process.poker.activations"].value
        )
        assert per_proc == sim.activations

    def test_wait_time_histogram_records_suspension_gaps(self):
        tracer = Tracer()
        two_phase_sim(tracer)
        h = tracer.metrics.histograms["process.worker.wait_ns"]
        # worker resumes at t=0 (start), t=5 (timeout), t=10 (event):
        # two suspension gaps of 5 ns each
        assert h.count == 2
        assert h.total == pytest.approx(10.0)

    def test_interrupt_is_recorded(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass

        def interrupter(target):
            yield sim.timeout(3.0)
            target.interrupt("cause!")

        p = sim.process(sleeper(), name="sleeper")
        sim.process(interrupter(p), name="irq")
        sim.run()
        recs = tracer.records_of(tr.INTERRUPT)
        assert len(recs) == 1
        assert recs[0].name == "sleeper"
        assert "cause!" in recs[0].data["cause"]
        assert tracer.metrics.counters[
            "process.sleeper.interrupts"
        ].value == 1

    def test_resource_wait_grant_release_cycle(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        res = Resource(sim, "grant")

        def user(delay, hold):
            yield sim.timeout(delay)
            yield from res.acquire()
            yield sim.timeout(hold)
            res.release()

        sim.process(user(0.0, 10.0), name="a")
        sim.process(user(1.0, 2.0), name="b")
        sim.run()
        assert len(tracer.records_of(tr.RES_WAIT)) == 1   # b queued
        assert len(tracer.records_of(tr.RES_GRANT)) == 2
        rel = tracer.records_of(tr.RES_RELEASE)
        assert [r.data["handoff"] for r in rel] == [True, False]
        h = tracer.metrics.histograms["resource.grant.wait_ns"]
        assert h.count == 2
        assert h.max == pytest.approx(9.0)  # b waited 1..10

    def test_queue_depth_high_water_mark(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)

        def proc():
            yield sim.timeout(1.0)

        for _ in range(5):
            sim.process(proc())
        sim.run()
        assert tracer.max_queue_depth >= 4

    def test_max_records_cap_counts_drops(self):
        tracer = Tracer(max_records=3)
        sim = two_phase_sim(tracer)
        assert len(tracer.records) == 3
        assert tracer.dropped > 0
        # metrics keep updating past the cap
        total = sum(
            c.value for n, c in tracer.metrics.counters.items()
            if n.endswith(".activations")
        )
        assert total == sim.activations


class TestDomainHooks:
    def test_signal_changes_recorded(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        s = Signal(sim, "wire")
        s.set(1)
        s.set(1)  # no change, no record
        s.set(0)
        recs = tracer.records_of(tr.SIGNAL)
        assert [(r.name, r.data["value"]) for r in recs] == [
            ("wire", 1), ("wire", 0)
        ]

    def test_bus_transfer_recorded(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        bus = SystemBus(sim)
        bus.attach_slave("ram", 0x0, 16, lambda o, v, w: 7)

        def master():
            yield from bus.write(0x2, [1, 2, 3])

        sim.process(master())
        sim.run()
        recs = tracer.records_of(tr.BUS)
        assert len(recs) == 1
        assert recs[0].data["words"] == 3
        assert recs[0].data["slave"] == "ram"
        assert tracer.metrics.counters["bus.sysbus.transfers"].value == 1

    def test_register_device_access_recorded(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        dev = RegisterDevice(sim, "dev", 4)

        def driver():
            yield from dev.write(1, 42)
            yield from dev.read(1)

        sim.process(driver())
        sim.run()
        recs = tracer.records_of(tr.REG)
        assert [(r.data["index"], r.data["write"]) for r in recs] == [
            (1, True), (1, False)
        ]

    def test_irq_assert_ack_recorded_with_latency(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        irq = InterruptLine(sim, "irq0")

        def hw():
            yield sim.timeout(2.0)
            irq.assert_()

        def sw():
            yield from irq.wait()
            yield sim.timeout(3.0)
            irq.acknowledge()

        sim.process(hw())
        sim.process(sw())
        sim.run()
        recs = tracer.records_of(tr.IRQ)
        assert [r.data["asserted"] for r in recs] == [True, False]
        h = tracer.metrics.histograms["irq.irq0.latency_ns"]
        assert h.total == pytest.approx(3.0)

    def test_channel_messages_recorded(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        chan = Channel(sim, "pipe")

        def producer():
            yield from chan.send("x", words=4)

        def consumer():
            yield from chan.receive()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        ops = [r.data["op"] for r in tracer.records_of(tr.MSG)]
        assert sorted(ops) == ["receive", "send"]
        assert tracer.metrics.counters["channel.pipe.sent"].value == 1


class TestExporters:
    def test_json_roundtrip(self):
        tracer = Tracer()
        sim = two_phase_sim(tracer)
        doc = json.loads(tracer.to_json())
        assert len(doc["records"]) == len(tracer.records)
        assert doc["records"][0]["kind"] == tr.SPAWN
        assert doc["metrics"]["counters"][
            "process.worker.activations"
        ] >= 1
        assert doc["dropped"] == 0

    def test_write_json(self, tmp_path):
        tracer = Tracer()
        two_phase_sim(tracer)
        path = tmp_path / "trace.json"
        tracer.write_json(str(path))
        assert json.loads(path.read_text())["records"]

    def test_vcd_contains_signals_and_resource_occupancy(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        s = Signal(sim, "data")
        res = Resource(sim, "grant")

        def driver():
            yield from res.acquire()
            s.set(5)
            yield sim.timeout(2.0)
            s.set(0)
            res.release()

        sim.process(driver())
        sim.run()
        vcd = tracer.to_vcd()
        assert "$timescale 1000 ps $end" in vcd
        assert "$var wire 3" in vcd and "data" in vcd
        assert "grant.busy" in vcd
        assert "$enddefinitions $end" in vcd
        # value changes: b101 for 5, and busy toggles 1 -> 0
        assert "b101 " in vcd
        # ticks are in units of the 1000 ps timescale: t=2 ns -> "#2"
        assert "#0\n" in vcd and "#2\n" in vcd

    def test_vcd_handoff_keeps_busy_wire_high(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        res = Resource(sim, "r")

        def user(delay):
            yield sim.timeout(delay)
            yield from res.acquire()
            yield sim.timeout(5.0)
            res.release()

        sim.process(user(0.0))
        sim.process(user(1.0))
        sim.run()
        vcd = tracer.to_vcd()
        # exactly one rise and one fall despite two grants (handoff
        # collapses: the wire never dips between owners)
        busy_changes = [
            line for line in vcd.splitlines()
            if line.endswith("!") and line[0] in "01"
        ]
        assert len(busy_changes) == 2

    def test_write_vcd(self, tmp_path):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        Signal(sim, "s").set(1)
        path = tmp_path / "wave.vcd"
        tracer.write_vcd(str(path))
        assert "$var wire" in path.read_text()

    def test_summary_mentions_kinds_and_metrics(self):
        tracer = Tracer()
        two_phase_sim(tracer)
        text = tracer.summary()
        assert "records" in text
        assert tr.RESUME in text
        assert "process.worker.activations" in text
        assert "max event-queue depth" in text

    def test_explicit_time_emission_without_simulator(self):
        tracer = Tracer()
        tracer.emit(tr.TASK, "t1", time=12.5, domain="hw")
        assert tracer.records[0].time == 12.5
        tracer.emit(tr.TASK, "t2")  # unbound: defaults to 0.0
        assert tracer.records[1].time == 0.0


def parse_vcd(text):
    """A minimal VCD reader for round-trip tests: returns
    ``(timescale_ps, vars, changes)`` where ``vars`` maps signal name
    -> ``(ident, width)`` and ``changes`` maps signal name to the
    ``[(tick, value), ...]`` stream in file order."""
    timescale_ps = None
    vars_by_ident = {}
    lines = iter(text.splitlines())
    for line in lines:
        tokens = line.split()
        if not tokens:
            continue
        if tokens[0] == "$timescale":
            timescale_ps = int(tokens[1])
            assert tokens[2] == "ps"
        elif tokens[0] == "$var":
            # $var wire <width> <ident> <name> $end
            assert tokens[1] == "wire"
            vars_by_ident[tokens[3]] = (tokens[4], int(tokens[2]))
        elif tokens[0] == "$enddefinitions":
            break
    changes = {}
    tick = None
    for line in lines:
        if line.startswith("#"):
            tick = int(line[1:])
            continue
        if line.startswith("b"):
            value_str, ident = line[1:].split()
            value = int(value_str, 2)
        else:
            value, ident = int(line[0]), line[1:]
        name, _width = vars_by_ident[ident]
        changes.setdefault(name, []).append((tick, value))
    names = {name for name, _w in vars_by_ident.values()}
    widths = {name: w for name, w in vars_by_ident.values()}
    return timescale_ps, {n: widths[n] for n in names}, changes


class TestVcdRoundTrip:
    """Parse the emitted VCD back and check it against the simulation
    that produced it — header, timescale, var ids, change ordering."""

    def two_signal_sim(self, tracer):
        sim = Simulator(tracer=tracer)
        data = Signal(sim, "data")
        valid = Signal(sim, "valid")

        def driver():
            data.set(5)
            valid.set(1)
            yield sim.timeout(2.5)
            data.set(12)
            yield sim.timeout(2.5)
            valid.set(0)
            data.set(0)

        sim.process(driver(), name="driver")
        sim.run()
        return sim

    def test_header_declares_every_signal_once(self):
        tracer = Tracer()
        self.two_signal_sim(tracer)
        timescale_ps, widths, _changes = parse_vcd(tracer.to_vcd())
        assert timescale_ps == 1000
        assert set(widths) == {"data", "valid"}
        assert widths["data"] == 4   # max value 12 -> 4 bits
        assert widths["valid"] == 1

    def test_var_idents_are_unique_printable_codes(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        for i in range(100):  # forces multi-character identifiers
            Signal(sim, f"s{i:03d}").set(1)
        vcd = tracer.to_vcd()
        idents = [
            line.split()[3] for line in vcd.splitlines()
            if line.startswith("$var")
        ]
        assert len(idents) == 100
        assert len(set(idents)) == 100
        for ident in idents:
            assert all(33 <= ord(ch) <= 126 for ch in ident)

    def test_round_trip_recovers_the_change_streams(self):
        tracer = Tracer()
        self.two_signal_sim(tracer)
        _ts, _widths, changes = parse_vcd(tracer.to_vcd())
        # fractional-ns times survive via 1000 ps ticks: 2.5 ns -> #2 is
        # wrong, #3 would be wrong too -- round(2.5) banker's-rounds to 2
        assert changes["data"] == [(0, 5), (2, 12), (5, 0)]
        assert changes["valid"] == [(0, 1), (5, 0)]

    def test_finer_timescale_preserves_fractional_ticks(self):
        tracer = Tracer()
        self.two_signal_sim(tracer)
        ts, _widths, changes = parse_vcd(tracer.to_vcd(timescale_ps=500))
        assert ts == 500
        # 2.5 ns at 500 ps/tick lands exactly on tick 5
        assert changes["data"] == [(0, 5), (5, 12), (10, 0)]

    def test_ticks_are_monotone_in_file_order(self):
        tracer = Tracer()
        self.two_signal_sim(tracer)
        ticks = [
            int(line[1:]) for line in tracer.to_vcd().splitlines()
            if line.startswith("#")
        ]
        assert ticks == sorted(ticks)
        assert len(ticks) == len(set(ticks)), "duplicate time sections"

    def test_repeated_value_is_not_re_emitted(self):
        tracer = Tracer()
        tracer.emit(tr.SIGNAL, "s", time=0.0, value=1)
        tracer.emit(tr.SIGNAL, "s", time=1.0, value=1)
        tracer.emit(tr.SIGNAL, "s", time=2.0, value=0)
        _ts, _w, changes = parse_vcd(tracer.to_vcd())
        assert changes["s"] == [(0, 1), (2, 0)]


class TestKernelTraceEventsBridge:
    def test_grants_become_busy_spans_and_points_become_instants(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        res = Resource(sim, "bus")

        def user():
            yield from res.acquire()
            yield sim.timeout(4.0)
            res.release()

        sim.process(user(), name="u")
        sim.run()
        events = tracer.to_trace_events()
        from repro.obs import validate_trace_events
        assert validate_trace_events(events) == []
        busy = [e for e in events if e["ph"] == "X"]
        assert len(busy) == 1
        assert busy[0]["dur"] == pytest.approx(4.0 / 1000.0)
        instants = {e["name"] for e in events if e["ph"] == "i"}
        assert any(name.startswith("spawn:") for name in instants)
