"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.cosim.kernel import (
    AnyOf,
    Event,
    HangDetected,
    Interrupt,
    Resource,
    SimulationError,
    Simulator,
    Timeout,
    Watchdog,
)


class TestTimeouts:
    def test_single_timeout_advances_time(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(5.0)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [5.0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_timeout_delivers_value(self):
        sim = Simulator()
        got = []

        def proc():
            v = yield Timeout(1.0, "hello")
            got.append(v)

        sim.process(proc())
        sim.run()
        assert got == ["hello"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        log = []

        def proc(tag):
            yield sim.timeout(3.0)
            log.append(tag)

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_run_until_stops_early(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(100.0)

        sim.process(proc())
        final = sim.run(until=10.0)
        assert final == 10.0
        # the pending timeout still fires on a later run
        sim.run()
        assert sim.now == 100.0

    def test_run_until_in_past_never_rewinds_time(self):
        """Regression: run(until < now) used to assign now = until,
        moving model time backwards."""
        sim = Simulator()

        def proc():
            yield sim.timeout(50.0)
            yield sim.timeout(50.0)

        sim.process(proc())
        sim.run(until=60.0)
        assert sim.now == 60.0
        # a stale horizon must be a no-op, not a time machine
        assert sim.run(until=10.0) == 60.0
        assert sim.now == 60.0
        # and the simulation still completes correctly afterwards
        sim.run()
        assert sim.now == 100.0

    def test_run_until_in_past_with_empty_queue(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(5.0)

        sim.process(proc())
        sim.run()
        assert sim.now == 5.0
        assert sim.run(until=1.0) == 5.0
        assert sim.now == 5.0


class TestEvents:
    def test_event_wakes_all_waiters_with_value(self):
        sim = Simulator()
        ev = sim.event("go")
        got = []

        def waiter(tag):
            v = yield ev
            got.append((tag, v, sim.now))

        def firer():
            yield sim.timeout(7.0)
            ev.succeed(42)

        sim.process(waiter("w1"))
        sim.process(waiter("w2"))
        sim.process(firer())
        sim.run()
        assert got == [("w1", 42, 7.0), ("w2", 42, 7.0)]

    def test_waiting_on_triggered_event_returns_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("past")
        got = []

        def waiter():
            v = yield ev
            got.append((v, sim.now))

        sim.process(waiter())
        sim.run()
        assert got == [("past", 0.0)]

    def test_double_succeed_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_yielding_garbage_raises(self):
        sim = Simulator()

        def proc():
            yield "not a waitable"

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestProcessJoin:
    def test_join_receives_return_value(self):
        sim = Simulator()
        got = []

        def child():
            yield sim.timeout(4.0)
            return "result"

        def parent():
            proc = sim.process(child(), name="child")
            value = yield proc
            got.append((value, sim.now))

        sim.process(parent())
        sim.run()
        assert got == [("result", 4.0)]

    def test_join_finished_process_is_immediate(self):
        sim = Simulator()
        got = []

        def child():
            return "early"
            yield  # pragma: no cover

        def parent():
            proc = sim.process(child(), name="child")
            yield sim.timeout(10.0)
            value = yield proc
            got.append((value, sim.now))

        sim.process(parent())
        sim.run()
        assert got == [("early", 10.0)]

    def test_alive_flag(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)

        proc = sim.process(child())
        assert proc.alive
        sim.run()
        assert not proc.alive


class TestAnyOf:
    def test_anyof_returns_first_event(self):
        sim = Simulator()
        fast = sim.event("fast")
        slow = sim.event("slow")
        got = []

        def racer():
            event, value = yield AnyOf([slow, fast])
            got.append((event.name, value, sim.now))

        def driver():
            yield sim.timeout(2.0)
            fast.succeed("f")
            yield sim.timeout(2.0)
            slow.succeed("s")

        sim.process(racer())
        sim.process(driver())
        sim.run()
        assert got == [("fast", "f", 2.0)]

    def test_anyof_requires_events(self):
        with pytest.raises(SimulationError):
            AnyOf([])

    def test_anyof_prunes_callbacks_on_losing_events(self):
        """Regression: callbacks registered on events that lose the race
        used to accumulate for the life of the run."""
        sim = Simulator()
        never = sim.event("never")  # loses every race

        def racer(rounds):
            for _ in range(rounds):
                winner = sim.event()
                sim.process(firer(winner))
                yield AnyOf([never, winner])

        def firer(ev):
            yield sim.timeout(1.0)
            ev.succeed()

        sim.process(racer(20))
        sim.run()
        assert len(never._callbacks) == 0

    def test_anyof_with_already_triggered_event_does_not_register(self):
        sim = Simulator()
        fired = sim.event("fired")
        fired.succeed("x")
        pending = sim.event("pending")
        got = []

        def racer():
            event, value = yield AnyOf([pending, fired])
            got.append((event.name, value))

        sim.process(racer())
        sim.run()
        assert got == [("fired", "x")]
        # the losing pending event keeps no dead closure
        assert len(pending._callbacks) == 0


class TestInterrupt:
    def test_interrupt_preempts_timeout(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
                log.append("slept full")
            except Interrupt as exc:
                log.append(("interrupted", exc.cause, sim.now))
                yield sim.timeout(5.0)
                log.append(("resumed", sim.now))

        def interrupter(target):
            yield sim.timeout(10.0)
            target.interrupt("wakeup")

        proc = sim.process(sleeper())
        sim.process(interrupter(proc))
        sim.run()
        assert log == [("interrupted", "wakeup", 10.0), ("resumed", 15.0)]

    def test_stale_timeout_does_not_double_wake(self):
        """After an interrupt, the abandoned timeout must not resume the
        process a second time."""
        sim = Simulator()
        wakes = []

        def sleeper():
            try:
                yield sim.timeout(50.0)
            except Interrupt:
                pass
            wakes.append(sim.now)
            yield sim.timeout(100.0)
            wakes.append(sim.now)

        def interrupter(target):
            yield sim.timeout(10.0)
            target.interrupt()

        proc = sim.process(sleeper())
        sim.process(interrupter(proc))
        sim.run()
        assert wakes == [10.0, 110.0]

    def test_unhandled_interrupt_kills_process(self):
        sim = Simulator()

        def sleeper():
            yield sim.timeout(100.0)

        def interrupter(target):
            yield sim.timeout(1.0)
            target.interrupt()

        proc = sim.process(sleeper())
        sim.process(interrupter(proc))
        sim.run()
        assert not proc.alive

    def test_interrupt_dead_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)

        proc = sim.process(quick())
        sim.run()
        proc.interrupt()  # must not raise
        sim.run()


class TestResource:
    def test_mutual_exclusion_and_fifo_order(self):
        sim = Simulator()
        res = Resource(sim, "bus")
        log = []

        def user(tag, hold):
            yield from res.acquire()
            log.append((tag, "in", sim.now))
            yield sim.timeout(hold)
            log.append((tag, "out", sim.now))
            res.release()

        sim.process(user("a", 5.0))
        sim.process(user("b", 3.0))
        sim.process(user("c", 1.0))
        sim.run()
        assert log == [
            ("a", "in", 0.0), ("a", "out", 5.0),
            ("b", "in", 5.0), ("b", "out", 8.0),
            ("c", "in", 8.0), ("c", "out", 9.0),
        ]

    def test_no_barging_on_handoff(self):
        """A process that calls acquire at the moment of release must not
        jump ahead of an already-queued waiter."""
        sim = Simulator()
        res = Resource(sim, "r")
        order = []

        def holder():
            yield from res.acquire()
            yield sim.timeout(10.0)
            res.release()

        def waiter():
            yield sim.timeout(1.0)
            yield from res.acquire()
            order.append(("waiter", sim.now))
            yield sim.timeout(5.0)
            res.release()

        def barger():
            yield sim.timeout(10.0)  # arrives exactly at release time
            yield from res.acquire()
            order.append(("barger", sim.now))
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.process(barger())
        sim.run()
        assert order[0][0] == "waiter"

    def test_release_idle_rejected(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_wait_accounting(self):
        sim = Simulator()
        res = Resource(sim)

        def first():
            yield from res.acquire()
            yield sim.timeout(8.0)
            res.release()

        def second():
            yield from res.acquire()
            res.release()

        sim.process(first())
        sim.process(second())
        sim.run()
        assert res.total_wait == pytest.approx(8.0)
        assert res.acquisitions == 2


class TestResourceInterrupt:
    """Regression tests for the grant-leak deadlock: an interrupted
    waiter used to leave its stale gate queued; release() would succeed
    it, the wakeup was dropped as stale, and the resource stayed busy
    forever."""

    def test_interrupted_waiter_does_not_leak_the_grant(self):
        sim = Simulator()
        res = Resource(sim, "r")
        log = []

        def holder():
            yield from res.acquire()
            yield sim.timeout(10.0)
            res.release()

        def victim():
            yield sim.timeout(1.0)
            try:
                yield from res.acquire()
                log.append("victim acquired")  # pragma: no cover
            except Interrupt:
                log.append(("victim interrupted", sim.now))

        def survivor():
            yield sim.timeout(2.0)
            yield from res.acquire()
            log.append(("survivor acquired", sim.now))
            res.release()

        def interrupter(target):
            yield sim.timeout(5.0)
            target.interrupt()

        sim.process(holder())
        v = sim.process(victim())
        sim.process(survivor())
        sim.process(interrupter(v))
        sim.run()
        assert ("victim interrupted", 5.0) in log
        # the grant must reach the next live waiter at release time
        assert ("survivor acquired", 10.0) in log
        assert not res.busy

    def test_interrupted_sole_waiter_frees_resource_on_release(self):
        sim = Simulator()
        res = Resource(sim, "r")

        def holder():
            yield from res.acquire()
            yield sim.timeout(10.0)
            res.release()

        def victim():
            yield sim.timeout(1.0)
            yield from res.acquire()  # dies on the unhandled interrupt

        def interrupter(target):
            yield sim.timeout(5.0)
            target.interrupt()

        sim.process(holder())
        v = sim.process(victim())
        sim.process(interrupter(v))
        sim.run()
        assert not v.alive
        assert not res.busy  # a later acquire would succeed immediately

    def test_interrupt_after_handoff_regrants_to_next_waiter(self):
        """Interrupt landing in the same instant as the grant: ownership
        was already handed to the victim, so it must pass it on."""
        sim = Simulator()
        res = Resource(sim, "r")
        log = []

        def holder():
            yield from res.acquire()
            yield sim.timeout(5.0)
            res.release()  # hands off to victim at t=5

        def victim():
            yield sim.timeout(1.0)
            try:
                yield from res.acquire()
                log.append("victim acquired")  # pragma: no cover
            except Interrupt:
                log.append("victim interrupted")

        def next_in_line():
            yield sim.timeout(2.0)
            yield from res.acquire()
            log.append(("next acquired", sim.now))
            res.release()

        def interrupter(target):
            # fires at t=5, scheduled after holder's release wakeup: the
            # pending interrupt wins over the grant delivery
            yield sim.timeout(5.0)
            target.interrupt()

        sim.process(holder())
        v = sim.process(victim())
        sim.process(next_in_line())
        sim.process(interrupter(v))
        sim.run()
        assert "victim interrupted" in log
        assert ("next acquired", 5.0) in log
        assert not res.busy

    def test_interrupted_waiter_can_reacquire_later(self):
        sim = Simulator()
        res = Resource(sim, "r")
        log = []

        def holder():
            yield from res.acquire()
            yield sim.timeout(10.0)
            res.release()

        def persistent():
            yield sim.timeout(1.0)
            try:
                yield from res.acquire()
            except Interrupt:
                yield sim.timeout(20.0)  # back off, then retry
                yield from res.acquire()
                log.append(("reacquired", sim.now))
                res.release()

        def interrupter(target):
            yield sim.timeout(5.0)
            target.interrupt()

        sim.process(holder())
        p = sim.process(persistent())
        sim.process(interrupter(p))
        sim.run()
        assert log == [("reacquired", 25.0)]
        assert not res.busy


class TestResourceAccounting:
    """total_wait / acquisitions under contention and interruption."""

    def test_contended_waits_accumulate(self):
        sim = Simulator()
        res = Resource(sim, "r")

        def user(delay, hold):
            yield sim.timeout(delay)
            yield from res.acquire()
            yield sim.timeout(hold)
            res.release()

        # a: waits 0, holds [0,10); b: arrives 2, waits 8, holds [10,15);
        # c: arrives 4, waits 11, holds [15,18)
        sim.process(user(0.0, 10.0))
        sim.process(user(2.0, 5.0))
        sim.process(user(4.0, 3.0))
        sim.run()
        assert res.acquisitions == 3
        assert res.total_wait == pytest.approx(8.0 + 11.0)
        assert not res.busy

    def test_uncontended_acquires_record_zero_wait(self):
        sim = Simulator()
        res = Resource(sim, "r")

        def user(delay):
            yield sim.timeout(delay)
            yield from res.acquire()
            res.release()

        sim.process(user(0.0))
        sim.process(user(5.0))
        sim.run()
        assert res.acquisitions == 2
        assert res.total_wait == pytest.approx(0.0)

    def test_interrupted_waiter_counts_no_acquisition(self):
        sim = Simulator()
        res = Resource(sim, "r")

        def holder():
            yield from res.acquire()
            yield sim.timeout(10.0)
            res.release()

        def victim():
            yield sim.timeout(1.0)
            try:
                yield from res.acquire()
            except Interrupt:
                pass

        def interrupter(target):
            yield sim.timeout(5.0)
            target.interrupt()

        sim.process(holder())
        v = sim.process(victim())
        sim.process(interrupter(v))
        sim.run()
        # only the holder's acquisition counts; the abandoned wait must
        # contribute neither an acquisition nor wait time
        assert res.acquisitions == 1
        assert res.total_wait == pytest.approx(0.0)

    def test_accounting_with_mixed_interrupt_and_contention(self):
        sim = Simulator()
        res = Resource(sim, "r")
        order = []

        def holder():
            yield from res.acquire()
            yield sim.timeout(10.0)
            res.release()

        def victim():
            yield sim.timeout(1.0)
            try:
                yield from res.acquire()
            except Interrupt:
                order.append("victim out")

        def survivor():
            yield sim.timeout(2.0)
            yield from res.acquire()
            order.append("survivor in")
            yield sim.timeout(4.0)
            res.release()

        def interrupter(target):
            yield sim.timeout(3.0)
            target.interrupt()

        sim.process(holder())
        v = sim.process(victim())
        sim.process(survivor())
        sim.process(interrupter(v))
        sim.run()
        assert order == ["victim out", "survivor in"]
        assert res.acquisitions == 2
        # survivor arrived at 2, acquired at 10
        assert res.total_wait == pytest.approx(8.0)
        assert not res.busy


class TestAccounting:
    def test_activations_counted(self):
        sim = Simulator()

        def proc(n):
            for _ in range(n):
                yield sim.timeout(1.0)

        sim.process(proc(10))
        sim.run()
        # initial start + 10 timeouts = 11 activations
        assert sim.activations == 11


class TestWatchdog:
    """The kernel-level guard against processes that never make
    model-time progress (satellite fix: ``Kernel.run`` previously
    looped forever on a zero-delay spin)."""

    def test_spinning_process_raises_hang_detected(self):
        sim = Simulator()

        def spinner():
            while True:  # classic livelock: busy without advancing time
                yield sim.timeout(0.0)

        sim.process(spinner(), name="spinner")
        with pytest.raises(HangDetected) as exc:
            sim.run(watchdog=Watchdog(max_stalled_activations=500))
        assert "spinner" in str(exc.value)
        assert "t=0" in str(exc.value)

    def test_spin_after_progress_still_detected(self):
        sim = Simulator()

        def late_spinner():
            yield sim.timeout(7.0)
            while True:
                yield sim.timeout(0.0)

        sim.process(late_spinner(), name="late")
        with pytest.raises(HangDetected):
            sim.run(watchdog=Watchdog(max_stalled_activations=100))
        assert sim.now == 7.0

    def test_healthy_simulation_unaffected(self):
        def workload(sim):
            def proc():
                for _ in range(50):
                    yield sim.timeout(1.0)
            sim.process(proc())

        plain = Simulator()
        workload(plain)
        plain.run()

        watched = Simulator()
        workload(watched)
        watched.run(watchdog=Watchdog(max_stalled_activations=10))
        assert watched.now == plain.now == 50.0
        assert watched.activations == plain.activations

    def test_simultaneous_events_are_not_a_false_positive(self):
        sim = Simulator()
        done = []

        def one(i):
            yield sim.timeout(1.0)
            done.append(i)

        for i in range(200):  # 200 resumptions at the same instant
            sim.process(one(i))
        sim.run(watchdog=Watchdog(max_stalled_activations=500))
        assert len(done) == 200

    def test_until_horizon_respected_under_watchdog(self):
        sim = Simulator()

        def proc():
            while True:
                yield sim.timeout(10.0)

        sim.process(proc())
        assert sim.run(until=35.0, watchdog=Watchdog()) == 35.0

    def test_wall_clock_budget(self):
        sim = Simulator()

        def creeper():
            while True:  # advances model time: invisible to stall count
                yield sim.timeout(1.0)

        sim.process(creeper())
        with pytest.raises(HangDetected) as exc:
            sim.run(watchdog=Watchdog(
                wall_clock_s=0.02, check_every=16,
            ))
        assert "wall-clock" in str(exc.value)

    def test_bad_watchdog_parameters_rejected(self):
        with pytest.raises(ValueError):
            Watchdog(max_stalled_activations=0)
        with pytest.raises(ValueError):
            Watchdog(wall_clock_s=0.0)
        with pytest.raises(ValueError):
            Watchdog(check_every=0)
