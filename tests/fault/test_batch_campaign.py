"""Campaign-level byte-identity for the vectorized batch tier.

``run_campaign(..., batch=True)`` may only change wall clock, never a
byte of the result: the full ``to_json()`` document — golden record,
rows, histogram, by-kind table, figures of merit — must be identical
batch on/off, cold/warm, at any cache fill.  These tests pin that at
E18/E24 campaign shape (200 faults, seed 7) and cover the no-op paths
(kernel-bound scenarios, store mode is exercised in
``tests/campaign``).
"""

import pytest

from repro.fault import (
    CPU_FLAGS,
    SCENARIOS,
    classify,
    run_campaign,
    run_scenario,
    run_sw_batch,
    run_sw_sweep,
    sample_faults,
)
from repro.sweep.cache import ResultCache

E24_FAULTS = 200
E24_SEED = 7


def swmac_faults(n=E24_FAULTS, seed=E24_SEED):
    return sample_faults(SCENARIOS["swmac"].targets, n, seed=seed)


class TestSwmacScenario:
    def test_golden_is_a_valid_reference(self):
        golden = run_scenario("swmac")
        assert golden["completed"] and not golden["detected"]
        assert golden["error"] is None

    def test_targets_restrict_sampling_to_cpu_kinds(self):
        kinds = {fault.kind for fault in swmac_faults(30)}
        assert kinds == {"cpu_reg_flip", "cpu_pc_flip", "cpu_flag_flip"}

    def test_all_outcome_classes_reachable(self):
        """The E24 campaign must exercise the full taxonomy, or the
        dependability table it feeds is vacuous."""
        result = run_campaign("swmac", swmac_faults(), batch=True)
        hist = result.histogram()
        missing = [outcome for outcome, n in hist.items() if n == 0]
        assert not missing, f"outcome classes never seen: {missing}"


class TestBatchIdentity:
    @pytest.mark.slow
    def test_batch_equals_scalar_cold(self):
        faults = swmac_faults()
        scalar = run_campaign("swmac", faults)
        batch = run_campaign("swmac", faults, batch=True)
        assert batch.to_json() == scalar.to_json()

    def test_batch_equals_scalar_small(self):
        faults = swmac_faults(40)
        scalar = run_campaign("swmac", faults)
        batch = run_campaign("swmac", faults, batch=True)
        assert batch.to_json() == scalar.to_json()

    def test_warm_and_partial_cache_identical(self, tmp_path):
        """A cache half-filled by a batch run, then extended by a
        second batch run, then replayed fully warm — every variant
        yields the scalar document."""
        faults = swmac_faults(60)
        reference = run_campaign("swmac", faults).to_json()
        cache = ResultCache(str(tmp_path / "cells.json"))
        run_campaign("swmac", faults[:30], batch=True, cache=cache)
        extended = run_campaign("swmac", faults, batch=True, cache=cache)
        assert extended.to_json() == reference
        warm = run_campaign("swmac", faults, batch=True, cache=cache)
        assert warm.to_json() == reference
        assert warm.stats.computed == 0

    def test_scalar_cache_feeds_batch_run(self, tmp_path):
        """Cells cached by scalar runs must be indistinguishable from
        batch-computed ones — same fingerprints, same records."""
        faults = swmac_faults(30)
        cache = ResultCache(str(tmp_path / "cells.json"))
        scalar = run_campaign("swmac", faults, cache=cache)
        batch = run_campaign("swmac", faults, batch=True, cache=cache)
        assert batch.to_json() == scalar.to_json()
        assert batch.stats.cache_hits == len(faults) + 1

    def test_kernel_scenario_batch_flag_is_a_noop(self):
        faults = sample_faults(SCENARIOS["coproc"].targets, 12, seed=3)
        scalar = run_campaign("coproc", faults)
        batch = run_campaign("coproc", faults, batch=True)
        assert batch.to_json() == scalar.to_json()


class TestSweepLanes:
    def test_input_sweep_matches_scalar_seeded_runs(self):
        """run_sw_sweep: one seed per lane, each record identical to a
        scalar run with that seed poked into the image."""
        from repro.fault.scenarios import (
            SW_SEED_ADDR,
            _build_sw_cpu,
            _drive_sw,
            _sw_record,
        )

        scenario = SCENARIOS["swmac"]
        seeds = [0, 1, 0x1234, 0xBEEF, 7, 7]
        records, stats = run_sw_sweep(scenario, seeds)
        assert len(records) == len(seeds)
        for seed, record in zip(seeds, records):
            cpu = _build_sw_cpu(scenario)
            cpu.memory.ram[SW_SEED_ADDR] = seed
            _drive_sw(cpu, scenario.software.budget)
            assert record == _sw_record(scenario, cpu, None)
        assert stats.lanes == len(seeds)

    def test_sweep_lanes_classify_like_campaign_cells(self):
        """A golden lane riding in a fault batch classifies masked."""
        scenario = SCENARIOS["swmac"]
        records, _stats = run_sw_batch(scenario, [None, None])
        assert classify(records[0], records[1]) == "masked"
