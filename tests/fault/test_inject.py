"""Tests for the fault injectors, one mechanic at a time.

Each test builds the smallest system exposing one injection surface,
arms one fault, and asserts the precise corruption — plus the
"zero-cost when idle" discipline: an attached-but-unarmed injector
must neither change the simulation nor allocate during the run.
"""

import json

import pytest

from repro.cosim.kernel import HangDetected, Simulator, Watchdog
from repro.cosim.msglevel import Channel
from repro.cosim.signals import Signal
from repro.cosim.translevel import RegisterDevice
from repro.fault import (
    FaultInjector,
    FaultSpec,
    InjectionError,
    System,
    arm_fault,
    run_scenario,
)
from repro.fault import inject as inject_mod
from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu
from repro.isa.instructions import Isa


# ----------------------------------------------------------------------
# state flips: signals and device registers
# ----------------------------------------------------------------------
class TestStateFlips:
    def test_signal_flip_changes_value_and_fires_changed(self):
        sim = Simulator()
        sig = Signal(sim, "s", init=5)
        seen = []

        def watcher():
            value = yield sig.changed
            seen.append((sim.now, value))

        sim.process(watcher(), name="watcher")
        arm_fault(System(sim, signals={"s": sig}),
                  FaultSpec(kind="signal_flip", target="s", bit=1,
                            time=10.0))
        sim.run()
        assert sig.value == 7
        assert seen == [(10.0, 7)]

    def test_reg_flip_mutates_exactly_one_bit(self):
        sim = Simulator()
        device = RegisterDevice(sim, "d", 4)
        device.regs[2] = 9
        arm_fault(System(sim, devices={"d": device}),
                  FaultSpec(kind="reg_flip", target="d", index=2,
                            bit=0, time=5.0))
        sim.run()
        assert device.regs == [0, 0, 8, 0]

    def test_unknown_signal_rejected(self):
        sim = Simulator()
        with pytest.raises(InjectionError, match="no signal"):
            arm_fault(System(sim),
                      FaultSpec(kind="signal_flip", target="ghost"))

    def test_unknown_device_rejected(self):
        sim = Simulator()
        with pytest.raises(InjectionError, match="no register device"):
            arm_fault(System(sim),
                      FaultSpec(kind="reg_flip", target="ghost"))


# ----------------------------------------------------------------------
# CPU architectural state
# ----------------------------------------------------------------------
COUNTER_ASM = """
        addi r1, r0, 0
        addi r1, r1, 1
        addi r1, r1, 1
        addi r1, r1, 1
        addi r1, r1, 1
        halt
"""


def _fresh_cpu():
    cpu = Cpu(Isa())
    cpu.memory.load_image(assemble(COUNTER_ASM).image)
    return cpu


class TestCpuFaults:
    def test_reg_flip_after_nth_instruction(self):
        cpu = _fresh_cpu()
        # after instruction 3 r1 == 2; flip bit 4 -> 18; two more
        # increments land on 20
        arm_fault(System(Simulator(), cpu=cpu),
                  FaultSpec(kind="cpu_reg_flip", target="cpu", index=1,
                            bit=4, count=3))
        cpu.run()
        assert cpu.regs[1] == 20

    def test_pc_flip_redirects_control_flow(self):
        cpu = _fresh_cpu()
        # after instruction 2 pc == 2; bit 0 flips it to 3, skipping
        # one increment
        arm_fault(System(Simulator(), cpu=cpu),
                  FaultSpec(kind="cpu_pc_flip", target="cpu", bit=0,
                            count=2))
        cpu.run()
        assert cpu.halted
        assert cpu.regs[1] == 3

    def test_flag_flip_halts_early(self):
        cpu = _fresh_cpu()
        arm_fault(System(Simulator(), cpu=cpu),
                  FaultSpec(kind="cpu_flag_flip", target="cpu",
                            flag="halted", count=2))
        cpu.run()
        assert cpu.regs[1] == 1

    def test_saboteur_fires_exactly_once(self):
        cpu = _fresh_cpu()
        injector = arm_fault(
            System(Simulator(), cpu=cpu),
            FaultSpec(kind="cpu_reg_flip", target="cpu", index=1,
                      bit=0, count=1))
        cpu.run()
        (saboteur,) = cpu.observers
        assert saboteur.fired
        assert injector.armed  # the spec stayed registered
        # one flip of bit 0 at r1==0 -> 1, then four increments -> 5
        assert cpu.regs[1] == 5

    def test_cpu_fault_needs_a_cpu(self):
        with pytest.raises(InjectionError, match="no CPU"):
            arm_fault(System(Simulator()),
                      FaultSpec(kind="cpu_pc_flip", target="cpu",
                                count=1))

    def test_bad_register_index_rejected(self):
        with pytest.raises(InjectionError, match="no register"):
            arm_fault(System(Simulator(), cpu=_fresh_cpu()),
                      FaultSpec(kind="cpu_reg_flip", target="cpu",
                                index=16, count=1))


# ----------------------------------------------------------------------
# message-boundary faults
# ----------------------------------------------------------------------
def _pipe(fault=None, n_sent=4, run_until=1000.0):
    """Producer sends 1..n on one channel; collector drains it.

    Returns (received values, receive times).
    """
    sim = Simulator()
    chan = Channel(sim, "c", latency_per_message=2.0)
    got, times = [], []

    def producer():
        for i in range(1, n_sent + 1):
            yield from chan.send(i)

    def collector():
        while True:
            item = yield from chan.receive()
            got.append(item)
            times.append(sim.now)

    sim.process(producer(), name="producer")
    sim.process(collector(), name="collector")
    if fault is not None:
        arm_fault(System(sim, channels={"c": chan}), fault)
    sim.run(until=run_until)
    return got, times


class TestMessageFaults:
    def test_clean_pipe_delivers_in_order(self):
        got, _ = _pipe()
        assert got == [1, 2, 3, 4]

    def test_drop_loses_exactly_one_message(self):
        got, _ = _pipe(FaultSpec(kind="msg_drop", target="c", index=1))
        assert got == [1, 3, 4]

    def test_dup_delivers_twice(self):
        got, _ = _pipe(FaultSpec(kind="msg_dup", target="c", index=1))
        assert got == [1, 2, 2, 3, 4]

    def test_delay_preserves_content_but_not_timing(self):
        clean, clean_times = _pipe()
        got, times = _pipe(
            FaultSpec(kind="msg_delay", target="c", index=1,
                      delay=50.0))
        assert got == clean
        assert times[0] == clean_times[0]
        assert times[1] >= clean_times[1] + 50.0

    def test_reorder_swaps_adjacent_messages(self):
        got, _ = _pipe(
            FaultSpec(kind="msg_reorder", target="c", index=1))
        assert got == [1, 3, 2, 4]

    def test_reorder_of_final_message_loses_it(self):
        # nothing follows message 3, so the held message never ships —
        # the classifier sees this as a lost message (hang/sdc), which
        # is exactly what a real late-reorder does to a finite stream
        got, _ = _pipe(
            FaultSpec(kind="msg_reorder", target="c", index=3))
        assert got == [1, 2, 3]

    def test_corrupt_flips_payload_bit(self):
        got, _ = _pipe(
            FaultSpec(kind="msg_corrupt", target="c", index=2, bit=0))
        assert got == [1, 2, 2, 4]

    def test_unknown_channel_rejected(self):
        with pytest.raises(InjectionError, match="no channel"):
            arm_fault(System(Simulator()),
                      FaultSpec(kind="msg_drop", target="ghost"))

    def test_two_faults_stack_on_one_channel(self):
        sim = Simulator()
        chan = Channel(sim, "c")
        got = []

        def producer():
            for i in range(1, 5):
                yield from chan.send(i)

        def collector():
            while True:
                got.append((yield from chan.receive()))

        sim.process(producer())
        sim.process(collector())
        system = System(sim, channels={"c": chan})
        injector = FaultInjector(system)
        injector.arm(FaultSpec(kind="msg_corrupt", target="c", index=0,
                               bit=3))
        injector.arm(FaultSpec(kind="msg_drop", target="c", index=2))
        sim.run(until=100.0)
        assert got == [9, 2, 4]


# ----------------------------------------------------------------------
# timing faults
# ----------------------------------------------------------------------
class TestTimingFaults:
    def test_proc_spin_is_caught_by_the_watchdog(self):
        # a spin at t=3 never lets model time pass 3.0 — without the
        # watchdog this run would literally never return, which is the
        # whole point of the timing-fault kind
        sim = Simulator()
        arm_fault(System(sim),
                  FaultSpec(kind="proc_spin", target="sab", time=3.0))
        with pytest.raises(HangDetected, match="fault.sab"):
            sim.run(watchdog=Watchdog(max_stalled_activations=50))
        assert sim.now == 3.0

    def test_saboteur_is_quiet_before_its_trigger_time(self):
        sim = Simulator()
        arm_fault(System(sim),
                  FaultSpec(kind="proc_spin", target="sab", time=50.0))
        marks = []

        def worker():
            yield sim.timeout(10.0)
            marks.append(sim.now)

        sim.process(worker(), name="worker")
        with pytest.raises(HangDetected):
            sim.run(watchdog=Watchdog(max_stalled_activations=100))
        assert marks == [10.0]
        assert sim.now == 50.0


# ----------------------------------------------------------------------
# the idle injector is free
# ----------------------------------------------------------------------
class TestZeroCostWhenIdle:
    def test_unarmed_injector_run_is_byte_identical(self):
        baseline = run_scenario("msgpipe")  # builds its own injector...
        sim = Simulator()
        from repro.fault.scenarios import SCENARIOS
        system, summarize = SCENARIOS["msgpipe"].build(sim)
        # ...but prove a *separately* attached one changes nothing
        FaultInjector(system)
        sim.run(until=SCENARIOS["msgpipe"].horizon)
        record = summarize()
        record.update(scenario="msgpipe", error=None, sim_time=sim.now,
                      activations=sim.activations)
        assert json.dumps(record, sort_keys=True) == \
            json.dumps(baseline, sort_keys=True)

    def test_unarmed_injector_allocates_nothing_during_run(self):
        """tracemalloc must see zero allocations attributable to
        inject.py while a fault-free simulation runs — attachment is
        construction-time only."""
        import tracemalloc

        from repro.fault.scenarios import SCENARIOS

        run_scenario("msgpipe")  # warm caches
        sim = Simulator()
        system, _ = SCENARIOS["msgpipe"].build(sim)
        FaultInjector(system)
        tracemalloc.start(10)
        try:
            sim.run(until=SCENARIOS["msgpipe"].horizon)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = snapshot.filter_traces(
            [tracemalloc.Filter(True, inject_mod.__file__)]
        ).statistics("filename")
        allocated = sum(s.size for s in stats)
        assert allocated == 0, (
            f"inject.py allocated {allocated} bytes with no fault armed"
        )

    def test_clean_run_never_constructs_a_saboteur(self, monkeypatch):
        """Poisoned constructors: a golden run must not touch any
        injection machinery at all."""
        def poisoned(*args, **kwargs):
            raise AssertionError(
                "saboteur constructed during a fault-free run"
            )

        monkeypatch.setattr(inject_mod._CpuSaboteur, "__init__",
                            poisoned)
        monkeypatch.setattr(inject_mod._MessageSaboteur, "__init__",
                            poisoned)
        monkeypatch.setattr(inject_mod, "_flip_later", poisoned)
        monkeypatch.setattr(inject_mod, "_spin_later", poisoned)
        record = run_scenario("coproc")
        assert record["completed"] and not record["detected"]
