"""Tests for the fault specification model and the seeded sampler."""

import json

import pytest

from repro.fault import (
    CPU_FLAGS,
    KINDS,
    OUTCOMES,
    FaultSpec,
    FaultSpecError,
    sample_faults,
)
from repro.fault.spec import MESSAGE_KINDS


TARGETS = {
    "signals": ["enable", "clk"],
    "devices": {"mac": 4, "rx": 3},
    "channels": {"out": 4},
    "cpu": {"regs": 16, "max_count": 200},
    "time": (0.0, 1000.0),
    "data_bits": 16,
}


class TestFaultSpec:
    def test_minimal_specs_for_every_kind(self):
        for kind in KINDS:
            extra = {}
            if kind == "msg_delay":
                extra["delay"] = 5.0
            if kind == "cpu_flag_flip":
                extra["flag"] = "halted"
            spec = FaultSpec(kind=kind, target="x", **extra)
            assert spec.kind == kind
            assert spec.describe()

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            FaultSpec(kind="gamma_ray", target="x")

    def test_empty_target_rejected(self):
        with pytest.raises(FaultSpecError, match="target"):
            FaultSpec(kind="signal_flip", target="")

    @pytest.mark.parametrize("field,value", [
        ("index", -1), ("bit", 32), ("bit", -1),
        ("time", -0.5), ("count", -2),
    ])
    def test_out_of_range_fields_rejected(self, field, value):
        with pytest.raises(FaultSpecError):
            FaultSpec(kind="reg_flip", target="mac", **{field: value})

    def test_delay_only_for_msg_delay(self):
        with pytest.raises(FaultSpecError, match="delay"):
            FaultSpec(kind="msg_drop", target="out", delay=3.0)
        with pytest.raises(FaultSpecError, match="delay"):
            FaultSpec(kind="msg_delay", target="out", delay=0.0)

    def test_flag_only_for_cpu_flag_flip(self):
        with pytest.raises(FaultSpecError, match="flag"):
            FaultSpec(kind="signal_flip", target="s", flag="halted")
        with pytest.raises(FaultSpecError, match="flag"):
            FaultSpec(kind="cpu_flag_flip", target="cpu", flag="parity")
        for flag in CPU_FLAGS:
            FaultSpec(kind="cpu_flag_flip", target="cpu", flag=flag)

    def test_dict_roundtrip(self):
        spec = FaultSpec(kind="msg_delay", target="out", index=2,
                         delay=25.0)
        clone = FaultSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint == spec.fingerprint

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultSpecError, match="unknown fault fields"):
            FaultSpec.from_dict({
                "kind": "signal_flip", "target": "s", "severity": 9,
            })

    def test_fingerprint_is_stable_and_discriminating(self):
        a = FaultSpec(kind="reg_flip", target="mac", index=2, bit=3,
                      time=100.0)
        b = FaultSpec(kind="reg_flip", target="mac", index=2, bit=3,
                      time=100.0)
        c = FaultSpec(kind="reg_flip", target="mac", index=2, bit=4,
                      time=100.0)
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint
        assert len(a.fingerprint) == 64

    def test_canonical_json_carries_version(self):
        doc = json.loads(
            FaultSpec(kind="proc_spin", target="s").canonical_json()
        )
        assert doc["version"] >= 1

    def test_outcomes_are_the_five_classes(self):
        assert OUTCOMES == ("masked", "sdc", "detected", "hang", "crash")


class TestSampler:
    def test_same_seed_same_faults(self):
        assert sample_faults(TARGETS, 40, seed=3) == \
            sample_faults(TARGETS, 40, seed=3)

    def test_different_seed_different_faults(self):
        assert sample_faults(TARGETS, 40, seed=3) != \
            sample_faults(TARGETS, 40, seed=4)

    def test_stratified_over_every_kind(self):
        faults = sample_faults(TARGETS, len(KINDS) * 2, seed=0)
        assert {f.kind for f in faults} == set(KINDS)

    def test_kinds_without_a_surface_are_skipped(self):
        faults = sample_faults(
            {"channels": {"a": 5}, "time": (0.0, 10.0)}, 12, seed=1,
        )
        assert faults
        assert {f.kind for f in faults} <= \
            set(MESSAGE_KINDS) | {"proc_spin"}

    def test_explicit_kind_filter(self):
        faults = sample_faults(TARGETS, 6, seed=0, kinds=["msg_drop"])
        assert all(f.kind == "msg_drop" for f in faults)

    def test_no_applicable_kind_is_an_error(self):
        with pytest.raises(FaultSpecError, match="no applicable"):
            sample_faults({"signals": []}, 3, seed=0,
                          kinds=["signal_flip"])

    def test_samples_respect_spec_validation(self):
        # every sampled fault constructs, so it already passed
        # __post_init__; spot-check ranges anyway
        for fault in sample_faults(TARGETS, 60, seed=9):
            assert 0 <= fault.bit < 16
            assert fault.time >= 0.0
            if fault.kind == "cpu_reg_flip":
                assert 1 <= fault.index < 16
