"""Tests for the campaign runner, classifier, and dependability report."""

import json

import pytest

from repro.fault import (
    OUTCOMES,
    CampaignError,
    FaultSpec,
    SCENARIOS,
    Scenario,
    System,
    cell_fingerprint,
    classify,
    run_campaign,
    sample_faults,
)
from repro.obs.spans import SpanTracer
from repro.sweep import ResultCache


GOLDEN = {"completed": True, "detected": False, "data": [1, 2, 3],
          "error": None}


def _record(**overrides):
    rec = dict(GOLDEN)
    rec.update(overrides)
    return rec


class TestClassify:
    def test_masked(self):
        assert classify(GOLDEN, _record()) == "masked"

    def test_sdc_on_output_difference(self):
        assert classify(GOLDEN, _record(data=[1, 2, 9])) == "sdc"

    def test_detected_beats_sdc(self):
        faulty = _record(data=[1, 2, 9], detected=True)
        assert classify(GOLDEN, faulty) == "detected"

    def test_incomplete_run_is_a_hang(self):
        faulty = _record(completed=False, data=[1])
        assert classify(GOLDEN, faulty) == "hang"

    def test_watchdog_error_is_a_hang(self):
        faulty = _record(
            completed=False, data=[],
            error={"type": "HangDetected", "message": "stalled"})
        assert classify(GOLDEN, faulty) == "hang"

    def test_any_other_error_is_a_crash(self):
        for err_type in ("CpuError", "SimulationError", "ZeroDivisionError"):
            faulty = _record(
                completed=False, data=[],
                error={"type": err_type, "message": "boom"})
            assert classify(GOLDEN, faulty) == "crash"

    def test_every_record_lands_in_exactly_one_class(self):
        # the precedence chain is total: membership in OUTCOMES is
        # enough, uniqueness is by construction (single return)
        for faulty in [
            _record(),
            _record(data=[9]),
            _record(detected=True),
            _record(completed=False),
            _record(error={"type": "X", "message": ""}),
        ]:
            assert classify(GOLDEN, faulty) in OUTCOMES


class TestFingerprints:
    def test_golden_and_fault_cells_distinct(self):
        fault = FaultSpec(kind="msg_drop", target="a", index=1)
        assert cell_fingerprint("msgpipe", None) != \
            cell_fingerprint("msgpipe", fault)

    def test_scenario_name_is_part_of_the_key(self):
        fault = FaultSpec(kind="proc_spin", target="s", time=1.0)
        assert cell_fingerprint("msgpipe", fault) != \
            cell_fingerprint("coproc", fault)


class TestCampaign:
    def test_rows_follow_input_order_and_histogram_is_total(self):
        faults = sample_faults(SCENARIOS["msgpipe"].targets, 10, seed=2)
        result = run_campaign("msgpipe", faults)
        assert [r["fault"] for r in result.rows] == \
            [f.to_dict() for f in faults]
        hist = result.histogram()
        assert set(hist) == set(OUTCOMES)  # zero-filled classes present
        assert sum(hist.values()) == len(faults)

    def test_duplicate_faults_computed_once(self):
        fault = FaultSpec(kind="msg_drop", target="a", index=1)
        result = run_campaign("msgpipe", [fault, fault, fault])
        assert len(result.rows) == 3
        assert result.stats.duplicates == 2
        assert result.stats.computed == 2  # golden + one cell
        assert len({r["outcome"] for r in result.rows}) == 1

    def test_histogram_identical_across_worker_counts(self):
        faults = sample_faults(SCENARIOS["msgpipe"].targets, 12, seed=5)
        serial = run_campaign("msgpipe", faults, workers=1)
        pooled = run_campaign("msgpipe", faults, workers=2)
        assert [r["outcome"] for r in serial.rows] == \
            [r["outcome"] for r in pooled.rows]
        assert serial.to_json() == pooled.to_json()

    def test_cache_makes_reruns_incremental(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        faults = sample_faults(SCENARIOS["msgpipe"].targets, 6, seed=1)
        first = run_campaign("msgpipe", faults, cache=cache)
        assert first.stats.cache_hits == 0
        again = run_campaign("msgpipe", faults, cache=cache)
        assert again.stats.computed == 0
        # every distinct cell (golden + faults) now comes from the cache
        assert again.stats.cache_hits + again.stats.duplicates == \
            len(faults) + 1
        assert again.to_json() == first.to_json()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_campaign("ghost", [])

    def test_invalid_golden_raises_campaign_error(self, monkeypatch):
        # a scenario whose golden run never completes is unusable as a
        # classification reference
        broken = SCENARIOS["msgpipe"]

        def build_broken(sim):
            system, summarize = broken.build(sim)

            def bad_summary():
                record = summarize()
                record["completed"] = False
                return record

            return system, bad_summary

        monkeypatch.setitem(
            SCENARIOS, "broken",
            Scenario(name="broken", targets=broken.targets,
                     horizon=broken.horizon, build=build_broken))
        with pytest.raises(CampaignError, match="golden run"):
            run_campaign("broken", [])

    def test_dependability_table_mentions_every_kind_and_coverage(self):
        faults = sample_faults(SCENARIOS["msgpipe"].targets, 14, seed=3)
        result = run_campaign("msgpipe", faults)
        table = result.dependability_table()
        for kind in {f.kind for f in faults}:
            assert kind in table
        assert "detection coverage" in table
        assert "TOTAL" in table

    def test_to_json_is_loadable_and_versioned(self):
        result = run_campaign(
            "msgpipe",
            [FaultSpec(kind="msg_corrupt", target="a", index=1, bit=2)])
        doc = json.loads(result.to_json())
        assert doc["version"] >= 1
        assert doc["histogram"]["detected"] == 1
        assert doc["rows"][0]["label"]

    def test_span_tracer_gets_per_fault_spans(self):
        spans = SpanTracer()
        faults = sample_faults(SCENARIOS["msgpipe"].targets, 4, seed=0)
        result = run_campaign("msgpipe", faults, span_tracer=spans)
        cells = spans.spans_named("fault_cell")
        # golden + 4 faults (minus duplicates, of which there are none)
        assert len(cells) == 5
        assert spans.spans_named("campaign")
        labels = {s.attrs["fault"] for s in cells}
        assert "golden" in labels
        # the observed path must not perturb the records
        plain = run_campaign("msgpipe", faults)
        assert result.to_json() == plain.to_json()

    def test_coverage_figures_bounded(self):
        faults = sample_faults(SCENARIOS["msgpipe"].targets, 10, seed=7)
        result = run_campaign("msgpipe", faults)
        assert 0.0 <= result.detection_coverage() <= 1.0
        assert 0.0 <= result.safe_ratio() <= 1.0


class TestCoprocCampaign:
    def test_all_five_classes_reachable_on_the_full_stack(self):
        faults = sample_faults(SCENARIOS["coproc"].targets, 33, seed=7)
        result = run_campaign("coproc", faults)
        hist = result.histogram()
        assert all(hist[outcome] > 0 for outcome in OUTCOMES), hist
