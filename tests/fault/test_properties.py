"""Property-based robustness harness for the fault subsystem.

Hypothesis drives the fault space instead of hand-picked examples; the
properties are the subsystem's contract:

* every spec the sampler emits is valid, serializable, and classifies
  into **exactly one** outcome class;
* a fault run is a pure function of (scenario, spec) — re-running it
  yields a byte-identical record, which is what makes classification
  independent of worker count and cache state;
* the classifier's precedence chain is total and consistent with the
  record's observable predicates.

Everything is seeded/derandomized: this suite is deterministic in CI.
"""

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fault import (
    KINDS,
    OUTCOMES,
    FaultSpec,
    SCENARIOS,
    classify,
    run_scenario,
    sample_faults,
)

MSGPIPE = SCENARIOS["msgpipe"].targets

COMMON = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# spec-level properties (cheap: no simulation)
# ----------------------------------------------------------------------
@settings(max_examples=100, **COMMON)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(0, 30))
def test_sampler_is_deterministic_and_valid(seed, n):
    first = sample_faults(MSGPIPE, n, seed=seed)
    second = sample_faults(MSGPIPE, n, seed=seed)
    assert first == second
    assert len(first) == n
    for spec in first:
        assert spec.kind in KINDS
        clone = FaultSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert clone == spec
        assert clone.fingerprint == spec.fingerprint


@settings(max_examples=100, **COMMON)
@given(seed=st.integers(0, 2**32 - 1))
def test_fingerprints_distinct_within_a_sample(seed):
    specs = sample_faults(MSGPIPE, 20, seed=seed)
    by_fp = {}
    for spec in specs:
        prev = by_fp.setdefault(spec.fingerprint, spec)
        assert prev == spec  # equal fingerprint implies equal spec


# ----------------------------------------------------------------------
# run-level properties (each example simulates msgpipe once or twice)
# ----------------------------------------------------------------------
def _golden():
    # computed once; module-level cache keeps the suite fast
    if not hasattr(_golden, "record"):
        _golden.record = run_scenario("msgpipe")
    return _golden.record


@settings(max_examples=25, **COMMON)
@given(seed=st.integers(0, 2**20), pick=st.integers(0, 11))
def test_every_fault_classifies_into_exactly_one_class(seed, pick):
    spec = sample_faults(MSGPIPE, 12, seed=seed)[pick]
    record = run_scenario("msgpipe", spec)
    outcome = classify(_golden(), record)
    assert outcome in OUTCOMES
    # "exactly one": the observable predicates must agree with the
    # precedence chain, so no record satisfies two classes at once
    if record["error"] is not None:
        assert outcome in ("hang", "crash")
    elif not record["completed"]:
        assert outcome == "hang"
    elif record["detected"]:
        assert outcome == "detected"
    elif record["data"] != _golden()["data"]:
        assert outcome == "sdc"
    else:
        assert outcome == "masked"


@settings(max_examples=12, **COMMON)
@given(seed=st.integers(0, 2**20))
def test_fault_runs_are_reproducible(seed):
    spec = sample_faults(MSGPIPE, 1, seed=seed)[0]
    first = run_scenario("msgpipe", spec)
    second = run_scenario("msgpipe", spec)
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)


@settings(max_examples=12, **COMMON)
@given(seed=st.integers(0, 2**20))
def test_golden_record_unperturbed_by_prior_fault_runs(seed):
    spec = sample_faults(MSGPIPE, 1, seed=seed)[0]
    run_scenario("msgpipe", spec)  # any lingering state would leak here
    fresh = run_scenario("msgpipe")
    assert json.dumps(fresh, sort_keys=True) == \
        json.dumps(_golden(), sort_keys=True)


@settings(max_examples=8, **COMMON)
@given(seed=st.integers(0, 2**20))
def test_delay_faults_never_corrupt_content(seed):
    """msg_delay changes timing, never data: by the SBFI taxonomy it
    must classify masked (or hang, if the delay starves a horizon) —
    never sdc/detected/crash."""
    specs = sample_faults(MSGPIPE, 10, seed=seed,
                          kinds=["msg_delay"])
    record = run_scenario("msgpipe", specs[0])
    assert classify(_golden(), record) in ("masked", "hang")
