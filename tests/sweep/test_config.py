"""Tests for sweep configs: fingerprints, seeds, grids, problems."""

import json

import pytest

from repro.graph.generators import COST_MODELS, GENERATORS
from repro.partition import HEURISTICS
from repro.sweep import (
    SweepConfig,
    expand_grid,
    graph_signature,
    parse_seed_spec,
)


class TestFingerprint:
    def test_stable_across_instances(self):
        a = SweepConfig(generator="layered", seed=3, heuristic="kl")
        b = SweepConfig(generator="layered", seed=3, heuristic="kl")
        assert a.fingerprint == b.fingerprint
        assert a.canonical_json() == b.canonical_json()

    def test_every_field_changes_it(self):
        base = SweepConfig()
        variants = [
            SweepConfig(generator="pipeline"),
            SweepConfig(n_tasks=13),
            SweepConfig(cost_model="comm_heavy"),
            SweepConfig(heuristic="kl"),
            SweepConfig(seed=1),
            SweepConfig(comm="tight"),
            SweepConfig(deadline_factor=0.8),
            SweepConfig(deadline_factor=None),
            SweepConfig(area_budget_factor=None),
            SweepConfig(hw_parallelism=2),
        ]
        prints = {v.fingerprint for v in variants}
        assert base.fingerprint not in prints
        assert len(prints) == len(variants)

    def test_fingerprint_is_hex_sha256(self):
        fp = SweepConfig().fingerprint
        assert len(fp) == 64
        int(fp, 16)  # parses as hex

    def test_problem_key_ignores_heuristic(self):
        a = SweepConfig(heuristic="greedy", seed=7)
        b = SweepConfig(heuristic="annealing", seed=7)
        assert a.problem_key() == b.problem_key()
        assert a.fingerprint != b.fingerprint

    def test_roundtrip_dict(self):
        config = SweepConfig(generator="tree", n_tasks=9, seed=5,
                             heuristic="cosyma", deadline_factor=None)
        clone = SweepConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.fingerprint == config.fingerprint

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(KeyError):
            SweepConfig.from_dict({"generator": "layered", "bogus": 1})

    def test_canonical_json_is_sorted(self):
        doc = json.loads(SweepConfig().canonical_json())
        assert list(doc) == sorted(doc)

    def test_validation(self):
        with pytest.raises(KeyError):
            SweepConfig(generator="nope")
        with pytest.raises(KeyError):
            SweepConfig(heuristic="nope")
        with pytest.raises(KeyError):
            SweepConfig(cost_model="nope")
        with pytest.raises(KeyError):
            SweepConfig(comm="nope")
        with pytest.raises(ValueError):
            SweepConfig(n_tasks=0)
        with pytest.raises(ValueError):
            SweepConfig(deadline_factor=-1.0)


class TestSeedDerivation:
    def test_graph_seed_independent_of_heuristic(self):
        seeds = {
            SweepConfig(heuristic=h, seed=11).graph_seed()
            for h in HEURISTICS
        }
        assert len(seeds) == 1

    def test_graph_seed_varies_with_cell_seed(self):
        assert SweepConfig(seed=0).graph_seed() \
            != SweepConfig(seed=1).graph_seed()

    def test_heuristic_seed_varies_with_heuristic(self):
        a = SweepConfig(heuristic="annealing", seed=2).heuristic_seed()
        b = SweepConfig(heuristic="greedy", seed=2).heuristic_seed()
        assert a != b

    def test_derivation_is_pure(self):
        config = SweepConfig(seed=9)
        assert config.graph_seed() == config.graph_seed()
        assert config.heuristic_seed() == config.heuristic_seed()


class TestBuildProblem:
    def test_same_graph_for_every_heuristic(self):
        signatures = {
            graph_signature(
                SweepConfig(heuristic=h, seed=4).build_problem().graph
            )
            for h in HEURISTICS
        }
        assert len(signatures) == 1

    def test_deadline_and_budget_factors(self):
        problem = SweepConfig(
            seed=2, deadline_factor=0.5, area_budget_factor=0.25
        ).build_problem()
        all_sw, _path = problem.graph.critical_path("sw")
        assert problem.deadline_ns == pytest.approx(all_sw * 0.5)
        total = sum(
            problem.graph.task(n).hw_area
            for n in problem.graph.task_names
        )
        assert problem.hw_area_budget == pytest.approx(total * 0.25)

    def test_none_factors_mean_unconstrained(self):
        problem = SweepConfig(
            deadline_factor=None, area_budget_factor=None
        ).build_problem()
        assert problem.deadline_ns is None
        assert problem.hw_area_budget is None

    def test_every_generator_builds(self):
        for generator in GENERATORS:
            problem = SweepConfig(
                generator=generator, n_tasks=8, seed=1
            ).build_problem()
            assert len(problem.graph) >= 1

    def test_every_cost_model_builds(self):
        for cost_model in COST_MODELS:
            problem = SweepConfig(
                cost_model=cost_model, n_tasks=6, seed=1
            ).build_problem()
            assert len(problem.graph) >= 1


class TestGrid:
    def test_cartesian_count_and_order(self):
        grid = expand_grid(
            generators=("layered", "pipeline"),
            cost_models=("default", "comm_heavy"),
            heuristics=("greedy", "vulcan"),
            seeds=range(4),
        )
        assert len(grid) == 2 * 2 * 2 * 4
        # deterministic order: same call, same sequence
        again = expand_grid(
            generators=("layered", "pipeline"),
            cost_models=("default", "comm_heavy"),
            heuristics=("greedy", "vulcan"),
            seeds=range(4),
        )
        assert grid == again
        # all cells distinct
        assert len({c.fingerprint for c in grid}) == len(grid)

    def test_heuristics_adjacent_within_problem(self):
        grid = expand_grid(heuristics=("greedy", "kl"), seeds=range(2))
        # heuristic is an outer axis relative to seed
        assert [c.heuristic for c in grid] == \
            ["greedy", "greedy", "kl", "kl"]


class TestSeedSpec:
    def test_ranges_and_lists(self):
        assert parse_seed_spec("0-3,7,10-11") == [0, 1, 2, 3, 7, 10, 11]
        assert parse_seed_spec("5") == [5]
        assert parse_seed_spec("-3") == [-3]

    def test_rejects_empty_and_backward(self):
        with pytest.raises(ValueError):
            parse_seed_spec("")
        with pytest.raises(ValueError):
            parse_seed_spec("5-2")
