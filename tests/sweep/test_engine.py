"""Tests for the sweep engine: determinism, caching, parallelism.

The two load-bearing guarantees (ISSUE 2's determinism satellite):

* identical grid + seeds produce *byte-identical* result tables at
  ``workers=1`` and ``workers=4``;
* a second run against a warm cache recomputes nothing, asserted
  through the PR 1 metrics layer rather than by timing.
"""

import time

import pytest

from repro.cosim.metrics import MetricsRegistry
from repro.cosim.trace import Tracer
from repro.obs.spans import SpanTracer
from repro.partition import HEURISTICS
from repro.sweep import (
    PoolJobError,
    ResultCache,
    SweepCellError,
    SweepConfig,
    SweepResult,
    expand_grid,
    pool_map,
    run_cell,
    run_sweep,
)


def small_grid(heuristics=("greedy", "vulcan"), seeds=range(2)):
    return expand_grid(
        generators=("layered", "pipeline"),
        n_tasks=(6,),
        heuristics=heuristics,
        seeds=seeds,
    )


class TestRunCell:
    def test_record_shape(self):
        config = SweepConfig(n_tasks=6, heuristic="greedy", seed=1)
        record = run_cell(config)
        assert record["fingerprint"] == config.fingerprint
        assert record["problem_key"] == config.problem_key()
        assert record["config"] == config.to_dict()
        assert record["algorithm"] == "greedy"
        assert record["n_hw"] + record["n_sw"] == record["n_tasks"]
        assert sorted(record["hw_tasks"]) == record["hw_tasks"]
        assert set(record["breakdown"]) == {
            "performance", "implementation_cost", "modifiability",
            "nature", "concurrency", "communication",
        }

    def test_record_is_deterministic(self):
        config = SweepConfig(n_tasks=7, heuristic="annealing", seed=3)
        assert run_cell(config) == run_cell(config)

    def test_stochastic_heuristic_seeded_per_cell(self):
        """Two cells differing only in seed see different problems AND
        different annealing trajectories."""
        a = run_cell(SweepConfig(n_tasks=8, heuristic="annealing", seed=0))
        b = run_cell(SweepConfig(n_tasks=8, heuristic="annealing", seed=1))
        assert a["fingerprint"] != b["fingerprint"]
        assert a != b


class TestDeterminism:
    def test_serial_vs_parallel_byte_identical(self):
        grid = small_grid()
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=4)
        assert serial.to_json() == parallel.to_json()

    def test_table_order_follows_grid_order(self):
        grid = small_grid()
        table = run_sweep(grid, workers=1)
        assert [r["fingerprint"] for r in table] == \
            [c.fingerprint for c in grid]

    def test_roundtrip_through_json(self, tmp_path):
        table = run_sweep(small_grid(), workers=1)
        path = tmp_path / "table.json"
        table.write_json(path)
        loaded = SweepResult.load(path)
        assert loaded == table
        assert loaded.to_json() == table.to_json()


class TestCaching:
    def test_second_run_is_fully_cached(self, tmp_path):
        grid = small_grid()
        cache = ResultCache(tmp_path / "cache")

        cold_metrics = MetricsRegistry()
        cold = run_sweep(grid, workers=1, cache=cache,
                         metrics=cold_metrics)
        assert cold_metrics.counter("sweep.cells.computed").value \
            == len(grid)
        assert cold_metrics.counter("sweep.cache.hits").value == 0

        warm_metrics = MetricsRegistry()
        warm = run_sweep(grid, workers=1, cache=cache,
                         metrics=warm_metrics)
        # zero recomputation, asserted via the metrics layer
        assert warm_metrics.counter("sweep.cells.computed").value == 0
        assert warm_metrics.counter("sweep.cache.hits").value == len(grid)
        assert warm.to_json() == cold.to_json()

    def test_incremental_grid_extension(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        base = small_grid(heuristics=("greedy",))
        run_sweep(base, workers=1, cache=cache)

        extended = small_grid(heuristics=("greedy", "cosyma"))
        metrics = MetricsRegistry()
        table = run_sweep(extended, workers=1, cache=cache,
                          metrics=metrics)
        new_cells = len(extended) - len(base)
        assert metrics.counter("sweep.cells.computed").value == new_cells
        assert metrics.counter("sweep.cache.hits").value == len(base)
        assert len(table) == len(extended)

    def test_parallel_run_populates_cache(self, tmp_path):
        grid = small_grid()
        cache = ResultCache(tmp_path / "cache")
        run_sweep(grid, workers=2, cache=cache)
        assert len(cache) == len(grid)
        metrics = MetricsRegistry()
        run_sweep(grid, workers=1, cache=cache, metrics=metrics)
        assert metrics.counter("sweep.cells.computed").value == 0

    def test_duplicate_cells_computed_once(self):
        grid = expand_grid(generators=("layered",), n_tasks=(6,),
                           heuristics=("greedy",), seeds=[0, 0, 0])
        metrics = MetricsRegistry()
        table = run_sweep(grid, workers=1, metrics=metrics)
        assert len(table) == 3
        assert metrics.counter("sweep.cells.computed").value == 1
        assert table.stats.duplicates == 2
        assert len({r["fingerprint"] for r in table}) == 1


class TestObservability:
    def test_tracer_records_cells(self, tmp_path):
        grid = small_grid(heuristics=("greedy",))
        tracer = Tracer()
        cache = ResultCache(tmp_path / "cache")
        run_sweep(grid, workers=1, cache=cache, tracer=tracer)
        cells = tracer.records_of("sweep_cell")
        assert len(cells) == len(grid)
        assert all(r.data["cached"] is False for r in cells)

        warm_tracer = Tracer()
        run_sweep(grid, workers=1, cache=cache, tracer=warm_tracer)
        cells = warm_tracer.records_of("sweep_cell")
        assert all(r.data["cached"] is True for r in cells)

    def test_stats_summary_text(self):
        table = run_sweep(small_grid(heuristics=("greedy",)), workers=1)
        text = table.stats.summary()
        assert "cells" in text and "computed" in text

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            run_sweep(small_grid(), workers=0)


class TestTable:
    def test_comparison_report_lists_heuristics(self):
        table = run_sweep(small_grid(), workers=1)
        report = table.comparison_report()
        assert "greedy" in report and "vulcan" in report
        assert len(report.splitlines()) == 2 + len(table.heuristics())

    def test_wins_sum_over_compared_problems(self):
        table = run_sweep(small_grid(), workers=1)
        contested = [
            records for records in table.by_problem().values()
            if len(records) >= 2
        ]
        assert sum(table.wins().values()) == len(contested)

    def test_by_problem_groups_heuristics_together(self):
        table = run_sweep(small_grid(), workers=1)
        for records in table.by_problem().values():
            keys = {r["problem_key"] for r in records}
            assert len(keys) == 1

    def test_empty_table(self):
        table = SweepResult([])
        assert table.comparison_report() == "(empty sweep)"
        assert table.wins() == {}


def _explode_on_boom(job):
    if job == "boom":
        raise ValueError("cell exploded")
    return job.upper()


def _sleep_job(seconds):
    time.sleep(seconds)
    return seconds


def _boom_heuristic(problem, weights=None, seed=None, probe=None):
    raise RuntimeError("heuristic exploded")


class TestPoolMapCrashPath:
    def test_serial_failure_names_job_and_keeps_completions(self):
        done = {}
        with pytest.raises(PoolJobError) as exc:
            pool_map(_explode_on_boom, ["a", "boom", "c"], workers=1,
                     on_done=lambda job, r, t: done.update({job: r}))
        assert exc.value.job == "boom"
        assert "boom" in str(exc.value)
        assert done == {"a": "A"}

    def test_pooled_failure_delivers_finished_successes(self):
        done = {}
        with pytest.raises(PoolJobError) as exc:
            pool_map(_explode_on_boom, ["a", "b", "boom", "d"], workers=2,
                     on_done=lambda job, r, t: done.update({job: r}))
        assert exc.value.job == "boom"
        assert "boom" not in done
        for job, result in done.items():
            assert result == job.upper()


class TestPoolMapTiming:
    def test_serial_timing_has_no_queue_wait(self):
        timings = []
        pool_map(_sleep_job, [0.01, 0.01], workers=1,
                 on_done=lambda job, r, t: timings.append(t))
        assert all(t.wait_s == 0.0 for t in timings)
        assert all(t.elapsed_s >= 0.01 for t in timings)

    def test_pool_elapsed_excludes_queue_wait(self):
        """Four 0.25s jobs on two workers: the second round queues for
        a full job length, but per-job elapsed must stay one job long.
        The pre-fix clock started at submission, so the second round
        reported ~2x the real cell time."""
        timings = {}
        pool_map(_sleep_job, [0.25] * 4, workers=2,
                 on_done=lambda job, r, t: timings.setdefault(
                     len(timings), t))
        assert len(timings) == 4
        for t in timings.values():
            assert 0.25 <= t.elapsed_s < 0.45
            assert t.wait_s >= 0.0
        # somebody actually queued behind the first round
        assert max(t.wait_s for t in timings.values()) > 0.15


class TestSweepCrashPath:
    def grid(self):
        return expand_grid(generators=("layered",), n_tasks=(6,),
                           heuristics=("greedy", "vulcan"), seeds=range(1))

    def test_failure_names_cell_and_preserves_rows(self, monkeypatch,
                                                   tmp_path):
        grid = self.grid()
        monkeypatch.setitem(HEURISTICS, "vulcan", _boom_heuristic)
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(SweepCellError) as exc:
            run_sweep(grid, workers=1, cache=cache)
        err = exc.value
        vulcan = {c.fingerprint for c in grid if c.heuristic == "vulcan"}
        greedy = {c.fingerprint for c in grid if c.heuristic == "greedy"}
        assert err.fingerprint in vulcan
        assert err.heuristic == "vulcan"
        # completed rows are real records, never the {} placeholder
        assert set(err.completed) == greedy
        assert all(r["cost"] is not None for r in err.completed.values())
        # ... and they reached the cache, so a re-run skips them
        for fingerprint in greedy:
            assert cache.get(fingerprint) is not None

    def test_failure_exits_the_sweep_span(self, monkeypatch):
        grid = self.grid()
        monkeypatch.setitem(HEURISTICS, "vulcan", _boom_heuristic)
        tracer = SpanTracer()
        with pytest.raises(SweepCellError):
            run_sweep(grid, workers=1, span_tracer=tracer)
        assert tracer.current is None, "sweep span left open on failure"
        (sweep_span,) = tracer.spans_named("sweep")
        assert sweep_span.end > sweep_span.start
