"""Observed sweeps: merged worker timelines, truthful parent counters.

The acceptance criteria for the tentpole's sweep integration:

* a 2-worker sweep produces ONE merged Perfetto trace that validates
  structurally, with per-cell spans attributed to worker lanes;
* parent-registry counters equal the sum of worker deltas, identical
  at workers=1 and workers=2;
* observation must not change the result table (byte-identical).
"""

import json

from repro.cosim.metrics import MetricsRegistry
from repro.obs import (
    ProgressProbe,
    SpanTracer,
    convergence_sink,
    validate_trace_events,
)
from repro.sweep import ResultCache, expand_grid, run_cell, \
    run_cell_observed, run_sweep


def small_grid(heuristics=("greedy", "vulcan"), seeds=range(2)):
    return expand_grid(
        generators=("layered", "pipeline"),
        n_tasks=(6,),
        heuristics=heuristics,
        seeds=seeds,
    )


def observed_sweep(grid, workers):
    spans = SpanTracer()
    probe = ProgressProbe(sink=convergence_sink(spans))
    metrics = MetricsRegistry()
    table = run_sweep(grid, workers=workers, span_tracer=spans,
                      probe=probe, metrics=metrics)
    return table, spans, probe, metrics


class TestRunCellObserved:
    def test_row_identical_to_unobserved(self):
        grid = small_grid()
        for config in grid:
            record, obs = run_cell_observed(config)
            assert record == run_cell(config)

    def test_payload_is_json_serializable_and_complete(self):
        config = small_grid()[0]
        _record, obs = run_cell_observed(config)
        obs = json.loads(json.dumps(obs))  # survives the pool pipe
        names = [s["name"] for s in obs["spans"]["spans"]]
        assert "cell" in names
        assert "build_problem" in names
        assert "partition" in names
        assert obs["probe"], "no convergence records shipped"
        assert obs["metrics"]["counters"]["sweep.worker.cells"] == 1
        # probe records are tagged with their cell for separability
        assert all(r["cell"] == config.fingerprint[:12]
                   for r in obs["probe"])

    def test_cell_span_encloses_phases(self):
        _record, obs = run_cell_observed(small_grid()[0])
        spans = {s["name"]: s for s in obs["spans"]["spans"]}
        cell = spans["cell"]
        for phase in ("build_problem", "partition"):
            assert cell["start"] <= spans[phase]["start"]
            assert spans[phase]["end"] <= cell["end"]
            assert spans[phase]["depth"] == cell["depth"] + 1


class TestMergedTimeline:
    def test_two_worker_sweep_yields_one_valid_merged_trace(self):
        grid = small_grid()
        table, spans, probe, _metrics = observed_sweep(grid, workers=2)
        doc = spans.to_perfetto()
        assert validate_trace_events(doc) == []
        parsed = json.loads(doc)
        cells = [e for e in parsed["traceEvents"]
                 if e["ph"] == "X" and e["name"] == "cell"]
        assert len(cells) == len(grid)

    def test_cell_spans_attributed_to_worker_lanes(self):
        grid = small_grid()
        _table, spans, _probe, _metrics = observed_sweep(grid, workers=2)
        parent_pid = spans.pid
        cell_pids = {s.pid for s in spans.spans_named("cell")}
        assert parent_pid not in cell_pids, (
            "cells must run (and be attributed) in workers, not parent"
        )
        for pid in cell_pids:
            assert spans.lane_names[pid].startswith("sweep worker")
        # parent keeps its own lane with the enclosing sweep span
        sweep_spans = spans.spans_named("sweep")
        assert len(sweep_spans) == 1
        assert sweep_spans[0].pid == parent_pid

    def test_convergence_events_reach_the_merged_timeline(self):
        grid = small_grid(heuristics=("greedy",))
        _table, spans, probe, _metrics = observed_sweep(grid, workers=2)
        converge = [e for e in spans.events
                    if e.name == "converge:greedy"]
        assert len(converge) == len(probe.records)


class TestWorkerMetricAggregation:
    def test_parent_counters_equal_sum_of_worker_deltas(self):
        grid = small_grid()
        _t1, _s1, _p1, metrics1 = observed_sweep(grid, workers=1)
        _t2, _s2, _p2, metrics2 = observed_sweep(grid, workers=2)
        c1 = metrics1.snapshot()["counters"]
        c2 = metrics2.snapshot()["counters"]
        worker_keys = {k for k in c1
                       if k.startswith(("heuristic.", "sweep.worker."))}
        assert worker_keys, "no worker-side counters were aggregated"
        for key in sorted(worker_keys):
            assert c1[key] == c2[key], (
                f"{key}: {c1[key]} at workers=1 vs {c2[key]} at workers=2"
            )
        assert c1["sweep.worker.cells"] == len(grid)

    def test_moves_counter_matches_table_column(self):
        grid = small_grid()
        table, _spans, _probe, metrics = observed_sweep(grid, workers=2)
        counters = metrics.snapshot()["counters"]
        for name in ("greedy", "vulcan"):
            table_total = sum(r["moves_evaluated"] for r in table
                              if r["config"]["heuristic"] == name)
            assert counters[f"heuristic.{name}.moves_evaluated"] == \
                table_total

    def test_probe_streams_merge_across_workers(self):
        grid = small_grid()
        _table, _spans, probe1, _m = observed_sweep(grid, workers=1)
        _table, _spans, probe2, _m = observed_sweep(grid, workers=2)
        assert len(probe1) == len(probe2)
        assert probe1.algorithms() == probe2.algorithms()


class TestObservationDoesNotPerturb:
    def test_table_byte_identical_with_and_without_observation(self):
        grid = small_grid()
        plain = run_sweep(grid, workers=1)
        observed, _s, _p, _m = observed_sweep(grid, workers=2)
        assert observed.to_json() == plain.to_json()

    def test_cache_entries_carry_no_obs_payload(self, tmp_path):
        grid = small_grid(heuristics=("greedy",), seeds=range(1))
        cache = ResultCache(tmp_path / "cache")
        observed_sweep_table, _s, _p, _m = (
            run_sweep(grid, workers=1, cache=cache,
                      span_tracer=SpanTracer()),
            None, None, None,
        )
        for record in observed_sweep_table:
            assert "obs" not in record
            assert "spans" not in record
        # a plain run against the observed run's cache reads identically
        replay = run_sweep(grid, workers=1, cache=cache)
        assert replay.to_json() == observed_sweep_table.to_json()

    def test_cache_hits_skip_workers_but_emit_events(self, tmp_path):
        grid = small_grid()
        cache = ResultCache(tmp_path / "cache")
        run_sweep(grid, workers=1, cache=cache)
        spans = SpanTracer()
        metrics = MetricsRegistry()
        table = run_sweep(grid, workers=2, cache=cache,
                          span_tracer=spans, metrics=metrics)
        assert table.stats.computed == 0
        hits = [e for e in spans.events if e.name == "cache.hit"]
        assert len(hits) == len(grid)
        assert not spans.spans_named("cell")
        assert metrics.snapshot()["counters"].get(
            "sweep.worker.cells", 0) == 0

    def test_table_obs_handle_set_only_when_observed(self):
        grid = small_grid(heuristics=("greedy",), seeds=range(1))
        assert run_sweep(grid, workers=1).obs is None
        table, spans, probe, metrics = observed_sweep(grid, workers=1)
        assert table.obs["span_tracer"] is spans
        assert table.obs["probe"] is probe
        assert table.obs["metrics"] is metrics
