"""Tests for the on-disk result cache."""

import json
import os
import subprocess
import sys

import pytest

from repro.sweep import CACHE_VERSION, CacheVersionError, ResultCache


RECORD = {"fingerprint": "f" * 64, "cost": 12.5, "hw_tasks": ["a", "b"]}


def test_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    fp = "a" * 64
    assert cache.get(fp) is None
    cache.put(fp, RECORD)
    assert cache.get(fp) == RECORD
    assert fp in cache
    assert len(cache) == 1


def test_miss_on_absent(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("b" * 64) is None
    assert ("b" * 64) not in cache


def test_corrupt_file_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    fp = "c" * 64
    cache.path_for(fp).write_text("{not json", encoding="utf-8")
    assert cache.get(fp) is None


def test_older_version_reads_as_miss(tmp_path):
    """Entries from an *older* schema are safe to recompute over."""
    cache = ResultCache(tmp_path)
    fp = "d" * 64
    cache.path_for(fp).write_text(json.dumps({
        "version": CACHE_VERSION - 1, "fingerprint": fp, "record": RECORD,
    }), encoding="utf-8")
    assert cache.get(fp) is None


def test_newer_version_raises_clear_error(tmp_path):
    """Regression: an entry written by a newer schema used to read as a
    silent miss, so a sweep against a newer cache would quietly
    recompute (and clobber) everything.  It must fail loudly instead,
    naming the file and both versions."""
    cache = ResultCache(tmp_path)
    fp = "d" * 64
    cache.path_for(fp).write_text(json.dumps({
        "version": CACHE_VERSION + 1, "fingerprint": fp, "record": RECORD,
    }), encoding="utf-8")
    with pytest.raises(CacheVersionError) as exc:
        cache.get(fp)
    message = str(exc.value)
    assert str(CACHE_VERSION + 1) in message
    assert str(CACHE_VERSION) in message
    assert f"{fp}.json" in message
    # membership checks stay cheap and do not parse the entry
    assert fp in cache


def test_non_integer_version_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    fp = "e" * 64
    cache.path_for(fp).write_text(json.dumps({
        "version": "2", "fingerprint": fp, "record": RECORD,
    }), encoding="utf-8")
    assert cache.get(fp) is None


def test_fingerprint_mismatch_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    fp = "e" * 64
    cache.path_for(fp).write_text(json.dumps({
        "version": CACHE_VERSION, "fingerprint": "0" * 64, "record": RECORD,
    }), encoding="utf-8")
    assert cache.get(fp) is None


def test_overwrite_replaces(tmp_path):
    cache = ResultCache(tmp_path)
    fp = "f" * 64
    cache.put(fp, {"cost": 1.0})
    cache.put(fp, {"cost": 2.0})
    assert cache.get(fp) == {"cost": 2.0}
    assert len(cache) == 1


def test_clear_and_listing(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(3):
        cache.put(f"{i}" * 64, {"cost": float(i)})
    assert len(cache.fingerprints()) == 3
    assert cache.clear() == 3
    assert len(cache) == 0


def test_creates_directory(tmp_path):
    root = tmp_path / "deep" / "nested" / "cache"
    ResultCache(root)
    assert root.is_dir()


def _dead_pid():
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestStaleTmpSweep:
    """Crashed writers' ``.<fp>.json.<pid>.tmp`` litter is swept on
    open; in-flight writes of live processes are left alone."""

    def test_dead_writer_tmp_removed_on_open(self, tmp_path):
        stale = tmp_path / f".{'a' * 64}.json.{_dead_pid()}.tmp"
        stale.write_text("{}")
        ResultCache(tmp_path)
        assert not stale.exists()

    def test_live_writer_tmp_kept_on_open(self, tmp_path):
        inflight = tmp_path / f".{'b' * 64}.json.{os.getpid()}.tmp"
        inflight.write_text("{}")
        ResultCache(tmp_path)
        assert inflight.exists()

    def test_unparseable_tmp_removed_on_open(self, tmp_path):
        junk = tmp_path / ".not-a-cache-write.tmp"
        junk.write_text("x")
        ResultCache(tmp_path)
        assert not junk.exists()

    def test_sweep_does_not_touch_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("c" * 64, {"cost": 1.0})
        stale = tmp_path / f".{'a' * 64}.json.{_dead_pid()}.tmp"
        stale.write_text("{}")
        assert ResultCache(tmp_path).get("c" * 64) == {"cost": 1.0}
        assert not stale.exists()

    def test_clear_removes_all_tmp_including_live(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("c" * 64, {"cost": 1.0})
        inflight = tmp_path / f".{'b' * 64}.json.{os.getpid()}.tmp"
        inflight.write_text("{}")
        assert cache.clear() == 1
        assert not inflight.exists()
        assert len(cache) == 0
