"""Tests for the differential/invariant harness.

Includes the acceptance run: all six heuristics on 50 random problems
with every shared invariant checked, plus tests that the harness
actually *detects* each class of violation (a checker that cannot fail
is not a checker).
"""

import dataclasses
import random

import pytest

from repro.partition import (
    CostWeights,
    HEURISTICS,
    PartitionResult,
    evaluate_partition,
    greedy_partition,
    partition_cost,
)
from repro.sweep import (
    SweepConfig,
    check_result,
    graph_signature,
    random_problem_config,
    run_differential,
)


def make_result(problem, hw_tasks=()):
    cost, breakdown, evaluation = partition_cost(problem, hw_tasks)
    return PartitionResult(
        problem=problem,
        hw_tasks=frozenset(hw_tasks),
        evaluation=evaluation,
        cost=cost,
        breakdown=breakdown,
        algorithm="test",
    )


class TestAcceptance:
    @pytest.mark.slow  # ~10s: the exhaustive acceptance sweep
    def test_fifty_problems_all_heuristics(self):
        """ISSUE 2 acceptance: differential harness passes on >= 50
        random problems across all six heuristics."""
        report = run_differential(n_problems=50, n_tasks=(5, 9))
        assert report.problems == 50
        assert report.results == 50 * len(HEURISTICS)
        assert report.ok, report.summary()

    @pytest.mark.slow
    def test_deterministic_in_seed(self):
        a = run_differential(n_problems=3, seed=1, n_tasks=(5, 7))
        b = run_differential(n_problems=3, seed=1, n_tasks=(5, 7))
        assert a.checks == b.checks
        assert a.failures == b.failures

    def test_heuristic_subset_and_unknown(self):
        report = run_differential(
            n_problems=2, heuristics=["greedy", "gclp"], n_tasks=(5, 6)
        )
        assert report.results == 4
        assert report.ok, report.summary()
        with pytest.raises(KeyError):
            run_differential(n_problems=1, heuristics=["nope"])


class TestCheckResultDetects:
    """Each invariant must be violable — inject one defect at a time."""

    def setup_method(self):
        self.problem = SweepConfig(
            n_tasks=8, seed=5, area_budget_factor=0.5
        ).build_problem()

    def test_clean_result_passes(self):
        result = greedy_partition(self.problem)
        assert check_result(self.problem, result) == []

    def test_detects_stray_task(self):
        result = make_result(self.problem)
        bad = dataclasses.replace(result, hw_tasks=frozenset(["ghost"]))
        failures = check_result(self.problem, bad)
        assert any("outside graph" in f for f in failures)

    def test_detects_stale_evaluation(self):
        names = self.problem.graph.task_names
        honest = make_result(self.problem, names[:2])
        stale = dataclasses.replace(
            honest, evaluation=evaluate_partition(self.problem, [])
        )
        failures = check_result(self.problem, stale)
        assert any("stale evaluation" in f for f in failures)

    def test_detects_cost_mismatch(self):
        result = make_result(self.problem, self.problem.graph.task_names[:1])
        lied = dataclasses.replace(result, cost=result.cost + 100.0)
        failures = check_result(self.problem, lied)
        assert any("reported cost" in f for f in failures)

    def test_detects_cost_weight_mismatch(self):
        """A result computed under one weighting fails the check under
        another — the harness pins weights explicitly."""
        result = greedy_partition(self.problem, weights=CostWeights())
        failures = check_result(
            self.problem, result,
            weights=CostWeights(communication=9.0),
        )
        # greedy lands on a boundary-crossing partition here, so the
        # reweighted recomputation must differ
        assert any("reported cost" in f for f in failures)

    def test_over_budget_is_flagged_not_failed(self):
        """An over-budget partition with an honest infeasibility flag is
        invariant-clean; the flag is the contract."""
        tight = SweepConfig(
            n_tasks=8, seed=5, area_budget_factor=0.01
        ).build_problem()
        all_hw = make_result(tight, tight.graph.task_names)
        assert not all_hw.area_feasible
        assert check_result(tight, all_hw) == []

    def test_label_prefixes_failures(self):
        result = make_result(self.problem)
        bad = dataclasses.replace(result, cost=-1.0)
        failures = check_result(self.problem, bad, label="unit")
        assert failures and all(f.startswith("unit:") for f in failures)


class TestGraphSignature:
    def test_same_config_same_signature(self):
        a = SweepConfig(seed=2).build_problem().graph
        b = SweepConfig(seed=2).build_problem().graph
        assert graph_signature(a) == graph_signature(b)

    def test_different_seed_different_signature(self):
        a = SweepConfig(seed=2).build_problem().graph
        b = SweepConfig(seed=3).build_problem().graph
        assert graph_signature(a) != graph_signature(b)


class TestRandomProblemConfig:
    def test_draws_are_valid_and_varied(self):
        rng = random.Random(0)
        configs = [random_problem_config(rng) for _ in range(30)]
        assert len({c.generator for c in configs}) > 1
        assert len({c.fingerprint for c in configs}) == len(configs)

    def test_respects_task_bounds(self):
        rng = random.Random(1)
        for _ in range(20):
            config = random_problem_config(rng, n_tasks=(4, 6))
            assert 4 <= config.n_tasks <= 6
