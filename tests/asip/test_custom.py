"""Tests for custom-instruction mining and fused code generation."""

import pytest

from repro.asip.custom import fusions_for, install, mine_candidates
from repro.graph import kernels
from repro.graph.cdfg import CDFG, MASK32
from repro.isa.codegen import CodegenError, Fusion, compile_cdfg
from repro.isa.instructions import Isa


def shift_add_graph():
    """y = (a << 3) + b — the classic two-operand fusable pattern."""
    g = CDFG("shiftadd")
    a, b = g.inp("a"), g.inp("b")
    three = g.const(3)
    g.out("y", g.add(g.shl(a, three), b))
    return g


WORKLOADS = {
    "crc": (kernels.crc_step(), 10.0),
    "fir": (kernels.fir(8, coefficients=[3, -5, 7, 2, 9, -1, 4, 6]), 5.0),
    "sa": (shift_add_graph(), 2.0),
}


class TestMining:
    def test_finds_shift_add_pattern(self):
        cands = mine_candidates({"sa": (shift_add_graph(), 1.0)})
        assert len(cands) == 1
        cand = cands[0]
        assert cand.key[0] == "shl" and cand.key[1] == "add"
        assert cand.n_externals == 2
        assert cand.semantics(5, 100) == ((5 << 3) + 100) & MASK32

    def test_multi_use_inner_not_fused(self):
        g = CDFG("reuse")
        a, b = g.inp("a"), g.inp("b")
        m = g.mul(a, a)
        g.out("y1", g.add(m, b))
        g.out("y2", g.sub(m, b))  # m has two consumers
        cands = mine_candidates({"g": (g, 1.0)})
        assert all(
            not (c.key[0] == "mul") for c in cands
        )

    def test_three_operand_pattern_rejected(self):
        g = CDFG("mac")
        a, b, c = g.inp("a"), g.inp("b"), g.inp("c")
        g.out("y", g.add(g.mul(a, b), c))  # 3 externals
        assert mine_candidates({"g": (g, 1.0)}) == []

    def test_constants_are_baked_into_semantics(self):
        cands = mine_candidates(
            {"fir": (kernels.fir(4, coefficients=[7, 7, 7, 7]), 1.0)}
        )
        mul_adds = [c for c in cands if c.key[0] == "mul"]
        assert mul_adds
        cand = mul_adds[0]
        # semantics multiplies by the baked constant 7
        assert cand.semantics(3, 10) == (3 * 7 + 10) & MASK32

    def test_identical_patterns_share_one_candidate(self):
        cands = mine_candidates(
            {"fir": (kernels.fir(4, coefficients=[7, 7, 7, 7]), 1.0)}
        )
        sevens = [c for c in cands if c.key[0] == "mul"]
        assert len(sevens) == 1
        assert len(sevens[0].occurrences) == 4

    def test_weights_accumulate_value(self):
        light = mine_candidates({"sa": (shift_add_graph(), 1.0)})[0]
        heavy = mine_candidates({"sa": (shift_add_graph(), 9.0)})[0]
        assert heavy.value == pytest.approx(9 * light.value)

    def test_deterministic_order(self):
        a = [c.mnemonic for c in mine_candidates(WORKLOADS)]
        b = [c.mnemonic for c in mine_candidates(WORKLOADS)]
        assert a == b


class TestFusedCodegen:
    def run_both(self, cdfg, workload_name, workloads):
        cands = mine_candidates(workloads)
        isa = Isa("asip")
        install(isa, cands)
        fusions = fusions_for(cands, workload_name)
        inputs = {op.name: (i * 13 + 5) & 0xFFF
                  for i, op in enumerate(cdfg.inputs())}
        base = compile_cdfg(cdfg)
        base_out, base_cycles = base.run(dict(inputs))
        fused = compile_cdfg(cdfg, isa, fusions=fusions)
        fused_out, fused_cycles = fused.run(dict(inputs), isa=isa)
        return base_out, base_cycles, fused_out, fused_cycles, fusions

    def test_fused_code_is_functionally_identical(self):
        g = shift_add_graph()
        base_out, _bc, fused_out, _fc, fusions = self.run_both(
            g, "sa", {"sa": (g, 1.0)}
        )
        assert fusions
        assert fused_out == base_out

    def test_fused_code_is_faster(self):
        g = kernels.fir(8, coefficients=[3, -5, 7, 2, 9, -1, 4, 6])
        _bo, base_cycles, _fo, fused_cycles, fusions = self.run_both(
            g, "fir", {"fir": (g, 1.0)}
        )
        assert fusions
        assert fused_cycles < base_cycles

    def test_crc_kernel_roundtrip_with_fusion(self):
        g = kernels.crc_step()
        base_out, _bc, fused_out, _fc, _f = self.run_both(
            g, "crc", {"crc": (g, 1.0)}
        )
        assert fused_out == base_out

    def test_fusion_requires_installed_mnemonic(self):
        g = shift_add_graph()
        shl = next(o.name for o in g.compute_ops() if o.kind.value == "shl")
        add = next(o.name for o in g.compute_ops() if o.kind.value == "add")
        fusion = Fusion(outer=add, inner=shl, mnemonic="ghost",
                        externals=("a", "b"))
        with pytest.raises(CodegenError):
            compile_cdfg(g, Isa(), fusions={add: fusion})

    def test_fusion_validates_single_use(self):
        g = CDFG("reuse")
        a, b = g.inp("a"), g.inp("b")
        m = g.mul(a, b)
        s = g.add(m, m)  # m used twice by the same op -> uses list != [s]
        g.out("y", s)
        g.out("z", m)   # and also by an output
        isa = Isa()
        from repro.isa.instructions import CustomOp

        isa.add_custom(CustomOp("fma0", 0x80, lambda x, y: x))
        fusion = Fusion(outer=s, inner=m, mnemonic="fma0",
                        externals=("a", "b"))
        with pytest.raises(CodegenError):
            compile_cdfg(g, isa, fusions={s: fusion})

    def test_overlapping_occurrences_resolved(self):
        cands = mine_candidates(WORKLOADS)
        fusions = fusions_for(cands, "crc")
        used = set()
        for fusion in fusions.values():
            assert fusion.outer not in used
            assert fusion.inner not in used
            used.add(fusion.outer)
            used.add(fusion.inner)
