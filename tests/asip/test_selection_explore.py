"""Tests for instruction selection, exploration, and metamorphosis."""

import pytest

from repro.asip.custom import mine_candidates
from repro.asip.explore import explore_asip
from repro.asip.metamorphosis import best_static_plan, plan_metamorphosis
from repro.asip.selection import select_instructions, selection_frontier
from repro.graph import kernels
from repro.graph.cdfg import CDFG

COEFFS = [3, -5, 7, 2, 9, -1, 4, 6]

WORKLOADS = {
    "crc": (kernels.crc_step(), 10.0),
    "fir": (kernels.fir(8, coefficients=COEFFS), 5.0),
    "ewf": (kernels.elliptic_wave_filter(constant_coefficients=True), 3.0),
}
WEIGHTS = {name: w for name, (_g, w) in WORKLOADS.items()}


class TestSelection:
    def test_zero_budget_selects_nothing(self):
        cands = mine_candidates(WORKLOADS)
        assert select_instructions(cands, 0.0) == []

    def test_budget_respected(self):
        cands = mine_candidates(WORKLOADS)
        for budget in (60.0, 250.0, 700.0):
            chosen = select_instructions(cands, budget)
            assert sum(c.area for c in chosen) <= budget + 1e-9

    def test_selection_is_optimal_small_case(self):
        """Cross-check the knapsack against brute force."""
        import itertools

        cands = mine_candidates(WORKLOADS)[:6]
        budget = 400.0
        best_brute = 0.0
        for r in range(len(cands) + 1):
            for combo in itertools.combinations(cands, r):
                if sum(c.area for c in combo) <= budget:
                    best_brute = max(
                        best_brute, sum(c.value for c in combo)
                    )
        chosen = select_instructions(cands, budget)
        assert sum(c.value for c in chosen) == pytest.approx(best_brute)

    def test_frontier_value_monotone(self):
        cands = mine_candidates(WORKLOADS)
        frontier = selection_frontier(cands, [0, 100, 300, 900, 2000])
        values = [v for _b, _c, v in frontier]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            select_instructions([], -1.0)
        with pytest.raises(ValueError):
            select_instructions([], 10.0, resolution=0.0)


class TestExplore:
    def test_frontier_speedup_monotone_and_verified(self):
        points = explore_asip(WORKLOADS, [0, 120, 400, 1200])
        speedups = [p.speedup(WEIGHTS) for p in points]
        assert speedups[0] == pytest.approx(1.0)
        for a, b in zip(speedups, speedups[1:]):
            assert b >= a - 1e-9
        assert speedups[-1] > 1.2

    def test_custom_area_tracks_budget(self):
        points = explore_asip(WORKLOADS, [0, 400])
        assert points[0].custom_area == 0.0
        assert 0 < points[1].custom_area <= 400.0

    def test_code_size_shrinks_with_fusion(self):
        points = explore_asip(WORKLOADS, [0, 1200])
        assert points[1].code_words["fir"] < points[0].code_words["fir"]


class TestMetamorphosis:
    def phases(self):
        return {
            "filter": {"fir": (kernels.fir(8, coefficients=COEFFS), 8.0)},
            "check": {"crc": (kernels.crc_step(), 8.0)},
        }

    def test_reconfigurable_beats_static_on_compute(self):
        """Per-phase instruction sets always compute at least as fast as
        one compromise set of the same fabric area."""
        fabric = 300.0
        morph = plan_metamorphosis(self.phases(), fabric)
        static = best_static_plan(self.phases(), fabric)
        assert morph.compute_cycles <= static.compute_cycles + 1e-9

    def test_reconfiguration_cost_can_flip_the_decision(self):
        """Figure 7's trade-off: for short phases the reconfiguration
        overhead dominates; amortized over long phases it vanishes.
        The fabric is sized so one phase's best instruction does not
        leave room for the other's — the static set must compromise."""
        fabric = 250.0
        short_morph = plan_metamorphosis(
            self.phases(), fabric, reconfig_cycles=100_000,
            iterations_per_phase=1,
        )
        short_static = best_static_plan(
            self.phases(), fabric, iterations_per_phase=1
        )
        assert short_morph.total_cycles > short_static.total_cycles

        long_morph = plan_metamorphosis(
            self.phases(), fabric, reconfig_cycles=100_000,
            iterations_per_phase=10_000,
        )
        long_static = best_static_plan(
            self.phases(), fabric, iterations_per_phase=10_000
        )
        assert long_morph.total_cycles < long_static.total_cycles

    def test_static_plan_has_no_reconfigurations(self):
        static = best_static_plan(self.phases(), 300.0)
        assert static.reconfigurations == 0
        assert static.static

    def test_single_phase_needs_no_reconfiguration(self):
        one = plan_metamorphosis(
            {"only": {"crc": (kernels.crc_step(), 1.0)}}, 300.0
        )
        assert one.reconfigurations == 0
