"""Every example CLI must run clean under ``--smoke`` and fail loudly
on unknown flags.

Until this suite existed, nine examples had no argument parsing at
all: ``python examples/quickstart.py --bogus-flag`` silently ignored
the flag and exited 0, so a typo'd CI invocation "passed" while
running something other than what was asked.  Now every example parses
argv strictly (unknown flags exit with argparse's status 2) and
exposes ``--smoke``, and this suite pins both properties for the whole
directory — including examples added later, via the filesystem glob.

Marked ``examples``: deselect with ``-m 'not examples'`` for a faster
inner loop; CI runs them.
"""

import os
import subprocess
import sys

import pytest

REPO = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", ".."))
EXAMPLES_DIR = os.path.join(REPO, "examples")
SRC = os.path.join(REPO, "src")

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR)
    if name.endswith(".py")
)

pytestmark = pytest.mark.examples


def _run(name, *argv, timeout=240):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *argv],
        capture_output=True, text=True, env=env, timeout=timeout,
        cwd=EXAMPLES_DIR,
    )


def test_every_example_is_covered():
    # the glob above feeds the parametrized tests; this guards against
    # an empty directory silently passing the suite
    assert len(EXAMPLES) >= 12
    assert "design_explore.py" in EXAMPLES


@pytest.mark.slow  # subprocess per example: the smoke lane skips
@pytest.mark.parametrize("name", EXAMPLES)
def test_smoke_runs_clean(name, tmp_path):
    extra = []
    if name in ("design_explore.py", "partition_sweep.py",
                "fault_campaign.py"):
        extra = ["--cache", str(tmp_path / "cache")] \
            if name == "design_explore.py" else []
    proc = _run(name, "--smoke", *extra)
    assert proc.returncode == 0, (
        f"{name} --smoke exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )


@pytest.mark.parametrize("name", EXAMPLES)
def test_unknown_flag_fails_loudly(name):
    proc = _run(name, "--definitely-not-a-real-flag")
    assert proc.returncode != 0, (
        f"{name} accepted an unknown flag and exited 0 — argv is "
        f"being ignored\nstdout:\n{proc.stdout}"
    )
    assert "--definitely-not-a-real-flag" in proc.stderr


@pytest.mark.parametrize("name", EXAMPLES)
def test_help_exits_zero(name):
    proc = _run(name, "--help")
    assert proc.returncode == 0, proc.stderr
    assert "--smoke" in proc.stdout
