"""Tests for FU binding and register allocation."""

import pytest

from repro.graph import kernels
from repro.graph.cdfg import CDFG
from repro.hls.binding import bind, bind_fus, bind_registers, value_lifetimes
from repro.hls.scheduling import asap, list_schedule


class TestFuBinding:
    def test_instance_count_equals_peak_usage(self):
        g = kernels.fir(8)
        sched = list_schedule(g, {"adder": 2, "multiplier": 3})
        fus, fu_of = bind_fus(sched)
        usage = sched.resource_usage()
        by_comp = {}
        for fu in fus:
            by_comp[fu.component] = by_comp.get(fu.component, 0) + 1
        for comp, peak in usage.items():
            assert by_comp[comp] == peak

    def test_every_compute_op_bound(self):
        g = kernels.elliptic_wave_filter()
        sched = list_schedule(g, {"adder": 2, "multiplier": 1})
        _fus, fu_of = bind_fus(sched)
        assert set(fu_of) == {o.name for o in g.compute_ops()}

    def test_no_two_ops_overlap_on_one_fu(self):
        g = kernels.elliptic_wave_filter()
        sched = list_schedule(g, {"adder": 2, "multiplier": 2})
        fus, _fu_of = bind_fus(sched)
        for fu in fus:
            intervals = sorted(
                (sched.starts[n], sched.finish(n)) for n in fu.ops
            )
            for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
                assert f1 <= s2, f"overlap on {fu.name}"


class TestLifetimes:
    def test_lifetimes_span_producer_to_last_consumer(self):
        g = CDFG("lt")
        a, b = g.inp("a"), g.inp("b")
        m = g.mul(a, b)
        s = g.add(m, a)
        g.out("y", s)
        sched = asap(g)
        lt = value_lifetimes(sched)
        assert lt[m] == (sched.finish(m), sched.starts[s])
        # 'a' is consumed by both mul and add
        assert lt["a"] == (0, sched.starts[s])

    def test_constants_not_register_resident(self):
        g = CDFG("k")
        x = g.inp("x")
        k = g.const(5)
        g.out("y", g.add(x, k))
        lt = value_lifetimes(asap(g))
        assert k not in lt

    def test_unused_values_have_no_lifetime(self):
        g = CDFG("dead")
        x = g.inp("x")
        g.inp("unused")
        g.out("y", g.add(x, x))
        lt = value_lifetimes(asap(g))
        assert "unused" not in lt


class TestRegisterAllocation:
    def test_non_overlapping_values_share_registers(self):
        g = kernels.elliptic_wave_filter()
        sched = list_schedule(g, {"adder": 1, "multiplier": 1})
        regs, reg_of = bind_registers(sched)
        n_values = len(value_lifetimes(sched))
        assert len(regs) < n_values  # sharing must happen on a long chain

    def test_packed_values_never_overlap(self):
        g = kernels.elliptic_wave_filter()
        sched = list_schedule(g, {"adder": 2, "multiplier": 1})
        regs, _reg_of = bind_registers(sched)
        lifetimes = value_lifetimes(sched)
        for reg in regs:
            spans = sorted(lifetimes[v] for v in reg.values)
            for (b1, d1), (b2, d2) in zip(spans, spans[1:]):
                assert d1 < b2, f"register {reg.name} double-booked"

    def test_every_live_value_gets_a_register(self):
        g = kernels.dct4()
        sched = asap(g)
        _regs, reg_of = bind_registers(sched)
        assert set(reg_of) == set(value_lifetimes(sched))


class TestFullBinding:
    def test_bind_combines_both(self):
        g = kernels.iir_biquad()
        sched = asap(g)
        binding = bind(sched)
        assert binding.n_fus > 0
        assert binding.n_registers > 0
        op = g.compute_ops()[0].name
        assert binding.fu(op).component in (
            "adder", "fast_adder", "multiplier", "fast_multiplier",
            "logic_unit",
        )

    def test_serial_schedule_uses_fewer_fus(self):
        g = kernels.fir(8)
        rich = bind(list_schedule(g, {"adder": 8, "multiplier": 8}))
        poor = bind(list_schedule(g, {"adder": 1, "multiplier": 1}))
        assert poor.n_fus < rich.n_fus
