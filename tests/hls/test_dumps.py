"""Tests for the structural netlist and FSM listings."""

from repro.graph import kernels
from repro.hls.synthesize import HlsConstraints, synthesize


class TestNetlistText:
    def test_netlist_names_every_resource(self):
        result = synthesize(kernels.dct4())
        text = result.datapath.netlist_text()
        for fu in result.binding.fus:
            assert fu.name in text
        for reg in result.binding.registers:
            assert reg.name in text

    def test_shared_datapath_lists_muxes(self):
        result = synthesize(kernels.fir(8), HlsConstraints(
            scheduler="list", resources={"adder": 1, "multiplier": 1},
        ))
        text = result.datapath.netlist_text()
        assert "mux" in text
        assert ":1 from" in text

    def test_every_op_appears_exactly_once(self):
        result = synthesize(kernels.iir_biquad())
        text = result.datapath.netlist_text()
        for op in result.cdfg.compute_ops():
            fu_lines = [
                line for line in text.splitlines()
                if line.startswith("fu ") and f"{op.name}" in line
            ]
            assert fu_lines, op.name


class TestFsmListing:
    def test_listing_has_one_line_per_state(self):
        result = synthesize(kernels.dct4())
        listing = result.controller.listing()
        state_lines = [
            l for l in listing.splitlines() if l.startswith("S")
        ]
        assert len(state_lines) == result.controller.n_states

    def test_listing_shows_fu_orders_and_latches(self):
        result = synthesize(kernels.iir_biquad())
        listing = result.controller.listing()
        assert "<-" in listing
        assert "latch" in listing

    def test_serial_schedule_has_no_idle_states(self):
        result = synthesize(kernels.elliptic_wave_filter(), HlsConstraints(
            scheduler="list", resources={"adder": 1, "multiplier": 1},
        ))
        listing = result.controller.listing()
        # a tightly resource-bound schedule keeps its units busy; the
        # word 'idle' may appear only in multiplier-latency shadows
        idle_states = listing.count("idle")
        assert idle_states < result.controller.n_states / 2
