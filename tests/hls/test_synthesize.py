"""End-to-end HLS tests: datapath, controller, co-verification."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import kernels
from repro.graph.cdfg import CDFG, MASK32
from repro.hls.library import default_library
from repro.hls.scheduling import SchedulingError
from repro.hls.synthesize import HlsConstraints, explore, synthesize

KERNELS = sorted(kernels.ALL_CDFG_KERNELS)


class TestCoVerification:
    """The hardware implementation must match the CDFG reference —
    and therefore the generated software (tested in tests/isa)."""

    @pytest.mark.parametrize("name", KERNELS)
    def test_datapath_simulation_matches_reference(self, name):
        g = kernels.ALL_CDFG_KERNELS[name]()
        result = synthesize(g)
        inputs = {o.name: (i * 7 + 3) % 251 for i, o in enumerate(g.inputs())}
        assert result.simulate(dict(inputs)) == g.evaluate(dict(inputs))

    @pytest.mark.parametrize("scheduler,extra", [
        ("asap", {}),
        ("list", {"resources": {"adder": 2, "multiplier": 1,
                                "logic_unit": 1, "divider": 1,
                                "mem_port": 1}}),
        ("force", {"latency_bound": None}),
    ])
    def test_all_schedulers_functionally_equivalent(self, scheduler, extra):
        g = kernels.elliptic_wave_filter()
        result = synthesize(g, HlsConstraints(scheduler=scheduler, **extra))
        inputs = {o.name: i + 1 for i, o in enumerate(g.inputs())}
        assert result.simulate(dict(inputs)) == g.evaluate(dict(inputs))

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_hw_sw_equivalence_random_vectors(self, seed):
        """Hardware (HLS datapath) and software (R32 code) agree."""
        import random

        from repro.isa.codegen import compile_cdfg

        rng = random.Random(seed)
        g = kernels.fft_butterfly()
        inputs = {o.name: rng.randrange(0, 1 << 12) for o in g.inputs()}
        hw = synthesize(g).simulate(dict(inputs))
        sw, _cycles = compile_cdfg(g).run(dict(inputs))
        assert hw == sw


class TestAreaAndLatency:
    def test_asap_faster_but_bigger_than_constrained(self):
        g = kernels.fir(16)
        fast = synthesize(g)
        slow = synthesize(g, HlsConstraints(
            scheduler="list",
            resources={"adder": 1, "multiplier": 1},
        ))
        assert fast.latency_cycles < slow.latency_cycles
        assert fast.area > slow.area

    def test_area_breakdown_sums_to_total(self):
        g = kernels.iir_biquad()
        result = synthesize(g)
        breakdown = result.breakdown()
        assert sum(breakdown.values()) == pytest.approx(result.area)
        assert set(breakdown) == {"fu", "register", "mux", "controller"}

    def test_sharing_adds_muxes(self):
        g = kernels.fir(8)
        shared = synthesize(g, HlsConstraints(
            scheduler="list",
            resources={"adder": 1, "multiplier": 1},
        ))
        unshared = synthesize(g)
        assert shared.datapath.mux_area > unshared.datapath.mux_area

    def test_latency_ns_consistent(self):
        g = kernels.dct4()
        result = synthesize(g, HlsConstraints(cycle_time=20.0))
        assert result.latency_ns == result.latency_cycles * 20.0


class TestController:
    def test_one_state_per_step(self):
        g = kernels.iir_biquad()
        result = synthesize(g)
        assert result.controller.n_states == max(result.latency_cycles, 1)

    def test_states_carry_fu_activity(self):
        g = kernels.dct4()
        result = synthesize(g)
        started = [
            op for state in result.controller.states
            for op in state.fu_ops.values()
        ]
        assert sorted(started) == sorted(
            o.name for o in g.compute_ops()
        )

    def test_controller_area_positive(self):
        result = synthesize(kernels.dct4())
        assert result.controller.area > 0


class TestExploration:
    def test_explore_produces_area_latency_tradeoff(self):
        g = kernels.elliptic_wave_filter()
        results = explore(g)
        assert len(results) >= 3
        latencies = [r.latency_cycles for r in results]
        assert latencies == sorted(latencies)
        # relaxing latency must eventually reduce FU area
        fu_areas = [r.datapath.fu_area for r in results]
        assert min(fu_areas[1:]) < fu_areas[0]

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SchedulingError):
            synthesize(kernels.dct4(), HlsConstraints(scheduler="magic"))

    def test_list_without_resources_rejected(self):
        with pytest.raises(SchedulingError):
            synthesize(kernels.dct4(), HlsConstraints(scheduler="list"))

    def test_summary_mentions_key_numbers(self):
        result = synthesize(kernels.iir_biquad())
        text = result.summary()
        assert "biquad" in text
        assert "steps" in text and "area" in text
