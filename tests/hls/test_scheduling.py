"""Tests for ASAP/ALAP, list, and force-directed scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import kernels
from repro.graph.cdfg import CDFG
from repro.hls.library import default_library
from repro.hls.scheduling import (
    SchedulingError,
    alap,
    asap,
    force_directed,
    list_schedule,
)

KERNELS = sorted(kernels.ALL_CDFG_KERNELS)


def mac_chain(n=4):
    g = CDFG("chain")
    acc = g.inp("x0")
    for i in range(1, n + 1):
        acc = g.add(acc, g.mul(g.inp(f"a{i}"), g.inp(f"b{i}")))
    g.out("y", acc)
    return g


class TestAsapAlap:
    @pytest.mark.parametrize("name", KERNELS)
    def test_asap_is_feasible_for_all_kernels(self, name):
        sched = asap(kernels.ALL_CDFG_KERNELS[name]())
        sched.verify()
        assert sched.length >= 1

    @pytest.mark.parametrize("name", KERNELS)
    def test_alap_matches_asap_length_at_tight_bound(self, name):
        g = kernels.ALL_CDFG_KERNELS[name]()
        a = asap(g)
        l = alap(g)
        assert l.length <= a.length
        l.verify()

    def test_alap_pushes_ops_late(self):
        g = mac_chain(3)
        early = asap(g)
        late = alap(g, latency_bound=early.length + 5)
        # at least one op starts strictly later under ALAP
        assert any(
            late.starts[op.name] > early.starts[op.name]
            for op in g.compute_ops()
        )

    def test_alap_below_critical_path_rejected(self):
        g = mac_chain(3)
        with pytest.raises(SchedulingError):
            alap(g, latency_bound=1)

    def test_asap_multicycle_ops_respected(self):
        g = CDFG("mc")
        a, b = g.inp("a"), g.inp("b")
        m = g.mul(a, b)  # multiplier: 16ns -> 2 cycles at 10ns
        g.out("y", g.add(m, a))
        sched = asap(g, cycle_time=10.0)
        assert sched.latencies[m] == 2
        add_op = next(o.name for o in g.compute_ops() if o.name != m)
        assert sched.starts[add_op] >= 2


class TestListScheduling:
    def test_respects_resource_limits(self):
        g = kernels.fir(8)  # 8 multiplies
        sched = list_schedule(g, {"adder": 1, "multiplier": 2})
        sched.verify()
        usage = sched.resource_usage()
        assert usage.get("multiplier", 0) <= 2
        assert usage.get("adder", 0) <= 1

    def test_fewer_resources_longer_schedule(self):
        g = kernels.fir(8)
        rich = list_schedule(g, {"adder": 8, "multiplier": 8})
        poor = list_schedule(g, {"adder": 1, "multiplier": 1})
        assert poor.length > rich.length

    def test_rich_resources_match_asap(self):
        g = kernels.elliptic_wave_filter()
        rich = list_schedule(g, {"adder": 30, "multiplier": 10})
        assert rich.length == asap(g).length

    def test_missing_resource_type_rejected(self):
        g = kernels.fir(4)
        with pytest.raises(SchedulingError):
            list_schedule(g, {"adder": 2})  # no multiplier

    def test_can_mix_component_flavours(self):
        g = kernels.fir(8)
        sched = list_schedule(
            g, {"adder": 1, "fast_adder": 1, "multiplier": 2}
        )
        sched.verify()
        used = set(sched.assignment.values())
        assert "fast_adder" in used or "adder" in used

    @settings(max_examples=10, deadline=None)
    @given(adders=st.integers(1, 4), mults=st.integers(1, 4))
    def test_resource_usage_never_exceeds_limits(self, adders, mults):
        g = kernels.elliptic_wave_filter()
        sched = list_schedule(g, {"adder": adders, "multiplier": mults})
        usage = sched.resource_usage()
        assert usage.get("adder", 0) <= adders
        assert usage.get("multiplier", 0) <= mults


class TestForceDirected:
    def test_meets_latency_bound(self):
        g = kernels.elliptic_wave_filter()
        base = asap(g).length
        sched = force_directed(g, latency_bound=base + 6)
        sched.verify()
        assert sched.length <= base + 6

    def test_reduces_resources_vs_asap(self):
        g = kernels.fir(8)
        base = asap(g)
        relaxed = force_directed(g, latency_bound=base.length * 2)
        assert (
            relaxed.resource_usage().get("multiplier", 9)
            < base.resource_usage().get("multiplier", 0)
        )

    def test_tight_bound_equals_asap_length(self):
        g = kernels.dct4()
        sched = force_directed(g)
        assert sched.length == asap(g).length

    @pytest.mark.parametrize("name", ["ewf", "fir8", "dct4", "biquad"])
    def test_feasible_on_kernels(self, name):
        g = kernels.ALL_CDFG_KERNELS[name]()
        sched = force_directed(g, latency_bound=asap(g).length + 4)
        sched.verify()


class TestScheduleQueries:
    def test_ops_active_at(self):
        g = mac_chain(2)
        sched = asap(g)
        active0 = sched.ops_active_at(0)
        assert len(active0) >= 1
        all_active = set()
        for step in range(sched.length):
            all_active.update(sched.ops_active_at(step))
        assert all_active == {o.name for o in g.compute_ops()}

    def test_verify_catches_violation(self):
        g = mac_chain(1)
        sched = asap(g)
        # corrupt: move an op before its operand
        victim = [o.name for o in g.compute_ops()][-1]
        sched.starts[victim] = 0
        with pytest.raises(SchedulingError):
            sched.verify()

    def test_empty_graph(self):
        g = CDFG("empty")
        sched = asap(g)
        assert sched.length == 0
        assert sched.latency_ns == 0.0
