"""Tests for the RTL component library."""

import pytest

from repro.graph.cdfg import OpKind
from repro.hls.library import (
    Component,
    ComponentLibrary,
    controller_area,
    default_library,
    mux_area,
    register_area,
)


class TestComponent:
    def test_latency_cycles_ceiling(self):
        comp = Component("x", frozenset({OpKind.MUL}), area=1.0, delay=16.0)
        assert comp.latency_cycles(10.0) == 2
        assert comp.latency_cycles(16.0) == 1
        assert comp.latency_cycles(100.0) == 1  # never zero

    def test_executes(self):
        comp = Component("x", frozenset({OpKind.ADD}), 1.0, 1.0)
        assert comp.executes(OpKind.ADD)
        assert not comp.executes(OpKind.MUL)


class TestLibrary:
    def test_default_library_covers_all_compute_kinds(self):
        lib = default_library()
        supported = lib.supported_kinds()
        for kind in OpKind:
            if kind.is_compute:
                assert kind in supported, kind

    def test_cheapest_and_fastest_differ_for_adders(self):
        lib = default_library()
        assert lib.cheapest(OpKind.ADD).name == "adder"
        assert lib.fastest(OpKind.ADD).name == "fast_adder"

    def test_candidates_sorted_by_area(self):
        lib = default_library()
        cands = lib.candidates(OpKind.MUL)
        areas = [c.area for c in cands]
        assert areas == sorted(areas)

    def test_unknown_kind_raises(self):
        lib = ComponentLibrary([
            Component("adder", frozenset({OpKind.ADD}), 1.0, 1.0)
        ])
        with pytest.raises(KeyError):
            lib.cheapest(OpKind.MUL)

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            ComponentLibrary([])

    def test_duplicate_names_rejected(self):
        comp = Component("a", frozenset({OpKind.ADD}), 1.0, 1.0)
        with pytest.raises(ValueError):
            ComponentLibrary([comp, comp])

    def test_component_lookup(self):
        lib = default_library()
        assert lib.component("divider").area == 520.0
        with pytest.raises(KeyError):
            lib.component("ghost")

    def test_cost_ratios_are_sane(self):
        """A multiplier should cost several adders; a divider several
        multipliers — the ratios that drive partitioning trade-offs."""
        lib = default_library()
        adder = lib.component("adder").area
        mult = lib.component("multiplier").area
        div = lib.component("divider").area
        assert 3 * adder < mult < div


class TestAreaModels:
    def test_register_area_linear(self):
        assert register_area(0) == 0.0
        assert register_area(4) == 2 * register_area(2)

    def test_mux_area_zero_for_single_source(self):
        assert mux_area(1) == 0.0
        assert mux_area(0) == 0.0
        assert mux_area(4) > mux_area(2) > 0

    def test_controller_area_grows_with_states_and_signals(self):
        assert controller_area(10, 5) > controller_area(5, 5)
        assert controller_area(5, 10) > controller_area(5, 5)
