"""PYTHONHASHSEED insensitivity, asserted across real interpreters.

``PYTHONHASHSEED`` perturbs ``str`` hashing and therefore ``set``/
``dict`` iteration order for strings — the exact mechanism behind the
``cost_terms`` float-summation bug pinned in PR 6.  In-process tests
cannot catch a regression here (the parent's hash seed is fixed at
startup), so this suite launches small sweeps and explorer runs in
subprocesses under two different hash seeds and requires byte-identical
serialized tables from each pair.
"""

import os
import subprocess
import sys

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

SWEEP_SNIPPET = """
import sys
from repro.sweep import SweepConfig, expand_grid, run_sweep

grid = expand_grid(
    generators=["layered", "forkjoin"],
    n_tasks=[8],
    cost_models=["default"],
    heuristics=["greedy", "kl", "cosyma"],
    seeds=[0, 1],
)
sys.stdout.write(run_sweep(grid).to_json())
"""

EXPLORE_SNIPPET = """
import sys
from repro.explore import ExploreSpec, explore

spec = ExploreSpec(population=6, generations=2, n_tasks=(8,),
                   heuristics=("greedy", "kl", "cosyma"),
                   scenario="coproc", scenario_faults=8)
sys.stdout.write(explore(spec, workers=1).to_json())
"""


def _run_under_hashseed(snippet: str, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.parametrize("snippet,what", [
    (SWEEP_SNIPPET, "sweep table"),
    (EXPLORE_SNIPPET, "explore result"),
])
def test_byte_identical_across_hash_seeds(snippet, what):
    a = _run_under_hashseed(snippet, "0")
    b = _run_under_hashseed(snippet, "1")
    assert a, f"{what} subprocess produced no output"
    assert a == b, (
        f"{what} differs between PYTHONHASHSEED=0 and =1 — an "
        f"iteration-order-dependent sum or serialization crept in"
    )
