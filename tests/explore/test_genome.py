"""The genome layer: grids, hidden genes, fingerprints, operators, DoE.

The properties here are what the explorer's caching story rests on:
the *effective* genome is the cacheable identity (hidden knob genes
never leak into fingerprints), GA operators are closed over the grids
(every child is a valid genome), and the DoE seeding is a pure
function of the space (no RNG in the factorial itself).
"""

import random

import pytest

from repro.explore.doe import doe_population, fractional_factorial
from repro.explore.genome import (
    Gene,
    SearchSpace,
    design_space,
    split_genome,
)
from repro.partition.knobs import HEURISTIC_KNOBS


@pytest.fixture
def space():
    return design_space()


class TestGene:
    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError, match="empty"):
            Gene("g", (), None)

    def test_rejects_duplicate_values(self):
        with pytest.raises(ValueError, match="duplicates"):
            Gene("g", (1, 1), 1)

    def test_rejects_off_grid_default(self):
        with pytest.raises(ValueError, match="not in"):
            Gene("g", (1, 2), 3)


class TestSearchSpace:
    def test_default_genome_is_valid(self, space):
        space.validate(space.default_genome())

    def test_random_genomes_are_valid(self, space):
        rng = random.Random(0)
        for _ in range(50):
            space.validate(space.random_genome(rng))

    def test_validate_rejects_unknown_gene(self, space):
        genome = space.default_genome()
        genome["bogus"] = 1
        with pytest.raises(KeyError, match="bogus"):
            space.validate(genome)

    def test_validate_rejects_off_grid_value(self, space):
        genome = space.default_genome()
        genome["n_tasks"] = 9999
        with pytest.raises(ValueError, match="n_tasks"):
            space.validate(genome)

    def test_unknown_axis_fails_at_construction(self):
        with pytest.raises(KeyError, match="heuristic"):
            design_space(heuristics=("nope",))

    def test_every_registered_knob_becomes_a_gene(self, space):
        for heuristic, knobs in HEURISTIC_KNOBS.items():
            for knob in knobs:
                name = f"knob:{heuristic}.{knob.name}"
                assert name in space.by_name
                gene = space.by_name[name]
                assert gene.active_gene == "heuristic"
                assert gene.active_value == heuristic


class TestEffectiveAndFingerprint:
    def test_hidden_genes_projected_out(self, space):
        genome = space.default_genome()
        genome["heuristic"] = "kl"
        effective = space.effective(genome)
        assert "knob:kl.max_passes" in effective
        assert "knob:greedy.max_iterations" not in effective
        assert "knob:annealing.cooling" not in effective

    def test_hidden_gene_changes_share_a_fingerprint(self, space):
        a = space.default_genome()
        a["heuristic"] = "kl"
        b = dict(a)
        b["knob:greedy.max_iterations"] = 5  # hidden while kl selected
        assert space.fingerprint(a) == space.fingerprint(b)

    def test_active_gene_changes_split_fingerprints(self, space):
        a = space.default_genome()
        a["heuristic"] = "kl"
        b = dict(a)
        b["knob:kl.max_passes"] = 1
        assert space.fingerprint(a) != space.fingerprint(b)

    def test_extra_context_splits_fingerprints(self, space):
        genome = space.default_genome()
        assert space.fingerprint(genome, extra={"seed": 0}) != \
            space.fingerprint(genome, extra={"seed": 1})


class TestOperators:
    def test_mutate_always_changes_something(self, space):
        rng = random.Random(1)
        genome = space.default_genome()
        for _ in range(100):
            child = space.mutate(genome, rng, rate=0.0)
            space.validate(child)
            assert child != genome

    def test_mutate_stays_on_grid(self, space):
        rng = random.Random(2)
        genome = space.default_genome()
        for _ in range(100):
            genome = space.mutate(genome, rng)
            space.validate(genome)

    def test_crossover_takes_each_gene_from_a_parent(self, space):
        rng = random.Random(3)
        a = space.default_genome()
        b = space.random_genome(rng)
        for _ in range(50):
            child = space.crossover(a, b, rng)
            space.validate(child)
            for gene in space.genes:
                assert child[gene.name] in (
                    a[gene.name], b[gene.name])

    def test_operators_deterministic_given_seed(self, space):
        a, b = space.default_genome(), \
            space.random_genome(random.Random(4))

        def offspring(seed):
            rng = random.Random(seed)
            return [
                space.mutate(space.crossover(a, b, rng), rng)
                for _ in range(20)
            ]

        assert offspring(5) == offspring(5)
        assert offspring(5) != offspring(6)


class TestSplitGenome:
    def test_three_way_split(self, space):
        genome = space.effective(space.default_genome())
        core, knobs, weights = split_genome(genome)
        assert set(core) == {
            "generator", "n_tasks", "cost_model", "comm", "heuristic",
        }
        assert set(weights) == {"modifiability", "concurrency"}
        # default heuristic is greedy → only its knob is active
        assert set(knobs) == {"max_iterations"}


class TestDoE:
    def test_factorial_is_deterministic(self, space):
        assert fractional_factorial(space) == \
            fractional_factorial(space)

    def test_factorial_genomes_valid_and_unique(self, space):
        design = fractional_factorial(space)
        fps = set()
        for genome in design:
            space.validate(genome)
            fps.add(tuple(sorted(genome.items())))
        assert len(fps) == len(design)

    def test_factorial_screens_every_varying_gene(self, space):
        # resolution-III property: every multi-valued gene takes both
        # extreme levels somewhere in the design
        design = fractional_factorial(space)
        for gene in space.genes:
            if len(gene.values) < 2:
                continue
            seen = {genome[gene.name] for genome in design}
            assert gene.values[0] in seen and gene.values[-1] in seen

    def test_population_has_exact_size_and_no_duplicates(self, space):
        pop = doe_population(space, 20, seed=0)
        assert len(pop) == 20
        fps = {space.fingerprint(g) for g in pop}
        assert len(fps) == 20

    def test_population_deterministic_in_seed(self, space):
        assert doe_population(space, 12, seed=3) == \
            doe_population(space, 12, seed=3)

    def test_tiny_space_pads_with_duplicates(self):
        tiny = SearchSpace([Gene("a", (1, 2), 1)])
        pop = doe_population(tiny, 10, seed=0)
        assert len(pop) == 10

    def test_size_must_be_positive(self, space):
        with pytest.raises(ValueError):
            doe_population(space, 0, seed=0)
