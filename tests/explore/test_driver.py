"""The differential test layer pinning the explorer's contract.

These are the acceptance criteria of the exploration subsystem, stated
as executable invariants:

* **worker-count independence** — the same spec produces byte-identical
  result JSON at 1 and 4 workers;
* **cache closure** — a warm second run recomputes zero genomes and
  still produces identical bytes (asserted from metrics counters, not
  timing);
* **execution-path equivalence** — JSON cache mode and durable
  store mode produce byte-identical results (and the store resumes
  warm);
* **GA never worse than its DoE seed** — per-generation archive
  hypervolume is monotone nondecreasing from generation 0;
* **front soundness** — every evaluated row is on the front or
  dominated by a front member, never both.
"""

import json

import pytest

from repro.campaign import CampaignStore
from repro.cosim.metrics import MetricsRegistry
from repro.explore import (
    ExploreSpec,
    dominates,
    explore,
    random_search,
)
from repro.obs.spans import SpanTracer
from repro.partition.seeding import ProgressProbe
from repro.sweep import ResultCache

#: Small but real: three generations over both objective arities.
SPEC_2D = ExploreSpec(population=6, generations=3, n_tasks=(8,),
                      heuristics=("greedy", "kl", "cosyma"))
SPEC_3D = ExploreSpec(population=8, generations=3,
                      scenario="coproc", scenario_faults=12)


@pytest.fixture(scope="module")
def result_3d():
    return explore(SPEC_3D, workers=1)


@pytest.fixture(scope="module")
def baseline_json(result_3d):
    return result_3d.to_json()


class TestDeterminism:
    def test_repeat_run_byte_identical(self, baseline_json):
        assert explore(SPEC_3D, workers=1).to_json() == baseline_json

    def test_four_workers_byte_identical(self, baseline_json):
        assert explore(SPEC_3D, workers=4).to_json() == baseline_json

    def test_2d_worker_independence(self):
        assert explore(SPEC_2D, workers=1).to_json() == \
            explore(SPEC_2D, workers=2).to_json()

    @pytest.mark.slow
    def test_ga_seed_changes_the_search(self, baseline_json):
        import dataclasses
        reseeded = dataclasses.replace(SPEC_3D, ga_seed=1)
        assert explore(reseeded, workers=1).to_json() != baseline_json


class TestCacheClosure:
    @pytest.mark.slow
    def test_warm_run_recomputes_nothing(self, tmp_path,
                                         baseline_json):
        cache = ResultCache(tmp_path / "cache")
        cold = explore(SPEC_3D, workers=1, cache=cache)
        assert cold.to_json() == baseline_json
        assert cold.stats.computed > 0

        metrics = MetricsRegistry()
        warm = explore(SPEC_3D, workers=1, cache=cache,
                       metrics=metrics)
        assert warm.to_json() == baseline_json
        assert warm.stats.computed == 0
        counters = metrics.to_dict()["counters"]
        assert "explore.genomes.computed" not in counters
        assert counters["explore.cache.hits"] > 0

    @pytest.mark.slow
    def test_store_mode_matches_cache_mode(self, tmp_path,
                                           baseline_json):
        store = CampaignStore(tmp_path / "dse.sqlite")
        pooled = explore(SPEC_3D, workers=2, cache=store)
        assert pooled.to_json() == baseline_json
        # resume warm from the committed store, serial this time
        warm = explore(SPEC_3D, workers=1, cache=store)
        assert warm.to_json() == baseline_json
        assert warm.stats.computed == 0


class TestGANeverWorse:
    def test_hypervolume_monotone_from_doe_seed(self, result_3d):
        hvs = [h["hypervolume"] for h in result_3d.history]
        assert len(hvs) == SPEC_3D.generations
        for prev, cur in zip(hvs, hvs[1:]):
            assert cur >= prev - 1e-12, hvs

    def test_best_scalar_never_regresses(self, result_3d):
        bests = [h["best_scalar"] for h in result_3d.history]
        running = bests[0]
        for b in bests[1:]:
            running = min(running, b)
        # the archive is elitist: the final best is the running best
        assert result_3d.ranking()[0]["scalar"] == \
            pytest.approx(running)


class TestFrontSoundness:
    def test_exactly_one_front_membership(self, result_3d):
        front_fps = {row["fingerprint"]
                     for row in result_3d.front_rows()}
        points = {row["fingerprint"]: tuple(row["objectives"])
                  for row in result_3d.rows}
        assert len(front_fps) == len(result_3d.front_rows())
        for fp, point in points.items():
            dominated = any(
                dominates(points[other], point)
                for other in points if other != fp
            )
            assert (fp not in front_fps) == dominated

    def test_front_sorted_by_objectives_then_fingerprint(
            self, result_3d):
        rows = result_3d.front_rows()
        keys = [(tuple(r["objectives"]), r["fingerprint"])
                for r in rows]
        assert keys == sorted(keys)

    def test_json_is_canonical(self, result_3d):
        doc = json.loads(result_3d.to_json())
        assert doc["version"] == 1
        assert doc["objectives"] == ["cost", "latency_ns", "exposure"]
        assert len(doc["front"]) == len(result_3d.front_rows())
        assert len(doc["history"]) == SPEC_3D.generations
        # volatile stats never leak into the serialized result
        assert "stats" not in doc and "elapsed" not in json.dumps(doc)


class TestObservability:
    def test_observed_run_identical_bytes(self, baseline_json):
        tracer = SpanTracer()
        probe = ProgressProbe()
        metrics = MetricsRegistry()
        observed = explore(SPEC_3D, workers=2, span_tracer=tracer,
                           probe=probe, metrics=metrics)
        assert observed.to_json() == baseline_json
        assert len(probe.to_dicts()) == SPEC_3D.generations
        assert len(tracer.spans_named("generation")) == \
            SPEC_3D.generations
        assert tracer.spans_named("genome"), \
            "worker-side genome spans should merge into the timeline"
        counters = metrics.to_dict()["counters"]
        assert counters["explore.generations"] == SPEC_3D.generations
        assert counters["explore.worker.genomes"] == \
            counters["explore.genomes.computed"]


class TestRandomBaseline:
    def test_random_search_deterministic(self):
        a = random_search(SPEC_2D, evaluations=10)
        b = random_search(SPEC_2D, evaluations=10)
        assert a.to_json() == b.to_json()

    def test_random_search_shares_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        random_search(SPEC_2D, evaluations=10, cache=cache)
        warm = random_search(SPEC_2D, evaluations=10, cache=cache)
        assert warm.stats.computed == 0


class TestSpecValidation:
    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            ExploreSpec(population=1)

    def test_rejects_zero_generations(self):
        with pytest.raises(ValueError):
            ExploreSpec(generations=0)

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            explore(SPEC_2D, workers=0)
