"""Property-based contract of the Pareto/MCDM layer.

Hypothesis drives random objective clouds (including deliberately tied
and duplicated vectors) through :mod:`repro.explore.pareto`; the
properties are the module's contract:

* :func:`pareto_front` returns **exactly** the non-dominated subset —
  no front member is dominated by any input, every non-member is
  dominated by someone;
* front extraction is **idempotent** (the front of the front is
  itself) and **order-insensitive** (permuting the input permutes the
  indices but never the selected multiset of points);
* ties are **stable**: duplicated vectors are all on the front or all
  off it, together;
* the supporting machinery (sorting into fronts, crowding, weighted
  sums, hypervolume) is total, deterministic, and monotone where the
  algebra says it must be.

Everything is derandomized: this suite is deterministic in CI.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.explore.pareto import (
    crowding_distance,
    dominates,
    hypervolume,
    non_dominated_sort,
    normalized_hypervolume,
    objective_bounds,
    pareto_front,
    weighted_sum_rank,
)

COMMON = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

# coordinates from a small grid so ties and duplicates are common —
# the tie-handling properties are the ones worth hammering
coord = st.integers(min_value=0, max_value=6).map(float)


def points_strategy(dims):
    return st.lists(
        st.tuples(*[coord] * dims), min_size=1, max_size=24,
    )


any_points = st.one_of(points_strategy(2), points_strategy(3))


# ----------------------------------------------------------------------
# dominance
# ----------------------------------------------------------------------
class TestDominates:
    @given(st.tuples(coord, coord, coord))
    @settings(max_examples=50, **COMMON)
    def test_never_self_dominating(self, p):
        assert not dominates(p, p)

    @given(st.tuples(coord, coord), st.tuples(coord, coord))
    @settings(max_examples=200, **COMMON)
    def test_antisymmetric(self, a, b):
        assert not (dominates(a, b) and dominates(b, a))

    @given(*[st.tuples(coord, coord, coord)] * 3)
    @settings(max_examples=200, **COMMON)
    def test_transitive(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)


# ----------------------------------------------------------------------
# the front: exactly the non-dominated set
# ----------------------------------------------------------------------
class TestParetoFront:
    @given(any_points)
    @settings(max_examples=200, **COMMON)
    def test_exactly_the_non_dominated_set(self, points):
        front = set(pareto_front(points))
        assert front, "a non-empty set always has a non-dominated point"
        for i in range(len(points)):
            dominated = any(
                dominates(points[j], points[i])
                for j in range(len(points)) if j != i
            )
            assert (i not in front) == dominated, (i, points)

    @given(any_points)
    @settings(max_examples=200, **COMMON)
    def test_idempotent(self, points):
        members = pareto_front(points)
        sub = [points[i] for i in members]
        assert pareto_front(sub) == list(range(len(sub)))

    @given(any_points, st.randoms(use_true_random=False))
    @settings(max_examples=200, **COMMON)
    def test_order_insensitive(self, points, rng):
        baseline = Counter(points[i] for i in pareto_front(points))
        shuffled = list(points)
        rng.shuffle(shuffled)
        assert Counter(
            shuffled[i] for i in pareto_front(shuffled)
        ) == baseline

    @given(any_points)
    @settings(max_examples=200, **COMMON)
    def test_ties_stay_together(self, points):
        # duplicate every point; each duplicate pair must land on the
        # same side of the front
        doubled = list(points) + list(points)
        front = set(pareto_front(doubled))
        n = len(points)
        for i in range(n):
            assert (i in front) == (i + n in front), doubled

    @given(any_points)
    @settings(max_examples=200, **COMMON)
    def test_indices_ascend(self, points):
        front = pareto_front(points)
        assert front == sorted(front)


class TestNonDominatedSort:
    @given(any_points)
    @settings(max_examples=200, **COMMON)
    def test_partition_into_fronts(self, points):
        fronts = non_dominated_sort(points)
        flat = [i for front in fronts for i in front]
        # exactly-one-front membership
        assert sorted(flat) == list(range(len(points)))
        assert fronts[0] == pareto_front(points)
        for front in fronts:
            sub = [points[i] for i in front]
            assert pareto_front(sub) == list(range(len(sub)))


# ----------------------------------------------------------------------
# crowding, ranking
# ----------------------------------------------------------------------
class TestCrowding:
    @given(any_points)
    @settings(max_examples=200, **COMMON)
    def test_total_and_non_negative(self, points):
        crowd = crowding_distance(points)
        assert len(crowd) == len(points)
        assert all(c >= 0.0 for c in crowd)

    @given(points_strategy(2))
    @settings(max_examples=200, **COMMON)
    def test_boundaries_are_infinite(self, points):
        crowd = crowding_distance(points)
        for d in range(2):
            lo = min(p[d] for p in points)
            hi = max(p[d] for p in points)
            extreme = [i for i, p in enumerate(points)
                       if p[d] in (lo, hi)]
            assert any(crowd[i] == float("inf") for i in extreme)


class TestWeightedSumRank:
    @given(any_points)
    @settings(max_examples=200, **COMMON)
    def test_total_deterministic_order(self, points):
        ranked = weighted_sum_rank(points)
        assert [i for i, _ in sorted(ranked)] == list(
            range(len(points)))
        scalars = [s for _, s in ranked]
        assert scalars == sorted(scalars)
        assert ranked == weighted_sum_rank(points)

    @given(any_points)
    @settings(max_examples=200, **COMMON)
    def test_best_is_never_strictly_dominated(self, points):
        best = weighted_sum_rank(points)[0][0]
        # equal-weight scalarization can't prefer a dominated point
        # over its dominator (the dominator's scalar is <=, and ties
        # break by index — but a strict dominator scores strictly less)
        assert not any(
            dominates(p, points[best]) for p in points
        ), points


# ----------------------------------------------------------------------
# hypervolume
# ----------------------------------------------------------------------
class TestHypervolume:
    @given(any_points)
    @settings(max_examples=200, **COMMON)
    def test_monotone_under_union(self, points):
        dims = len(points[0])
        ref = (7.0,) * dims
        half = points[: max(1, len(points) // 2)]
        assert hypervolume(points, ref) >= hypervolume(half, ref) - 1e-12

    @given(any_points)
    @settings(max_examples=200, **COMMON)
    def test_dominated_points_add_nothing(self, points):
        dims = len(points[0])
        ref = (7.0,) * dims
        front_only = [points[i] for i in pareto_front(points)]
        assert abs(
            hypervolume(points, ref) - hypervolume(front_only, ref)
        ) < 1e-12

    @given(st.tuples(coord, coord))
    @settings(max_examples=100, **COMMON)
    def test_single_point_rectangle(self, p):
        ref = (7.0, 7.0)
        expected = (ref[0] - p[0]) * (ref[1] - p[1])
        assert abs(hypervolume([p], ref) - expected) < 1e-12

    @given(points_strategy(3))
    @settings(max_examples=200, **COMMON)
    def test_3d_bounded_by_reference_box(self, points):
        ref = (7.0, 7.0, 7.0)
        hv = hypervolume(points, ref)
        assert 0.0 <= hv <= 7.0 ** 3 + 1e-9

    @given(any_points)
    @settings(max_examples=100, **COMMON)
    def test_normalized_form_is_bounded(self, points):
        lo, hi = objective_bounds(points)
        hv = normalized_hypervolume(points, lo, hi)
        dims = len(points[0])
        assert 0.0 <= hv <= 1.1 ** dims + 1e-9
