"""The flight recorder (:mod:`repro.obs.live`): sample mechanics,
rate-limited emission, both sinks, status rendering — and the two
contracts that make it safe to leave wired into production paths:

* **zero cost when disabled** — a run without a recorder constructs no
  telemetry object and allocates nothing in ``live.py``;
* **never in the results** — every engine's output is byte-identical
  with the recorder on or off.
"""

import json
import os

import pytest

import repro.obs.live as live
from repro.campaign.store import CampaignStore
from repro.explore import ExploreSpec, explore
from repro.fault import SCENARIOS, run_campaign, sample_faults
from repro.obs import (
    JsonlRecorder,
    StoreRecorder,
    TelemetryEmitter,
    TelemetrySample,
    latest_by_owner,
    owner_throughput,
    read_samples,
    render_status,
)
from repro.sweep import expand_grid, run_sweep

GRID_KW = dict(generators=("layered",), n_tasks=(6,),
               heuristics=("greedy",), seeds=range(4))

EXPLORE_SPEC = ExploreSpec(population=4, generations=2, n_tasks=(8,),
                           heuristics=("greedy", "kl"))


class FakeClock:
    """A settable clock (``clock.t = ...``) for deterministic gating."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class ListRecorder:
    """In-memory sink for emitter unit tests."""

    def __init__(self):
        self.samples = []

    def record(self, sample):
        self.samples.append(sample)


def make_sample(kind="heartbeat", owner="pid:1", role="shard",
                wall=100.0, mono=10.0, seq=0, **data):
    return TelemetrySample(kind=kind, owner=owner, role=role,
                           wall_time=wall, mono_time=mono, seq=seq,
                           data=data)


class TestSample:
    def test_dict_roundtrip_and_version_stamp(self):
        sample = make_sample(done=3, in_flight=2)
        doc = sample.to_dict()
        assert doc["version"] == live.TELEMETRY_VERSION
        assert TelemetrySample.from_dict(doc) == sample

    def test_from_dict_tolerates_missing_data(self):
        doc = make_sample().to_dict()
        del doc["data"]
        assert TelemetrySample.from_dict(doc).data == {}


class TestEmitter:
    def make(self, interval_s=1.0):
        sink = ListRecorder()
        mono, wall = FakeClock(100.0), FakeClock(5000.0)
        emitter = TelemetryEmitter(sink, owner="pid:9", role="shard",
                                   interval_s=interval_s, clock=mono,
                                   wall=wall)
        return sink, mono, wall, emitter

    def test_first_heartbeat_fires_immediately(self):
        sink, _mono, _wall, emitter = self.make()
        assert emitter.heartbeat(done=0) is True
        assert len(sink.samples) == 1
        assert sink.samples[0].kind == "heartbeat"
        assert sink.samples[0].data == {"done": 0}

    def test_heartbeat_is_rate_limited_by_the_monotonic_clock(self):
        sink, mono, _wall, emitter = self.make(interval_s=1.0)
        assert emitter.heartbeat() is True
        assert emitter.heartbeat() is False       # same instant
        mono.t = 100.9
        assert emitter.heartbeat() is False       # interval not up
        mono.t = 101.0
        assert emitter.heartbeat() is True        # exactly due
        assert len(sink.samples) == 2

    def test_force_bypasses_the_gate(self):
        sink, _mono, _wall, emitter = self.make()
        emitter.heartbeat()
        assert emitter.heartbeat(force=True, exiting=True) is True
        assert sink.samples[-1].data == {"exiting": True}

    def test_emit_is_unconditional_and_seq_is_shared(self):
        sink, _mono, _wall, emitter = self.make()
        emitter.heartbeat()
        emitter.emit("queue", pending=3)
        emitter.emit("queue", pending=2)
        assert [s.seq for s in sink.samples] == [0, 1, 2]
        assert sink.samples[1].kind == "queue"

    def test_sample_carries_both_clocks_and_owner(self):
        sink, mono, wall, emitter = self.make()
        mono.t, wall.t = 111.0, 5042.0
        emitter.emit("run", event="start")
        (sample,) = sink.samples
        assert sample.mono_time == 111.0
        assert sample.wall_time == 5042.0
        assert sample.owner == "pid:9" and sample.role == "shard"

    def test_default_owner_is_this_pid(self):
        emitter = TelemetryEmitter(ListRecorder())
        assert emitter.owner == f"pid:{os.getpid()}"


class TestJsonlRecorder:
    def test_roundtrip_through_the_file(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = JsonlRecorder(path)
        emitter = TelemetryEmitter(recorder, owner="pid:5")
        emitter.heartbeat(done=1)
        emitter.emit("queue", pending=7)
        recorder.close()
        samples = read_samples(path)
        assert [s.kind for s in samples] == ["heartbeat", "queue"]
        assert samples[0].data == {"done": 1}

    def test_read_tolerates_torn_tail_and_garbage(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = JsonlRecorder(path)
        recorder.record(make_sample(seq=0))
        recorder.record(make_sample(seq=1))
        recorder.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write('{"kind": "heartb')  # the torn last line
        samples = read_samples(path)
        assert [s.seq for s in samples] == [0, 1]

    def test_missing_file_reads_as_empty(self, tmp_path):
        assert read_samples(tmp_path / "nope.jsonl") == []

    def test_record_after_close_reopens(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = JsonlRecorder(path)
        recorder.record(make_sample(seq=0))
        recorder.close()
        recorder.record(make_sample(seq=1))
        recorder.close()
        assert [s.seq for s in read_samples(path)] == [0, 1]


class TestStoreRecorder:
    def test_samples_land_in_the_telemetry_table(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite")
        emitter = TelemetryEmitter(StoreRecorder(store), owner="pid:3")
        emitter.heartbeat(done=2)
        rows = store.telemetry()
        assert len(rows) == 1
        assert rows[0]["kind"] == "heartbeat"
        assert rows[0]["data"] == {"done": 2}


class TestStatusRendering:
    def stream(self):
        return [
            make_sample(owner="pid:1", wall=100.0, mono=0.0, seq=0,
                        done=0),
            make_sample(owner="pid:2", wall=100.0, mono=0.0, seq=0,
                        done=0),
            make_sample(owner="pid:1", wall=105.0, mono=5.0, seq=1,
                        done=10),
            make_sample(owner="pid:2", wall=105.0, mono=5.0, seq=1,
                        done=5, exiting=True),
            make_sample(kind="queue", owner="coord:3",
                        role="coordinator", wall=105.0, mono=5.0,
                        seq=0, pending=2, leased=1, done=15),
        ]

    def test_latest_by_owner_takes_stream_order(self):
        latest = latest_by_owner(self.stream())
        assert latest["pid:1"].seq == 1
        assert latest["pid:2"].data["exiting"] is True

    def test_owner_throughput_uses_the_monotonic_clock(self):
        assert owner_throughput(self.stream(), "pid:1") == 2.0
        assert owner_throughput(self.stream(), "pid:2") == 1.0

    def test_owner_throughput_needs_two_samples(self):
        assert owner_throughput(self.stream()[:2], "pid:1") is None
        assert owner_throughput([], "pid:1") is None

    def test_render_status_frame(self):
        text = render_status(self.stream(), now_wall=106.0,
                             dead_owners=["pid:1"], title="campaign")
        assert "campaign" in text
        assert "pid:1" in text and "DEAD" in text
        assert "exited" in text           # pid:2 said goodbye
        assert "queue: " in text and "pending=2" in text
        assert "eta:" in text             # 3 remaining at 3.0/s

    def test_render_status_includes_last_generation(self):
        samples = self.stream() + [
            make_sample(kind="generation", owner="explore:4",
                        role="explore", wall=105.0, mono=5.0, seq=0,
                        generation=3, front_size=4, hypervolume=0.25),
        ]
        text = render_status(samples, now_wall=106.0)
        assert "generation 3" in text and "hv=0.2500" in text


class TestZeroCostWhenDisabled:
    def test_no_recorder_means_no_telemetry_objects(self, monkeypatch,
                                                    tmp_path):
        """With recorder=None no TelemetryEmitter or TelemetrySample
        may ever be constructed, on any engine's path."""
        def forbidden(*args, **kwargs):
            raise AssertionError(
                "telemetry object created with no recorder armed"
            )

        monkeypatch.setattr(live.TelemetryEmitter, "__init__",
                            forbidden)
        monkeypatch.setattr(live, "TelemetrySample", forbidden)

        grid = expand_grid(**GRID_KW)
        run_sweep(grid)                                   # pool mode
        store = CampaignStore(tmp_path / "c.sqlite")
        run_sweep(grid, cache=store)                      # store mode
        faults = sample_faults(SCENARIOS["coproc"].targets, 3, seed=1)
        run_campaign("coproc", faults)
        explore(EXPLORE_SPEC)

    def test_no_recorder_means_no_allocations_in_live_py(self):
        """tracemalloc must see zero bytes attributable to live.py
        while an unrecorded sweep runs — the ``if recorder is not
        None`` guards are the whole cost."""
        import tracemalloc

        grid = expand_grid(**GRID_KW)
        run_sweep(grid)  # warm caches
        tracemalloc.start(10)
        try:
            run_sweep(grid)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = snapshot.filter_traces(
            [tracemalloc.Filter(True, live.__file__)]
        ).statistics("filename")
        allocated = sum(s.size for s in stats)
        assert allocated == 0, (
            f"live.py allocated {allocated} bytes with no recorder"
        )


class TestByteIdenticalWithRecorder:
    """The recorder may never leak into results: every engine's output
    is byte-identical with telemetry on or off."""

    def test_sweep_pool_mode(self, tmp_path):
        grid = expand_grid(**GRID_KW)
        plain = run_sweep(grid)
        recorder = JsonlRecorder(tmp_path / "flight.jsonl")
        recorded = run_sweep(grid, recorder=recorder)
        recorder.close()
        assert plain.to_json() == recorded.to_json()
        kinds = {s.kind for s in read_samples(recorder.path)}
        assert "run" in kinds and "heartbeat" in kinds

    def test_sweep_store_mode(self, tmp_path):
        grid = expand_grid(**GRID_KW)
        quiet = CampaignStore(tmp_path / "quiet.sqlite")
        loud = CampaignStore(tmp_path / "loud.sqlite")
        plain = run_sweep(grid, cache=quiet)
        recorded = run_sweep(grid, cache=loud,
                             recorder=StoreRecorder(loud))
        assert plain.to_json() == recorded.to_json()
        assert quiet.telemetry() == []
        assert any(s["kind"] == "heartbeat" for s in loud.telemetry())

    def test_fault_campaign(self, tmp_path):
        faults = sample_faults(SCENARIOS["coproc"].targets, 6, seed=3)
        plain = run_campaign("coproc", faults)
        recorder = JsonlRecorder(tmp_path / "flight.jsonl")
        recorded = run_campaign("coproc", faults, recorder=recorder)
        recorder.close()
        assert plain.to_json() == recorded.to_json()
        samples = read_samples(recorder.path)
        roles = {s.role for s in samples}
        assert roles == {"fault"}

    def test_explore(self, tmp_path):
        plain = explore(EXPLORE_SPEC)
        recorder = JsonlRecorder(tmp_path / "flight.jsonl")
        recorded = explore(EXPLORE_SPEC, recorder=recorder)
        recorder.close()
        assert plain.to_json() == recorded.to_json()
        samples = read_samples(recorder.path)
        gens = [s for s in samples if s.kind == "generation"]
        assert len(gens) == EXPLORE_SPEC.generations
        assert all(s.owner.startswith("explore:") for s in gens)

    def test_samples_never_contain_result_bytes(self, tmp_path):
        """Telemetry is gauges only — no fingerprints, no records."""
        grid = expand_grid(**GRID_KW)
        store = CampaignStore(tmp_path / "c.sqlite")
        run_sweep(grid, cache=store, recorder=StoreRecorder(store))
        fingerprints = set(store.fingerprints())
        for sample in store.telemetry():
            blob = json.dumps(sample["data"])
            for fingerprint in fingerprints:
                assert fingerprint not in blob
