"""Span tracer: nesting, attributes, merging, Perfetto export,
flamegraph rendering, and the schema validator itself."""

import json

import pytest

from repro.obs import (
    REQUIRED_KEYS,
    Span,
    SpanEvent,
    SpanTracer,
    fold_spans,
    render_flamegraph,
    to_trace_events,
    validate_trace_events,
)


def fake_clock(times):
    """A deterministic clock yielding the given instants in order."""
    it = iter(times)
    return lambda: next(it)


class TestSpanNesting:
    def test_nested_spans_record_depth_and_order(self):
        tracer = SpanTracer(pid=1, tid=1,
                            clock=fake_clock([0.0, 1.0, 2.0, 3.0]))
        with tracer.span("outer", phase="all"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.depth == 1
        # innermost closes first
        assert [s.name for s in tracer.finished] == ["inner", "outer"]
        inner, outer = tracer.finished
        assert inner.depth == 1 and outer.depth == 0
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert outer.attrs == {"phase": "all"}
        assert tracer.current is None

    def test_span_closed_on_exception(self):
        tracer = SpanTracer(pid=1, tid=1, clock=fake_clock([0.0, 1.0]))
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert len(tracer.finished) == 1
        assert tracer.finished[0].duration == 1.0
        assert tracer.current is None

    def test_events_capture_time_and_attrs(self):
        tracer = SpanTracer(pid=7, tid=3, clock=fake_clock([5.0]))
        tracer.event("cache.hit", fingerprint="abc")
        (event,) = tracer.events
        assert event.name == "cache.hit"
        assert event.time == 5.0
        assert event.pid == 7
        assert event.attrs == {"fingerprint": "abc"}


class TestMergeAndTransport:
    def make_worker(self, pid, offset):
        worker = SpanTracer(
            pid=pid, tid=1,
            clock=fake_clock([offset, offset + 0.25, offset + 0.5,
                              offset + 0.75, offset + 1.0]),
        )
        with worker.span("cell", heuristic="greedy"):
            worker.event("converge:greedy", iteration=0, cost=1.0)
            with worker.span("partition"):
                pass
        return worker

    def test_snapshot_roundtrip(self):
        worker = self.make_worker(100, 0.0)
        snap = worker.snapshot()
        # must survive a JSON pipe (what the process pool actually does)
        snap = json.loads(json.dumps(snap))
        parent = SpanTracer(pid=1, tid=1)
        parent.merge_snapshot(snap, lane="worker 100")
        assert len(parent.finished) == 2
        assert len(parent.events) == 1
        assert parent.lane_names[100] == "worker 100"
        assert all(s.pid == 100 for s in parent.finished)

    def test_merged_workers_keep_their_own_lanes(self):
        parent = SpanTracer(pid=1, tid=1, clock=fake_clock([0.0, 9.0]))
        with parent.span("sweep"):
            pass
        for pid, offset in ((100, 1.0), (200, 2.0)):
            parent.merge_snapshot(self.make_worker(pid, offset).snapshot(),
                                  lane=f"worker {pid}")
        assert parent.pids() == [1, 100, 200]
        by_pid = {}
        for span in parent.finished:
            by_pid.setdefault(span.pid, []).append(span.name)
        assert sorted(by_pid[100]) == ["cell", "partition"]
        assert sorted(by_pid[200]) == ["cell", "partition"]

    def test_span_and_event_dict_roundtrip(self):
        span = Span("s", 1.0, 2.0, 10, 20, 1, {"k": "v"})
        assert Span.from_dict(span.to_dict()) == span
        event = SpanEvent("e", 1.5, 10, 20, {"x": 1})
        assert SpanEvent.from_dict(event.to_dict()) == event


class TestPerfettoExport:
    def traced(self):
        tracer = SpanTracer(pid=1, tid=1,
                            clock=fake_clock([10.0, 10.5, 11.0, 11.5,
                                              12.0]))
        with tracer.span("outer"):
            tracer.event("tick", n=1)
            with tracer.span("inner"):
                pass
        return tracer

    def test_events_carry_required_keys(self):
        events = to_trace_events(self.traced())
        assert events, "no events exported"
        for event in events:
            for key in REQUIRED_KEYS:
                assert key in event, f"missing {key} in {event}"

    def test_timestamps_normalized_to_microseconds(self):
        events = to_trace_events(self.traced())
        completes = [e for e in events if e["ph"] == "X"]
        outer = next(e for e in completes if e["name"] == "outer")
        inner = next(e for e in completes if e["name"] == "inner")
        assert outer["ts"] == 0.0            # normalized origin
        assert outer["dur"] == 2e6           # 2 s -> 2M us
        assert inner["ts"] == 1e6
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["ts"] == 0.5e6
        assert instant["args"] == {"n": 1}

    def test_process_name_metadata_per_lane(self):
        tracer = self.traced()
        tracer.name_lane(1, "main lane")
        events = to_trace_events(tracer)
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["args"] == {"name": "main lane"}

    def test_to_perfetto_document_is_valid(self):
        doc = self.traced().to_perfetto()
        assert validate_trace_events(doc) == []
        parsed = json.loads(doc)
        assert isinstance(parsed["traceEvents"], list)

    def test_write_perfetto(self, tmp_path):
        path = tmp_path / "trace.json"
        self.traced().write_perfetto(str(path))
        assert validate_trace_events(path.read_text()) == []


class TestValidator:
    def test_rejects_missing_required_keys(self):
        doc = {"traceEvents": [{"ph": "i", "ts": 0, "pid": 1}]}
        problems = validate_trace_events(doc)
        assert any("tid" in p for p in problems)
        assert any("name" in p for p in problems)

    def test_rejects_negative_duration(self):
        doc = {"traceEvents": [
            {"ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 1, "name": "x"}
        ]}
        assert any("dur" in p for p in validate_trace_events(doc))

    def test_rejects_garbage(self):
        assert validate_trace_events("not json{")
        assert validate_trace_events(42)
        assert validate_trace_events({"noTraceEvents": []})

    def test_accepts_array_form(self):
        events = [{"ph": "i", "ts": 0, "pid": 1, "tid": 1, "name": "e"}]
        assert validate_trace_events(events) == []


class TestFlamegraph:
    def test_fold_reconstructs_hierarchy_without_parent_pointers(self):
        tracer = SpanTracer(
            pid=1, tid=1,
            clock=fake_clock([0.0, 1.0, 2.0, 3.0, 4.0, 10.0]),
        )
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            with tracer.span("child"):
                pass
        folded = fold_spans(tracer)
        assert folded[("root",)]["count"] == 1
        assert folded[("root", "child")]["count"] == 2
        assert folded[("root", "child")]["time"] == 2.0

    def test_render_is_aligned_and_proportional(self):
        tracer = SpanTracer(pid=1, tid=1,
                            clock=fake_clock([0.0, 0.0, 8.0, 10.0]))
        with tracer.span("root"):
            with tracer.span("hot"):
                pass
        text = render_flamegraph(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("flamegraph:")
        root_line = next(l for l in lines if l.startswith("root"))
        hot_line = next(l for l in lines if l.strip().startswith("hot"))
        assert root_line.count("#") > hot_line.count("#")
        assert "100.0%" in root_line
        assert "80.0%" in hot_line

    def test_empty_tracer(self):
        assert "(no spans" in render_flamegraph(SpanTracer())


class TestUnfinishedSpanExport:
    """Satellite of the flight-recorder issue: a tracer frozen
    mid-span (crash, post-mortem snapshot) must still export a
    schema-valid trace when asked."""

    def crashed_tracer(self):
        # trailing 4.0s feed now() and the GC-time close of the
        # abandoned spans once the test ends
        tracer = SpanTracer(pid=1, tid=1,
                            clock=fake_clock([0.0, 1.0, 2.0, 3.0]
                                             + [4.0] * 6))
        with tracer.span("done"):
            pass
        # hold the managers: these spans never close
        outer = tracer.span("campaign", run=7)
        inner = tracer.span("cell")
        outer.__enter__()
        inner.__enter__()
        return tracer, (outer, inner)

    def test_default_export_skips_open_spans(self):
        tracer, _keepalive = self.crashed_tracer()
        events = to_trace_events(tracer)
        names = [e["name"] for e in events if e["ph"] == "X"]
        assert names == ["done"]
        assert validate_trace_events(tracer.to_perfetto()) == []

    def test_unfinished_export_is_schema_valid(self):
        tracer, _keepalive = self.crashed_tracer()
        doc = tracer.to_perfetto(unfinished=True)
        assert validate_trace_events(doc) == []
        events = json.loads(doc)["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert names == {"done", "campaign", "cell"}

    def test_open_spans_are_marked_and_end_at_dump_time(self):
        tracer, _keepalive = self.crashed_tracer()
        events = to_trace_events(tracer, unfinished=True)
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        assert by_name["campaign"]["args"] == {"run": 7,
                                               "unfinished": True}
        assert by_name["cell"]["args"] == {"unfinished": True}
        assert "unfinished" not in by_name["done"]["args"]
        # synthetic end = dump time (clock now 4.0): starts 2.0/3.0
        assert by_name["campaign"]["dur"] == pytest.approx(2e6)
        assert by_name["cell"]["dur"] == pytest.approx(1e6)
        assert by_name["campaign"]["dur"] >= 0
        assert by_name["cell"]["dur"] >= 0

    def test_open_spans_property_is_outermost_first(self):
        tracer, _keepalive = self.crashed_tracer()
        assert [s.name for s in tracer.open_spans] == \
            ["campaign", "cell"]

    def test_clean_tracer_unchanged_by_the_flag(self):
        tracer = SpanTracer(pid=1, tid=1,
                            clock=fake_clock([0.0, 1.0]))
        with tracer.span("only"):
            pass
        assert tracer.open_spans == []
        assert tracer.to_perfetto(unfinished=True) == \
            tracer.to_perfetto()

    def test_write_perfetto_unfinished(self, tmp_path):
        tracer, _keepalive = self.crashed_tracer()
        path = tmp_path / "crash_trace.json"
        tracer.write_perfetto(str(path), unfinished=True)
        doc = path.read_text(encoding="utf-8")
        assert validate_trace_events(doc) == []
        assert '"unfinished": true' in doc
