"""Convergence telemetry: every heuristic reports through the shared
:class:`ProgressProbe`, and pays nothing when no probe is attached.

The two acceptance criteria from the issue:

* all six partitioners emit a non-empty, monotone-iteration record
  stream through the shared probe;
* no probe ⇒ the telemetry path allocates nothing and perturbs
  nothing (results identical to a probed run).
"""

import pytest

import repro.partition.seeding as seeding
from repro.partition import HEURISTICS, PartitionProblem, ProgressProbe
from repro.partition.seeding import ProgressRecord
from repro.sweep import SweepConfig


def make_problem(n_tasks=8, seed=0, heuristic="greedy"):
    return SweepConfig(
        n_tasks=n_tasks, seed=seed, heuristic=heuristic
    ).build_problem()


#: Heuristic short name → the algorithm label its records carry.
ALGORITHM_LABELS = {
    "greedy": "greedy",
    "kl": "kl",
    "annealing": "annealing",
    "vulcan": "vulcan",
    "cosyma": "cosyma",
    "gclp": "gclp",
}


@pytest.mark.parametrize("name", sorted(HEURISTICS))
class TestEveryHeuristicReports:
    def test_stream_nonempty_and_monotone(self, name):
        probe = ProgressProbe()
        problem = make_problem(heuristic=name)
        HEURISTICS[name](problem, seed=1, probe=probe)
        records = probe.for_algorithm(ALGORITHM_LABELS[name])
        assert records, f"{name} emitted no convergence records"
        iterations = [r.iteration for r in records]
        assert iterations == list(range(len(records))), (
            f"{name} iterations not monotone from 0"
        )
        for record in records:
            assert isinstance(record.cost, float)
            assert isinstance(record.best_cost, float)
            assert isinstance(record.accepted, bool)

    @pytest.mark.slow
    def test_probe_does_not_perturb_the_result(self, name):
        problem = make_problem(heuristic=name)
        bare = HEURISTICS[name](problem, seed=1)
        probed = HEURISTICS[name](problem, seed=1, probe=ProgressProbe())
        assert probed.hw_tasks == bare.hw_tasks
        assert probed.cost == bare.cost
        assert probed.moves_evaluated == bare.moves_evaluated


class TestAlgorithmSpecificDetail:
    def test_annealing_reports_temperature_and_move_counts(self):
        probe = ProgressProbe()
        HEURISTICS["annealing"](make_problem(), seed=2, probe=probe)
        records = probe.for_algorithm("annealing")
        temps = [r.detail["temperature"] for r in records]
        assert all(t > 0 for t in temps)
        assert temps == sorted(temps, reverse=True), "cooling not monotone"
        moved = [r for r in records if r.iteration > 0]
        assert all(
            "accepted_moves" in r.detail and "rejected_moves" in r.detail
            for r in moved
        )

    def test_gclp_reports_criticality_in_range(self):
        probe = ProgressProbe()
        HEURISTICS["gclp"](make_problem(), seed=0, probe=probe)
        records = probe.for_algorithm("gclp")
        assert records
        for record in records:
            assert 0.0 <= record.detail["criticality"] <= 1.0
            assert "threshold" in record.detail
            assert "task" in record.detail

    def test_best_cost_is_running_minimum_for_greedy(self):
        probe = ProgressProbe()
        HEURISTICS["greedy"](make_problem(), seed=0, probe=probe)
        records = probe.for_algorithm("greedy")
        best = [r.best_cost for r in records]
        assert best == sorted(best, reverse=True)


class TestZeroCostWhenDisabled:
    def test_no_probe_means_no_telemetry_objects(self, monkeypatch):
        """With probe=None, no ProgressRecord may ever be constructed —
        the hot path must not even touch the telemetry types."""
        def forbidden(*args, **kwargs):
            raise AssertionError(
                "telemetry object created with no probe attached"
            )

        monkeypatch.setattr(seeding, "ProgressRecord", forbidden)
        monkeypatch.setattr(
            seeding.ProgressProbe, "record", forbidden
        )
        problem = make_problem()
        for name, heuristic in sorted(HEURISTICS.items()):
            heuristic(problem, seed=1)  # must not raise

    def test_no_probe_means_no_allocations_on_the_record_path(self):
        """tracemalloc must see zero allocations attributable to
        seeding.py while an unprobed heuristic runs — the `if probe is
        not None` guard is the whole cost."""
        import tracemalloc

        problem = make_problem(n_tasks=6)
        HEURISTICS["greedy"](problem, seed=1)  # warm caches
        seeding_file = seeding.__file__
        tracemalloc.start(10)
        try:
            HEURISTICS["greedy"](problem, seed=1)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = snapshot.filter_traces(
            [tracemalloc.Filter(True, seeding_file)]
        ).statistics("filename")
        allocated = sum(s.size for s in stats)
        assert allocated == 0, (
            f"seeding.py allocated {allocated} bytes with no probe"
        )


class TestProbeMechanics:
    def test_shared_probe_tags_by_algorithm(self):
        probe = ProgressProbe()
        problem = make_problem()
        HEURISTICS["greedy"](problem, seed=0, probe=probe)
        HEURISTICS["vulcan"](problem, seed=0, probe=probe)
        assert probe.algorithms() == ["greedy", "vulcan"]
        assert len(probe) == (
            len(probe.for_algorithm("greedy"))
            + len(probe.for_algorithm("vulcan"))
        )

    def test_sink_receives_every_record(self):
        seen = []
        probe = ProgressProbe(sink=seen.append)
        HEURISTICS["greedy"](make_problem(), seed=0, probe=probe)
        assert seen == probe.records

    def test_dict_roundtrip_preserves_iterations_and_detail(self):
        probe = ProgressProbe()
        HEURISTICS["annealing"](make_problem(n_tasks=6), seed=5,
                                probe=probe)
        clone = ProgressProbe()
        clone.extend_from_dicts(probe.to_dicts())
        assert [r.iteration for r in clone.records] == \
            [r.iteration for r in probe.records]
        assert clone.records[1].detail == probe.records[1].detail

    def test_convergence_table_elides_long_streams(self):
        probe = ProgressProbe()
        for i in range(100):
            probe.record("x", float(100 - i))
        table = probe.convergence_table("x", max_rows=10)
        assert "elided" in table
        assert len(table.splitlines()) < 20

    def test_summary_lists_each_algorithm_once(self):
        probe = ProgressProbe()
        probe.record("a", 1.0)
        probe.record("a", 0.5)
        probe.record("b", 2.0, accepted=False)
        summary = probe.summary()
        assert "a: 2 iterations" in summary
        assert "b: 1 iterations" in summary
        assert "0/1 accepted" in summary
