"""Tests for the Vahid-Gajski-style incremental estimator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.estimate.incremental import (
    IncrementalEstimator,
    clear_shared_area_cache,
    entry_key,
    requirements_from_cdfg,
    requirements_from_task,
    shared_area,
    shared_area_cache_info,
)
from repro.graph import kernels
from repro.graph.taskgraph import Task


def req(adder=0, multiplier=0, logic_unit=0):
    out = {}
    if adder:
        out["adder"] = adder
    if multiplier:
        out["multiplier"] = multiplier
    if logic_unit:
        out["logic_unit"] = logic_unit
    return out


class TestPooling:
    def test_single_function_area_is_standalone(self):
        est = IncrementalEstimator()
        est.add("f", req(adder=2, multiplier=1))
        assert est.area == pytest.approx(est.naive_additive_area())

    def test_sharing_beats_naive_additive(self):
        est = IncrementalEstimator()
        est.add("f", req(adder=2, multiplier=2))
        est.add("g", req(adder=2, multiplier=1))
        assert est.area < est.naive_additive_area()
        assert est.sharing_savings() > 0

    def test_pool_is_max_not_sum(self):
        est = IncrementalEstimator()
        est.add("f", req(multiplier=2))
        fu_after_f = est.fu_area
        est.add("g", req(multiplier=1))  # fits inside the pool of 2
        assert est.fu_area == fu_after_f

    def test_pool_grows_only_by_excess(self):
        est = IncrementalEstimator()
        est.add("f", req(multiplier=1))
        one = est.fu_area
        est.add("g", req(multiplier=3))
        mult_area = est.library.component("multiplier").area
        assert est.fu_area == pytest.approx(one + 2 * mult_area)

    def test_sharing_is_not_free_mux_overhead(self):
        est = IncrementalEstimator()
        est.add("f", req(adder=2))
        before = est.area
        est.add("g", req(adder=2))  # pure sharing, but adds steering
        # area grows (mux + controller), though far less than another
        # standalone implementation
        standalone = est.naive_additive_area() / 2
        assert before < est.area < before + standalone


class TestIncrementalRemove:
    def test_add_remove_is_identity(self):
        est = IncrementalEstimator()
        est.add("f", req(adder=2, multiplier=1))
        baseline = est.area
        est.add("g", req(adder=1, multiplier=2, logic_unit=1))
        est.remove("g")
        assert est.area == pytest.approx(baseline)
        assert est.resident == ["f"]

    def test_remove_shrinks_pool_max(self):
        est = IncrementalEstimator()
        est.add("f", req(multiplier=1))
        est.add("g", req(multiplier=3))
        est.remove("g")
        mult_area = est.library.component("multiplier").area
        assert est.fu_area == pytest.approx(mult_area)

    def test_duplicate_add_rejected(self):
        est = IncrementalEstimator()
        est.add("f", req(adder=1))
        with pytest.raises(ValueError):
            est.add("f", req(adder=1))

    def test_remove_absent_rejected(self):
        with pytest.raises(KeyError):
            IncrementalEstimator().remove("ghost")

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_area_matches_from_scratch_rebuild(self, seed):
        """Invariant: after any add/remove sequence, the incremental area
        equals a from-scratch estimator holding the same functions."""
        rng = random.Random(seed)
        est = IncrementalEstimator()
        resident = {}
        for i in range(20):
            if resident and rng.random() < 0.4:
                name = rng.choice(sorted(resident))
                est.remove(name)
                del resident[name]
            else:
                name = f"f{i}"
                r = req(adder=rng.randint(0, 3),
                        multiplier=rng.randint(0, 2),
                        logic_unit=rng.randint(0, 2)) or req(adder=1)
                est.add(name, r)
                resident[name] = r
        fresh = IncrementalEstimator()
        for name, r in resident.items():
            fresh.add(name, r)
        assert est.area == pytest.approx(fresh.area)


class TestWouldAdd:
    def test_would_add_is_marginal_fu_cost(self):
        est = IncrementalEstimator()
        est.add("f", req(multiplier=2))
        mult = est.library.component("multiplier").area
        # adding a function needing 3 multipliers: 1 extra unit
        assert est.would_add(req(multiplier=3)) == pytest.approx(mult)

    def test_would_add_cheap_when_pool_covers(self):
        est = IncrementalEstimator()
        est.add("f", req(multiplier=3, adder=2))
        marginal = est.would_add(req(multiplier=1, adder=1))
        standalone = (est.library.component("multiplier").area
                      + est.library.component("adder").area)
        assert marginal < standalone / 2

    def test_would_add_does_not_mutate(self):
        est = IncrementalEstimator()
        est.add("f", req(adder=1))
        before = est.area
        est.would_add(req(adder=5, multiplier=5))
        assert est.area == before


class TestRequirementExtraction:
    def test_from_cdfg(self):
        needs = requirements_from_cdfg(kernels.fir(8))
        assert needs["multiplier"] >= 1
        assert needs["adder"] >= 1

    def test_from_task_scales_with_area(self):
        small = requirements_from_task(Task("s", sw_time=4, hw_area=100.0))
        large = requirements_from_task(Task("l", sw_time=4, hw_area=1000.0))
        assert sum(large.values()) > sum(small.values())

    def test_from_task_always_has_an_adder(self):
        tiny = requirements_from_task(Task("t", sw_time=1, hw_area=1.0))
        assert tiny["adder"] >= 1

    def test_deterministic(self):
        t = Task("x", sw_time=5, hw_area=300.0)
        assert requirements_from_task(t) == requirements_from_task(t)


class TestSharedAreaCache:
    """The memoized from-scratch evaluation the sweep engine leans on."""

    def entries(self, *specs):
        return tuple(sorted(
            entry_key(requirements, registers, states)
            for requirements, registers, states in specs
        ))

    def test_matches_fresh_estimator(self):
        specs = [(req(adder=2, multiplier=1), 6, 10),
                 (req(adder=1, logic_unit=2), 4, 8)]
        est = IncrementalEstimator()
        for i, (requirements, registers, states) in enumerate(specs):
            est.add(f"f{i}", requirements,
                    registers=registers, states=states)
        assert shared_area(self.entries(*specs)) \
            == pytest.approx(est.area)

    def test_cache_hit_on_repeat(self):
        clear_shared_area_cache()
        entries = self.entries((req(adder=3), 5, 9))
        first = shared_area(entries)
        before = shared_area_cache_info().hits
        second = shared_area(entries)
        assert second == first
        assert shared_area_cache_info().hits == before + 1

    def test_name_blind_key_shares_lines(self):
        """Two distinct tasks with identical characterizations produce
        one cache entry (names are not part of the key)."""
        a = Task("alpha", sw_time=6, hw_area=200.0, sw_size=16, hw_time=5)
        b = Task("beta", sw_time=6, hw_area=200.0, sw_size=16, hw_time=5)
        key_a = entry_key(requirements_from_task(a), 2, 5)
        key_b = entry_key(requirements_from_task(b), 2, 5)
        assert key_a == key_b

    def test_empty_set_is_zero(self):
        assert shared_area(()) == 0.0

    def test_random_sets_match_incremental(self):
        rng = random.Random(11)
        for _ in range(25):
            specs = [
                (req(adder=rng.randint(1, 4),
                     multiplier=rng.randint(0, 3),
                     logic_unit=rng.randint(0, 2)),
                 rng.randint(2, 12), rng.randint(4, 20))
                for _ in range(rng.randint(1, 5))
            ]
            est = IncrementalEstimator()
            for i, (requirements, registers, states) in enumerate(specs):
                est.add(f"f{i}", requirements,
                        registers=registers, states=states)
            assert shared_area(self.entries(*specs)) \
                == pytest.approx(est.area)
