"""Tests for hardware estimation (quick vs synthesis)."""

import pytest

from repro.graph import kernels
from repro.estimate.hardware import (
    HardwareEstimate,
    estimate_cdfg_hardware,
    estimation_error,
    fu_requirements,
    synthesize_cdfg_hardware,
)

KERNELS = sorted(kernels.ALL_CDFG_KERNELS)


class TestQuickEstimate:
    @pytest.mark.parametrize("name", KERNELS)
    def test_positive_numbers(self, name):
        est = estimate_cdfg_hardware(kernels.ALL_CDFG_KERNELS[name]())
        assert est.area > 0
        assert est.latency_ns > 0
        assert est.detail == "quick"

    def test_bigger_kernel_bigger_estimate(self):
        small = estimate_cdfg_hardware(kernels.fir(4))
        large = estimate_cdfg_hardware(kernels.fir(16))
        assert large.area > small.area

    def test_multiplier_heavy_costs_more(self):
        mul_heavy = estimate_cdfg_hardware(kernels.matmul2())   # 8 muls
        logic_heavy = estimate_cdfg_hardware(kernels.crc_step())
        assert mul_heavy.area > logic_heavy.area

    def test_negative_estimate_rejected(self):
        with pytest.raises(ValueError):
            HardwareEstimate(area=-1, latency_ns=0)


class TestFuRequirements:
    def test_requirements_bounded_by_op_counts(self):
        g = kernels.fir(8)
        needs = fu_requirements(g)
        assert 1 <= needs["multiplier"] <= 8
        assert 1 <= needs["adder"] <= 7

    def test_serial_kernel_needs_few_units(self):
        needs = fu_requirements(kernels.crc_step())
        # 25-deep chain of logic ops: near-serial execution
        assert needs["logic_unit"] <= 4


class TestAgainstSynthesis:
    @pytest.mark.parametrize("name", ["ewf", "fir8", "dct4", "biquad"])
    def test_quick_estimate_within_2x_of_synthesis(self, name):
        """The quick estimator must land in the right ballpark — the
        partitioners rank moves with it."""
        g = kernels.ALL_CDFG_KERNELS[name]()
        quick = estimate_cdfg_hardware(g)
        exact = synthesize_cdfg_hardware(g)
        assert estimation_error(quick, exact) < 1.0, (
            f"{name}: quick={quick.area:.0f} exact={exact.area:.0f}"
        )

    def test_quick_preserves_area_ordering(self):
        """Ranking kernels by quick estimate must broadly match ranking
        by synthesis (Spearman-ish check on three spread-out kernels)."""
        names = ["crc_step", "biquad", "fir16"]
        quick = [estimate_cdfg_hardware(kernels.ALL_CDFG_KERNELS[n]()).area
                 for n in names]
        exact = [synthesize_cdfg_hardware(kernels.ALL_CDFG_KERNELS[n]()).area
                 for n in names]
        assert (sorted(range(3), key=lambda i: quick[i])
                == sorted(range(3), key=lambda i: exact[i]))

    def test_synthesis_detail_flag(self):
        exact = synthesize_cdfg_hardware(kernels.dct4())
        assert exact.detail == "synthesis"

    def test_resource_constrained_synthesis_smaller(self):
        g = kernels.fir(8)
        free = synthesize_cdfg_hardware(g)
        tight = synthesize_cdfg_hardware(
            g, resources={"adder": 1, "multiplier": 1}
        )
        assert tight.area < free.area
        assert tight.latency_ns > free.latency_ns
