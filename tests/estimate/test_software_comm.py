"""Tests for software estimation and communication models."""

import pytest

from repro.cosim.bus import SystemBus
from repro.cosim.kernel import Simulator
from repro.estimate.communication import CommModel, DEFAULT, LOOSE, TIGHT
from repro.estimate.software import (
    Processor,
    default_processor_library,
    estimate_cdfg_software,
    measure_cdfg_software,
)
from repro.graph import kernels
from repro.graph.taskgraph import Task, TaskGraph


class TestProcessor:
    def test_time_scales_with_speed(self):
        slow = Processor("slow", clock_ns=10.0, speed_factor=1.0)
        fast = Processor("fast", clock_ns=10.0, speed_factor=2.0)
        assert fast.time_for_cycles(100) == slow.time_for_cycles(100) / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Processor("bad", clock_ns=0.0)
        with pytest.raises(ValueError):
            Processor("bad", speed_factor=-1.0)
        with pytest.raises(ValueError):
            Processor("bad", cost=-5.0)

    def test_default_library_spans_cost_speed_range(self):
        lib = default_processor_library()
        assert len(lib) == 5
        costs = [p.cost for p in lib.values()]
        assert max(costs) / min(costs) >= 8
        # faster processors cost more (monotone frontier)
        by_cost = sorted(lib.values(), key=lambda p: p.cost)
        speeds = [p.speed_factor / p.clock_ns for p in by_cost]
        assert speeds == sorted(speeds)


class TestStaticSoftwareEstimate:
    @pytest.mark.parametrize("name", sorted(kernels.ALL_CDFG_KERNELS))
    def test_estimate_within_60pct_of_measurement(self, name):
        """Static estimates must track the real cycle counts of the
        generated code closely enough to rank partitioning moves."""
        g = kernels.ALL_CDFG_KERNELS[name]()
        est = estimate_cdfg_software(g)
        meas = measure_cdfg_software(g)
        error = abs(est.cycles - meas.cycles) / meas.cycles
        assert error < 0.6, (
            f"{name}: est={est.cycles:.0f} meas={meas.cycles:.0f}"
        )

    def test_estimate_preserves_kernel_ordering(self):
        names = ["dct4", "ewf", "fir16"]
        est = [estimate_cdfg_software(kernels.ALL_CDFG_KERNELS[n]()).cycles
               for n in names]
        meas = [measure_cdfg_software(kernels.ALL_CDFG_KERNELS[n]()).cycles
                for n in names]
        assert (sorted(range(3), key=lambda i: est[i])
                == sorted(range(3), key=lambda i: meas[i]))

    def test_code_size_positive(self):
        est = estimate_cdfg_software(kernels.fir(8))
        assert est.code_words > 16


class TestCommModel:
    def test_transfer_time_formula(self):
        model = CommModel(sync_overhead_ns=10.0, word_time_ns=2.0)
        assert model.transfer_ns(5) == 20.0
        assert model.transfer_ns(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CommModel(sync_overhead_ns=-1.0)

    def test_edge_cost_only_on_boundary(self):
        model = DEFAULT
        assert model.edge_cost(10.0, crosses_boundary=False) == 0.0
        assert model.edge_cost(10.0, crosses_boundary=True) > 0.0

    def test_cut_cost(self):
        g = TaskGraph()
        for n in "abc":
            g.add_task(Task(n, sw_time=1.0))
        g.add_edge("a", "b", 10.0)
        g.add_edge("b", "c", 4.0)
        model = CommModel(sync_overhead_ns=5.0, word_time_ns=1.0)
        # hw = {b}: both edges cross
        assert model.cut_cost(g, {"b"}) == pytest.approx((5 + 10) + (5 + 4))
        assert model.cut_cost(g, set()) == 0.0
        assert model.cut_cost(g, {"a", "b", "c"}) == 0.0

    def test_from_bus_matches_bus_timing(self):
        sim = Simulator()
        bus = SystemBus(sim, arbitration_time=1.0, setup_time=2.0,
                        word_time=3.0)
        model = CommModel.from_bus(bus, driver_overhead_ns=0.0)
        # analytic transfer of 4 words == bus occupancy for the transfer
        expect = bus.arbitration_time + bus.transfer_time(4)
        assert model.transfer_ns(4) == pytest.approx(expect)

    def test_preset_ordering(self):
        assert TIGHT.transfer_ns(16) < DEFAULT.transfer_ns(16) \
            < LOOSE.transfer_ns(16)
