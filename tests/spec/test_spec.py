"""Tests for the executable communicating-process specification."""

import pytest

from repro.graph.taskgraph import CycleError
from repro.spec import (
    ChannelSpec,
    Compute,
    Loop,
    ProcessSpec,
    Receive,
    Send,
    SystemSpec,
    Wait,
)
from repro.spec.process import SpecError


def producer_consumer(n=3, capacity=None):
    producer = ProcessSpec("producer", [
        Loop(n, [Compute(10.0, "make"), Send("data", words=4.0)]),
    ])
    consumer = ProcessSpec("consumer", [
        Loop(n, [Receive("data"), Compute(6.0, "use")]),
    ])
    return SystemSpec(
        [producer, consumer],
        [ChannelSpec("data", "producer", "consumer", capacity=capacity)],
    )


class TestBehavior:
    def test_loop_unrolling(self):
        proc = ProcessSpec("p", [
            Compute(1.0),
            Loop(3, [Compute(2.0), Loop(2, [Compute(0.5)])]),
        ])
        flat = proc.flat()
        assert len(flat) == 1 + 3 * (1 + 2)
        assert proc.total_compute_ns() == pytest.approx(1 + 3 * 2 + 6 * 0.5)

    def test_sends_on_counts_loops(self):
        spec = producer_consumer(n=5)
        count, words = spec.processes["producer"].sends_on("data")
        assert count == 5
        assert words == pytest.approx(20.0)

    def test_statement_validation(self):
        with pytest.raises(ValueError):
            Compute(-1.0)
        with pytest.raises(ValueError):
            Send("c", words=0.0)
        with pytest.raises(ValueError):
            Loop(-1, [])


class TestValidation:
    def test_unknown_channel_rejected(self):
        with pytest.raises(SpecError):
            SystemSpec(
                [ProcessSpec("p", [Send("ghost")])],
                [],
            )

    def test_wrong_direction_rejected(self):
        with pytest.raises(SpecError):
            SystemSpec(
                [ProcessSpec("a", [Receive("c")]),
                 ProcessSpec("b", [Send("c")])],
                [ChannelSpec("c", "a", "b")],  # a is src but receives
            )

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(SpecError):
            SystemSpec(
                [ProcessSpec("a", [Compute(1.0)])],
                [ChannelSpec("c", "a", "ghost")],
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecError):
            SystemSpec(
                [ProcessSpec("a", [Compute(1.0)]),
                 ProcessSpec("a", [Compute(1.0)])],
                [],
            )


class TestExecution:
    def test_pipeline_latency(self):
        trace = producer_consumer(n=3).execute()
        # producer: 3 x 10 = 30; consumer finishes its last item after
        # the last send: 30 + 6 = 36 (receives overlap production)
        assert trace.latency_ns == pytest.approx(36.0)
        assert trace.channel_messages["data"] == 3

    def test_channel_latency_delays_consumer(self):
        fast = producer_consumer(n=1).execute()
        slow = producer_consumer(n=1).execute(
            latency_per_message=50.0
        )
        assert slow.latency_ns > fast.latency_ns

    def test_rendezvous_throttles_producer(self):
        buffered = producer_consumer(n=4, capacity=None).execute()
        rendezvous = producer_consumer(n=4, capacity=0).execute()
        assert rendezvous.finish_times["producer"] >= \
            buffered.finish_times["producer"]

    def test_deadlock_detected(self):
        spec = SystemSpec(
            [
                ProcessSpec("a", [Receive("b2a"), Send("a2b")]),
                ProcessSpec("b", [Receive("a2b"), Send("b2a")]),
            ],
            [
                ChannelSpec("a2b", "a", "b"),
                ChannelSpec("b2a", "b", "a"),
            ],
        )
        with pytest.raises(SpecError):
            spec.execute()

    def test_wait_does_not_consume(self):
        """The sink peeks (wait) before consuming (receive): both must
        succeed on the single message — wait left it in the channel."""
        spec = SystemSpec(
            [
                ProcessSpec("src", [Compute(5.0), Send("c")]),
                ProcessSpec("sink", [Wait("c"), Receive("c"),
                                     Compute(1.0)]),
            ],
            [ChannelSpec("c", "src", "sink")],
        )
        trace = spec.execute()
        assert trace.channel_messages["c"] == 1
        assert len(trace.finish_times) == 2

    def test_time_scale(self):
        base = producer_consumer(n=2).execute()
        scaled = producer_consumer(n=2).execute(time_scale=2.0)
        assert scaled.latency_ns == pytest.approx(2 * base.latency_ns)


class TestRefinement:
    def test_task_graph_structure(self):
        graph = producer_consumer(n=3).to_task_graph()
        assert sorted(graph.task_names) == ["consumer", "producer"]
        edge = graph.edge("producer", "consumer")
        assert edge.volume == pytest.approx(12.0)  # 3 sends x 4 words

    def test_task_times_from_behavior(self):
        graph = producer_consumer(n=3).to_task_graph()
        assert graph.task("producer").sw_time == pytest.approx(30.0)
        assert graph.task("consumer").sw_time == pytest.approx(18.0)

    def test_annotations_weighted_by_duration(self):
        proc = ProcessSpec("p", [
            Compute(10.0, hw_speedup=10.0, parallelism=8.0),
            Compute(30.0, hw_speedup=2.0, parallelism=1.0),
        ])
        spec = SystemSpec([proc, ProcessSpec("q", [Compute(1.0)])], [])
        task = spec.to_task_graph().task("p")
        assert task.speedup == pytest.approx((10 * 10 + 30 * 2) / 40)
        assert task.parallelism == pytest.approx((10 * 8 + 30 * 1) / 40)

    def test_computeless_process_rejected(self):
        spec = SystemSpec(
            [ProcessSpec("a", [Send("c")]),
             ProcessSpec("b", [Receive("c"), Compute(1.0)])],
            [ChannelSpec("c", "a", "b")],
        )
        with pytest.raises(SpecError):
            spec.to_task_graph()

    def test_refined_graph_feeds_the_flow(self):
        """Spec -> task graph -> partition: the full Figure 2 nesting."""
        from repro.core.flow import CodesignFlow

        graph = producer_consumer(n=3).to_task_graph()
        report = CodesignFlow(graph).run()
        assert report.simulated_latency_ns > 0
