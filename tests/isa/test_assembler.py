"""Tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import CustomOp, Isa, Opcode


def run_program(text, isa=None, max_instructions=100_000):
    isa = isa or Isa()
    prog = assemble(text, isa)
    mem = Memory()
    mem.load_image(prog.image)
    cpu = Cpu(isa, mem, pc=prog.entry)
    cpu.run(max_instructions=max_instructions)
    return cpu, mem, prog


class TestBasics:
    def test_simple_program_assembles_and_runs(self):
        cpu, _mem, _prog = run_program("""
            addi r1, r0, 10
            addi r2, r0, 32
            add  r3, r1, r2
            halt
        """)
        assert cpu.get_reg(3) == 42

    def test_comments_and_blank_lines_ignored(self):
        prog = assemble("""
            ; a comment
            # another
            addi r1, r0, 1   ; trailing
            halt
        """)
        assert prog.size == 2

    def test_labels_resolve(self):
        cpu, _m, _p = run_program("""
                addi r1, r0, 0
                j skip
                addi r1, r0, 99   ; must be skipped
            skip:
                addi r1, r1, 5
                halt
        """)
        assert cpu.get_reg(1) == 5

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\na:\nhalt")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere\nhalt")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("bogus r1, r2, r3")

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r99, r2")

    def test_register_aliases(self):
        cpu, _m, _p = run_program("""
            addi ra, zero, 7
            add  r1, ra, zero
            halt
        """)
        assert cpu.get_reg(1) == 7
        assert cpu.get_reg(15) == 7


class TestBranches:
    def test_loop_counts(self):
        cpu, _m, _p = run_program("""
                addi r1, r0, 0      ; i = 0
                addi r2, r0, 5      ; n = 5
            loop:
                beq  r1, r2, done
                addi r1, r1, 1
                j loop
            done:
                halt
        """)
        assert cpu.get_reg(1) == 5

    def test_all_branch_kinds(self):
        cpu, _m, _p = run_program("""
                addi r1, r0, -3
                addi r2, r0, 4
                addi r5, r0, 0
                blt  r1, r2, a      ; signed -3 < 4: taken
                halt
            a:  addi r5, r5, 1
                bge  r2, r1, b      ; 4 >= -3: taken
                halt
            b:  addi r5, r5, 1
                bne  r1, r2, c      ; taken
                halt
            c:  addi r5, r5, 1
                halt
        """)
        assert cpu.get_reg(5) == 3

    def test_backward_branch(self):
        cpu, _m, _p = run_program("""
                addi r1, r0, 3
            again:
                addi r1, r1, -1
                bne  r1, r0, again
                halt
        """)
        assert cpu.get_reg(1) == 0


class TestCallsAndMemory:
    def test_jal_jr_calling_convention(self):
        cpu, _m, _p = run_program("""
                addi r1, r0, 20
                jal  double
                add  r4, r2, r0
                halt
            double:
                add  r2, r1, r1
                jr   ra
        """)
        assert cpu.get_reg(4) == 40

    def test_load_store(self):
        cpu, mem, _p = run_program("""
                addi r1, r0, 123
                sw   r1, 0x200(r0)
                lw   r2, 0x200(r0)
                halt
        """)
        assert mem.ram[0x200] == 123
        assert cpu.get_reg(2) == 123

    def test_memory_operand_with_label(self):
        cpu, _m, _p = run_program("""
                lw   r1, table(r0)
                halt
            .org 0x80
            table:
            .word 777
        """)
        assert cpu.get_reg(1) == 777


class TestDirectivesAndPseudos:
    def test_org_and_word(self):
        prog = assemble("""
            .org 0x10
            .word 1, 2, 0xdeadbeef
        """)
        assert prog.image[0x10] == 1
        assert prog.image[0x12] == 0xDEADBEEF

    def test_org_backwards_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".org 0x10\n.org 0x5\n")

    def test_space_reserves_zeroed_words(self):
        prog = assemble(".space 3")
        assert [prog.image[i] for i in range(3)] == [0, 0, 0]

    def test_overlapping_emission_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".word 1\n.org 0\n.word 2\n")

    def test_li_small_is_one_word(self):
        prog = assemble("li r1, 100\nhalt")
        assert prog.size == 2

    def test_li_large_is_two_words(self):
        cpu, _m, prog = run_program("li r1, 0x12345678\nhalt")
        assert cpu.get_reg(1) == 0x12345678
        assert prog.size == 3

    def test_li_negative(self):
        cpu, _m, _p = run_program("li r1, -5\naddi r1, r1, 5\nhalt")
        assert cpu.get_reg(1) == 0

    def test_li_large_negative(self):
        cpu, _m, _p = run_program("li r1, -100000\nhalt")
        assert cpu.get_reg(1) == (-100000) & 0xFFFFFFFF

    def test_la_loads_label_address(self):
        cpu, _m, prog = run_program("""
                la r1, data
                lw r2, 0(r1)
                halt
            data: .word 55
        """)
        assert cpu.get_reg(1) == prog.symbols["data"]
        assert cpu.get_reg(2) == 55

    def test_mov_and_nop(self):
        cpu, _m, _p = run_program("""
            addi r1, r0, 9
            nop
            mov  r2, r1
            halt
        """)
        assert cpu.get_reg(2) == 9


class TestCustomInstructions:
    def test_custom_mnemonic_assembles(self):
        isa = Isa()
        isa.add_custom(CustomOp("sad", 0x80,
                                lambda a, b: abs(a - b) & 0xFFFFFFFF))
        cpu, _m, _p = run_program("""
            addi r1, r0, 3
            addi r2, r0, 10
            sad  r3, r1, r2
            halt
        """, isa=isa)
        assert cpu.get_reg(3) == 7


class TestListing:
    def test_listing_disassembles(self):
        isa = Isa()
        prog = assemble("addi r1, r0, 4\nhalt", isa)
        listing = prog.listing(isa)
        assert "addi r1, r0, 4" in listing
        assert "halt" in listing
