"""Differential property tests for the CPU fast path.

``Cpu.run_block()`` claims to be *observably identical* to a
``step()`` loop (DESIGN.md §9: same architectural state, same counts,
same errors at the same point, any block size).  Hypothesis drives
random programs — including wild jumps, self-modifying stores,
division faults, illegal words, injected IRQs and fault bit-flips —
through both engines and compares complete snapshots, so any
divergence between the pre-decoded trace-cache executor and the
reference interpreter is a test failure, not a silent accuracy bug.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fault import FaultSpec
from repro.fault.inject import _CpuSaboteur
from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, CpuError, ExternalAccess, Memory
from repro.isa.instructions import CustomOp, Instruction, Isa, Opcode

COMMON = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

BUDGET = 250  # step-equivalents per engine per example

_ENC = Isa()  # encoding is identical across stock Isa instances

R_OPS = [0x01, 0x02, 0x03, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D]
I_OPS = [0x20, 0x21, 0x22, 0x23, 0x24, 0x25, 0x26, 0x27]

regs_st = st.integers(0, 15)

r_type = st.builds(
    lambda op, rd, rs1, rs2: Instruction(op, rd=rd, rs1=rs1, rs2=rs2),
    st.sampled_from(R_OPS), regs_st, regs_st, regs_st)
div_type = st.builds(  # may fault on zero divisor — errors must match too
    lambda op, rd, rs1, rs2: Instruction(op, rd=rd, rs1=rs1, rs2=rs2),
    st.sampled_from([0x04, 0x05]), regs_st, regs_st, regs_st)
i_type = st.builds(
    lambda op, rd, rs1, imm: Instruction(op, rd=rd, rs1=rs1, imm=imm),
    st.sampled_from(I_OPS), regs_st, regs_st,
    st.integers(-0x8000, 0x7FFF))
mem_type = st.builds(  # any address is plain RAM here (sparse dict)
    lambda op, rd, rs1, imm: Instruction(op, rd=rd, rs1=rs1, imm=imm),
    st.sampled_from([0x30, 0x31]), regs_st, regs_st,
    st.integers(0, 0x400))
branch = st.builds(
    lambda op, rd, rs1, off: Instruction(op, rd=rd, rs1=rs1, imm=off),
    st.sampled_from([0x40, 0x41, 0x42, 0x43]), regs_st, regs_st,
    st.integers(-4, 6))
jump = st.builds(
    lambda op, imm: Instruction(op, imm=imm),
    st.sampled_from([0x50, 0x51]), st.integers(0, 24))
jr = st.builds(lambda rs1: Instruction(0x52, rs1=rs1), regs_st)

instr_st = st.one_of(
    r_type, i_type, mem_type, branch,
    div_type, jump, jr,
)


def program_words(instrs, illegal_at=None):
    """Assembled image: the instructions, a trailing ``halt``, and
    optionally one undecodable word spliced in."""
    words = [_ENC.encode(i) for i in instrs] + [_ENC.encode(
        Instruction(int(Opcode.HALT)))]
    if illegal_at is not None and instrs:
        words[illegal_at % len(instrs)] = 0x1F000000  # illegal opcode
    return {i: w for i, w in enumerate(words)}


def make_cpu(image, isa=None):
    mem = Memory()
    mem.load_image(dict(image))
    return Cpu(isa or Isa(), mem)


def snapshot(cpu):
    return {
        "pc": cpu.pc, "regs": tuple(cpu.regs),
        "instr_count": cpu.instr_count, "cycle_count": cpu.cycle_count,
        "irq_count": cpu.irq_count, "halted": cpu.halted,
        "epc": cpu.epc, "irq_enabled": cpu.irq_enabled,
        "irq_pending": cpu.irq_pending,
        "ram": dict(cpu.memory.ram),
        "loads": cpu.memory.loads, "stores": cpu.memory.stores,
    }


def run_ref(cpu, budget=BUDGET):
    """The reference engine: one ``step()`` per instruction."""
    try:
        steps = 0
        while steps < budget and not cpu.halted:
            result = cpu.step()
            assert not isinstance(result, ExternalAccess)
            steps += 1
        return None
    except CpuError as exc:
        return str(exc)


def run_fast(cpu, chunks=(BUDGET,), budget=BUDGET):
    """The fast engine: ``run_block()`` in arbitrary chunk sizes."""
    try:
        steps = 0
        i = 0
        while steps < budget and not cpu.halted:
            chunk = min(chunks[i % len(chunks)], budget - steps)
            i += 1
            done, _cycles, access = cpu.run_block(chunk)
            assert access is None
            steps += done
        return None
    except CpuError as exc:
        return str(exc)


# ----------------------------------------------------------------------
# the core differential: random programs, random block sizes
# ----------------------------------------------------------------------
class TestDifferential:
    @settings(max_examples=60, **COMMON)
    @given(
        instrs=st.lists(instr_st, min_size=1, max_size=24),
        chunks=st.lists(st.integers(1, 9), min_size=1, max_size=4),
        illegal_at=st.one_of(st.none(), st.integers(0, 23)),
    )
    def test_run_block_matches_step_loop(self, instrs, chunks, illegal_at):
        image = program_words(instrs, illegal_at)
        ref, fast = make_cpu(image), make_cpu(image)
        err_ref = run_ref(ref)
        err_fast = run_fast(fast, tuple(chunks))
        assert err_ref == err_fast
        assert snapshot(ref) == snapshot(fast)

    @settings(max_examples=40, **COMMON)
    @given(instrs=st.lists(instr_st, min_size=1, max_size=24))
    def test_run_matches_step_loop(self, instrs):
        """``Cpu.run()`` (now built on run_block) vs the step loop."""
        image = program_words(instrs)
        ref, fast = make_cpu(image), make_cpu(image)
        err_ref = run_ref(ref)
        try:
            fast.run(max_instructions=BUDGET)
            err_fast = None
        except CpuError as exc:
            err_fast = str(exc)
        if err_ref is None and not ref.halted:
            # budget exhausted: run() raises where the loop just stops
            assert err_fast is not None and "budget" in err_fast
        else:
            assert err_ref == err_fast
        assert snapshot(ref) == snapshot(fast)

    @settings(max_examples=30, **COMMON)
    @given(
        instrs=st.lists(instr_st, min_size=1, max_size=20),
        chunks=st.lists(st.integers(1, 9), min_size=1, max_size=4),
    )
    def test_observers_force_identical_slow_path(self, instrs, chunks):
        """With observers armed both engines retire identically *and*
        the observer sees the same (pc, opcode) sequence."""
        image = program_words(instrs)
        ref, fast = make_cpu(image), make_cpu(image)
        seen_ref, seen_fast = [], []
        ref.observers.append(lambda pc, i: seen_ref.append((pc, i.opcode)))
        fast.observers.append(lambda pc, i: seen_fast.append((pc, i.opcode)))
        assert run_ref(ref) == run_fast(fast, tuple(chunks))
        assert snapshot(ref) == snapshot(fast)
        assert seen_ref == seen_fast

    @settings(max_examples=30, **COMMON)
    @given(
        instrs=st.lists(instr_st, min_size=1, max_size=20),
        chunks=st.lists(st.integers(1, 9), min_size=1, max_size=4),
        reg=st.integers(0, 15),
        bit=st.integers(0, 31),
        count=st.integers(1, 40),
    )
    def test_fault_bitflips_identical(self, instrs, chunks, reg, bit, count):
        """A one-shot register bit-flip saboteur (armed on both engines)
        must corrupt both identically — including flips of r0, which the
        architectural read path must still honor."""
        spec = FaultSpec(kind="cpu_reg_flip", target="cpu",
                         index=reg, bit=bit, count=count)
        image = program_words(instrs)
        ref, fast = make_cpu(image), make_cpu(image)
        ref.observers.append(_CpuSaboteur(ref, spec))
        fast.observers.append(_CpuSaboteur(fast, spec))
        assert run_ref(ref) == run_fast(fast, tuple(chunks))
        assert snapshot(ref) == snapshot(fast)


# ----------------------------------------------------------------------
# interrupts raised mid-run by a device model
# ----------------------------------------------------------------------
IRQ_PROG = """
    .org 0x0
    addi r1, r0, 0
    addi r2, r0, {limit}
loop:
    addi r1, r1, 1
    sw   r1, 0x100(r0)     ; device may raise an IRQ
    blt  r1, r2, loop
    halt
    .org 0x40
    addi r13, r13, 1       ; handler: count entries
    reti
"""


def make_irq_cpu(limit, modulus):
    isa = Isa()
    prog = assemble(IRQ_PROG.format(limit=limit), isa)
    mem = Memory()
    mem.load_image(prog.image)
    cpu = Cpu(isa, mem)
    log = []

    def write_fn(offset, value):
        log.append((offset, value))
        if value % modulus == 0:
            cpu.raise_irq()

    mem.add_region("dev", 0x100, 4, write_fn=write_fn)
    return cpu, log


class TestInterruptDifferential:
    @settings(max_examples=25, **COMMON)
    @given(
        limit=st.integers(1, 30),
        modulus=st.integers(1, 5),
        chunks=st.lists(st.integers(1, 9), min_size=1, max_size=4),
    )
    def test_device_irqs_identical(self, limit, modulus, chunks):
        ref, log_ref = make_irq_cpu(limit, modulus)
        fast, log_fast = make_irq_cpu(limit, modulus)
        budget = 20 * limit + 50
        assert run_ref(ref, budget) == run_fast(fast, tuple(chunks), budget)
        assert snapshot(ref) == snapshot(fast)
        assert log_ref == log_fast
        if limit >= modulus:  # some stored value was divisible
            assert ref.irq_count > 0


# ----------------------------------------------------------------------
# external accesses: run_block must defer exactly like step
# ----------------------------------------------------------------------
EXT_PROG = """
    addi r1, r0, 5
    sw   r1, 0x200(r0)     ; external
    lw   r2, 0x200(r0)     ; external
    add  r3, r2, r1
    halt
"""


def make_ext_cpu():
    isa = Isa()
    prog = assemble(EXT_PROG, isa)
    mem = Memory()
    mem.load_image(prog.image)
    mem.add_region("ext", 0x200, 4, external=True)
    return Cpu(isa, mem)


class TestExternalAccess:
    def drive(self, cpu, use_block):
        accesses = []
        stored = {}
        for _ in range(50):
            if cpu.halted:
                break
            if use_block:
                _steps, _cycles, access = cpu.run_block(3)
            else:
                result = cpu.step()
                access = result if isinstance(result, ExternalAccess) else None
            if access is not None:
                accesses.append((access.addr, access.value, access.is_write))
                if access.is_write:
                    stored[access.addr] = access.value
                    cpu.complete_access(extra_cycles=7)
                else:
                    cpu.complete_access(
                        read_value=stored.get(access.addr, 0),
                        extra_cycles=7)
        return accesses

    def test_deferred_accesses_identical(self):
        ref, fast = make_ext_cpu(), make_ext_cpu()
        assert self.drive(ref, False) == self.drive(fast, True)
        assert snapshot(ref) == snapshot(fast)
        assert ref.get_reg(3) == 10

    def test_run_block_while_pending_rejected(self):
        cpu = make_ext_cpu()
        while not isinstance(cpu.step(), ExternalAccess):
            pass
        with pytest.raises(CpuError, match="pending"):
            cpu.run_block(1)


# ----------------------------------------------------------------------
# cache invalidation: the trace cache may never serve stale decode/timing
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_custom_op_registration_invalidates_decode(self):
        isa = Isa()
        word = 0x80100000 | (2 << 16) | (3 << 12)  # opcode 0x80 r1,r2,r3
        image = {0: word, 1: _ENC.encode(Instruction(int(Opcode.HALT)))}
        cpu = make_cpu(image, isa)
        with pytest.raises(CpuError, match="illegal opcode"):
            cpu.run_block(4)
        isa.add_custom(CustomOp("mac3", 0x80, lambda a, b: a * b + 1,
                                cycles=3))
        cpu = make_cpu(image, isa)
        cpu.regs[2], cpu.regs[3] = 6, 7
        cpu.run_block(4)
        assert cpu.get_reg(1) == 43
        assert cpu.halted

    def test_cycle_edit_invalidates_timing(self):
        image = program_words([Instruction(0x01, rd=1, rs1=1, rs2=1)] * 4)
        isa_a, isa_b = Isa(), Isa()
        isa_a.cycles[int(Opcode.ADD)] = 9
        isa_b.cycles[int(Opcode.ADD)] = 9
        ref, fast = make_cpu(image, isa_a), make_cpu(image, isa_b)
        run_ref(ref, 2), run_fast(fast, (1,), 2)
        # retime mid-run: both engines must pick the new cost up
        isa_a.cycles[int(Opcode.ADD)] = 2
        isa_b.cycles[int(Opcode.ADD)] = 2
        assert run_ref(ref) == run_fast(fast)
        assert snapshot(ref) == snapshot(fast)
        assert ref.cycle_count == 9 * 2 + 2 * 2 + 1  # 2 old, 2 new, halt

    def test_decode_is_a_pure_cache(self):
        """decode() is defined as a memo over decode_uncached()."""
        isa = Isa()
        for instr in [Instruction(0x01, rd=1, rs1=2, rs2=3),
                      Instruction(0x20, rd=4, rs1=5, imm=-7),
                      Instruction(0x50, imm=123)]:
            word = isa.encode(instr)
            assert isa.decode(word) == isa.decode_uncached(word)
            assert isa.decode(word) is isa.decode(word)  # memoized
        with pytest.raises(ValueError):
            isa.decode(0x1F000000)
        with pytest.raises(ValueError):  # illegal words are never cached
            isa.decode(0x1F000000)
