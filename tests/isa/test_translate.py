"""Differential property tests for the block-translation tier.

The translated tier (``repro.isa.translate``) claims observable
identity with *both* lower tiers — the ``step()`` reference
interpreter and the ``run_block`` operand-cache loop — under the
DESIGN §13 three-tier equivalence contract.  Hypothesis drives ≥200
random programs per property through all three engines and compares
complete architectural snapshots: wild jumps, illegal words, division
faults, device IRQs raised mid-block, fault bit-flips, stores into
already-translated code, mid-run ISA mutation, and observer
attach/detach cycles that must re-engage the translated tier.

Every property here must pass under ``PYTHONHASHSEED`` 0 and 1 (the
suite is derandomized, so CI runs are reproducible).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fault import FaultSpec
from repro.fault.inject import FaultInjector, System, _CpuSaboteur
from repro.isa.cpu import Cpu, CpuError, ExternalAccess, Memory
from repro.isa.instructions import CustomOp, Instruction, Isa, Opcode
from repro.isa.translate import BlockTranslator, install

from tests.isa.test_fastpath import (
    BUDGET,
    COMMON,
    _ENC,
    instr_st,
    make_cpu,
    make_ext_cpu,
    make_irq_cpu,
    program_words,
    run_fast,
    run_ref,
    snapshot,
)

pytestmark = pytest.mark.slow  # exhaustive: the smoke lane skips it

hot_st = st.sampled_from([1, 2, 4])  # 1 = translate eagerly
chunks_st = st.lists(st.integers(1, 9), min_size=1, max_size=4)


def make_trans_cpu(image, isa=None, hot=1):
    cpu = make_cpu(image, isa)
    install(cpu, hot_threshold=hot)
    return cpu


def forbid_untranslated(cpu):
    """After this, only the translated tier may execute blocks.

    Strict: even the budget-remainder delegation to the interpreted
    tier trips it, so use only with budgets that cover whole blocks.
    """

    def boom(max_steps):
        raise AssertionError("untranslated tier used")

    cpu._run_block_slow = boom
    cpu._run_block_fast = boom


def forbid_slow(cpu):
    """After this, the observer step loop may never run.  The
    translated tier may still delegate budget remainders to the
    interpreted fast tier — that is part of its contract."""

    def boom(max_steps):
        raise AssertionError("slow path used with no observers")

    cpu._run_block_slow = boom


# ----------------------------------------------------------------------
# the core three-engine differential
# ----------------------------------------------------------------------
class TestTranslateDifferential:
    @settings(max_examples=200, **COMMON)
    @given(
        instrs=st.lists(instr_st, min_size=1, max_size=20),
        chunks=chunks_st,
        illegal_at=st.one_of(st.none(), st.integers(0, 19)),
        hot=hot_st,
    )
    def test_translate_matches_both_tiers(
        self, instrs, chunks, illegal_at, hot
    ):
        image = program_words(instrs, illegal_at)
        ref = make_cpu(image)
        fast = make_cpu(image)
        trans = make_trans_cpu(image, hot=hot)
        err_ref = run_ref(ref)
        err_fast = run_fast(fast, tuple(chunks))
        err_trans = run_fast(trans, tuple(chunks))
        assert err_ref == err_fast == err_trans
        state = snapshot(ref)
        assert state == snapshot(fast)
        assert state == snapshot(trans)

    @settings(max_examples=200, **COMMON)
    @given(
        instrs=st.lists(instr_st, min_size=1, max_size=20),
        hot=hot_st,
    )
    def test_warm_cache_rerun_identical(self, instrs, hot):
        """A second run over a warm block cache retires identically to
        the first run from a cold cache (the cache is a pure memo)."""
        image = program_words(instrs)
        cold = make_trans_cpu(image, hot=hot)
        err_cold = run_fast(cold, (BUDGET,))
        state_cold = snapshot(cold)

        warm = make_trans_cpu(image, hot=hot)
        run_fast(warm, (7,))
        translator = warm.translator
        # re-run from reset state on the *same* translator/cache
        warm.__init__(warm.isa, warm.memory, pc=0)
        warm.memory.load_image(dict(image))
        warm.memory.loads = warm.memory.stores = 0
        warm.translator = translator
        translator.cpu = warm
        err_warm = run_fast(warm, (BUDGET,))
        assert err_cold == err_warm
        state_warm = snapshot(warm)
        state_warm["ram"] = state_cold["ram"]  # first run may have SMC'd
        state_warm["loads"] = state_cold["loads"]
        state_warm["stores"] = state_cold["stores"]
        if state_cold["ram"] == dict(image) or err_cold is not None:
            return  # self-modified or errored: registers may differ too
        assert state_cold == state_warm


# ----------------------------------------------------------------------
# device IRQs raised mid-block
# ----------------------------------------------------------------------
class TestTranslateInterrupts:
    @settings(max_examples=200, **COMMON)
    @given(
        limit=st.integers(1, 30),
        modulus=st.integers(1, 5),
        chunks=chunks_st,
        hot=hot_st,
    )
    def test_device_irqs_identical(self, limit, modulus, chunks, hot):
        ref, log_ref = make_irq_cpu(limit, modulus)
        trans, log_trans = make_irq_cpu(limit, modulus)
        install(trans, hot_threshold=hot)
        budget = 20 * limit + 50
        assert run_ref(ref, budget) == run_fast(
            trans, tuple(chunks), budget
        )
        assert snapshot(ref) == snapshot(trans)
        assert log_ref == log_trans
        if limit >= modulus:
            assert trans.irq_count > 0
        if hot == 1:
            assert trans.translator.translations > 0


# ----------------------------------------------------------------------
# fault bit-flips, with the injector disarmed mid-run
# ----------------------------------------------------------------------
class TestTranslateFaults:
    @settings(max_examples=200, **COMMON)
    @given(
        instrs=st.lists(instr_st, min_size=1, max_size=20),
        chunks=chunks_st,
        reg=st.integers(0, 15),
        bit=st.integers(0, 31),
        count=st.integers(1, 40),
        hot=hot_st,
    )
    def test_fault_bitflips_identical(
        self, instrs, chunks, reg, bit, count, hot
    ):
        """A register bit-flip saboteur must corrupt the reference and
        the translated engine identically (observers force the literal
        step loop on both)."""
        spec = FaultSpec(
            kind="cpu_reg_flip", target="cpu", index=reg, bit=bit,
            count=count,
        )
        image = program_words(instrs)
        ref = make_cpu(image)
        trans = make_trans_cpu(image, hot=hot)
        ref.observers.append(_CpuSaboteur(ref, spec))
        trans.observers.append(_CpuSaboteur(trans, spec))
        assert run_ref(ref) == run_fast(trans, tuple(chunks))
        assert snapshot(ref) == snapshot(trans)

    @settings(max_examples=200, **COMMON)
    @given(
        instrs=st.lists(instr_st, min_size=1, max_size=16),
        phase1=st.integers(1, 30),
        reg=st.integers(1, 15),
        bit=st.integers(0, 31),
        count=st.integers(1, 10),
        hot=hot_st,
    )
    def test_injector_disarm_reengages_translated_tier(
        self, instrs, phase1, reg, bit, count, hot
    ):
        """arm → run (slow path) → disarm → run: both engines stay
        identical across the whole lifecycle, and after ``disarm()``
        the translated CPU must never touch a non-translated tier."""
        spec = FaultSpec(
            kind="cpu_reg_flip", target="cpu", index=reg, bit=bit,
            count=count,
        )
        image = program_words(instrs)
        ref = make_cpu(image)
        trans = make_trans_cpu(image, hot=1)

        def lifecycle(cpu, runner, *run_args):
            injector = FaultInjector(System(sim=None, cpu=cpu))
            injector.arm(spec)
            err = runner(cpu, *run_args, phase1)
            injector.disarm()
            assert not cpu.observers
            if err is not None:
                return err
            if cpu is trans:
                forbid_slow(cpu)
            return runner(cpu, *run_args, BUDGET)

        err_ref = lifecycle(ref, lambda c, b: run_ref(c, b))
        err_trans = lifecycle(
            trans, lambda c, b: run_fast(c, (BUDGET,), b)
        )
        assert err_ref == err_trans
        assert snapshot(ref) == snapshot(trans)


# ----------------------------------------------------------------------
# self-modifying code: stores into an already-translated block
# ----------------------------------------------------------------------
def smc_image(target, word, rounds):
    """A loop whose body rewrites its own instruction ``target`` with
    ``word`` (fetched from data) once ``r1`` counts down — the block is
    guaranteed hot (hence translated) before the rewrite lands."""
    instrs = [
        Instruction(0x20, rd=1, rs1=0, imm=rounds),  # 0: counter
        Instruction(0x30, rd=2, rs1=0, imm=30),      # 1: new code word
        Instruction(0x01, rd=3, rs1=3, rs2=1),       # 2: loop body...
        Instruction(0x02, rd=4, rs1=3, rs2=2),       # 3
        Instruction(0x08, rd=5, rs1=4, rs2=3),       # 4
        Instruction(0x0D, rd=6, rs1=5, rs2=1),       # 5
        Instruction(0x31, rd=2, rs1=0, imm=target),  # 6: rewrite code!
        Instruction(0x20, rd=1, rs1=1, imm=-1),      # 7: r1 -= 1
        Instruction(0x41, rd=1, rs1=0, imm=-8),      # 8: bne r1,r0 -> 2
        Instruction(int(Opcode.HALT)),               # 9
    ]
    image = {i: _ENC.encode(x) for i, x in enumerate(instrs)}
    image[30] = word
    return image


REWRITE_WORDS = [
    _ENC.encode(Instruction(0x01, rd=7, rs1=1, rs2=2)),   # add
    _ENC.encode(Instruction(0x20, rd=3, rs1=0, imm=11)),  # addi
    _ENC.encode(Instruction(0x50, imm=9)),                # j halt
    _ENC.encode(Instruction(int(Opcode.HALT))),
    0x1F000000,                                           # illegal word
]


class TestSelfModifyingCode:
    @settings(max_examples=200, **COMMON)
    @given(
        target=st.integers(2, 8),
        word=st.sampled_from(REWRITE_WORDS),
        rounds=st.integers(1, 5),
        chunks=chunks_st,
        hot=hot_st,
    )
    def test_store_into_translated_block(
        self, target, word, rounds, chunks, hot
    ):
        image = smc_image(target, word, rounds)
        ref = make_cpu(image)
        fast = make_cpu(image)
        trans = make_trans_cpu(image, hot=hot)
        budget = 40 * rounds + 60
        err_ref = run_ref(ref, budget)
        assert err_ref == run_fast(fast, tuple(chunks), budget)
        assert err_ref == run_fast(trans, tuple(chunks), budget)
        state = snapshot(ref)
        assert state == snapshot(fast)
        assert state == snapshot(trans)

    @settings(max_examples=200, **COMMON)
    @given(
        instrs=st.lists(instr_st, min_size=1, max_size=16),
        phase1=st.integers(1, 40),
        addr=st.integers(0, 16),
        word=st.sampled_from(REWRITE_WORDS),
        hot=hot_st,
    )
    def test_external_store_invalidates_between_runs(
        self, instrs, phase1, addr, word, hot
    ):
        """Code rewritten through ``Memory.write`` *between* run_block
        calls — e.g. by a DMA device or another tier — must invalidate
        translated blocks exactly like an in-block store."""
        image = program_words(instrs)
        ref = make_cpu(image)
        trans = make_trans_cpu(image, hot=hot)

        def run_two_phase(cpu, runner):
            err = runner(cpu, phase1)
            cpu.memory.write(addr, word)
            if err is not None:
                return err
            return runner(cpu, BUDGET)

        err_ref = run_two_phase(ref, lambda c, b: run_ref(c, b))
        err_trans = run_two_phase(
            trans, lambda c, b: run_fast(c, (BUDGET,), b)
        )
        assert err_ref == err_trans
        assert snapshot(ref) == snapshot(trans)


# ----------------------------------------------------------------------
# mid-run ISA mutation: add_custom and cycle-table edits
# ----------------------------------------------------------------------
CUSTOM_WORD = 0x80000000 | (7 << 20) | (1 << 16) | (2 << 12)  # op 0x80


class TestIsaMutation:
    @settings(max_examples=200, **COMMON)
    @given(
        instrs=st.lists(instr_st, min_size=1, max_size=14),
        custom_at=st.one_of(st.none(), st.integers(0, 13)),
        phase1=st.integers(1, 30),
        add_cycles=st.integers(1, 9),
        mac_cycles=st.integers(1, 5),
        hot=hot_st,
    )
    def test_midrun_mutation_identical(
        self, instrs, custom_at, phase1, add_cycles, mac_cycles, hot
    ):
        """Register a custom op and retime ADD *mid-run*: both engines
        must drop every cached block/decode and continue identically —
        including programs that embed the 0x80 word (illegal before the
        mutation, a mac afterwards)."""
        image = program_words(instrs)
        if custom_at is not None:
            image[custom_at % len(instrs)] = CUSTOM_WORD

        def build(translated):
            isa = Isa()
            cpu = make_cpu(image, isa)
            if translated:
                install(cpu, hot_threshold=hot)
            return cpu, isa

        def mutate(isa):
            isa.add_custom(CustomOp(
                "mac", 0x80,
                lambda a, b: (a * b + 7) & 0xFFFFFFFF,
                cycles=mac_cycles,
            ))
            isa.cycles[int(Opcode.ADD)] = add_cycles

        def drive(cpu, isa, runner):
            err = runner(cpu, phase1)
            mutate(isa)
            if err is not None:
                return err
            return runner(cpu, BUDGET)

        ref, isa_ref = build(False)
        trans, isa_trans = build(True)
        err_ref = drive(ref, isa_ref, lambda c, b: run_ref(c, b))
        err_trans = drive(
            trans, isa_trans, lambda c, b: run_fast(c, (BUDGET,), b)
        )
        assert err_ref == err_trans
        assert snapshot(ref) == snapshot(trans)


# ----------------------------------------------------------------------
# observer attach/detach re-engaging the translated tier
# ----------------------------------------------------------------------
class TestObserverLifecycle:
    @settings(max_examples=200, **COMMON)
    @given(
        instrs=st.lists(instr_st, min_size=1, max_size=16),
        phase1=st.integers(1, 20),
        phase2=st.integers(1, 20),
        chunks=chunks_st,
    )
    def test_attach_detach_cycle_identical(
        self, instrs, phase1, phase2, chunks
    ):
        """free → observed → free again: the retirement sequence the
        observer sees matches the reference, and after detach the
        translated CPU runs without touching the other tiers."""
        image = program_words(instrs)
        ref = make_cpu(image)
        trans = make_trans_cpu(image, hot=1)
        seen_ref, seen_trans = [], []

        def drive(cpu, seen, runner):
            err = runner(cpu, phase1)
            if err is not None:
                return err
            hook = lambda pc, i: seen.append((pc, i.opcode))  # noqa: E731
            cpu.observers.append(hook)
            err = runner(cpu, phase2)
            cpu.observers.remove(hook)
            if err is not None:
                return err
            if cpu is trans:
                forbid_slow(cpu)
            return runner(cpu, BUDGET)

        err_ref = drive(ref, seen_ref, lambda c, b: run_ref(c, b))
        err_trans = drive(
            trans, seen_trans,
            lambda c, b: run_fast(c, tuple(chunks), b),
        )
        assert err_ref == err_trans
        assert snapshot(ref) == snapshot(trans)
        assert seen_ref == seen_trans


# ----------------------------------------------------------------------
# deferred external accesses through the translated tier
# ----------------------------------------------------------------------
class TestTranslateExternalAccess:
    def drive(self, cpu, use_block):
        accesses = []
        stored = {}
        for _ in range(50):
            if cpu.halted:
                break
            if use_block:
                _steps, _cycles, access = cpu.run_block(3)
            else:
                result = cpu.step()
                access = (
                    result if isinstance(result, ExternalAccess) else None
                )
            if access is not None:
                accesses.append(
                    (access.addr, access.value, access.is_write)
                )
                if access.is_write:
                    stored[access.addr] = access.value
                    cpu.complete_access(extra_cycles=7)
                else:
                    cpu.complete_access(
                        read_value=stored.get(access.addr, 0),
                        extra_cycles=7,
                    )
        return accesses

    @pytest.mark.parametrize("hot", [1, 2])
    def test_deferred_accesses_identical(self, hot):
        ref, trans = make_ext_cpu(), make_ext_cpu()
        install(trans, hot_threshold=hot)
        assert self.drive(ref, False) == self.drive(trans, True)
        assert snapshot(ref) == snapshot(trans)
        assert trans.get_reg(3) == 10

    def test_run_block_while_pending_rejected(self):
        cpu = make_ext_cpu()
        install(cpu, hot_threshold=1)
        while not isinstance(cpu.step(), ExternalAccess):
            pass
        with pytest.raises(CpuError, match="pending"):
            cpu.run_block(1)


# ----------------------------------------------------------------------
# translator unit behavior
# ----------------------------------------------------------------------
class TestTranslatorMechanics:
    def test_blocks_actually_translate_and_execute(self):
        image = program_words(
            [Instruction(0x20, rd=1, rs1=1, imm=1)] * 6
        )
        cpu = make_cpu(image)
        translator = install(cpu, hot_threshold=1)
        forbid_untranslated(cpu)
        cpu.run_block(50)  # budget covers the whole block
        assert cpu.halted
        assert translator.translations >= 1

    def test_cold_blocks_delegate_until_hot(self):
        image = program_words(
            [Instruction(0x20, rd=1, rs1=1, imm=1)] * 4
        )
        cpu = make_cpu(image)
        translator = install(cpu, hot_threshold=3)
        cpu.run_block(5)
        assert translator.translations == 0  # first entry: still cold
        cpu.__init__(cpu.isa, cpu.memory, pc=0)
        cpu.translator = translator
        cpu.run_block(5)
        cpu.__init__(cpu.isa, cpu.memory, pc=0)
        cpu.translator = translator
        cpu.run_block(5)
        assert translator.translations == 1  # third entry crossed 3

    def test_hot_threshold_validation(self):
        cpu = make_cpu(program_words([Instruction(int(Opcode.HALT))]))
        with pytest.raises(ValueError):
            BlockTranslator(cpu, hot_threshold=0)

    def test_capacity_overflow_evicts_oldest(self):
        instrs = []
        for _ in range(6):
            instrs.extend([
                Instruction(0x20, rd=1, rs1=1, imm=1),
                Instruction(0x50, imm=0),  # j — block terminator
            ])
        image = program_words(instrs)
        # every other pc starts a block; cap the cache below that
        cpu = make_cpu(image)
        translator = install(cpu, hot_threshold=1, max_blocks=2)
        for entry_pc in range(0, 12, 2):
            cpu.pc = entry_pc
            cpu.halted = False
            cpu.run_block(2)
        # oldest-first eviction: the cache never exceeds its cap, only
        # single blocks drop, and the whole cache is never cleared
        assert translator.block_count == 2
        assert translator.evictions == 4
        assert translator.invalidations == 0
        assert translator.translations == 6
        # the newest blocks survived: re-entering them compiles nothing
        for entry_pc in (8, 10):
            cpu.pc = entry_pc
            cpu.halted = False
            cpu.run_block(2)
        assert translator.translations == 6
        # an evicted block re-translates on demand, displacing the
        # (new) oldest entry
        cpu.pc = 0
        cpu.halted = False
        cpu.run_block(2)
        assert translator.translations == 7
        assert translator.evictions == 5
        assert translator.block_count == 2

    def test_repr_and_counters(self):
        image = program_words(
            [Instruction(0x20, rd=1, rs1=1, imm=1)] * 3
        )
        cpu = make_cpu(image)
        translator = install(cpu, hot_threshold=1)
        cpu.run_block(10)
        text = repr(translator)
        assert "BlockTranslator" in text and "translations=" in text
        assert translator.block_count >= 1
