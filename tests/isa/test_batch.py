"""Differential property tests for the vectorized batch tier.

:class:`repro.isa.BatchCpu` claims every lane is *byte-identical* to a
scalar run of the same program with the same fault armed (DESIGN §14:
the batch tier may only reorganize work, never change it).  Hypothesis
drives random programs × random fault lanes — register/pc/flag flips,
mid-run IRQs, self-modifying stores, division faults, illegal words,
lane divergence up to fully-diverged degenerate batches — through the
batch machine and a scalar reference, and compares complete snapshots
*and* error strings lane by lane.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fault import FaultSpec
from repro.fault.inject import _CpuSaboteur
from repro.isa import BatchCpu
from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, CpuError, Memory
from repro.isa.instructions import Instruction, Isa, Opcode

from tests.isa.test_fastpath import (
    BUDGET,
    COMMON,
    _ENC,
    instr_st,
    make_cpu,
    program_words,
    snapshot,
)

regs_st = st.integers(0, 15)

reg_flip = st.builds(
    lambda index, bit, count: FaultSpec(
        kind="cpu_reg_flip", target="cpu",
        index=index, bit=bit, count=count),
    st.integers(0, 17),  # 16/17 are invalid -> scalar IndexError path
    st.integers(0, 31), st.integers(0, 40))
pc_flip = st.builds(
    lambda bit, count: FaultSpec(
        kind="cpu_pc_flip", target="cpu", bit=bit, count=count),
    st.integers(0, 11), st.integers(0, 40))
flag_flip = st.builds(
    lambda flag, count: FaultSpec(
        kind="cpu_flag_flip", target="cpu", flag=flag, count=count),
    st.sampled_from(["irq_enabled", "irq_pending", "halted"]),
    st.integers(0, 40))

fault_st = st.one_of(st.none(), reg_flip, pc_flip, flag_flip)


def drive_scalar(cpu, budget, steps=0):
    """The scalar reference/continuation driver: ``run_block`` until
    halt, budget, or error.  Shared by both sides of every comparison,
    so a batch lane's continuation is structurally the scalar run."""
    try:
        while steps < budget and not cpu.halted:
            done, _cycles, access = cpu.run_block(budget - steps)
            assert access is None
            steps += done
        return None
    except (CpuError, IndexError) as exc:
        return f"{type(exc).__name__}: {exc}"


def run_scalar_lane(image, spec, budget=BUDGET, poke=None):
    cpu = make_cpu(image)
    if poke is not None:
        addr, value = poke
        cpu.memory.ram[addr] = value
    if spec is not None:
        cpu.observers.append(_CpuSaboteur(cpu, spec))
    return drive_scalar(cpu, budget), snapshot(cpu)


def finish_lane(exit, budget=BUDGET):
    cpu = exit.cpu
    if exit.spec is not None and not exit.fired:
        saboteur = _CpuSaboteur(cpu, exit.spec)
        saboteur.retired = exit.steps
        cpu.observers.append(saboteur)
    return drive_scalar(cpu, budget, exit.steps), snapshot(cpu)


def assert_batch_matches_scalar(image, specs, budget=BUDGET):
    batch = BatchCpu(Isa(), image, n_lanes=len(specs))
    for lane, spec in enumerate(specs):
        if spec is not None:
            batch.arm(lane, spec)
    exits = batch.run(budget)
    assert sorted(e.lane for e in exits) == list(range(len(specs)))
    for exit in exits:
        want = run_scalar_lane(image, specs[exit.lane], budget)
        got = finish_lane(exit, budget)
        assert got == want, (
            f"lane {exit.lane} ({specs[exit.lane]}, "
            f"drained as {exit.reason!r}) diverged from scalar"
        )
    return batch.stats


# ----------------------------------------------------------------------
# the core differential: random programs × random fault lanes
# ----------------------------------------------------------------------
class TestDifferential:
    @settings(max_examples=50, **COMMON)
    @given(
        instrs=st.lists(instr_st, min_size=1, max_size=24),
        specs=st.lists(fault_st, min_size=1, max_size=12),
        illegal_at=st.one_of(st.none(), st.integers(0, 23)),
    )
    def test_random_programs_random_faults(self, instrs, specs, illegal_at):
        image = program_words(instrs, illegal_at)
        assert_batch_matches_scalar(image, specs)

    @settings(max_examples=20, **COMMON)
    @given(
        instrs=st.lists(instr_st, min_size=1, max_size=16),
        specs=st.lists(fault_st, min_size=1, max_size=6),
        budget=st.integers(0, 60),
    )
    def test_budget_edges(self, instrs, specs, budget):
        """Tiny budgets: lanes exit mid-program, including budget=0."""
        image = program_words(instrs)
        assert_batch_matches_scalar(image, specs, budget)

    def test_single_lane(self):
        image = program_words(
            [Instruction(0x20, rd=1, rs1=1, imm=3)] * 4)
        stats = assert_batch_matches_scalar(image, [None])
        assert stats.lanes == 1


# ----------------------------------------------------------------------
# hot blocks: the batched codegen tier must engage and stay identical
# ----------------------------------------------------------------------
LOOP_ASM = """
        li   r1, {n}
        li   r2, 0
loop:   mul  r3, r1, r1
        add  r2, r2, r3
        sw   r2, 0x200(r0)
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
"""


def loop_image(n=30):
    return dict(assemble(LOOP_ASM.format(n=n)).image)


class TestHotBlocks:
    def test_blocks_engage_and_match(self):
        image = loop_image()
        specs = [None] + [
            FaultSpec(kind="cpu_reg_flip", target="cpu",
                      index=2, bit=b, count=40 + 7 * b)
            for b in range(6)
        ]
        stats = assert_batch_matches_scalar(image, specs)
        assert stats.block_calls > 0
        assert stats.occupancy() > 0.5

    @settings(max_examples=25, **COMMON)
    @given(specs=st.lists(fault_st, min_size=1, max_size=8))
    def test_hot_loop_random_faults(self, specs):
        assert_batch_matches_scalar(loop_image(), specs)


# ----------------------------------------------------------------------
# IRQs injected mid-run via flag flips (handler present and absent)
# ----------------------------------------------------------------------
IRQ_ASM = """
        li   r1, 25
        li   r2, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        sw   r2, 0x200(r0)
        halt
        .org 0x40
        addi r13, r13, 1      ; handler: count entries
        reti
"""


class TestInterrupts:
    @settings(max_examples=40, **COMMON)
    @given(
        count=st.integers(1, 90),
        flag=st.sampled_from(["irq_pending", "irq_enabled"]),
    )
    def test_flag_flip_irqs_identical(self, count, flag):
        """A pending-flag flip fires an IRQ at an arbitrary retirement
        — including mid-way through a hot block's scalar trace — and
        the handler returns via RETI; every lane must match scalar."""
        image = dict(assemble(IRQ_ASM).image)
        specs = [
            None,
            FaultSpec(kind="cpu_flag_flip", target="cpu",
                      flag=flag, count=count),
            FaultSpec(kind="cpu_flag_flip", target="cpu",
                      flag="irq_pending", count=count + 1),
        ]
        assert_batch_matches_scalar(image, specs)

    def test_irq_without_handler_is_a_crash_everywhere(self):
        image = program_words(
            [Instruction(0x20, rd=1, rs1=1, imm=1)] * 30)
        spec = FaultSpec(kind="cpu_flag_flip", target="cpu",
                         flag="irq_pending", count=5)
        assert_batch_matches_scalar(image, [spec, None])


# ----------------------------------------------------------------------
# self-modifying code: stores into fetched addresses drain every lane
# ----------------------------------------------------------------------
SMC_ASM = """
        li   r1, 0x7F000000   ; encodes HALT (li expands to 2 words)
        li   r2, 4
        sw   r1, 5(r0)        ; overwrite the second addi with halt
        addi r3, r3, 1
        addi r3, r3, 1        ; addr 5: replaced before it executes
        halt
"""


class TestSelfModifyingCode:
    def test_store_to_code_drains_and_matches(self):
        image = dict(assemble(SMC_ASM).image)
        specs = [None, None,
                 FaultSpec(kind="cpu_reg_flip", target="cpu",
                           index=3, bit=0, count=2)]
        batch = BatchCpu(Isa(), image, n_lanes=len(specs))
        for lane, spec in enumerate(specs):
            if spec is not None:
                batch.arm(lane, spec)
        exits = batch.run(BUDGET)
        assert "smc" in batch.stats.reasons
        for exit in exits:
            assert finish_lane(exit) == run_scalar_lane(
                image, specs[exit.lane])

    @settings(max_examples=20, **COMMON)
    @given(
        target=st.integers(0, 8),
        word=st.sampled_from([0x7F000000, 0x20110001, 0x1F000000]),
    )
    def test_random_code_stores(self, target, word):
        """Store halt / addi / an illegal word over each program
        address in turn; batch must fall back identically."""
        instrs = [Instruction(0x27, rd=1, imm=word >> 16),  # LUI hi
                  Instruction(0x22, rd=1, rs1=1, imm=word & 0xFFFF),
                  Instruction(0x31, rd=1, rs1=0, imm=target)]
        instrs += [Instruction(0x20, rd=2, rs1=2, imm=1)] * 5
        image = program_words(instrs)
        assert_batch_matches_scalar(image, [None, None])


# ----------------------------------------------------------------------
# divergence: data-driven splits down to fully-diverged batches
# ----------------------------------------------------------------------
DIVERGE_ASM = """
        lw   r1, 0x100(r0)    ; per-lane seed
        andi r2, r1, 1
        beq  r2, r0, even
        addi r3, r0, 111
        j    out
even:   addi r3, r0, 222
out:    sw   r3, 0x200(r0)
        lw   r4, 0x100(r0)
        div  r5, r3, r4       ; faults when the lane's seed is 0
        halt
"""


class TestDivergence:
    @settings(max_examples=30, **COMMON)
    @given(seeds=st.lists(st.integers(0, 7), min_size=1, max_size=9))
    def test_seed_lane_sweep_matches_scalar(self, seeds):
        """Input sweep: lanes diverge on a data-dependent branch and
        some divide by zero — each must equal a scalar run with the
        seed poked into the image."""
        image = dict(assemble(DIVERGE_ASM).image)
        image.setdefault(0x100, 0)
        batch = BatchCpu(Isa(), image, n_lanes=len(seeds))
        for lane, seed in enumerate(seeds):
            batch.seed_lane(lane, 0x100, seed)
        exits = batch.run(BUDGET)
        assert sorted(e.lane for e in exits) == list(range(len(seeds)))
        for exit in exits:
            want = run_scalar_lane(image, None,
                                   poke=(0x100, seeds[exit.lane]))
            assert finish_lane(exit) == want

    def test_all_lanes_diverge_on_first_instruction(self):
        """Degenerate batch: a zero divisor at pc=0 drains every lane
        before a single vector instruction retires."""
        image = program_words([Instruction(0x04, rd=1, rs1=2, rs2=3)])
        stats = assert_batch_matches_scalar(image, [None] * 5)
        assert stats.steps == 0
        assert stats.lane_instrs == 0

    def test_all_lanes_diverge_on_illegal_word(self):
        image = {0: 0x1F000000}
        assert_batch_matches_scalar(image, [None] * 3)

    def test_all_lanes_diverge_on_unprogrammed_fetch(self):
        image = program_words([Instruction(0x50, imm=9)])  # j 9 -> hole
        assert_batch_matches_scalar(image, [None] * 3)


# ----------------------------------------------------------------------
# API edges
# ----------------------------------------------------------------------
class TestApi:
    def test_arm_rejects_non_cpu_kinds(self):
        batch = BatchCpu(Isa(), program_words(
            [Instruction(0x20, rd=1, rs1=1, imm=1)]), n_lanes=1)
        with pytest.raises(ValueError):
            batch.arm(0, FaultSpec(kind="signal_flip", target="enable"))

    def test_arm_after_run_rejected(self):
        image = program_words([Instruction(0x20, rd=1, rs1=1, imm=1)])
        batch = BatchCpu(Isa(), image, n_lanes=2)
        batch.run(BUDGET)
        with pytest.raises(RuntimeError):
            batch.arm(0, FaultSpec(kind="cpu_reg_flip", target="cpu",
                                   index=1, bit=0, count=1))

    def test_run_is_single_shot(self):
        image = program_words([Instruction(0x20, rd=1, rs1=1, imm=1)])
        batch = BatchCpu(Isa(), image, n_lanes=1)
        batch.run(BUDGET)
        with pytest.raises(RuntimeError):
            batch.run(BUDGET)
