"""Codegen tests: generated machine code must match CDFG.evaluate.

This is the central co-verification property of the framework (Section
3.2 of the paper): the software implementation of a behavior must be
functionally identical to its dataflow (and hence hardware) semantics.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import kernels
from repro.graph.cdfg import CDFG, MASK32, OpKind
from repro.isa.codegen import CodegenError, CompiledKernel, compile_cdfg
from repro.isa.instructions import Isa

words = st.integers(min_value=0, max_value=MASK32)
small = st.integers(min_value=-1000, max_value=1000)


def cross_check(cdfg, inputs):
    """Run both semantics and compare outputs."""
    expect = cdfg.evaluate(dict(inputs))
    compiled = compile_cdfg(cdfg)
    got, cycles = compiled.run(dict(inputs))
    assert got == expect, f"mismatch on {cdfg.name}: {got} != {expect}"
    assert cycles > 0
    return compiled, cycles


class TestBasicLowering:
    def test_mac(self):
        g = CDFG("mac")
        a, b, c = g.inp("a"), g.inp("b"), g.inp("c")
        g.out("y", g.add(g.mul(a, b), c))
        cross_check(g, {"a": 3, "b": 4, "c": 5})

    def test_constants(self):
        g = CDFG("k")
        x = g.inp("x")
        big = g.const(0x12345678)
        neg = g.const((-7) & MASK32)
        g.out("y", g.add(g.add(x, big), neg))
        cross_check(g, {"x": 1})

    def test_compare_chain(self):
        g = CDFG("cmp")
        a, b = g.inp("a"), g.inp("b")
        g.out("lt", g.lt(a, b))
        g.out("eq", g.eq(a, b))
        g.out("gt", g.add_op(OpKind.GT, (a, b)))
        g.out("ge", g.add_op(OpKind.GE, (a, b)))
        g.out("le", g.add_op(OpKind.LE, (a, b)))
        g.out("ne", g.add_op(OpKind.NE, (a, b)))
        for pair in [(3, 9), (9, 3), (4, 4), ((-5) & MASK32, 2)]:
            cross_check(g, {"a": pair[0], "b": pair[1]})

    def test_mux(self):
        g = CDFG("mux")
        c, a, b = g.inp("c"), g.inp("a"), g.inp("b")
        g.out("y", g.mux(c, a, b))
        cross_check(g, {"c": 1, "a": 11, "b": 22})
        cross_check(g, {"c": 0, "a": 11, "b": 22})
        cross_check(g, {"c": 0xFFFF0000, "a": 11, "b": 22})

    def test_not_and_neg(self):
        g = CDFG("inv")
        x = g.inp("x")
        g.out("n", g.bnot(x))
        g.out("m", g.neg(x))
        cross_check(g, {"x": 0x0F0F0F0F})

    def test_div_mod(self):
        g = CDFG("dm")
        a, b = g.inp("a"), g.inp("b")
        g.out("q", g.div(a, b))
        g.out("r", g.mod(a, b))
        cross_check(g, {"a": 100, "b": 7})
        cross_check(g, {"a": (-100) & MASK32, "b": 7})

    def test_load_store_ops(self):
        g = CDFG("mem")
        addr, val = g.inp("addr"), g.inp("val")
        stored = g.add_op(OpKind.STORE, (addr, val))
        g.out("echo", stored)
        g.out("back", g.add_op(OpKind.LOAD, (addr,)))
        expect_mem = {}
        expect = g.evaluate({"addr": 0x3000, "val": 99}, memory=expect_mem)
        compiled = compile_cdfg(g)
        mem = {}
        got, _cycles = compiled.run({"addr": 0x3000, "val": 99}, memory=mem)
        assert got == expect
        assert mem[0x3000] == 99


class TestKernelCrossChecks:
    @pytest.mark.parametrize("name", sorted(kernels.ALL_CDFG_KERNELS))
    def test_kernel_matches_reference_fixed_vector(self, name):
        cdfg = kernels.ALL_CDFG_KERNELS[name]()
        inputs = {op.name: (i * 2654435761) & MASK32 if name == "crc_step"
                  else (i % 17) + 1
                  for i, op in enumerate(cdfg.inputs())}
        cross_check(cdfg, inputs)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_ewf_random_vectors(self, seed):
        import random

        rng = random.Random(seed)
        cdfg = kernels.elliptic_wave_filter()
        inputs = {op.name: rng.randrange(0, 1 << 16)
                  for op in cdfg.inputs()}
        cross_check(cdfg, inputs)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_crc_random_vectors(self, seed):
        import random

        rng = random.Random(seed)
        cdfg = kernels.crc_step()
        cross_check(cdfg, {"crc": rng.randrange(0, 1 << 32),
                           "byte": rng.randrange(0, 256)})


class TestRegisterPressure:
    def test_wide_graph_forces_spills_and_stays_correct(self):
        """A graph with >12 simultaneously-live values must spill."""
        g = CDFG("wide")
        ins = [g.inp(f"x{i}") for i in range(20)]
        doubled = [g.add(x, x) for x in ins]
        # consume in reverse order to maximize live ranges
        acc = doubled[-1]
        for d in reversed(doubled[:-1]):
            acc = g.add(acc, d)
        g.out("y", acc)
        inputs = {f"x{i}": i + 1 for i in range(20)}
        compiled, _cycles = cross_check(g, inputs)
        assert compiled.spill_slots > 0 or "lw" in compiled.asm

    def test_missing_input_rejected(self):
        g = CDFG("m")
        x = g.inp("x")
        g.out("y", g.add(x, x))
        compiled = compile_cdfg(g)
        with pytest.raises(CodegenError):
            compiled.run({})


class TestCodeMetrics:
    def test_code_size_reported(self):
        g = kernels.fir(8)
        compiled = compile_cdfg(g)
        assert compiled.code_size > 20
        assert compiled.cdfg_name == "fir8"

    def test_cycles_scale_with_kernel_size(self):
        small_k = compile_cdfg(kernels.fir(4))
        large_k = compile_cdfg(kernels.fir(16))
        ins_small = {op.name: 1 for op in kernels.fir(4).inputs()}
        ins_large = {op.name: 1 for op in kernels.fir(16).inputs()}
        _, cycles_small = small_k.run(ins_small)
        _, cycles_large = large_k.run(ins_large)
        assert cycles_large > cycles_small
