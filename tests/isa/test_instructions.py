"""Tests for R32 ISA definition and encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import (
    CUSTOM_BASE,
    CustomOp,
    Format,
    Instruction,
    Isa,
    Opcode,
)

regs = st.integers(0, 15)
imm16 = st.integers(-0x8000, 0x7FFF)
imm24 = st.integers(-0x800000, 0x7FFFFF)

R_OPS = [op for op in Opcode if Isa().fmt(op) is Format.R]
I_OPS = [op for op in Opcode if Isa().fmt(op) is Format.I]
J_OPS = [op for op in Opcode if Isa().fmt(op) is Format.J]


class TestEncoding:
    @given(op=st.sampled_from(R_OPS), rd=regs, rs1=regs, rs2=regs)
    def test_r_type_roundtrip(self, op, rd, rs1, rs2):
        isa = Isa()
        instr = Instruction(op, rd=rd, rs1=rs1, rs2=rs2)
        assert isa.decode(isa.encode(instr)) == instr

    @given(op=st.sampled_from(I_OPS), rd=regs, rs1=regs, imm=imm16)
    def test_i_type_roundtrip(self, op, rd, rs1, imm):
        isa = Isa()
        instr = Instruction(op, rd=rd, rs1=rs1, imm=imm)
        assert isa.decode(isa.encode(instr)) == instr

    @given(op=st.sampled_from(J_OPS), imm=imm24)
    def test_j_type_roundtrip(self, op, imm):
        isa = Isa()
        instr = Instruction(op, imm=imm)
        assert isa.decode(isa.encode(instr)) == instr

    def test_register_out_of_range_rejected(self):
        isa = Isa()
        with pytest.raises(ValueError):
            isa.encode(Instruction(Opcode.ADD, rd=16))

    def test_imm_out_of_range_rejected(self):
        isa = Isa()
        with pytest.raises(ValueError):
            isa.encode(Instruction(Opcode.ADDI, rd=1, rs1=0, imm=0x10000))

    def test_illegal_opcode_decode_rejected(self):
        isa = Isa()
        with pytest.raises(ValueError):
            isa.decode(0xEE000000)


class TestCustomOps:
    def test_add_custom_and_lookup(self):
        isa = Isa()
        op = CustomOp("mac3", 0x80, lambda a, b: a * b + 1, cycles=2,
                      area=80.0)
        isa.add_custom(op)
        assert isa.custom(0x80) is op
        assert isa.custom_by_name("mac3") is op
        assert isa.opcode_of("mac3") == 0x80
        assert isa.cycles_of(0x80) == 2
        assert isa.custom_area() == 80.0

    def test_custom_opcode_space_enforced(self):
        with pytest.raises(ValueError):
            CustomOp("bad", 0x10, lambda a, b: a)

    def test_custom_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            CustomOp("bad", 0x80, lambda a, b: a, cycles=0)

    def test_duplicate_opcode_rejected(self):
        isa = Isa()
        isa.add_custom(CustomOp("one", 0x80, lambda a, b: a))
        with pytest.raises(ValueError):
            isa.add_custom(CustomOp("two", 0x80, lambda a, b: b))

    def test_duplicate_mnemonic_rejected(self):
        isa = Isa()
        isa.add_custom(CustomOp("fused", 0x80, lambda a, b: a))
        with pytest.raises(ValueError):
            isa.add_custom(CustomOp("fused", 0x81, lambda a, b: b))

    def test_base_mnemonic_collision_rejected(self):
        isa = Isa()
        with pytest.raises(ValueError):
            isa.add_custom(CustomOp("add", 0x80, lambda a, b: a))

    def test_next_custom_opcode_skips_used(self):
        isa = Isa()
        assert isa.next_custom_opcode() == CUSTOM_BASE
        isa.add_custom(CustomOp("c0", CUSTOM_BASE, lambda a, b: a))
        assert isa.next_custom_opcode() == CUSTOM_BASE + 1

    def test_custom_encodes_as_r_type(self):
        isa = Isa()
        isa.add_custom(CustomOp("fma", 0x82, lambda a, b: a))
        instr = Instruction(0x82, rd=1, rs1=2, rs2=3)
        assert isa.decode(isa.encode(instr)) == instr
        assert isa.fmt(0x82) is Format.R


class TestDisassembly:
    def test_formats(self):
        isa = Isa()
        assert isa.disassemble(Instruction(Opcode.ADD, 1, 2, 3)) == \
            "add r1, r2, r3"
        assert isa.disassemble(Instruction(Opcode.LW, 1, 2, imm=4)) == \
            "lw r1, 4(r2)"
        assert isa.disassemble(Instruction(Opcode.HALT)) == "halt"
        assert isa.disassemble(Instruction(Opcode.J, imm=64)) == "j 64"
        assert isa.disassemble(Instruction(Opcode.JR, rs1=15)) == "jr r15"

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(KeyError):
            Isa().opcode_of("frobnicate")
