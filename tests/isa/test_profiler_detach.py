"""Profiler attach/detach lifecycle.

An attached profiler is a CPU observer, which takes ``run_block`` off
its straight-line fast path; these tests pin the contract that
``detach()`` (or the context-manager form) re-engages the fast path
while leaving the collected profile readable."""

import pytest

from repro.fault.inject import FaultInjector, System
from repro.fault.spec import FaultSpec
from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa
from repro.isa.profiler import Profiler
from repro.isa.translate import install

LOOP_PROGRAM = """
        addi r1, r0, 0
        addi r2, r0, 20
    loop:
        mul  r3, r1, r1
        addi r1, r1, 1
        bne  r1, r2, loop
        halt
"""


def make_cpu():
    isa = Isa()
    prog = assemble(LOOP_PROGRAM, isa)
    mem = Memory()
    mem.load_image(prog.image)
    return Cpu(isa, mem, pc=prog.entry)


def forbid_slow_path(cpu):
    def boom(max_steps):
        raise AssertionError("slow path used with no observers")

    cpu._run_block_slow = boom


def forbid_all_but_translated(cpu):
    """Only the translated tier may execute from here on — even the
    interpreted fast loop trips this, so run with full budgets."""

    def boom(max_steps):
        raise AssertionError("untranslated tier used")

    cpu._run_block_slow = boom
    cpu._run_block_fast = boom


class TestDetach:
    def test_attach_and_detach_toggle_the_observer(self):
        cpu = make_cpu()
        profiler = Profiler(cpu)
        assert profiler.attached
        assert cpu.observers
        profiler.detach()
        assert not profiler.attached
        assert not cpu.observers

    def test_detach_is_idempotent(self):
        cpu = make_cpu()
        profiler = Profiler(cpu)
        profiler.detach()
        profiler.detach()
        assert not cpu.observers

    def test_detach_removes_only_its_own_observer(self):
        cpu = make_cpu()
        other = lambda pc, instr: None  # noqa: E731
        cpu.observers.append(other)
        Profiler(cpu).detach()
        assert cpu.observers == [other]

    def test_run_block_fast_path_reengages_after_detach(self):
        """The acceptance test: while attached, run_block routes
        through the slow path; after detach it must never touch it."""
        cpu = make_cpu()
        profiler = Profiler(cpu)

        slow_calls = []
        orig = cpu._run_block_slow

        def counting(max_steps):
            slow_calls.append(max_steps)
            return orig(max_steps)

        cpu._run_block_slow = counting
        cpu.run_block(8)
        assert slow_calls, "observers armed but fast path taken"
        assert profiler.total_instructions == 8

        profiler.detach()
        forbid_slow_path(cpu)
        cpu.run()  # must finish entirely on the fast path
        assert cpu.halted

    def test_profile_stays_readable_and_frozen_after_detach(self):
        cpu = make_cpu()
        profiler = Profiler(cpu)
        cpu.run_block(10)
        profiler.detach()
        seen = profiler.total_instructions
        assert seen == 10
        cpu.run()
        # detached: later execution is not observed
        assert profiler.total_instructions == seen
        assert cpu.instr_count > seen
        assert profiler.report()  # still renders


class TestTranslatedTierReengage:
    """Regression (ISSUE 9): detaching a profiler or disarming a fault
    injector must re-enable the *translated* tier, not just the
    interpreted ``run_block`` loop — no sticky disabled state."""

    def test_profiler_detach_reengages_translated_tier(self):
        cpu = make_cpu()
        translator = install(cpu, hot_threshold=1)
        profiler = Profiler(cpu)
        cpu.run_block(8)  # observed: literal step loop
        assert translator.translations == 0
        assert profiler.total_instructions == 8

        profiler.detach()
        forbid_all_but_translated(cpu)
        cpu.run_block(1 << 30)  # full budget: no remainder delegation
        assert cpu.halted
        assert translator.translations > 0

    def test_injector_disarm_reengages_translated_tier(self):
        cpu = make_cpu()
        translator = install(cpu, hot_threshold=1)
        injector = FaultInjector(System(sim=None, cpu=cpu))
        injector.arm(FaultSpec(kind="cpu_reg_flip", target="cpu",
                               index=3, bit=0, count=2))
        cpu.run_block(8)  # saboteur armed: literal step loop
        assert translator.translations == 0

        injector.disarm()
        assert not cpu.observers
        forbid_all_but_translated(cpu)
        cpu.run_block(1 << 30)
        assert cpu.halted
        assert translator.translations > 0

    def test_disarm_is_idempotent_and_scoped(self):
        cpu = make_cpu()
        other = lambda pc, instr: None  # noqa: E731
        cpu.observers.append(other)
        injector = FaultInjector(System(sim=None, cpu=cpu))
        injector.arm(FaultSpec(kind="cpu_reg_flip", target="cpu",
                               index=3, bit=0, count=1))
        assert len(cpu.observers) == 2
        injector.disarm()
        injector.disarm()
        assert cpu.observers == [other]
        assert injector.armed == []

    def test_translated_run_matches_interpreted_after_detach(self):
        plain = make_cpu()
        with Profiler(plain):
            plain.run_block(8)
        plain.run()

        translated = make_cpu()
        install(translated, hot_threshold=1)
        with Profiler(translated):
            translated.run_block(8)
        translated.run()

        assert translated.halted and plain.halted
        assert translated.regs == plain.regs
        assert translated.instr_count == plain.instr_count
        assert translated.cycle_count == plain.cycle_count


class TestContextManager:
    def test_with_block_detaches_on_exit(self):
        cpu = make_cpu()
        with Profiler(cpu) as profiler:
            assert profiler.attached
            cpu.run_block(8)
        assert not profiler.attached
        assert not cpu.observers
        assert profiler.total_instructions == 8
        forbid_slow_path(cpu)
        cpu.run()
        assert cpu.halted

    def test_with_block_detaches_on_exception(self):
        cpu = make_cpu()
        with pytest.raises(RuntimeError):
            with Profiler(cpu) as profiler:
                raise RuntimeError("boom")
        assert not profiler.attached
        assert not cpu.observers

    def test_full_run_profile_matches_plain_profiler(self):
        plain_cpu = make_cpu()
        plain = Profiler(plain_cpu)
        plain_cpu.run()
        managed_cpu = make_cpu()
        with Profiler(managed_cpu) as managed:
            managed_cpu.run()
        assert managed.opcode_histogram() == plain.opcode_histogram()
        assert managed.total_cycles == plain.total_cycles
