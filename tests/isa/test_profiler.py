"""Tests for the execution profiler."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa
from repro.isa.profiler import Profiler


def profiled_run(text):
    isa = Isa()
    prog = assemble(text, isa)
    mem = Memory()
    mem.load_image(prog.image)
    cpu = Cpu(isa, mem, pc=prog.entry)
    profiler = Profiler(cpu)
    cpu.run()
    return cpu, profiler, prog


LOOP_PROGRAM = """
        addi r1, r0, 0
        addi r2, r0, 50
    loop:
        mul  r3, r1, r1
        addi r1, r1, 1
        bne  r1, r2, loop
        halt
"""


class TestCounting:
    def test_totals_match_cpu(self):
        cpu, prof, _p = profiled_run(LOOP_PROGRAM)
        assert prof.total_instructions == cpu.instr_count
        # opcode cycle attribution excludes the taken-branch penalty,
        # so it is a lower bound on the CPU's cycle count
        assert prof.total_cycles <= cpu.cycle_count
        assert prof.total_cycles >= cpu.cycle_count - cpu.instr_count

    def test_hot_pcs_are_the_loop_body(self):
        _c, prof, prog = profiled_run(LOOP_PROGRAM)
        loop_addr = prog.symbols["loop"]
        hot = dict(prof.hot_pcs(3))
        assert loop_addr in hot
        assert hot[loop_addr] == 50

    def test_opcode_histogram(self):
        _c, prof, _p = profiled_run(LOOP_PROGRAM)
        hist = prof.opcode_histogram()
        assert hist["mul"] == 50
        assert hist["bne"] == 50
        assert hist["halt"] == 1

    def test_cycle_share_dominated_by_mul(self):
        _c, prof, _p = profiled_run(LOOP_PROGRAM)
        share = prof.cycle_share()
        assert share["mul"] == max(share.values())
        assert sum(share.values()) == pytest.approx(1.0)


class TestBasicBlocks:
    def test_loop_is_one_hot_block(self):
        _c, prof, prog = profiled_run(LOOP_PROGRAM)
        blocks = prof.hot_blocks(1)
        assert len(blocks) == 1
        block = blocks[0]
        assert block.start == prog.symbols["loop"]
        assert block.executions == 50
        assert block.size == 3  # mul, addi, bne

    def test_blocks_cover_all_executed_pcs(self):
        _c, prof, _p = profiled_run(LOOP_PROGRAM)
        covered = set()
        for block in prof.basic_blocks():
            covered.update(range(block.start, block.end + 1))
        assert covered == set(prof.pc_counts)

    def test_straightline_program_is_one_block(self):
        _c, prof, _p = profiled_run("""
            addi r1, r0, 1
            addi r2, r0, 2
            add  r3, r1, r2
            halt
        """)
        blocks = prof.basic_blocks()
        assert len(blocks) == 1
        assert blocks[0].size == 4


class TestReports:
    def test_coverage(self):
        _c, prof, prog = profiled_run(LOOP_PROGRAM)
        assert prof.coverage(prog.size) == pytest.approx(1.0)
        assert prof.coverage(0) == 0.0

    def test_report_contains_sections(self):
        _c, prof, _p = profiled_run(LOOP_PROGRAM)
        report = prof.report()
        assert "instructions:" in report
        assert "hot opcodes:" in report
        assert "mul" in report

    def test_empty_profile(self):
        cpu = Cpu(Isa(), Memory())
        prof = Profiler(cpu)
        assert prof.total_instructions == 0
        assert prof.cycle_share() == {}
        assert prof.basic_blocks() == []


class TestMetricsBridge:
    def test_totals_land_in_registry_counters(self):
        from repro.cosim.metrics import MetricsRegistry

        _c, prof, _p = profiled_run(LOOP_PROGRAM)
        registry = prof.to_metrics(MetricsRegistry())
        counters = registry.snapshot()["counters"]
        assert counters["isa.instructions"] == prof.total_instructions
        assert counters["isa.cycles"] == prof.total_cycles
        assert counters["isa.op.mul.count"] == 50
        assert counters["isa.op.mul.cycles"] == \
            prof.opcode_cycles[prof.isa.opcode_of("mul")]

    def test_hot_blocks_exported_as_extraction_candidates(self):
        from repro.cosim.metrics import MetricsRegistry

        _c, prof, prog = profiled_run(LOOP_PROGRAM)
        counters = prof.to_metrics(MetricsRegistry()).snapshot()["counters"]
        block = prof.hot_blocks(1)[0]
        key = f"isa.block.{block.start:#x}_{block.end:#x}"
        assert counters[f"{key}.executions"] == 50
        assert counters[f"{key}.instructions"] == 50 * block.size

    def test_block_size_histogram_covers_every_block(self):
        from repro.cosim.metrics import MetricsRegistry

        _c, prof, _p = profiled_run(LOOP_PROGRAM)
        registry = prof.to_metrics(MetricsRegistry())
        h = registry.histograms["isa.block.size"]
        assert h.count == len(prof.basic_blocks())
        assert h.max == max(b.size for b in prof.basic_blocks())

    def test_prefix_and_chaining(self):
        from repro.cosim.metrics import MetricsRegistry

        _c, prof, _p = profiled_run(LOOP_PROGRAM)
        registry = MetricsRegistry()
        assert prof.to_metrics(registry, prefix="cpu0") is registry
        counters = registry.snapshot()["counters"]
        assert "cpu0.instructions" in counters
        assert not any(k.startswith("isa.") for k in counters)

    def test_two_profiles_aggregate_into_one_registry(self):
        from repro.cosim.metrics import MetricsRegistry

        _c1, prof1, _p1 = profiled_run(LOOP_PROGRAM)
        _c2, prof2, _p2 = profiled_run(LOOP_PROGRAM)
        registry = MetricsRegistry()
        prof1.to_metrics(registry)
        prof2.to_metrics(registry)
        assert registry.counters["isa.instructions"].value == \
            prof1.total_instructions + prof2.total_instructions
