"""Cross-engine byte-identity acceptance tests for the translated tier.

The whole-subsystem form of the DESIGN §13 contract: not just single
CPUs, but the E18 fault-campaign dependability table and an E21
``explore()`` front must serialize to *byte-identical* JSON with the
block translator enabled, disabled, and with a warm vs cold block
cache.  Fleet-wide enablement goes through
:func:`repro.isa.translate.auto_translation`, the same switch the
benchmarks and the ``REPRO_TRANSLATE`` environment hook use — so these
tests also pin that scenario builders constructing their own CPUs
(``coproc`` builds one internally) actually pick the translator up.
"""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.explore import ExploreSpec, explore
from repro.fault import SCENARIOS, run_campaign, sample_faults
from repro.fault.scenarios import run_scenario
from repro.isa.translate import auto_translation

pytestmark = pytest.mark.slow  # whole-subsystem runs: smoke lane skips

CAMPAIGN_FAULTS = 48  # smaller than E18's 200 for test budget; the
CAMPAIGN_SEED = 7     # full-size E18 gate lives in BENCH_translate

#: A smoke-sized E21 spec (the full SPEC_3D shape, scaled down).
SMOKE_SPEC = ExploreSpec(population=4, generations=2,
                         scenario="coproc", scenario_faults=6)


def campaign_json(enabled):
    faults = sample_faults(
        SCENARIOS["coproc"].targets, CAMPAIGN_FAULTS, seed=CAMPAIGN_SEED
    )
    with auto_translation(enabled):
        return run_campaign("coproc", faults, workers=1).to_json()


class TestCampaignIdentity:
    def test_e18_table_byte_identical_translation_on_off(self):
        assert campaign_json(True) == campaign_json(False)

    def test_e18_table_byte_identical_warm_vs_cold(self):
        """Back-to-back campaigns under one enablement: the second run
        re-enters already-translated scenarios and must not drift."""
        faults = sample_faults(
            SCENARIOS["coproc"].targets, CAMPAIGN_FAULTS,
            seed=CAMPAIGN_SEED,
        )
        with auto_translation(True):
            cold = run_campaign("coproc", faults, workers=1).to_json()
            warm = run_campaign("coproc", faults, workers=1).to_json()
        assert cold == warm

    def test_eager_translation_identical_to_default_threshold(self):
        """hot_threshold=1 forces every block through the translator
        (no cold-path delegation warm-up) — same bytes."""
        faults = sample_faults(
            SCENARIOS["coproc"].targets, 16, seed=CAMPAIGN_SEED
        )
        with auto_translation(True, hot_threshold=1):
            eager = run_campaign("coproc", faults, workers=1).to_json()
        with auto_translation(True):
            default = run_campaign("coproc", faults, workers=1).to_json()
        assert eager == default


class TestScenarioIdentity:
    @pytest.mark.parametrize("name", ["coproc", "msgpipe"])
    def test_golden_record_identical(self, name):
        with auto_translation(False):
            off = run_scenario(name)
        with auto_translation(True, hot_threshold=1):
            on = run_scenario(name)
        assert off == on

    def test_faulted_record_identical(self):
        faults = sample_faults(SCENARIOS["coproc"].targets, 6, seed=3)
        for fault in faults:
            with auto_translation(False):
                off = run_scenario("coproc", fault)
            with auto_translation(True, hot_threshold=1):
                on = run_scenario("coproc", fault)
            assert off == on, fault


class TestExploreIdentity:
    def test_e21_front_byte_identical_translation_on_off(self):
        with auto_translation(False):
            off = explore(SMOKE_SPEC, workers=1).to_json()
        with auto_translation(True):
            on = explore(SMOKE_SPEC, workers=1).to_json()
        assert on == off

    def test_e21_front_byte_identical_warm_vs_cold(self):
        with auto_translation(True):
            cold = explore(SMOKE_SPEC, workers=1).to_json()
            warm = explore(SMOKE_SPEC, workers=1).to_json()
        assert cold == warm

    def test_reseeded_spec_still_identical_on_off(self):
        spec = dataclasses.replace(SMOKE_SPEC, ga_seed=1)
        with auto_translation(False):
            off = explore(spec, workers=1).to_json()
        with auto_translation(True):
            on = explore(spec, workers=1).to_json()
        assert on == off


class TestEnvironmentHook:
    def test_repro_translate_env_var_enables_fleet_wide(self):
        """``REPRO_TRANSLATE=1`` in a fresh interpreter must give every
        CPU a translator and still produce the reference golden record."""
        snippet = (
            "import json, sys\n"
            "from repro.fault.scenarios import run_scenario\n"
            "from repro.isa import Cpu, Isa\n"
            "assert Cpu(Isa()).translator is not None\n"
            "json.dump(run_scenario('coproc'), sys.stdout,\n"
            "          sort_keys=True)\n"
        )
        env = dict(os.environ, REPRO_TRANSLATE="1")
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        proc = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, env=env, cwd=os.getcwd(),
            check=True,
        )
        with auto_translation(False):
            reference = run_scenario("coproc")
        assert json.loads(proc.stdout) == json.loads(
            json.dumps(reference, sort_keys=True)
        )

    def test_env_var_off_means_no_translator(self):
        snippet = (
            "from repro.isa import Cpu, Isa\n"
            "assert Cpu(Isa()).translator is None\n"
        )
        env = dict(os.environ)
        env.pop("REPRO_TRANSLATE", None)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, env=env, cwd=os.getcwd(),
            check=True,
        )
