"""Tests for the CPU model: semantics, timing, MMIO, interrupts."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, CpuError, ExternalAccess, Memory
from repro.isa.instructions import Isa, Opcode


def make_cpu(text, isa=None, **cpu_kwargs):
    isa = isa or Isa()
    prog = assemble(text, isa)
    mem = Memory()
    mem.load_image(prog.image)
    return Cpu(isa, mem, pc=prog.entry, **cpu_kwargs), mem


class TestArithmetic:
    def test_signed_ops(self):
        cpu, _m = make_cpu("""
            li  r1, -20
            li  r2, 6
            div r3, r1, r2      ; -3 (truncate toward zero)
            mod r4, r1, r2      ; -2
            sra r5, r1, r2      ; -20 >> 6 arithmetic = -1
            slt r6, r1, r2      ; 1
            sltu r7, r1, r2     ; 0 (0xffffffec unsigned is huge)
            halt
        """)
        cpu.run()
        assert cpu.get_reg(3) == (-3) & 0xFFFFFFFF
        assert cpu.get_reg(4) == (-2) & 0xFFFFFFFF
        assert cpu.get_reg(5) == (-1) & 0xFFFFFFFF
        assert cpu.get_reg(6) == 1
        assert cpu.get_reg(7) == 0

    def test_division_by_zero_faults(self):
        cpu, _m = make_cpu("div r1, r0, r0\nhalt")
        with pytest.raises(CpuError):
            cpu.run()

    def test_r0_is_hardwired_zero(self):
        cpu, _m = make_cpu("""
            addi r0, r0, 99
            add  r1, r0, r0
            halt
        """)
        cpu.run()
        assert cpu.get_reg(0) == 0
        assert cpu.get_reg(1) == 0

    def test_logical_immediates_zero_extend(self):
        cpu, _m = make_cpu("""
            li   r1, 0
            ori  r2, r1, 0xFFFF     ; 0x0000FFFF, not sign-extended
            halt
        """)
        cpu.run()
        assert cpu.get_reg(2) == 0xFFFF

    def test_wraparound_arithmetic(self):
        cpu, _m = make_cpu("""
            li  r1, 0xFFFFFFFF
            addi r2, r1, 1
            halt
        """)
        cpu.run()
        assert cpu.get_reg(2) == 0


class TestTiming:
    def test_cycle_accounting(self):
        isa = Isa()
        cpu, _m = make_cpu("""
            addi r1, r0, 2      ; 1 cycle
            mul  r2, r1, r1     ; 4 cycles
            lw   r3, 0x100(r0)  ; 2 cycles
            halt                ; 1 cycle
        """, isa=isa)
        cpu.run()
        assert cpu.cycle_count == 1 + 4 + 2 + 1
        assert cpu.instr_count == 4

    def test_taken_branch_costs_extra(self):
        base_cpu, _m = make_cpu("""
            addi r1, r0, 1
            beq  r1, r0, skip   ; not taken: 1 cycle
            skip: halt
        """)
        base_cpu.run()
        taken_cpu, _m = make_cpu("""
            addi r1, r0, 0
            beq  r1, r0, skip   ; taken: 2 cycles
            skip: halt
        """)
        taken_cpu.run()
        assert taken_cpu.cycle_count == base_cpu.cycle_count + 1

    def test_instruction_budget_enforced(self):
        cpu, _m = make_cpu("loop: j loop\nhalt")
        with pytest.raises(CpuError):
            cpu.run(max_instructions=100)


class TestMemoryRegions:
    def test_synchronous_device_region(self):
        log = []
        isa = Isa()
        prog = assemble("""
            li  r1, 42
            sw  r1, 0x500(r0)
            lw  r2, 0x501(r0)
            halt
        """, isa)
        mem = Memory()
        mem.load_image(prog.image)
        mem.add_region(
            "dev", 0x500, 4,
            read_fn=lambda off: 1000 + off,
            write_fn=lambda off, val: log.append((off, val)),
        )
        cpu = Cpu(isa, mem)
        cpu.run()
        assert log == [(0, 42)]
        assert cpu.get_reg(2) == 1001

    def test_unreadable_region_faults(self):
        isa = Isa()
        prog = assemble("lw r1, 0x500(r0)\nhalt", isa)
        mem = Memory()
        mem.load_image(prog.image)
        mem.add_region("wo", 0x500, 1, write_fn=lambda o, v: None)
        cpu = Cpu(isa, mem)
        with pytest.raises(CpuError):
            cpu.run()

    def test_overlapping_regions_rejected(self):
        mem = Memory()
        mem.add_region("a", 0x100, 16, read_fn=lambda o: 0)
        with pytest.raises(ValueError):
            mem.add_region("b", 0x108, 16, read_fn=lambda o: 0)

    def test_fetch_from_unprogrammed_address_faults(self):
        cpu = Cpu(Isa(), Memory())
        with pytest.raises(CpuError):
            cpu.step()


class TestExternalAccess:
    def build(self):
        isa = Isa()
        prog = assemble("""
            li  r1, 7
            sw  r1, 0x800(r0)
            lw  r2, 0x800(r0)
            halt
        """, isa)
        mem = Memory()
        mem.load_image(prog.image)
        mem.add_region("ext", 0x800, 8, external=True)
        return Cpu(isa, mem), prog

    def test_step_returns_access_and_freezes(self):
        cpu, _p = self.build()
        # li is 1 instr (small) -> step; then sw defers
        assert isinstance(cpu.step(), int)
        access = cpu.step()
        assert isinstance(access, ExternalAccess)
        assert access.is_write and access.addr == 0x800 and access.value == 7
        with pytest.raises(CpuError):
            cpu.step()  # frozen until completion

    def test_complete_write_then_read(self):
        cpu, _p = self.build()
        store = {}
        while not cpu.halted:
            result = cpu.step()
            if isinstance(result, ExternalAccess):
                if result.is_write:
                    store[result.addr] = result.value
                    cpu.complete_access()
                else:
                    cpu.complete_access(read_value=store[result.addr] + 1,
                                        extra_cycles=10)
        assert cpu.get_reg(2) == 8
        assert store == {0x800: 7}

    def test_extra_cycles_charged(self):
        cpu, _p = self.build()
        cycles_without_stall = None
        result = cpu.step()
        result = cpu.step()
        before = cpu.cycle_count
        cpu.complete_access(extra_cycles=50)
        isa_cost = cpu.isa.cycles_of(Opcode.SW)
        assert cpu.cycle_count - before == isa_cost + 50

    def test_complete_without_pending_rejected(self):
        cpu, _p = self.build()
        with pytest.raises(CpuError):
            cpu.complete_access()

    def test_run_refuses_external_access(self):
        cpu, _p = self.build()
        with pytest.raises(CpuError):
            cpu.run()


class TestInterrupts:
    def program(self):
        return """
                addi r1, r0, 0
            loop:
                addi r1, r1, 1
                addi r2, r0, 100
                bne  r1, r2, loop
                halt
            .org 0x40
            handler:
                addi r5, r5, 1      ; count interrupts
                reti
        """

    def test_irq_vectors_and_returns(self):
        cpu, _m = make_cpu(self.program())
        fired = {"n": 0}
        while not cpu.halted:
            cpu.step()
            if cpu.instr_count == 10 and fired["n"] == 0:
                cpu.raise_irq()
                fired["n"] = 1
        assert cpu.get_reg(5) == 1
        assert cpu.get_reg(1) == 100  # main loop completed correctly
        assert cpu.irq_count == 1

    def test_irq_disabled_until_reti(self):
        cpu, _m = make_cpu(self.program())
        # raise two IRQs back to back; second must wait for reti
        cpu.step()
        cpu.raise_irq()
        cpu.step()  # vectors
        assert not cpu.irq_enabled
        cpu.raise_irq()
        cpu.step()  # handler body (addi) — irq pending but masked
        assert cpu.pc != cpu.ivec or cpu.irq_count == 1
        cpu.step()  # reti
        assert cpu.irq_enabled
        cpu.step()  # vectors again
        assert cpu.irq_count == 2

    def test_epc_restored(self):
        cpu, _m = make_cpu(self.program())
        for _ in range(4):
            cpu.step()
        resume_pc = cpu.pc
        cpu.raise_irq()
        cpu.step()  # irq entry
        assert cpu.epc == resume_pc
        cpu.step()  # handler addi
        cpu.step()  # reti
        assert cpu.pc == resume_pc


class TestObservers:
    def test_observers_see_retired_pcs(self):
        cpu, _m = make_cpu("""
            addi r1, r0, 1
            addi r2, r0, 2
            halt
        """)
        seen = []
        cpu.observers.append(lambda pc, instr: seen.append(pc))
        cpu.run()
        assert seen == [0, 1, 2]
