"""E21 — Closed-loop design-space exploration: GA vs random search.

The explorer's claim is twofold: it is *cheap* (the ResultCache makes
repeated genomes free, so a warm re-run recomputes nothing) and it is
*better than blind sampling* (at an equal evaluation budget the GA's
Pareto front covers at least as much objective space as uniform random
search).  This benchmark pins both on the coproc scenario — the
three-objective (cost, latency, fault exposure) problem of Figure 8 —
and records the numbers in ``BENCH_explore.json``:

* **cold serial** — ``workers=1``, empty cache, seed 0;
* **cold parallel** — ``workers=4``, separate empty cache; the result
  must be byte-identical to the serial run;
* **warm** — the serial run's cache; zero genomes recomputed
  (asserted via metrics counters, not timing);
* **GA vs random** — over four ``ga_seed`` values, each GA run is
  paired with a :func:`random_search` of the *same* number of distinct
  genomes, and both fronts are measured in one shared normalization.
  The gate is the aggregate ratio ``sum(hv_ga) / sum(hv_random)``:
  per-seed ratios are bimodal (whichever search finds the
  all-hardware zero-exposure corner wins that seed), but the sum is a
  stable, deterministic "never worse on balance" statistic.

Asserted: byte identity across worker counts, warm zero-recompute,
per-generation hypervolume monotone (the archive is elitist), and the
aggregate hv ratio >= 1.0.  The 4-worker speedup floor applies only on
machines with >= 4 CPUs; the honest number is recorded regardless.
"""

import dataclasses
import json
import os
import time
from pathlib import Path

from repro.cosim.metrics import MetricsRegistry
from repro.explore import (
    ExploreSpec,
    explore,
    normalized_hypervolume,
    objective_bounds,
    random_search,
)
from repro.sweep import ResultCache

# one workload (not a mix: with several n_tasks the smallest problem
# dominates every objective and the front degenerates to two points)
BASE = ExploreSpec(
    generators=("layered",),
    n_tasks=(24,),
    population=12,
    generations=5,
    scenario="coproc",
    scenario_faults=24,
)
SEEDS = (0, 1, 2, 3)

RESULT_FILE = Path(__file__).parent / "BENCH_explore.json"


def _timed_explore(spec, workers, cache, metrics=None):
    start = time.perf_counter()
    result = explore(spec, workers=workers, cache=cache, metrics=metrics)
    return result, time.perf_counter() - start


def _distinct_budget(result):
    """Distinct genomes the run evaluated — cache-warmth independent."""
    return result.stats.cache_hits + result.stats.computed


def test_explore_beats_random_and_caches(benchmark, tmp_path):
    serial_cache = ResultCache(tmp_path / "serial")
    parallel_cache = ResultCache(tmp_path / "parallel")

    cold_metrics = MetricsRegistry()
    serial, serial_s = _timed_explore(BASE, 1, serial_cache, cold_metrics)
    parallel, parallel_s = _timed_explore(BASE, 4, parallel_cache)

    # determinism: worker count must not leak into the result bytes
    assert parallel.to_json() == serial.to_json()

    # elitist archive: the front can only grow, never shrink
    hv_history = [g["hypervolume"] for g in serial.history]
    assert hv_history == sorted(hv_history)
    assert len(hv_history) == BASE.generations

    # warm run: every genome served from the serial run's cache
    warm_metrics = MetricsRegistry()
    (warm, warm_s) = benchmark.pedantic(
        _timed_explore, args=(BASE, 1, serial_cache, warm_metrics),
        rounds=1, iterations=1,
    )
    assert warm.to_json() == serial.to_json()
    assert warm_metrics.counter("explore.genomes.computed").value == 0
    hits = warm_metrics.counter("explore.cache.hits").value
    assert hits == _distinct_budget(serial)
    cache_hit_ratio = hits / (hits + warm.stats.computed)

    # GA vs random at an equal distinct-genome budget, per seed; the
    # shared cache only accelerates — fronts are model-deterministic
    hv_ga_total = hv_rand_total = 0.0
    per_seed = []
    for seed in SEEDS:
        spec = dataclasses.replace(BASE, ga_seed=seed)
        ga = explore(spec, workers=1, cache=serial_cache)
        rnd = random_search(spec, _distinct_budget(ga), workers=1,
                            cache=serial_cache)
        # one shared normalization so the two volumes are commensurable
        lo, hi = objective_bounds(ga.points() + rnd.points())
        hv_ga = normalized_hypervolume(ga.points(), lo, hi)
        hv_rand = normalized_hypervolume(rnd.points(), lo, hi)
        hv_ga_total += hv_ga
        hv_rand_total += hv_rand
        per_seed.append(round(hv_ga / hv_rand, 4))
    hv_ratio = hv_ga_total / hv_rand_total
    assert hv_ratio >= 1.0, (
        f"GA front hypervolume fell below random search at equal "
        f"budget: aggregate ratio {hv_ratio:.4f} (per seed {per_seed})"
    )

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"4-worker explore only {speedup:.2f}x over serial on a "
            f"{cpus}-CPU box (floor: 2x)"
        )

    requested = serial.stats.requested
    record = {
        "cells": _distinct_budget(serial),
        "cpus": cpus,
        "population": BASE.population,
        "generations": BASE.generations,
        "seeds": list(SEEDS),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup_explore4": round(speedup, 3),
        "warm_s": round(warm_s, 4),
        "warm_fraction": round(warm_s / serial_s, 4),
        "cache_hit_ratio": round(cache_hit_ratio, 4),
        "evaluation_savings": round(
            serial.stats.evaluation_savings(), 4),
        "requested": requested,
        "front_size": len(serial.front_rows()),
        "hv_ga": round(hv_ga_total, 4),
        "hv_random": round(hv_rand_total, 4),
        "hv_ratio": round(hv_ratio, 4),
        "hv_ratio_per_seed": per_seed,
    }
    RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info.update(record)
