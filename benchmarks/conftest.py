"""Shared fixtures for the experiment benchmarks.

Every benchmark regenerates one figure/claim of the paper (see
DESIGN.md's experiment index and EXPERIMENTS.md for the paper-vs-
measured record).  Benchmarks both *time* a representative operation
(pytest-benchmark) and *assert* the claim's qualitative shape, so a
regression in either speed or substance fails the run.  Key measured
numbers are attached to ``benchmark.extra_info`` for the record.
"""

import random

import pytest

from repro.estimate.software import default_processor_library
from repro.graph.generators import periodic_taskset


@pytest.fixture
def rng():
    """A fresh deterministic RNG per benchmark."""
    return random.Random(20260704)


@pytest.fixture(scope="session")
def processor_library():
    return default_processor_library()


@pytest.fixture(scope="session")
def multiproc_taskset():
    """The Figure 5 workload: 10 periodic tasks at 1.5x utilization."""
    return periodic_taskset(
        random.Random(5), n_tasks=10, period=100.0, utilization=1.5
    )
