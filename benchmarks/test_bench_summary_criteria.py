"""E10 — Section 5: the summary criteria applied to the survey.

Paper claim: the four criteria (system type; design tasks; co-simulation
abstraction level; partitioning factors) characterize every surveyed
approach, and "it is important to determine characteristics of a given
approach before evaluating it or comparing it."

Measured: the criteria engine characterizes the full Section 4 registry
without violating any structural rule, reproduces the paper's per-
example statements verbatim (checked per criterion), and renders the
comparison table.
"""

from repro.core.criteria import characterize, comparison_table
from repro.core.examples import paper_examples, paper_registry
from repro.core.taxonomy import (
    DesignTask,
    InterfaceLevel,
    PartitionFactor,
    SystemType,
)


def build_table():
    registry = paper_registry()
    return registry, comparison_table(registry.all())


def test_summary_criteria_table(benchmark):
    registry, table = benchmark(build_table)
    examples = paper_examples()

    # criterion 1: system types as the paper asserts
    by_name = {m.name: characterize(m) for m in registry.all()}
    type_i = [n for n, c in by_name.items()
              if c.system_type is SystemType.TYPE_I]
    type_ii = [n for n, c in by_name.items()
               if c.system_type is SystemType.TYPE_II]
    assert len(type_i) == 4 and len(type_ii) == 2

    # criterion 2: task sets (spot checks straight from the text)
    chinook = by_name["embedded microprocessor + glue logic"]
    assert chinook.addresses(DesignTask.COSIMULATION)
    assert not chinook.addresses(DesignTask.PARTITIONING)
    multiproc = by_name["heterogeneous multiprocessor"]
    assert multiproc.addresses(DesignTask.COSYNTHESIS)
    assert not multiproc.addresses(DesignTask.PARTITIONING)

    # criterion 3: co-simulation levels
    assert InterfaceLevel.SIGNAL in chinook.cosim_levels
    mt = by_name["multi-threaded co-processor"]
    assert InterfaceLevel.MESSAGE in mt.cosim_levels

    # criterion 4: partitioning factors
    assert PartitionFactor.MODIFIABILITY not in mt.partition_factors
    assert len(mt.partition_factors) == 5
    asip = by_name["application-specific instruction set processor"]
    assert PartitionFactor.MODIFIABILITY in asip.partition_factors

    # the table carries one row per methodology plus header
    assert len(table.splitlines()) == len(registry) + 2
    for example in examples.values():
        assert example.methodology.name in table

    benchmark.extra_info["table"] = table.splitlines()
