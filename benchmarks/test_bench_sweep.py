"""E11 — Sweep-engine throughput: serial vs parallel vs cached.

The ROADMAP north star asks for running experiments "as fast as the
hardware allows".  This benchmark drives a 64-cell grid (2 generators x
2 cost models x 4 deterministic heuristics x 4 seeds) through
``repro.sweep`` four ways and records the wall-clock for each in
``BENCH_sweep.json``:

* **cold serial** — ``workers=1``, empty cache;
* **cold parallel** — ``workers=4``, separate empty cache;
* **cold campaign** — ``workers=4`` shards against an empty
  :class:`~repro.campaign.store.CampaignStore` (the durable,
  resumable execution path);
* **warm** — ``workers=1``, the serial run's cache (every cell served
  from disk).

Asserted: the warm run finishes in < 10% of the cold-serial time with
zero recomputation (checked via metrics counters, not timing), all
four tables are byte-identical, and a re-run against the populated
campaign store computes nothing.  The >= 2x speedup criteria (pool
and campaign) are asserted only when the machine actually has >= 4
CPUs — on fewer cores the honest numbers are still recorded in the
JSON.
"""

import json
import os
import time
from pathlib import Path

from repro.campaign import CampaignStore
from repro.cosim.metrics import MetricsRegistry
from repro.sweep import ResultCache, expand_grid, run_sweep

GRID = dict(
    generators=["layered", "forkjoin"],
    n_tasks=[10],
    cost_models=["default", "comm_heavy"],
    heuristics=["greedy", "vulcan", "cosyma", "gclp"],
    seeds=range(4),
)

RESULT_FILE = Path(__file__).parent / "BENCH_sweep.json"


def _timed_sweep(configs, workers, cache, metrics=None):
    start = time.perf_counter()
    table = run_sweep(configs, workers=workers, cache=cache,
                      metrics=metrics)
    return table, time.perf_counter() - start


def test_sweep_serial_parallel_cached(benchmark, tmp_path):
    configs = expand_grid(**GRID)
    assert len(configs) >= 64

    serial_cache = ResultCache(tmp_path / "serial")
    parallel_cache = ResultCache(tmp_path / "parallel")

    serial_table, serial_s = _timed_sweep(configs, 1, serial_cache)
    parallel_table, parallel_s = _timed_sweep(configs, 4, parallel_cache)

    # determinism: worker count must not leak into the results
    assert parallel_table.to_json() == serial_table.to_json()

    # campaign path: 4 shards against a durable SQLite store
    campaign_store = CampaignStore(tmp_path / "campaign.sqlite")
    campaign_table, campaign_s = _timed_sweep(configs, 4, campaign_store)
    assert campaign_table.to_json() == serial_table.to_json()

    # the populated store resumes with zero recomputation
    resume_metrics = MetricsRegistry()
    resumed, _ = _timed_sweep(configs, 4, campaign_store, resume_metrics)
    assert resume_metrics.counter("sweep.cells.computed").value == 0
    assert resumed.to_json() == serial_table.to_json()

    # warm run: everything served from the serial run's cache
    metrics = MetricsRegistry()
    warm_table, warm_s = benchmark.pedantic(
        _timed_sweep, args=(configs, 1, serial_cache, metrics),
        rounds=1, iterations=1,
    )
    assert warm_table.to_json() == serial_table.to_json()
    assert metrics.counter("sweep.cells.computed").value == 0
    assert metrics.counter("sweep.cache.hits").value == len(configs)
    assert warm_s < 0.10 * serial_s

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    campaign_speedup = (serial_s / campaign_s if campaign_s > 0
                        else float("inf"))
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert speedup >= 2.0
        assert campaign_speedup >= 2.0, (
            f"4-shard campaign run only {campaign_speedup:.2f}x over "
            f"serial on a {cpus}-CPU box (floor: 2x)"
        )

    record = {
        "cells": len(configs),
        "cpus": cpus,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup_parallel4": round(speedup, 3),
        "campaign_s": round(campaign_s, 4),
        "speedup_campaign4": round(campaign_speedup, 3),
        "warm_s": round(warm_s, 4),
        "warm_fraction": round(warm_s / serial_s, 4),
    }
    RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info.update(record)
