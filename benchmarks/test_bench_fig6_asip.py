"""E6 — Figure 6: application-specific instruction-set processors.

Paper claims (Section 4.3): ASIP co-design "attempts to find the best
implementation for a given application" by "adding new instructions to
the instruction set architecture" — a form of hardware/software
partitioning in which moving functionality into custom instructions
buys performance for silicon area, while *modifiability is preserved*
(the application remains software; the stock binary still runs).

Measured: the mined-candidate selection frontier — speedup rises
monotonically with the custom-FU area budget, every design point's
rewritten binaries are bit-identical to the stock-ISA outputs, and the
budget-0 point (the unmodified processor) anchors the frontier at 1.0x.
"""

import pytest

from repro.asip.explore import explore_asip
from repro.graph import kernels

COEFFS = [3, -5, 7, 2, 9, -1, 4, 6]
BUDGETS = [0.0, 100.0, 300.0, 600.0, 1200.0, 2400.0]


def workloads():
    return {
        "fir": (kernels.fir(8, coefficients=COEFFS), 5.0),
        "crc": (kernels.crc_step(), 10.0),
        "ewf": (kernels.elliptic_wave_filter(constant_coefficients=True),
                3.0),
    }


def test_fig6_selection_frontier(benchmark):
    wl = workloads()
    weights = {name: w for name, (_g, w) in wl.items()}
    points = benchmark(explore_asip, wl, BUDGETS)

    speedups = [p.speedup(weights) for p in points]
    # anchor: no custom area = stock processor
    assert speedups[0] == pytest.approx(1.0)
    assert points[0].custom_area == 0.0
    # monotone frontier: more area never hurts (exploration verified
    # functional equality internally - it raises on any mismatch)
    for lo, hi in zip(speedups, speedups[1:]):
        assert hi >= lo - 1e-9
    # the frontier actually buys something
    assert speedups[-1] > 1.25
    # area tracks budget
    for point in points:
        assert point.custom_area <= point.budget + 1e-9

    # modifiability: the custom ops extend the ISA, they don't replace
    # it - the stock-compiled binary still runs on the extended ISA
    from repro.asip.custom import install, mine_candidates
    from repro.asip.selection import select_instructions
    from repro.isa.codegen import compile_cdfg
    from repro.isa.instructions import Isa

    extended = Isa("check")
    install(extended, select_instructions(mine_candidates(wl), 1200.0))
    g = kernels.crc_step()
    stock_binary = compile_cdfg(g)  # compiled for the stock ISA
    inputs = {op.name: 123 for op in g.inputs()}
    out_on_extended, _cycles = stock_binary.run(dict(inputs), isa=extended)
    assert out_on_extended == g.evaluate(dict(inputs))

    benchmark.extra_info["frontier"] = [
        {"budget": p.budget, "area": p.custom_area,
         "speedup": round(p.speedup(weights), 4),
         "instructions": len(p.instructions)}
        for p in points
    ]
