"""E18 — Fault-campaign throughput and zero-cost injector attachment.

Two claims, timed and asserted:

* **Throughput** — the campaign runner (golden + N faulty cells,
  classification, dependability table) sustains a useful faults/second
  rate; the measured rate lands in ``BENCH_fault.json`` for the
  experiment record.
* **Zero cost when idle** — attaching a :class:`FaultInjector` with no
  fault armed must not slow the simulation: the attached golden-run
  loop stays within 3% of the bare loop (min-of-repeats both sides).
  The robustness suite proves byte-identity of the records; this
  benchmark prices the attachment itself.

The kernel watchdog's cost is recorded too (it is opt-in, so it gets
an honest number rather than a bound).
"""

import json
import time
from pathlib import Path

from repro.cosim.kernel import Simulator, Watchdog
from repro.fault import (
    FaultInjector,
    OUTCOMES,
    SCENARIOS,
    run_campaign,
    run_scenario,
    sample_faults,
)

REPEATS = 3
GOLDEN_LOOPS = 300
RESULT_FILE = Path(__file__).parent / "BENCH_fault.json"


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _golden_pass():
    """One interleaved timing pass over the three golden variants.

    Each iteration times only ``sim.run`` (the claim is about the
    simulation hot loop, not scenario construction) and visits the
    variants back-to-back, so clock drift and cache effects land on
    all three alike instead of biasing whichever loop ran last.
    """
    scenario = SCENARIOS["msgpipe"]
    totals = {"bare": 0.0, "attached": 0.0, "watched": 0.0}
    for _ in range(GOLDEN_LOOPS):
        for name in totals:
            sim = Simulator()
            system, summarize = scenario.build(sim)
            if name == "attached":
                FaultInjector(system)
            watchdog = (
                Watchdog(max_stalled_activations=4000)
                if name == "watched" else None
            )
            start = time.perf_counter()
            sim.run(until=scenario.horizon, watchdog=watchdog)
            totals[name] += time.perf_counter() - start
            summarize()
    return totals


def test_campaign_throughput_and_idle_injector_cost(benchmark):
    faults = sample_faults(SCENARIOS["msgpipe"].targets, 60, seed=3)

    def campaign():
        return run_campaign("msgpipe", faults, workers=1)

    campaign()  # warm imports and code paths
    result, campaign_s = benchmark.pedantic(
        lambda: _best_of(REPEATS, campaign), rounds=1, iterations=1
    )
    faults_per_s = len(faults) / campaign_s

    # the timed campaign did real work: classes beyond masked appear
    hist = result.histogram()
    assert sum(hist.values()) == len(faults)
    assert sum(hist[o] for o in OUTCOMES if o != "masked") > 0

    best = {"bare": float("inf"), "attached": float("inf"),
            "watched": float("inf")}
    _golden_pass()  # warm every path before any timing
    for _ in range(REPEATS):
        for name, total in _golden_pass().items():
            best[name] = min(best[name], total)
    bare_s, attached_s, watched_s = (
        best["bare"], best["attached"], best["watched"])
    idle_overhead = (attached_s - bare_s) / bare_s
    watchdog_overhead = (watched_s - bare_s) / bare_s
    assert idle_overhead < 0.03, (
        f"idle FaultInjector costs {idle_overhead:.1%} on the golden "
        f"run (budget: 3%)"
    )

    record = {
        "faults": len(faults),
        "repeats": REPEATS,
        "campaign_s": round(campaign_s, 4),
        "faults_per_s": round(faults_per_s, 1),
        "histogram": hist,
        "golden_loops": GOLDEN_LOOPS,
        "bare_golden_s": round(bare_s, 4),
        "attached_golden_s": round(attached_s, 4),
        "idle_injector_overhead": round(idle_overhead, 4),
        "watchdog_overhead": round(watchdog_overhead, 4),
    }
    RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info.update(record)
