"""E4 — Figure 4: the embedded microprocessor system, end to end.

Paper claim (Section 4.1): interface co-synthesis (Chinook [11])
produces the I/O drivers and interface logic from a common
specification, and pin/bus-level co-simulation (Becker et al. [4])
validates software running against the surrounding hardware.

Measured: the full generate-and-run loop — synthesize register map,
glue, and drivers for three peripherals; assemble the generated driver
under an application; co-simulate with a hardware timer raising real
interrupts — transmits the right bytes and services every interrupt.
"""

from repro.cosim.kernel import Simulator
from repro.interface.chinook import synthesize_interface
from repro.interface.spec import gpio_spec, timer_spec, uart_spec
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa

MAIN = """
        li   r1, 0x48
        jal  write_uart_data
        li   r1, 0x49
        jal  write_uart_data
    wait_ticks:
        lw   r2, 0x700(r0)
        addi r3, r0, 3
        blt  r2, r3, wait_ticks
        halt
"""


def run_embedded_system():
    design = synthesize_interface([uart_spec(), timer_spec(), gpio_spec()])
    program = design.build_program(MAIN)
    mem = Memory()
    mem.load_image(program.image)
    cpu = Cpu(Isa(), mem)
    sim = Simulator()
    transmitted = []
    stores = {"uart": {}, "timer": {}, "gpio": {}}

    def model_for(name):
        def model(offset, value, is_write):
            if is_write:
                if name == "uart" and offset == 0:
                    transmitted.append(value)
                stores[name][offset] = value
                return 0
            return stores[name].get(offset, 0)
        return model

    backplane = design.deploy(
        sim, cpu, {name: model_for(name) for name in stores}
    )

    def timer_hw():
        for _ in range(3):
            yield sim.timeout(1500.0)
            backplane.raise_device_irq("timer")

    sim.process(timer_hw(), name="timer_hw")
    sim.run(until=1e7)
    timer_bit = design.glue.irq_lines.index("timer")
    ticks = cpu.memory.ram.get(
        design.driver.irq_counter_base + timer_bit, 0
    )
    return design, cpu, transmitted, ticks


def test_fig4_embedded_system(benchmark):
    design, cpu, transmitted, ticks = benchmark(run_embedded_system)

    assert cpu.halted, "application must terminate"
    assert transmitted == [0x48, 0x49], "UART must see 'H','I'"
    assert ticks == 3, "every timer interrupt must be serviced"
    assert design.glue_area > 0
    # the synthesized pieces agree on addresses by construction:
    # reading the regmap symbol the driver used hits the right device
    addr = design.regmap.address_of("uart", "data")
    assert design.glue.decode(addr) == ("uart", 0)

    benchmark.extra_info["glue_area_gates"] = design.glue_area
    benchmark.extra_info["instructions_executed"] = cpu.instr_count
    benchmark.extra_info["irqs_serviced"] = ticks
