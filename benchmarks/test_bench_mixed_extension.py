"""Extension — beyond the paper: the Mixed Type I/Type II system.

Paper: "it is conceivable that a hardware/software system could
represent a mixture of Type I and Type II hardware/software boundaries,
but to our knowledge, no published work has addressed this situation."
(Section 2.)

Measured: such a system built and run end to end — interface-
synthesized Type I side (CPU + glue + generated drivers) and an
HLS-synthesized Type II co-processor peer — classified as Mixed by the
taxonomy, with the offloaded computation's result crossing both
boundary kinds and matching the golden reference.
"""

from repro.core.mixed import build_and_run_mixed_system
from repro.core.taxonomy import SystemType


def test_mixed_type_system(benchmark):
    result = benchmark(build_and_run_mixed_system)

    assert result.classification.system_type is SystemType.MIXED
    assert result.functionally_correct
    assert result.uart_bytes == [result.reference["y"]]
    assert result.simulated_ns >= result.hls.latency_ns

    benchmark.extra_info["glue_gates"] = result.interface.glue_area
    benchmark.extra_info["coprocessor_gates"] = result.hls.area
    benchmark.extra_info["simulated_ns"] = result.simulated_ns
    benchmark.extra_info["instructions"] = result.instructions
