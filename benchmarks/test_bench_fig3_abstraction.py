"""E3 (+E12) — Figure 3: the interface-abstraction ladder.

Paper claims:

* pin-level modeling "is most accurate for evaluating performance, but
  is computationally expensive";
* OS-level (send/receive/wait) modeling "is very efficient
  computationally, but may not be useful for evaluating performance";
* (E12) functional verification works at *every* level — the purpose
  determines the level, not correctness.

Measured, with the same software and device logic mounted at four
levels: wall-clock simulation cost per level (the pytest benchmarks),
kernel activations (the machine-independent cost metric), and the
timing-estimate error of each level against the pin-level reference.
"""

import pytest

from repro.cosim.backplane import (
    Backplane,
    MessageAdapter,
    PinLevelAdapter,
    RegisterAdapter,
    TransactionAdapter,
)
from repro.cosim.bus import SystemBus
from repro.cosim.kernel import Simulator
from repro.cosim.msglevel import Channel
from repro.cosim.pinlevel import (
    PinBus,
    PinBusMaster,
    PinBusSlave,
    run_until_complete,
)
from repro.cosim.signals import Clock
from repro.cosim.translevel import RegisterDevice
from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa

N_WORDS = 16

PROGRAM = f"""
        addi r4, r0, 0
        addi r5, r0, {N_WORDS}
    loop:
        add  r6, r4, r4
        addi r6, r6, 3          ; value = 2*i + 3
        sw   r6, 0x800(r0)      ; to the device
        lw   r7, 0x800(r0)      ; back from the device
        sw   r7, 0x400(r4)      ; stash for checking
        addi r4, r4, 1
        bne  r4, r5, loop
        halt
"""

EXPECTED = [2 * i + 3 for i in range(N_WORDS)]


def run_level(level: str):
    sim = Simulator()
    isa = Isa()
    prog = assemble(PROGRAM, isa)
    mem = Memory()
    mem.load_image(prog.image)
    cpu = Cpu(isa, mem)
    bp = Backplane(sim, cpu, clock_period=10.0)

    last = {"value": 0}

    def device(offset, value, is_write):
        if is_write:
            last["value"] = value
            return 0
        return last["value"]

    if level == "pin":
        clk = Clock(sim, period=10.0)
        bus = PinBus(sim, clk)
        PinBusSlave(bus, "dev", 0x800, 4, device)
        adapter = PinLevelAdapter(PinBusMaster(bus), base=0x800)
    elif level == "transaction":
        bus = SystemBus(sim, arbitration_time=5.0, setup_time=10.0,
                        word_time=10.0)
        bus.attach_slave("dev", 0x800, 4, device)
        adapter = TransactionAdapter(bus, base=0x800)
    elif level == "register":
        dev = RegisterDevice(sim, "dev", 4, access_time=10.0)
        dev.on_write = lambda i, v: device(i, v, True) and None
        dev.on_read = lambda i: device(i, 0, False)
        adapter = RegisterAdapter(dev)
    elif level == "message":
        to_hw = Channel(sim, "to_hw")
        from_hw = Channel(sim, "from_hw")

        def echo():
            while True:
                item = yield from to_hw.receive()
                yield from from_hw.send(item)

        sim.process(echo(), name="echo_hw")
        adapter = MessageAdapter(to_hw=to_hw, from_hw=from_hw)
    else:
        raise ValueError(level)

    bp.mount(0x800, 4, adapter)
    proc = bp.start()
    run_until_complete(sim, [proc], limit=1e8)
    result = [cpu.memory.ram.get(0x400 + i, 0) for i in range(N_WORDS)]
    return {
        "result": result,
        "time_ns": sim.now,
        "stall_ns": bp.stall_time,
        "activations": sim.activations,
    }


LEVELS = ["pin", "transaction", "register", "message"]


@pytest.fixture(scope="module")
def ladder():
    return {level: run_level(level) for level in LEVELS}


@pytest.mark.parametrize("level", LEVELS)
def test_fig3_cost_of_level(benchmark, level, ladder):
    """Wall-clock simulation cost of one interface level."""
    stats = benchmark(run_level, level)
    assert stats["result"] == EXPECTED  # E12: functionally correct
    benchmark.extra_info["model_time_ns"] = stats["time_ns"]
    benchmark.extra_info["activations"] = stats["activations"]


def test_fig3_ladder_shape(benchmark, ladder):
    """The cross-level claims, asserted on the collected ladder."""
    stats = benchmark(lambda: ladder)

    # E12: identical functional outcome at every level
    for level in LEVELS:
        assert stats[level]["result"] == EXPECTED, level

    # cost ladder: pin-level costs the most kernel activations,
    # message-level the fewest interface-related stalls
    act = {level: stats[level]["activations"] for level in LEVELS}
    assert act["pin"] > act["transaction"] > act["message"]
    assert act["pin"] > 2 * act["register"]
    # (register- and message-level counts are close: both are already
    # one-event-per-access models; the big cliff is leaving pin level)

    # accuracy ladder: timing error vs the pin-level reference grows
    # as the interface abstracts away bus behavior
    reference = stats["pin"]["time_ns"]
    err = {
        level: abs(stats[level]["time_ns"] - reference) / reference
        for level in LEVELS
    }
    assert err["transaction"] < err["message"]
    assert err["register"] < err["message"]
    assert err["message"] > 0.3  # "may not be useful for ... performance"

    benchmark.extra_info["activations"] = act
    benchmark.extra_info["timing_error_vs_pin"] = {
        k: round(v, 3) for k, v in err.items()
    }
