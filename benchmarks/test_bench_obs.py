"""E17 — Observability overhead: disabled vs enabled instrumentation.

The observability layer promises the kernel tracer's zero-cost
discipline across the whole stack: every hot-path hook is guarded by a
single ``if probe is not None`` / ``if span_tracer is not None``, so a
sweep that attaches nothing must run at raw-computation speed.  This
benchmark times the same 12-cell grid three ways and records the
statistics in ``BENCH_obs.json``:

* **reference** — a bare ``run_cell`` loop, no engine bookkeeping and
  no observability arguments at all;
* **disabled** — ``run_sweep`` with no tracer, probe, or metrics
  attached (the guards are evaluated and always skip);
* **enabled** — ``run_sweep`` with a :class:`SpanTracer`, a
  :class:`ProgressProbe` wired to the span tracer's event stream, and
  a :class:`MetricsRegistry` all attached.

Methodology — the overhead under test is a few percent at most, the
same order as scheduler noise, so naive A-then-B timing regularly
produces *negative* overhead (B's run landed in a quieter slice of the
machine than A's).  Instead the three variants run **interleaved**,
A/B/C within each of :data:`ROUNDS` rounds, so slow drift (thermal,
cron, page cache) hits all three alike; the per-round overhead is a
paired measurement; and the reported number is the **median** across
rounds with a nonparametric sign-test confidence interval from the
order statistics.  Asserted: the median disabled overhead stays under
3%.  The enabled overhead is *recorded* honestly but not bounded:
paying for telemetry when you ask for it is fine; paying when you
didn't is not.
"""

import json
import time
from pathlib import Path

from repro.cosim.metrics import MetricsRegistry
from repro.obs import ProgressProbe, SpanTracer, convergence_sink
from repro.sweep import expand_grid, run_cell, run_sweep

GRID = dict(
    generators=["layered", "pipeline"],
    n_tasks=[12],
    heuristics=["greedy", "kl", "annealing", "vulcan", "cosyma", "gclp"],
    seeds=range(1),
)

#: Interleaved A/B/C rounds.  With 9 paired samples the (2nd, 8th)
#: order statistics bound the median at ~96% confidence
#: (sign test: 2 * P[Binomial(9, 1/2) <= 1] ≈ 0.039).
ROUNDS = 9

RESULT_FILE = Path(__file__).parent / "BENCH_obs.json"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _median(samples):
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _sign_test_ci(samples):
    """(low, high) bounding the median via the 2nd-smallest and
    2nd-largest order statistics — distribution-free, ~96% at n=9."""
    ordered = sorted(samples)
    return ordered[1], ordered[-2]


def test_disabled_observability_is_free(benchmark):
    configs = expand_grid(**GRID)
    assert len(configs) == 12

    def reference():
        return [run_cell(c) for c in configs]

    def disabled():
        return run_sweep(configs, workers=1)

    def enabled():
        spans = SpanTracer()
        probe = ProgressProbe(sink=convergence_sink(spans))
        metrics = MetricsRegistry()
        table = run_sweep(configs, workers=1, span_tracer=spans,
                          probe=probe, metrics=metrics)
        return table, spans, probe, metrics

    def measure():
        """ROUNDS interleaved A/B/C rounds of paired timings."""
        rounds = []
        last = None
        for _ in range(ROUNDS):
            rows, ref_s = _timed(reference)
            disabled_table, dis_s = _timed(disabled)
            enabled_out, en_s = _timed(enabled)
            rounds.append((ref_s, dis_s, en_s))
            last = (rows, disabled_table, enabled_out)
        return rounds, last

    reference()  # warm imports, generators, cost tables
    disabled()
    rounds, last = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows, disabled_table, enabled_out = last
    table, spans, probe, metrics = enabled_out

    # the timed runs computed the same cells
    assert [dict(r) for r in disabled_table] == rows
    assert table.to_json() == disabled_table.to_json()

    # the enabled run really collected telemetry
    assert len(spans.spans_named("cell")) == len(configs)
    assert len(probe) > len(configs)
    counters = metrics.snapshot()["counters"]
    assert counters["sweep.worker.cells"] == len(configs)

    # paired per-round overheads: drift hits all three variants alike
    disabled_overheads = [(d - r) / r for r, d, _ in rounds]
    enabled_overheads = [(e - r) / r for r, _, e in rounds]
    disabled_overhead = _median(disabled_overheads)
    enabled_overhead = _median(enabled_overheads)
    dis_ci = _sign_test_ci(disabled_overheads)
    en_ci = _sign_test_ci(enabled_overheads)

    assert disabled_overhead < 0.03, (
        f"disabled-observability sweep is {disabled_overhead:.1%} over "
        f"the bare run_cell loop at the median of {ROUNDS} interleaved "
        f"rounds (budget: 3%; ~96% CI "
        f"[{dis_ci[0]:.1%}, {dis_ci[1]:.1%}])"
    )

    record = {
        "cells": len(configs),
        "rounds": ROUNDS,
        "reference_s": round(_median([r for r, _, _ in rounds]), 4),
        "disabled_s": round(_median([d for _, d, _ in rounds]), 4),
        "enabled_s": round(_median([e for _, _, e in rounds]), 4),
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "disabled_overhead_ci96": [round(x, 4) for x in dis_ci],
        "enabled_overhead_ci96": [round(x, 4) for x in en_ci],
        "spans": len(spans.finished),
        "probe_records": len(probe),
    }
    RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info.update(record)
