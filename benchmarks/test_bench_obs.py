"""E17 — Observability overhead: disabled vs enabled instrumentation.

The observability layer promises the kernel tracer's zero-cost
discipline across the whole stack: every hot-path hook is guarded by a
single ``if probe is not None`` / ``if span_tracer is not None``, so a
sweep that attaches nothing must run at raw-computation speed.  This
benchmark times the same 24-cell grid three ways and records the
wall-clock for each in ``BENCH_obs.json``:

* **reference** — a bare ``run_cell`` loop, no engine bookkeeping and
  no observability arguments at all;
* **disabled** — ``run_sweep`` with no tracer, probe, or metrics
  attached (the guards are evaluated and always skip);
* **enabled** — ``run_sweep`` with a :class:`SpanTracer`, a
  :class:`ProgressProbe` wired to the span tracer's event stream, and
  a :class:`MetricsRegistry` all attached.

Asserted: the disabled sweep stays within 3% of the reference loop
(min-of-repeats on both sides to suppress scheduler noise), and the
enabled sweep actually collected a full record (spans, convergence
records, counters — otherwise we timed the wrong thing).  The enabled
overhead is *recorded* honestly but not bounded: paying for telemetry
when you ask for it is fine; paying when you didn't is not.
"""

import json
import time
from pathlib import Path

from repro.cosim.metrics import MetricsRegistry
from repro.obs import ProgressProbe, SpanTracer, convergence_sink
from repro.sweep import expand_grid, run_cell, run_sweep

GRID = dict(
    generators=["layered", "pipeline"],
    n_tasks=[12],
    heuristics=["greedy", "kl", "annealing", "vulcan", "cosyma", "gclp"],
    seeds=range(2),
)

REPEATS = 3

RESULT_FILE = Path(__file__).parent / "BENCH_obs.json"


def _best_of(repeats, fn):
    """Min-of-N wall clock: the repeatable cost, with scheduler noise
    stripped rather than averaged in."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_disabled_observability_is_free(benchmark):
    configs = expand_grid(**GRID)
    assert len(configs) == 24

    def reference():
        return [run_cell(c) for c in configs]

    def disabled():
        return run_sweep(configs, workers=1)

    def enabled():
        spans = SpanTracer()
        probe = ProgressProbe(sink=convergence_sink(spans))
        metrics = MetricsRegistry()
        table = run_sweep(configs, workers=1, span_tracer=spans,
                          probe=probe, metrics=metrics)
        return table, spans, probe, metrics

    reference()  # warm imports, generators, cost tables
    rows, ref_s = _best_of(REPEATS, reference)
    disabled_table, disabled_s = benchmark.pedantic(
        lambda: _best_of(REPEATS, disabled), rounds=1, iterations=1
    )
    enabled_out, enabled_s = _best_of(REPEATS, enabled)
    table, spans, probe, metrics = enabled_out

    # the timed runs computed the same cells
    assert [dict(r) for r in disabled_table] == rows
    assert table.to_json() == disabled_table.to_json()

    # the enabled run really collected telemetry
    assert len(spans.spans_named("cell")) == len(configs)
    assert len(probe) > len(configs)
    counters = metrics.snapshot()["counters"]
    assert counters["sweep.worker.cells"] == len(configs)

    disabled_overhead = (disabled_s - ref_s) / ref_s
    enabled_overhead = (enabled_s - ref_s) / ref_s
    assert disabled_overhead < 0.03, (
        f"disabled-observability sweep is {disabled_overhead:.1%} over "
        f"the bare run_cell loop (budget: 3%)"
    )

    record = {
        "cells": len(configs),
        "repeats": REPEATS,
        "reference_s": round(ref_s, 4),
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "spans": len(spans.finished),
        "probe_records": len(probe),
    }
    RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info.update(record)
