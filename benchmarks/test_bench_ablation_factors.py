"""E11 — Section 3.3 ablations: each partitioning factor matters.

Paper claim: "Many factors may influence the hardware/software
partitioning problem" — performance, cost, modifiability, nature of
computation, concurrency, communication.  The paper lists them because
ignoring one produces worse designs on workloads where it binds.

Measured: for each factor, a workload engineered to stress it; a
partitioner using the full six-factor cost is compared to one with that
single factor ablated, both *judged by the full cost and by the real
evaluation*.  The aware partitioner is never worse, and on the stressed
workload the ablation visibly changes the design.
"""

import random

import pytest

from repro.estimate.communication import LOOSE, TIGHT
from repro.graph.generators import (
    communication_skewed_graph,
    parallelism_skewed_graph,
)
from repro.graph.kernels import jpeg_encoder_taskgraph, modem_taskgraph
from repro.partition.cost import CostWeights, partition_cost
from repro.partition.kl import kernighan_lin
from repro.partition.problem import PartitionProblem


def run_ablation(problem, factor, weights=CostWeights()):
    """(aware result, blind result, blind-judged-by-full-cost)."""
    aware = kernighan_lin(problem, weights=weights)
    blind = kernighan_lin(problem, weights=weights.ablate(factor))
    blind_full_cost, _b, _e = partition_cost(
        problem, blind.hw_tasks, weights
    )
    return aware, blind, blind_full_cost


def _modifiability_graph():
    """Half the tasks are likely to change (and slightly more attractive
    to hardware on raw speedup); an area budget forces a choice."""
    from repro.graph.taskgraph import Task, TaskGraph

    g = TaskGraph("modifiable")
    for i in range(4):
        g.add_task(Task(f"volatile{i}", sw_time=20.0, hw_time=2.0,
                        hw_area=80.0, modifiability=0.9))
        g.add_task(Task(f"frozen{i}", sw_time=18.0, hw_time=3.0,
                        hw_area=80.0, modifiability=0.0))
    return g


#: factor -> (problem factory, weights to stress the factor)
FACTOR_WORKLOADS = {
    "communication": lambda: (PartitionProblem(
        communication_skewed_graph(random.Random(7), n_tasks=12,
                                   hot_pairs=3, hot_volume=150.0),
        comm=LOOSE, hw_area_budget=450.0, hw_parallelism=None,
    ), CostWeights()),
    "nature": lambda: (PartitionProblem(
        parallelism_skewed_graph(random.Random(9), n_tasks=12,
                                 n_parallel=3),
        comm=TIGHT, hw_area_budget=300.0, hw_parallelism=None,
    ), CostWeights(nature=2.0)),
    "modifiability": lambda: (PartitionProblem(
        _modifiability_graph(), comm=TIGHT, hw_area_budget=320.0,
        hw_parallelism=None,
    ), CostWeights()),
    "implementation_cost": lambda: (PartitionProblem(
        jpeg_encoder_taskgraph(), comm=TIGHT, hw_area_budget=250.0,
        hw_parallelism=None,
    ), CostWeights()),
    "performance": lambda: (PartitionProblem(
        jpeg_encoder_taskgraph(), comm=TIGHT, deadline_ns=90.0,
        hw_parallelism=None,
    ), CostWeights()),
    "concurrency": lambda: (PartitionProblem(
        modem_taskgraph(), comm=TIGHT, hw_parallelism=2,
    ), CostWeights()),
}


@pytest.mark.parametrize("factor", sorted(FACTOR_WORKLOADS))
def test_ablate_factor(benchmark, factor):
    problem, weights = FACTOR_WORKLOADS[factor]()
    aware, blind, blind_full_cost = benchmark(
        run_ablation, problem, factor, weights
    )
    # optimizing the full objective is never worse under that objective
    assert aware.cost <= blind_full_cost + 1e-6, factor
    benchmark.extra_info["aware_cost"] = round(aware.cost, 2)
    benchmark.extra_info["blind_full_cost"] = round(blind_full_cost, 2)
    benchmark.extra_info["aware_hw"] = sorted(aware.hw_tasks)
    benchmark.extra_info["blind_hw"] = sorted(blind.hw_tasks)


def test_ablation_changes_designs(benchmark):
    """At least most ablations must actually change the chosen design
    on their stressed workload — the factors are not decorative."""

    def count_changes():
        changed = 0
        details = {}
        for factor, make in sorted(FACTOR_WORKLOADS.items()):
            problem, weights = make()
            aware, blind, _cost = run_ablation(problem, factor, weights)
            differs = aware.hw_tasks != blind.hw_tasks
            changed += differs
            details[factor] = differs
        return changed, details

    changed, details = benchmark(count_changes)
    assert changed >= 4, f"too few ablations changed the design: {details}"
    benchmark.extra_info["design_changed_by_factor"] = details


def test_communication_factor_saves_real_latency(benchmark):
    """The sharpest single claim of Section 3.3: on a communication-
    heavy workload over a slow interface, the communication-aware
    partition localizes traffic and wins on *evaluated* latency+comm."""
    problem, weights = FACTOR_WORKLOADS["communication"]()
    aware, blind, _cost = benchmark(
        run_ablation, problem, "communication", weights
    )
    aware_key = (aware.evaluation.comm_ns, aware.evaluation.latency_ns)
    blind_key = (blind.evaluation.comm_ns, blind.evaluation.latency_ns)
    assert aware_key <= blind_key
    benchmark.extra_info["aware_comm_ns"] = aware.evaluation.comm_ns
    benchmark.extra_info["blind_comm_ns"] = blind.evaluation.comm_ns
