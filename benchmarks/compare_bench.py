#!/usr/bin/env python3
"""Regression gate over the committed BENCH_*.json records.

Compares a baseline directory of benchmark records (typically the
committed ones) against a freshly generated set and fails (exit 1) on
any regression beyond tolerance.  Only machine-portable metrics are
compared — ratios, overhead fractions, and exact model results — never
raw wall-clock numbers, so the gate is meaningful when the baseline
was recorded on different hardware.  Hardware-dependent metrics carry
a ``min_cpus`` gate (like BENCH_sweep's parallel speedup, which is
meaningless on the 1-CPU boxes that recorded some baselines).

Usage:
    python benchmarks/compare_bench.py \\
        --baseline /tmp/bench_baseline --current benchmarks \\
        [--tolerance 0.2]
"""

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional


@dataclass(frozen=True)
class Metric:
    """One comparable metric of a benchmark record.

    ``sense`` is how to read the number: ``higher`` (speedups — fail
    when the current value drops more than tolerance below baseline),
    ``lower`` (fractions of a reference — fail when it grows more than
    tolerance above), ``abs`` (overheads near zero, where relative
    comparison is noise — fail when the absolute drift exceeds
    ``tol``), ``floor`` (speedup ratios whose run-to-run variance
    exceeds any sane relative band — fail only when the current value
    drops below the absolute floor ``tol``), or ``exact`` (model
    results that must never move).
    """

    key: str
    sense: str
    tol: float = 0.0       # absolute drift budget / floor value
    min_cpus: int = 0      # skip unless both machines had this many


METRICS = {
    "BENCH_isa.json": [
        # ratio noise between runs exceeds 20%, so these gate on the
        # acceptance floors rather than the recorded baseline
        Metric("decode_speedup", "floor", tol=1.5),
        Metric("speedup_vs_baseline", "floor", tol=2.0),
        Metric("speedup_vs_step", "floor", tol=1.5),
        Metric("fig3_activations", "exact"),
        Metric("e18_histogram", "exact"),
    ],
    "BENCH_translate.json": [
        # translated tier vs run_block: run-to-run ratio noise exceeds
        # a relative band, so gate on the acceptance floor — and the
        # E18 histogram under translation must never move
        Metric("speedup_vs_block", "floor", tol=2.0),
        Metric("e18_histogram", "exact"),
    ],
    "BENCH_batch.json": [
        # batch tier vs translated-scalar campaign: measured ≥5x, but
        # run-to-run ratio noise on loaded CI boxes exceeds a relative
        # band — gate on a 2x absolute floor, and the two dependability
        # histograms (E24 batch workload, E18 kernel-bound no-op path)
        # must never move
        Metric("speedup_vs_scalar", "floor", tol=2.0),
        Metric("e24_histogram", "exact"),
        Metric("e18_histogram", "exact"),
    ],
    "BENCH_sweep.json": [
        Metric("warm_fraction", "lower"),
        Metric("speedup_parallel4", "higher", min_cpus=4),
        # run-to-run ratio variance exceeds a relative band; gate the
        # campaign path on its acceptance floor instead
        Metric("speedup_campaign4", "floor", tol=2.0, min_cpus=4),
    ],
    "BENCH_obs.json": [
        Metric("disabled_overhead", "abs", tol=0.05),
        Metric("enabled_overhead", "abs", tol=0.05),
    ],
    "BENCH_telemetry.json": [
        Metric("disabled_overhead", "abs", tol=0.05),
        Metric("enabled_overhead", "abs", tol=0.05),
    ],
    "BENCH_fault.json": [
        Metric("idle_injector_overhead", "abs", tol=0.05),
        Metric("histogram", "exact"),
    ],
    "BENCH_explore.json": [
        # the explorer is model-deterministic: warm runs always serve
        # every genome from cache, and the archive-dedup savings are a
        # ratio of deterministic integer counters
        Metric("cache_hit_ratio", "exact"),
        Metric("evaluation_savings", "exact"),
        # GA vs random at equal budget: gate the aggregate ratio on
        # its acceptance floor (per-seed ratios are bimodal)
        Metric("hv_ratio", "floor", tol=1.0),
        Metric("speedup_explore4", "floor", tol=2.0, min_cpus=4),
    ],
}


def record_cpus(record: dict) -> int:
    """CPU count the record was measured on (recorded, else this box)."""
    return int(record.get("cpus") or os.cpu_count() or 1)


def compare_metric(
    metric: Metric, base: dict, cur: dict, tolerance: float
) -> Optional[str]:
    """Returns a failure message, or None when the metric passes."""
    if metric.key not in base or metric.key not in cur:
        return None  # metric not in both records: nothing to compare
    b, c = base[metric.key], cur[metric.key]
    if metric.min_cpus and (record_cpus(base) < metric.min_cpus
                            or record_cpus(cur) < metric.min_cpus):
        return None
    if metric.sense == "exact":
        if b != c:
            return f"{metric.key}: {b!r} -> {c!r} (must be identical)"
    elif metric.sense == "abs":
        if abs(c - b) > metric.tol:
            return (f"{metric.key}: {b} -> {c} "
                    f"(drift {abs(c - b):.3f} > {metric.tol})")
    elif metric.sense == "floor":
        if c < metric.tol:
            return (f"{metric.key}: {c} below floor {metric.tol} "
                    f"(baseline {b})")
    elif metric.sense == "higher":
        if c < b / (1.0 + tolerance):
            return (f"{metric.key}: {b} -> {c} "
                    f"(> {tolerance:.0%} regression)")
    elif metric.sense == "lower":
        if c > b * (1.0 + tolerance):
            return (f"{metric.key}: {b} -> {c} "
                    f"(> {tolerance:.0%} regression)")
    else:  # pragma: no cover - registry is static
        raise ValueError(f"unknown sense {metric.sense!r}")
    return None


def compare_dirs(baseline: Path, current: Path, tolerance: float):
    """Returns (failures, skipped, compared) message lists."""
    failures, skipped, compared = [], [], []
    for name, metrics in sorted(METRICS.items()):
        base_file, cur_file = baseline / name, current / name
        if not base_file.exists() or not cur_file.exists():
            missing = base_file if not base_file.exists() else cur_file
            skipped.append(f"{name}: missing {missing}")
            continue
        base = json.loads(base_file.read_text())
        cur = json.loads(cur_file.read_text())
        for metric in metrics:
            problem = compare_metric(metric, base, cur, tolerance)
            if problem is not None:
                failures.append(f"{name}: {problem}")
            elif metric.key in base and metric.key in cur:
                compared.append(
                    f"{name}: {metric.key} "
                    f"{base[metric.key]} -> {cur[metric.key]} ok")
            else:
                skipped.append(f"{name}: {metric.key} absent")
    return failures, skipped, compared


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >tolerance regressions between BENCH runs")
    parser.add_argument("--baseline", required=True, type=Path,
                        help="directory holding the baseline BENCH_*.json")
    parser.add_argument("--current", required=True, type=Path,
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="relative regression budget (default 0.20)")
    args = parser.parse_args(argv)

    failures, skipped, compared = compare_dirs(
        args.baseline, args.current, args.tolerance)
    for line in compared:
        print(f"  ok    {line}")
    for line in skipped:
        print(f"  skip  {line}")
    for line in failures:
        print(f"  FAIL  {line}", file=sys.stderr)
    print(f"{len(compared)} compared, {len(skipped)} skipped, "
          f"{len(failures)} regressions")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
