"""E7 — Figure 7: special-purpose functional units, statically and
reconfigured on the fly.

Paper claims (Section 4.4): adding special-purpose FUs to a processor
speeds up the application; and with field-programmable hardware "the
hardware/software partition need not be static and could be adapted on
the fly to suit a wide variety of circumstances" [15].

Measured, on a two-phase workload (filter phase, then CRC phase) with a
fabric too small for both phases' best FU sets at once:

* per-phase FU sets always compute at least as fast as the best static
  compromise of equal area;
* whether reconfiguration *wins overall* depends on amortization:
  with few iterations per phase the reconfiguration cost dominates,
  with many it vanishes — the crossover the figure's discussion implies.
"""

import pytest

from repro.asip.metamorphosis import best_static_plan, plan_metamorphosis
from repro.graph import kernels

COEFFS = [3, -5, 7, 2, 9, -1, 4, 6]
FABRIC = 250.0
RECONFIG = 100_000


def phases():
    return {
        "filter": {"fir": (kernels.fir(8, coefficients=COEFFS), 8.0)},
        "check": {"crc": (kernels.crc_step(), 8.0)},
    }


def run_comparison(iterations):
    morph = plan_metamorphosis(
        phases(), FABRIC, reconfig_cycles=RECONFIG,
        iterations_per_phase=iterations,
    )
    static = best_static_plan(
        phases(), FABRIC, iterations_per_phase=iterations
    )
    return morph, static


def test_fig7_reconfigurable_fus(benchmark):
    results = benchmark(
        lambda: {n: run_comparison(n) for n in (1, 10_000)}
    )
    short_morph, short_static = results[1]
    long_morph, long_static = results[10_000]

    # adapting always wins on pure compute (ignoring reconfig cost)
    assert short_morph.compute_cycles <= short_static.compute_cycles
    assert long_morph.compute_cycles <= long_static.compute_cycles

    # the crossover: reconfig overhead dominates short phases...
    assert short_morph.total_cycles > short_static.total_cycles
    # ...and amortizes away over long phases
    assert long_morph.total_cycles < long_static.total_cycles

    # the phase-specialized instruction sets genuinely differ
    sets = [frozenset(p.instructions) for p in long_morph.phases]
    assert len(set(sets)) > 1, "phases chose identical FU sets"

    benchmark.extra_info["crossover"] = {
        "short": {"morph": short_morph.total_cycles,
                  "static": short_static.total_cycles},
        "long": {"morph": long_morph.total_cycles,
                 "static": long_static.total_cycles},
    }
