"""Design-choice ablation: schedule-based partition evaluation.

DESIGN.md commits to evaluating partitions "by an actual list schedule
(with communication edges) rather than summed WCETs, so concurrency and
communication factors have real effects".  This bench quantifies that
choice: a naive additive evaluator (serial sum of each side plus cut
cost) is compared against the schedule-based one, and a partitioner
steered by each is judged by the real schedule.

Expected shape: the additive evaluator cannot see hardware/software
overlap, so it overestimates latency on concurrent workloads (by the
full overlap amount) and steers the partitioner to designs that are
never better — and, on overlap-rich workloads, strictly worse.
"""

import random

import pytest

from repro.estimate.communication import TIGHT
from repro.graph.generators import fork_join_graph
from repro.graph.kernels import modem_taskgraph
from repro.partition.evaluate import evaluate_partition, hardware_area
from repro.partition.problem import PartitionProblem


def naive_latency(problem, hw_tasks):
    """The additive evaluator: no overlap, flat comm charge."""
    graph = problem.graph
    hw = set(hw_tasks)
    sw_time = sum(
        graph.task(n).sw_time for n in graph.task_names if n not in hw
    )
    hw_time = sum(graph.task(n).hw_time for n in hw)
    comm = problem.comm.cut_cost(graph, hw)
    return sw_time + hw_time + comm


def greedy_by(problem, latency_fn):
    """Greedy migration steered by an arbitrary latency estimator."""
    names = problem.graph.task_names
    hw = frozenset()
    current = latency_fn(problem, hw)
    improved = True
    while improved:
        improved = False
        for name in names:
            candidate = hw - {name} if name in hw else hw | {name}
            if (problem.hw_area_budget is not None
                    and hardware_area(problem, candidate)
                    > problem.hw_area_budget):
                continue
            estimate = latency_fn(problem, candidate)
            if estimate < current - 1e-9:
                hw, current = candidate, estimate
                improved = True
    return hw


def schedule_latency(problem, hw):
    return evaluate_partition(problem, hw).latency_ns


@pytest.mark.parametrize("workload", ["forkjoin", "modem"])
def test_schedule_vs_additive_evaluation(benchmark, workload):
    if workload == "forkjoin":
        graph = fork_join_graph(random.Random(3), n_branches=4,
                                branch_len=2)
    else:
        graph = modem_taskgraph()
    problem = PartitionProblem(graph, comm=TIGHT, hw_parallelism=2,
                               hw_area_budget=graph.total_area() * 0.6)

    def run_both():
        by_schedule = greedy_by(problem, schedule_latency)
        by_additive = greedy_by(problem, naive_latency)
        return by_schedule, by_additive

    by_schedule, by_additive = benchmark(run_both)
    real_sched = evaluate_partition(problem, by_schedule)
    real_add = evaluate_partition(problem, by_additive)

    # steering by the real schedule is never worse under the real metric
    assert real_sched.latency_ns <= real_add.latency_ns + 1e-9

    # and the additive estimator is *blind to overlap*: on any partition
    # with concurrency it overestimates by exactly the hidden overlap
    probe = by_schedule or frozenset(graph.task_names[:2])
    estimate = naive_latency(problem, probe)
    actual = evaluate_partition(problem, probe).latency_ns
    assert estimate >= actual - 1e-9

    benchmark.extra_info["latency_by_schedule"] = real_sched.latency_ns
    benchmark.extra_info["latency_by_additive"] = real_add.latency_ns
    benchmark.extra_info["overestimate_on_probe"] = estimate - actual


def test_additive_blindness_is_material(benchmark):
    """On the overlap-rich fork-join workload, the additive estimator's
    error is not a rounding artifact — it misjudges latency by a large
    factor on the fully-parallel partition."""
    graph = fork_join_graph(random.Random(3), n_branches=4, branch_len=2)
    problem = PartitionProblem(graph, comm=TIGHT, hw_parallelism=None)
    hw = frozenset(graph.task_names)

    def measure():
        return (naive_latency(problem, hw),
                evaluate_partition(problem, hw).latency_ns)

    estimate, actual = benchmark(measure)
    assert estimate > 2.0 * actual, (
        "additive evaluation should grossly overestimate a fully "
        f"parallel hardware partition ({estimate:.0f} vs {actual:.0f})"
    )
    benchmark.extra_info["additive_ns"] = estimate
    benchmark.extra_info["schedule_ns"] = actual
