"""E19 — Fast-path execution engine: decode cache + run_block throughput.

The paper's host-time costs (E16 sweeps, E18 campaigns, every Fig 4–9
bench) are dominated by two interpreted hot loops; this benchmark
prices the fast paths that attack them and pins the *accuracy* side of
the bargain:

* **decode cache** — ``Isa.decode`` (memoized) vs ``decode_uncached``
  (the reference path) over a program's word stream;
* **trace-cache executor** — ``Cpu.run_block()`` vs a ``step()`` loop,
  and vs the pre-PR decode-every-step baseline, on a straight-line
  arithmetic kernel.  The acceptance bar is ≥2× instructions/s over
  the decode-every-step baseline;
* **no accuracy regression** — the Figure 3 abstraction-ladder
  activation counts and the E18 dependability histogram (200 faults,
  seed 7) must be byte-identical to their pre-fast-path values: the
  fast paths may only move host time, never model results.

Measured numbers land in ``BENCH_isa.json``.  Runnable standalone for
CI: ``PYTHONPATH=src python benchmarks/test_bench_isa.py --smoke``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.fault import SCENARIOS, run_campaign, sample_faults
from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa

REPEATS = 3
LIMIT = 10_000          # straight-line loop iterations (full run)
SMOKE_LIMIT = 2_000
DECODE_PASSES = 200     # decode-bench sweeps over the word stream
RESULT_FILE = Path(__file__).parent / "BENCH_isa.json"

# pinned pre-fast-path model results (accuracy regression gates)
FIG3_ACTIVATIONS = {
    "pin": 1036, "transaction": 148, "register": 116, "message": 117,
}
E18_HISTOGRAM = {
    "masked": 96, "sdc": 49, "detected": 6, "hang": 40, "crash": 9,
}
E18_FAULTS = 200
E18_SEED = 7

STRAIGHT_SRC = """
    addi r1, r0, 0        ; acc
    addi r2, r0, 0        ; i
    addi r3, r0, {limit}  ; loop bound
loop:
    add  r1, r1, r2
    xor  r4, r1, r2
    slli r5, r4, 3
    srli r6, r5, 2
    and  r7, r6, r1
    or   r8, r7, r2
    sub  r9, r8, r1
    addi r2, r2, 1
    blt  r2, r3, loop
    halt
"""


class _UncachedIsa(Isa):
    """The pre-PR baseline: every decode pays the full field extraction."""

    def decode(self, word):
        return self.decode_uncached(word)


def _build(limit, isa=None):
    isa = isa if isa is not None else Isa()
    prog = assemble(STRAIGHT_SRC.format(limit=limit), isa)
    mem = Memory()
    mem.load_image(prog.image)
    return Cpu(isa, mem)


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _step_loop(cpu):
    while not cpu.halted:
        cpu.step()
    return cpu.instr_count


def measure(limit=LIMIT, repeats=REPEATS):
    """Time the three executors and the two decode paths."""
    # --- decode: uncached reference vs memo table -------------------
    isa = Isa()
    words = list(_build(limit, isa).memory.ram.values())
    stream = words * DECODE_PASSES

    def decode_uncached():
        fresh = Isa()
        for w in stream:
            fresh.decode_uncached(w)

    def decode_cached():
        fresh = Isa()
        for w in stream:
            fresh.decode(w)

    _, uncached_decode_s = _best_of(repeats, decode_uncached)
    _, cached_decode_s = _best_of(repeats, decode_cached)

    # --- execution: uncached-step baseline, cached step, run_block --
    n_instr, baseline_s = _best_of(
        repeats, lambda: _step_loop(_build(limit, _UncachedIsa())))
    _, step_s = _best_of(repeats, lambda: _step_loop(_build(limit)))
    _, block_s = _best_of(repeats, lambda: _build(limit).run())

    # all three executors retire the identical instruction stream
    for executor in (lambda: _step_loop(_build(limit, _UncachedIsa())),
                     lambda: _step_loop(_build(limit))):
        assert executor() == n_instr
    cpu = _build(limit)
    cpu.run()
    assert cpu.instr_count == n_instr

    return {
        "program_instrs": n_instr,
        "repeats": repeats,
        "decode_words": len(stream),
        "decode_uncached_s": round(uncached_decode_s, 4),
        "decode_cached_s": round(cached_decode_s, 4),
        "decode_speedup": round(uncached_decode_s / cached_decode_s, 2),
        "baseline_ips": round(n_instr / baseline_s),
        "step_ips": round(n_instr / step_s),
        "block_ips": round(n_instr / block_s),
        "speedup_vs_baseline": round(baseline_s / block_s, 2),
        "speedup_vs_step": round(step_s / block_s, 2),
    }


def check_model_identity():
    """The accuracy gates: fast paths may not move any model result."""
    from test_bench_fig3_abstraction import LEVELS, run_level

    activations = {lv: run_level(lv)["activations"] for lv in LEVELS}
    assert activations == FIG3_ACTIVATIONS, (
        f"Fig 3 activation ladder drifted: {activations} != "
        f"{FIG3_ACTIVATIONS}"
    )

    scenario = SCENARIOS["coproc"]
    faults = sample_faults(scenario.targets, E18_FAULTS, seed=E18_SEED)
    hist = run_campaign("coproc", faults, workers=1).histogram()
    assert hist == E18_HISTOGRAM, (
        f"E18 dependability histogram drifted: {hist} != {E18_HISTOGRAM}"
    )
    return activations, hist


def run_bench(limit=LIMIT, repeats=REPEATS, write=True):
    record = measure(limit, repeats)
    activations, hist = check_model_identity()
    record["fig3_activations"] = activations
    record["e18_histogram"] = hist

    assert record["speedup_vs_baseline"] >= 2.0, (
        f"run_block is only {record['speedup_vs_baseline']}x the "
        f"decode-every-step baseline (bar: 2x)"
    )
    assert record["decode_speedup"] >= 1.5, (
        f"decode memoization is only {record['decode_speedup']}x"
    )

    if write:
        RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_fastpath_speedup_and_model_identity(benchmark):
    run_bench(SMOKE_LIMIT, repeats=1, write=False)  # warm all paths
    record = benchmark.pedantic(
        lambda: run_bench(LIMIT, REPEATS), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {k: v for k, v in record.items() if not isinstance(v, dict)})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="ISA fast-path benchmark (BENCH_isa.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workload for CI")
    parser.add_argument("--out", metavar="FILE",
                        help="write the record here instead of "
                             "BENCH_isa.json")
    args = parser.parse_args(argv)

    limit = SMOKE_LIMIT if args.smoke else LIMIT
    repeats = 1 if args.smoke else REPEATS
    record = run_bench(limit, repeats, write=False)
    out = Path(args.out) if args.out else RESULT_FILE
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"straight-line kernel: {record['program_instrs']} instrs")
    print(f"  baseline (decode-every-step): {record['baseline_ips']:>9,} "
          f"instr/s")
    print(f"  step (cached decode):         {record['step_ips']:>9,} "
          f"instr/s")
    print(f"  run_block:                    {record['block_ips']:>9,} "
          f"instr/s  "
          f"({record['speedup_vs_baseline']}x baseline, "
          f"{record['speedup_vs_step']}x step)")
    print(f"decode: {record['decode_speedup']}x cached over uncached")
    print(f"model identity: Fig3 activations + E18 histogram unchanged")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
