"""E23 — Block translation: the third execution tier's throughput.

The translated tier (:mod:`repro.isa.translate`) compiles hot R32
basic blocks into specialized Python closures; this benchmark prices
it against the interpreted ``run_block`` tier on the same
straight-line kernel E19 uses, and pins the accuracy side of the
bargain the same way:

* **throughput** — interleaved A/B rounds (interpreted tier, then
  translated tier, within each round so scheduler drift hits both
  alike), median-of-9 paired speedups with a sign-test ~96%
  confidence interval — the E17/E22 methodology.  The acceptance bar
  is a **≥2× instructions/s floor over ``run_block``** (also enforced
  as an absolute floor in ``compare_bench.py``);
* **no accuracy regression** — the E18 dependability histogram (200
  faults, seed 7, coproc scenario) computed with the translator
  enabled fleet-wide must equal the pinned pre-fast-path values: a
  tier may only move host time, never model results.

Measured numbers land in ``BENCH_translate.json``.  Runnable
standalone for CI: ``PYTHONPATH=src python
benchmarks/test_bench_translate.py --smoke``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.fault import SCENARIOS, run_campaign, sample_faults
from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa
from repro.isa.translate import auto_translation, install

from test_bench_isa import E18_FAULTS, E18_HISTOGRAM, E18_SEED, STRAIGHT_SRC

#: Interleaved A/B rounds; at n=9 the (2nd, 8th) order statistics
#: bound the median at ~96% confidence (see test_bench_obs.py).
ROUNDS = 9
LIMIT = 10_000          # straight-line loop iterations (full run)
SMOKE_LIMIT = 2_000
SPEEDUP_FLOOR = 2.0     # translated tier vs run_block, instr/s
RESULT_FILE = Path(__file__).parent / "BENCH_translate.json"


def _build(limit, translated):
    isa = Isa()
    prog = assemble(STRAIGHT_SRC.format(limit=limit), isa)
    mem = Memory()
    mem.load_image(prog.image)
    cpu = Cpu(isa, mem)
    if translated:
        install(cpu, hot_threshold=1)
    return cpu


def _timed_run(cpu):
    start = time.perf_counter()
    while not cpu.halted:
        cpu.run_block(1 << 30)
    return time.perf_counter() - start


def _median(samples):
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _sign_test_ci(samples):
    ordered = sorted(samples)
    return ordered[1], ordered[-2]


def measure(limit=LIMIT, rounds=ROUNDS):
    """Interleaved A/B rounds: interpreted tier, then translated."""
    # warm both paths (imports, operand cache shapes, codegen)
    _timed_run(_build(limit, False))
    warm = _build(limit, True)
    _timed_run(warm)
    n_instr = warm.instr_count
    assert warm.translator.translations > 0

    pairs = []
    last = None
    for _ in range(rounds):
        block_cpu = _build(limit, False)
        block_s = _timed_run(block_cpu)
        trans_cpu = _build(limit, True)
        trans_s = _timed_run(trans_cpu)
        assert block_cpu.instr_count == trans_cpu.instr_count == n_instr
        assert block_cpu.cycle_count == trans_cpu.cycle_count
        assert block_cpu.regs == trans_cpu.regs
        pairs.append((block_s, trans_s))
        last = trans_cpu

    speedups = [b / t for b, t in pairs]
    speedup = _median(speedups)
    ci = _sign_test_ci(speedups)
    block_s = _median([b for b, _ in pairs])
    trans_s = _median([t for _, t in pairs])
    return {
        "program_instrs": n_instr,
        "rounds": rounds,
        "block_ips": round(n_instr / block_s),
        "translate_ips": round(n_instr / trans_s),
        "speedup_vs_block": round(speedup, 2),
        "speedup_ci96": [round(x, 2) for x in ci],
        "translated_blocks": last.translator.translations,
    }


def check_model_identity():
    """E18 with the translator enabled fleet-wide: pinned histogram."""
    scenario = SCENARIOS["coproc"]
    faults = sample_faults(scenario.targets, E18_FAULTS, seed=E18_SEED)
    with auto_translation(True):
        hist = run_campaign("coproc", faults, workers=1).histogram()
    assert hist == E18_HISTOGRAM, (
        f"E18 dependability histogram drifted under translation: "
        f"{hist} != {E18_HISTOGRAM}"
    )
    return hist


def run_bench(limit=LIMIT, rounds=ROUNDS, write=True):
    record = measure(limit, rounds)
    record["e18_histogram"] = check_model_identity()

    assert record["speedup_vs_block"] >= SPEEDUP_FLOOR, (
        f"translated tier is only {record['speedup_vs_block']}x "
        f"run_block at the median of {rounds} interleaved rounds "
        f"(floor: {SPEEDUP_FLOOR}x; ~96% CI "
        f"[{record['speedup_ci96'][0]}, {record['speedup_ci96'][1]}])"
    )

    if write:
        RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_translate_speedup_and_model_identity(benchmark):
    run_bench(SMOKE_LIMIT, rounds=3, write=False)  # warm all paths
    record = benchmark.pedantic(
        lambda: run_bench(LIMIT, ROUNDS), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {k: v for k, v in record.items() if not isinstance(v, dict)})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="block-translation benchmark (BENCH_translate.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workload for CI")
    parser.add_argument("--out", metavar="FILE",
                        help="write the record here instead of "
                             "BENCH_translate.json")
    args = parser.parse_args(argv)

    limit = SMOKE_LIMIT if args.smoke else LIMIT
    rounds = 5 if args.smoke else ROUNDS
    record = run_bench(limit, rounds, write=False)
    out = Path(args.out) if args.out else RESULT_FILE
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"straight-line kernel: {record['program_instrs']} instrs, "
          f"{record['translated_blocks']} blocks translated")
    print(f"  run_block (interpreted): {record['block_ips']:>10,} instr/s")
    print(f"  translated tier:         {record['translate_ips']:>10,} "
          f"instr/s  ({record['speedup_vs_block']}x, ~96% CI "
          f"[{record['speedup_ci96'][0]}, {record['speedup_ci96'][1]}])")
    print(f"model identity: E18 histogram unchanged under translation")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
