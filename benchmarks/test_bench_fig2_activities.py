"""E2 — Figure 2: design-activity containment and inhabitation.

Paper claim: hardware/software partitioning is performed within
co-synthesis, which (like co-simulation) sits within co-design; and
"examples of system design methodologies can be found that fit into
every subset of this diagram".

Measured: the task-closure rules hold structurally, and the registry of
Section 4 examples inhabits every activity; the demo of each registered
methodology actually runs on this library.
"""

from repro.core.criteria import characterize
from repro.core.examples import paper_registry
from repro.core.taxonomy import DesignTask


def build_and_survey():
    registry = paper_registry()
    return registry, {
        task: registry.inhabitants(task) for task in DesignTask
    }


def test_fig2_activity_nesting(benchmark):
    registry, inhabitants = benchmark(build_and_survey)

    # containment: partitioning -> cosynthesis -> codesign
    assert DesignTask.COSYNTHESIS in DesignTask.PARTITIONING.implies()
    assert DesignTask.CODESIGN in DesignTask.COSYNTHESIS.implies()

    # every methodology that partitions is also a co-synthesis approach
    for c in registry.characterize_all():
        if c.addresses(DesignTask.PARTITIONING):
            assert c.addresses(DesignTask.COSYNTHESIS), c.name

    # every activity subset is inhabited by at least one example
    for task, names in inhabitants.items():
        assert names, f"no methodology addresses {task}"

    # ...and there exist co-synthesis approaches that do NOT partition
    # (Section 4.2's point)
    syn_only = [
        c.name for c in registry.characterize_all()
        if c.addresses(DesignTask.COSYNTHESIS)
        and not c.addresses(DesignTask.PARTITIONING)
    ]
    assert syn_only
    benchmark.extra_info["inhabitants"] = {
        t.name: len(v) for t, v in inhabitants.items()
    }
    benchmark.extra_info["cosynthesis_without_partitioning"] = syn_only
