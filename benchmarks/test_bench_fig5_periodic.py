"""E15 — Figure 5 extension: multi-rate periodic task sets (SOS form).

Paper context (Section 4.2): SOS [12] synthesized heterogeneous
multiprocessors for periodic task systems — each task recurring at its
own rate, feasibility meaning every rate is sustained.

Measured: a three-rate task set is synthesized by utilization-bound
first-fit; the result is validated by list-scheduling one full
*hyperperiod unrolling* (every job instance, cross-rate edges mapped to
release windows); heavier rate demands force costlier allocations.
"""

import pytest

from repro.cosynth.multiproc.periodic import (
    hyperperiod,
    periodic_synthesis,
    unroll_hyperperiod,
)
from repro.estimate.communication import CommModel
from repro.estimate.software import default_processor_library
from repro.graph.taskgraph import Task, TaskGraph

LIB = default_processor_library()
NO_COMM = CommModel(sync_overhead_ns=0.0, word_time_ns=0.0)


def multirate_system(scale=1.0):
    g = TaskGraph("radio")
    g.add_task(Task("sampler", sw_time=8.0 * scale, period=50.0))
    g.add_task(Task("demod", sw_time=18.0 * scale, period=100.0))
    g.add_task(Task("decode", sw_time=30.0 * scale, period=200.0))
    g.add_task(Task("ui", sw_time=25.0 * scale, period=400.0))
    g.add_edge("sampler", "demod", 8.0)
    g.add_edge("demod", "decode", 8.0)
    g.add_edge("decode", "ui", 2.0)
    return g


def test_fig5_periodic_synthesis(benchmark):
    result = benchmark(periodic_synthesis, multirate_system(), LIB,
                       NO_COMM)
    assert result is not None and result.feasible
    # the hyperperiod validation really covered every job instance
    unrolled, H = unroll_hyperperiod(multirate_system())
    assert H == pytest.approx(400.0)
    assert len(result.schedule.mapping) == len(unrolled)
    assert result.schedule.makespan <= H

    # load scaling drives cost up (the Figure 5 axis, at fixed rates)
    heavy = periodic_synthesis(multirate_system(scale=6.0), LIB, NO_COMM)
    assert heavy is not None
    assert heavy.cost >= result.cost

    benchmark.extra_info["allocation"] = result.allocation.counts
    benchmark.extra_info["cost_light_vs_heavy"] = (result.cost, heavy.cost)
    benchmark.extra_info["peak_utilization"] = max(
        result.utilizations.values()
    )
