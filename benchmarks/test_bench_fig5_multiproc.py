"""E5 — Figure 5: heterogeneous multiprocessor co-synthesis.

Paper claims (Section 4.2):

* ILP "yields the optimum configuration and mapping" (SOS [12]);
* vector bin packing solves the same problem heuristically (Beck [13]);
* the trade-off: "a more highly parallel architecture allows the use of
  slower, less-expensive processing elements ... less parallelism ...
  allows fewer processing elements" — cost falls as the deadline
  relaxes, with the synthesizers walking from fast-expensive to
  cheap-slow parts.

Measured: all three synthesizers on one workload; the exact method is
never beaten on cost; the deadline sweep produces non-increasing cost
series; the heuristics run orders of magnitude faster than the ILP.
"""

import pytest

from repro.cosynth import (
    binpack_synthesis,
    ilp_synthesis,
    sensitivity_synthesis,
)

DEADLINES = [60.0, 100.0, 200.0, 400.0, 800.0]


@pytest.fixture(scope="module")
def small_library(request):
    from repro.estimate.software import default_processor_library

    lib = default_processor_library()
    return {k: lib[k] for k in ("micro16", "r32", "dsp")}


def test_fig5_binpack(benchmark, multiproc_taskset, processor_library):
    result = benchmark(
        binpack_synthesis, multiproc_taskset, 100.0, processor_library
    )
    assert result is not None and result.feasible
    benchmark.extra_info["allocation"] = result.allocation.counts
    benchmark.extra_info["cost"] = result.cost


def test_fig5_sensitivity(benchmark, multiproc_taskset, processor_library):
    result = benchmark(
        sensitivity_synthesis, multiproc_taskset, 100.0, processor_library
    )
    assert result is not None and result.feasible
    benchmark.extra_info["allocation"] = result.allocation.counts
    benchmark.extra_info["cost"] = result.cost


def test_fig5_ilp(benchmark, multiproc_taskset, small_library):
    result = benchmark(
        ilp_synthesis, multiproc_taskset, 100.0, small_library,
    )
    assert result is not None and result.feasible
    benchmark.extra_info["allocation"] = result.allocation.counts
    benchmark.extra_info["cost"] = result.cost


def test_fig5_ilp_never_beaten_on_cost(
    benchmark, multiproc_taskset, small_library
):
    """The optimality claim, at three deadlines, same library."""

    def compare():
        rows = []
        for deadline in (80.0, 150.0, 400.0):
            ilp = ilp_synthesis(multiproc_taskset, deadline, small_library)
            bp = binpack_synthesis(multiproc_taskset, deadline,
                                   small_library)
            sens = sensitivity_synthesis(multiproc_taskset, deadline,
                                         small_library)
            rows.append((deadline, ilp, bp, sens))
        return rows

    rows = benchmark(compare)
    for deadline, ilp, bp, sens in rows:
        assert ilp is not None and ilp.feasible, deadline
        for other in (bp, sens):
            if other is not None and other.feasible:
                assert ilp.cost <= other.cost + 1e-9, deadline
    benchmark.extra_info["costs"] = {
        str(d): {"ilp": i.cost, "binpack": b.cost if b else None,
                 "sensitivity": s.cost if s else None}
        for d, i, b, s in rows
    }


def test_fig5_deadline_cost_tradeoff(
    benchmark, multiproc_taskset, processor_library
):
    """The Figure 5 trade-off curve: cost vs deadline is non-increasing
    and spans fast-expensive to cheap-slow allocations."""

    def sweep():
        return [
            (d, binpack_synthesis(multiproc_taskset, d, processor_library),
             sensitivity_synthesis(multiproc_taskset, d, processor_library))
            for d in DEADLINES
        ]

    rows = benchmark(sweep)
    for algo_index, algo in ((1, "binpack"), (2, "sensitivity")):
        costs = [row[algo_index].cost for row in rows
                 if row[algo_index] is not None]
        assert len(costs) == len(DEADLINES), algo
        # relaxing the deadline never forces a costlier system
        for tight, loose in zip(costs, costs[1:]):
            assert loose <= tight + 1e-9, algo
        assert costs[-1] < costs[0], f"{algo}: no trade-off observed"
    benchmark.extra_info["cost_series"] = {
        "deadlines": DEADLINES,
        "binpack": [r[1].cost for r in rows],
        "sensitivity": [r[2].cost for r in rows],
    }
