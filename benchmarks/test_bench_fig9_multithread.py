"""E9 — Figure 9: multi-threaded co-processors.

Paper claims (Section 4.5.1):

* the multi-threaded co-processor "is able to implement concurrent
  threads of control", complicating partitioning with "the opportunity
  to exploit parallelism both between hardware and software components
  and among hardware components";
* [10] partitions "in a way that considers minimizing the communication
  between the hardware and software components and maximizing the
  concurrency";
* [3] verifies such systems with message-level (send/receive/wait)
  co-simulation.

Measured: on a fork-join workload, more controllers buy latency until
the controller overhead wins; the communication/concurrency-aware
partitioner is never beaten by the ablated (blind) one when both are
judged by the real evaluation; and the partitioned system passes
message-level co-simulation with latency agreeing with the analytic
schedule.
"""

import random

import pytest

from repro.core.flow import simulate_partition
from repro.cosynth.multithread import (
    communication_blind_partition,
    synthesize_multithreaded,
)
from repro.estimate.communication import TIGHT
from repro.graph.generators import fork_join_graph
from repro.graph.kernels import modem_taskgraph


def workload():
    return fork_join_graph(random.Random(3), n_branches=4, branch_len=2)


def test_fig9_thread_count_sweep(benchmark):
    design = benchmark(synthesize_multithreaded, workload(), None, None,
                       TIGHT, )
    assert design.threads >= 2, \
        "a fork-join workload should justify multiple controllers"
    single = synthesize_multithreaded(workload(), max_threads=1)
    assert design.latency_ns <= single.latency_ns
    benchmark.extra_info["chosen_threads"] = design.threads
    benchmark.extra_info["sweep"] = design.sweep
    benchmark.extra_info["latency_vs_single"] = (
        design.latency_ns, single.latency_ns
    )


@pytest.mark.parametrize("graph_name", ["forkjoin", "modem"])
def test_fig9_comm_aware_vs_blind(benchmark, graph_name):
    graph = workload() if graph_name == "forkjoin" else modem_taskgraph()

    def compare():
        aware = synthesize_multithreaded(graph.copy(), comm=TIGHT,
                                         max_threads=3)
        blind = communication_blind_partition(graph.copy(), comm=TIGHT,
                                              max_threads=3)
        return aware, blind

    aware, blind = benchmark(compare)
    aware_score = (round(aware.latency_ns, 6),
                   round(aware.partition.evaluation.comm_ns, 6))
    blind_score = (round(blind.latency_ns, 6),
                   round(blind.partition.evaluation.comm_ns, 6))
    assert aware_score <= blind_score, \
        "seeing communication/concurrency must not hurt"
    benchmark.extra_info["aware"] = aware_score
    benchmark.extra_info["blind"] = blind_score


def test_fig9_message_level_validation(benchmark):
    """[3]: the partitioned multi-threaded system runs correctly under
    send/receive/wait co-simulation, agreeing with the schedule."""
    graph = workload()
    design = synthesize_multithreaded(graph, comm=TIGHT, max_threads=4)

    simulated = benchmark(
        simulate_partition, design.partition.problem,
        design.partition.hw_tasks,
    )
    assert len(simulated.finish_times) == len(graph)
    ratio = design.latency_ns / simulated.latency_ns
    assert 0.7 <= ratio <= 1.3, "schedule and simulation must agree"
    benchmark.extra_info["analytic_ns"] = design.latency_ns
    benchmark.extra_info["simulated_ns"] = simulated.latency_ns
    benchmark.extra_info["messages"] = simulated.messages

    clusters = design.hw_thread_assignment()
    assert len(clusters) <= design.threads
