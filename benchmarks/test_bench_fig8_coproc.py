"""E8 — Figure 8: application-specific co-processor partitioning.

Paper claims (Section 4.5):

* Gupta–De Micheli [6]: "minimize the implementation cost without
  decreasing performance relative to a purely hardware implementation"
  — hardware-first extraction;
* Henkel–Ernst [17]: "moving the performance-critical regions of
  software into hardware" — software-first extraction;
* Vahid–Gajski [18]: the hardware cost formulation "considers the
  potential for sharing resources among the set of functions
  implemented in hardware, which further complicates the partitioning
  problem" — sharing-aware estimation changes the outcome.

Measured: both extraction directions produce designs that beat
all-software latency and all-hardware cost; sharing-aware estimation
reports less area than naive addition for the same partition, changes
which moves a partitioner accepts, and incremental updates are far
cheaper than re-estimating from scratch.
"""

import pytest

from repro.cosynth.coprocessor import synthesize_coprocessor
from repro.estimate.incremental import IncrementalEstimator
from repro.graph import kernels
from repro.partition.evaluate import evaluate_partition


def behaviors():
    return {
        "dct": kernels.dct4(),
        "fir": kernels.fir(8),
        "crc": kernels.crc_step(),
        "biquad": kernels.iir_biquad(),
    }


DATAFLOW = [("fir", "biquad", 8.0), ("biquad", "dct", 8.0),
            ("dct", "crc", 4.0)]


@pytest.mark.parametrize("algorithm,budget", [
    # vulcan extracts from all-hardware down to the deadline (no budget
    # needed: the deadline is what stops the extraction); cosyma grows
    # from all-software and is boxed in by the area budget.
    ("vulcan", None),
    ("cosyma", 2600.0),
])
def test_fig8_extraction_directions(benchmark, algorithm, budget):
    design = benchmark(
        synthesize_coprocessor,
        behaviors(), DATAFLOW, 1200.0, budget, algorithm=algorithm,
    )
    problem = design.partition.problem
    all_sw = evaluate_partition(problem, [])
    all_hw = evaluate_partition(problem, problem.graph.task_names)

    assert design.latency_ns < all_sw.latency_ns, \
        "must beat all-software latency"
    assert design.coprocessor_area < all_hw.hw_area, \
        "must beat all-hardware cost"
    assert design.hw_behaviors and design.sw_behaviors, \
        "a genuinely mixed design is expected at this deadline"
    assert design.verify_all(), "hw/sw/reference must agree"

    benchmark.extra_info["hw"] = design.hw_behaviors
    benchmark.extra_info["latency_ns"] = design.latency_ns
    benchmark.extra_info["area"] = design.coprocessor_area
    benchmark.extra_info["speedup"] = round(
        design.speedup_vs_all_software(), 3
    )


def test_fig8_vulcan_holds_all_hw_performance(benchmark):
    """[6]'s exact criterion at slack 1.0: no slower than all-hardware."""
    from repro.graph.kernels import modem_taskgraph
    from repro.partition.problem import PartitionProblem
    from repro.partition.vulcan import vulcan_partition
    from repro.estimate.communication import TIGHT

    problem = PartitionProblem(modem_taskgraph(), comm=TIGHT)
    result = benchmark(vulcan_partition, problem)
    all_hw = evaluate_partition(problem, problem.graph.task_names)
    assert result.evaluation.latency_ns <= all_hw.latency_ns + 1e-9
    assert result.evaluation.hw_area <= all_hw.hw_area
    benchmark.extra_info["area_saved"] = (
        all_hw.hw_area - result.evaluation.hw_area
    )


def test_fig8_sharing_aware_estimation(benchmark):
    """[18]: sharing-aware vs naive-additive area, and the incremental
    update speed that makes per-move estimation affordable."""
    from repro.estimate.incremental import requirements_from_task
    from repro.graph.kernels import modem_taskgraph

    graph = modem_taskgraph()
    hw_tasks = ["demod_i", "demod_q", "equalizer", "agc"]

    def build():
        est = IncrementalEstimator()
        for name in hw_tasks:
            est.add(name, requirements_from_task(graph.task(name)))
        return est

    est = benchmark(build)
    naive = est.naive_additive_area()
    assert est.area < naive, "sharing must beat naive addition"
    savings = est.sharing_savings() / naive
    assert savings > 0.15, "sharing savings should be substantial"
    benchmark.extra_info["shared_area"] = est.area
    benchmark.extra_info["naive_area"] = naive
    benchmark.extra_info["savings_pct"] = round(100 * savings, 1)


def test_fig8_sharing_changes_partition(benchmark):
    """The estimator is not just cheaper — it changes the design: under
    a tight area budget, sharing-aware estimation admits more hardware
    than naive estimation believes possible."""
    from repro.estimate.communication import TIGHT
    from repro.graph.kernels import modem_taskgraph
    from repro.partition.cosyma import cosyma_partition
    from repro.partition.problem import PartitionProblem

    def run_both():
        out = {}
        for sharing in (True, False):
            problem = PartitionProblem(
                modem_taskgraph(), comm=TIGHT,
                hw_area_budget=260.0, deadline_ns=60.0,
                use_sharing=sharing,
            )
            out[sharing] = cosyma_partition(problem)
        return out

    results = benchmark(run_both)
    aware, naive = results[True], results[False]
    assert len(aware.hw_tasks) >= len(naive.hw_tasks)
    assert aware.evaluation.latency_ns <= naive.evaluation.latency_ns + 1e-9
    benchmark.extra_info["hw_with_sharing"] = sorted(aware.hw_tasks)
    benchmark.extra_info["hw_naive"] = sorted(naive.hw_tasks)
