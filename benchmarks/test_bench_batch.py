"""E24 — Vectorized batch tier: campaign wall-clock vs translated scalar.

The batch tier (:mod:`repro.isa.batch`) executes a whole fault
campaign's lanes as columns of one structure-of-arrays machine
(DESIGN §14).  This benchmark prices it against the best scalar
configuration the repo had before it — the campaign run with the
block translator enabled fleet-wide (PR 9, E23) — on the E24 workload:
the ``swmac`` software-only scenario at E18 campaign shape (200
faults, seed 7).

* **throughput** — interleaved A/B rounds (scalar-translated campaign,
  then batch campaign, within each round so scheduler drift hits both
  alike), median-of-9 paired speedups with a sign-test ~96% confidence
  interval — the E17/E22/E23 methodology.  Acceptance bar: **≥5×
  campaign wall-clock over translated scalar** (``compare_bench.py``
  enforces an absolute ≥2× floor for noise headroom on slow boxes);
* **no accuracy regression** — every round asserts the batch campaign
  document is byte-identical to the scalar one; the E24 dependability
  histogram is pinned exactly, and the kernel-bound E18 histogram
  (coproc) must be untouched by the batch flag.

Measured numbers land in ``BENCH_batch.json``.  Runnable standalone
for CI: ``PYTHONPATH=src python benchmarks/test_bench_batch.py
--smoke``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.fault import SCENARIOS, run_campaign, sample_faults
from repro.isa.translate import auto_translation

from test_bench_isa import E18_FAULTS, E18_HISTOGRAM, E18_SEED

#: Interleaved A/B rounds; at n=9 the (2nd, 8th) order statistics
#: bound the median at ~96% confidence (see test_bench_obs.py).
ROUNDS = 9
E24_FAULTS = 200        # E18 campaign shape on the swmac scenario
E24_SEED = 7
E24_HISTOGRAM = {
    "masked": 64, "sdc": 46, "detected": 16, "hang": 24, "crash": 50,
}
SPEEDUP_FLOOR = 5.0     # batch campaign vs translated-scalar campaign
RESULT_FILE = Path(__file__).parent / "BENCH_batch.json"


def _faults():
    return sample_faults(
        SCENARIOS["swmac"].targets, E24_FAULTS, seed=E24_SEED)


def _timed_campaign(faults, batch):
    start = time.perf_counter()
    result = run_campaign("swmac", faults, batch=batch)
    return time.perf_counter() - start, result


def _median(samples):
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _sign_test_ci(samples):
    ordered = sorted(samples)
    return ordered[1], ordered[-2]


def measure(rounds=ROUNDS):
    """Interleaved A/B rounds: translated-scalar campaign, then batch.

    Both sides run under ``auto_translation(True)`` — the scalar side
    because that *is* the PR 9 baseline, the batch side so its drained
    lanes finish on the same translated tier.
    """
    faults = _faults()
    with auto_translation(True):
        # warm both paths (imports, codegen, decode caches)
        _timed_campaign(faults, batch=False)
        _timed_campaign(faults, batch=True)

        pairs = []
        reference = None
        for _ in range(rounds):
            scalar_s, scalar = _timed_campaign(faults, batch=False)
            batch_s, batch = _timed_campaign(faults, batch=True)
            assert batch.to_json() == scalar.to_json(), (
                "batch campaign document differs from scalar"
            )
            pairs.append((scalar_s, batch_s))
            reference = scalar

    hist = reference.histogram()
    assert hist == E24_HISTOGRAM, (
        f"E24 dependability histogram drifted: {hist} != {E24_HISTOGRAM}"
    )
    speedups = [s / b for s, b in pairs]
    ci = _sign_test_ci(speedups)
    return {
        "faults": E24_FAULTS,
        "rounds": rounds,
        "scalar_campaign_s": round(_median([s for s, _ in pairs]), 4),
        "batch_campaign_s": round(_median([b for _, b in pairs]), 4),
        "speedup_vs_scalar": round(_median(speedups), 2),
        "speedup_ci96": [round(x, 2) for x in ci],
        "e24_histogram": hist,
    }


def check_model_identity():
    """The kernel-bound E18 campaign must not move under ``batch=True``
    (scenarios that need the simulation kernel bypass the batch tier)."""
    scenario = SCENARIOS["coproc"]
    faults = sample_faults(scenario.targets, E18_FAULTS, seed=E18_SEED)
    hist = run_campaign("coproc", faults, batch=True).histogram()
    assert hist == E18_HISTOGRAM, (
        f"E18 dependability histogram drifted under the batch flag: "
        f"{hist} != {E18_HISTOGRAM}"
    )
    return hist


def run_bench(rounds=ROUNDS, write=True):
    record = measure(rounds)
    record["e18_histogram"] = check_model_identity()

    assert record["speedup_vs_scalar"] >= SPEEDUP_FLOOR, (
        f"batch campaign is only {record['speedup_vs_scalar']}x the "
        f"translated-scalar campaign at the median of {rounds} "
        f"interleaved rounds (floor: {SPEEDUP_FLOOR}x; ~96% CI "
        f"[{record['speedup_ci96'][0]}, {record['speedup_ci96'][1]}])"
    )

    if write:
        RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_batch_speedup_and_model_identity(benchmark):
    run_bench(rounds=3, write=False)  # warm all paths
    record = benchmark.pedantic(
        lambda: run_bench(ROUNDS), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {k: v for k, v in record.items() if not isinstance(v, dict)})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="batch-tier campaign benchmark (BENCH_batch.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workload for CI")
    parser.add_argument("--out", metavar="FILE",
                        help="write the record here instead of "
                             "BENCH_batch.json")
    args = parser.parse_args(argv)

    rounds = 5 if args.smoke else ROUNDS
    record = run_bench(rounds, write=False)
    out = Path(args.out) if args.out else RESULT_FILE
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"E24 campaign: swmac, {record['faults']} faults, "
          f"{record['rounds']} interleaved rounds")
    print(f"  translated scalar: {record['scalar_campaign_s']:.3f} s")
    print(f"  batch tier:        {record['batch_campaign_s']:.3f} s  "
          f"({record['speedup_vs_scalar']}x, ~96% CI "
          f"[{record['speedup_ci96'][0]}, {record['speedup_ci96'][1]}])")
    print(f"model identity: E24 pinned, E18 untouched by the batch flag")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
