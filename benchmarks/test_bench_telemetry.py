"""E22 — Flight-recorder overhead: disabled vs armed telemetry.

The flight recorder (:mod:`repro.obs.live`) extends the zero-cost
discipline to *live* telemetry: every producer is guarded by a single
``if <emitter> is not None``, and the armed path is rate-limited to
one monotonic-clock compare between emissions.  This benchmark times
the same 12-cell grid three ways and records the statistics in
``BENCH_telemetry.json``:

* **reference** — a bare ``run_cell`` loop, no engine bookkeeping;
* **disabled** — ``run_sweep`` with no recorder (the guards are
  evaluated and always skip);
* **enabled** — ``run_sweep`` with a :class:`JsonlRecorder` armed
  (run marks, rate-limited heartbeats, flushed per sample).

Same interleaved methodology as ``test_bench_obs.py``: the overhead
under test is percent-scale, the same order as scheduler noise, so
the variants run A/B/C within each round and the reported number is
the median paired overhead with a sign-test confidence interval.
Asserted: **both** the disabled and the enabled median overhead stay
under 3% — unlike full span tracing, an armed flight recorder is
bounded too, because rate-limiting caps its sample count regardless
of grid size.
"""

import json
import time
from pathlib import Path

from repro.obs import JsonlRecorder, read_samples
from repro.sweep import expand_grid, run_cell, run_sweep

GRID = dict(
    generators=["layered", "pipeline"],
    n_tasks=[12],
    heuristics=["greedy", "kl", "annealing", "vulcan", "cosyma", "gclp"],
    seeds=range(1),
)

#: Interleaved A/B/C rounds; at n=9 the (2nd, 8th) order statistics
#: bound the median at ~96% confidence (see test_bench_obs.py).
ROUNDS = 9

RESULT_FILE = Path(__file__).parent / "BENCH_telemetry.json"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _median(samples):
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _sign_test_ci(samples):
    ordered = sorted(samples)
    return ordered[1], ordered[-2]


def test_flight_recorder_overhead_is_bounded(benchmark, tmp_path):
    configs = expand_grid(**GRID)
    assert len(configs) == 12

    def reference():
        return [run_cell(c) for c in configs]

    def disabled():
        return run_sweep(configs, workers=1)

    flights = iter(tmp_path / f"flight-{i}.jsonl"
                   for i in range(ROUNDS + 1))

    def enabled():
        recorder = JsonlRecorder(next(flights))
        table = run_sweep(configs, workers=1, recorder=recorder)
        recorder.close()
        return table, recorder.path

    def measure():
        """ROUNDS interleaved A/B/C rounds of paired timings."""
        rounds = []
        last = None
        for _ in range(ROUNDS):
            rows, ref_s = _timed(reference)
            disabled_table, dis_s = _timed(disabled)
            enabled_out, en_s = _timed(enabled)
            rounds.append((ref_s, dis_s, en_s))
            last = (rows, disabled_table, enabled_out)
        return rounds, last

    reference()  # warm imports, generators, cost tables
    enabled()
    rounds, last = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows, disabled_table, (table, flight_path) = last

    # the timed runs computed the same cells, byte-identically
    assert [dict(r) for r in disabled_table] == rows
    assert table.to_json() == disabled_table.to_json()

    # the armed run really recorded a flight log
    samples = read_samples(flight_path)
    kinds = {s.kind for s in samples}
    assert "run" in kinds and "heartbeat" in kinds

    # paired per-round overheads: drift hits all three variants alike
    disabled_overheads = [(d - r) / r for r, d, _ in rounds]
    enabled_overheads = [(e - r) / r for r, _, e in rounds]
    disabled_overhead = _median(disabled_overheads)
    enabled_overhead = _median(enabled_overheads)
    dis_ci = _sign_test_ci(disabled_overheads)
    en_ci = _sign_test_ci(enabled_overheads)

    assert disabled_overhead < 0.03, (
        f"unarmed flight-recorder sweep is {disabled_overhead:.1%} "
        f"over the bare run_cell loop at the median of {ROUNDS} "
        f"interleaved rounds (budget: 3%; ~96% CI "
        f"[{dis_ci[0]:.1%}, {dis_ci[1]:.1%}])"
    )
    assert enabled_overhead < 0.03, (
        f"armed flight-recorder sweep is {enabled_overhead:.1%} over "
        f"the bare run_cell loop at the median of {ROUNDS} interleaved "
        f"rounds (budget: 3%; ~96% CI "
        f"[{en_ci[0]:.1%}, {en_ci[1]:.1%}])"
    )

    record = {
        "cells": len(configs),
        "rounds": ROUNDS,
        "reference_s": round(_median([r for r, _, _ in rounds]), 4),
        "disabled_s": round(_median([d for _, d, _ in rounds]), 4),
        "enabled_s": round(_median([e for _, _, e in rounds]), 4),
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "disabled_overhead_ci96": [round(x, 4) for x in dis_ci],
        "enabled_overhead_ci96": [round(x, 4) for x in en_ci],
        "flight_samples": len(samples),
    }
    RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info.update(record)
