"""E1 — Figure 1: the Type I / Type II classification is decidable.

Paper claim: systems divide into Type I (logical boundary: hardware
executes software) and Type II (physical boundary: peer components),
and each Section 4 example has a definite type.

Measured: structural classification of all six example system models
re-derives exactly the types the paper asserts.
"""

from repro.core.examples import paper_examples
from repro.core.taxonomy import SystemType, classify_system


def classify_all(examples):
    return {
        name: classify_system(ex.system_model).system_type
        for name, ex in examples.items()
    }


def test_fig1_classification(benchmark):
    examples = paper_examples()
    derived = benchmark(classify_all, examples)

    expected = {
        "embedded_micro": SystemType.TYPE_I,
        "heterogeneous_multiproc": SystemType.TYPE_I,
        "asip": SystemType.TYPE_I,
        "special_fu": SystemType.TYPE_I,
        "coprocessor": SystemType.TYPE_II,
        "multithreaded_coprocessor": SystemType.TYPE_II,
    }
    assert derived == expected
    for name, ex in examples.items():
        assert derived[name] is ex.methodology.system_type, name
    benchmark.extra_info["classified"] = {
        k: v.name for k, v in derived.items()
    }
    benchmark.extra_info["matches_paper"] = True
