"""Application-specific instruction-set processors (Sections 4.3, 4.4).

"In some cases, the design of an application-specific instruction set
processor affords the opportunity to move the boundary between hardware
and software by, for instance, adding new instructions to the
instruction set architecture.  In these cases, hardware/software
co-design for an instruction set processor can include hardware/
software partitioning."

* :mod:`repro.asip.custom` — custom-instruction identification: mine
  application CDFGs for fusable dependent-operation pairs, build the
  :class:`repro.isa.instructions.CustomOp` (semantics, latency, area)
  and the codegen :class:`repro.isa.codegen.Fusion` directives;
* :mod:`repro.asip.selection` — instruction-subset selection under an
  area budget (exact 0/1 knapsack), PEAS-I style [14];
* :mod:`repro.asip.explore` — design-space exploration producing the
  area/speedup frontier by actually running the rewritten programs;
* :mod:`repro.asip.metamorphosis` — Athanas–Silverman instruction-set
  metamorphosis [15]: reconfigure the special-purpose functional units
  between program phases, trading reconfiguration time for a better
  per-phase instruction set (Figure 7's "adapted on the fly").
"""

from repro.asip.custom import CustomCandidate, mine_candidates
from repro.asip.selection import select_instructions
from repro.asip.explore import AsipDesignPoint, explore_asip
from repro.asip.metamorphosis import (
    PhaseResult,
    ReconfigurablePlan,
    plan_metamorphosis,
    best_static_plan,
)

__all__ = [
    "CustomCandidate",
    "mine_candidates",
    "select_instructions",
    "AsipDesignPoint",
    "explore_asip",
    "PhaseResult",
    "ReconfigurablePlan",
    "plan_metamorphosis",
    "best_static_plan",
]
