"""Custom-instruction identification by dataflow pattern mining.

A *candidate* is a pair of dependent operations (``inner`` feeds
``outer``, and nothing else consumes ``inner``) whose combined
non-constant inputs fit the two source registers of an R-type custom
instruction.  Constant operands are baked into the instruction's
semantics (how real ASIP flows absorb coefficients and shift counts).

For each candidate pattern we derive:

* **semantics** — a two-input mini-CDFG evaluated per execution, so the
  custom instruction is exactly as correct as the dataflow it replaces;
* **latency** — the fused datapath's combinational delay, in CPU clocks;
* **area** — the functional units the fused datapath needs.

Candidates with the same canonical structure share one custom opcode;
their value is (cycles saved per execution) × (executions), which the
selection knapsack (:mod:`repro.asip.selection`) trades against area.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.cdfg import CDFG, Op, OpKind
from repro.hls.library import ComponentLibrary, default_library
from repro.isa.codegen import Fusion
from repro.isa.instructions import CustomOp, Isa
from repro.estimate.software import OP_CYCLES

#: tokens describing where an operand of the pattern comes from
_EXT, _CONST, _INNER = "ext", "const", "inner"

PatternKey = Tuple[str, str, Tuple, Tuple]


@dataclass
class CustomCandidate:
    """One mineable custom instruction across a workload."""

    key: PatternKey
    mnemonic: str
    semantics_cdfg: CDFG
    n_externals: int
    cycles: int
    base_cycles: float
    area: float
    occurrences: List[Tuple[str, Fusion]] = field(default_factory=list)
    weight: float = 0.0

    @property
    def saved_per_use(self) -> float:
        """Reference cycles saved each time the instruction executes."""
        return max(0.0, self.base_cycles - self.cycles)

    @property
    def value(self) -> float:
        """Total weighted savings across the workload."""
        return self.saved_per_use * self.weight

    def semantics(self, a: int, b: int) -> int:
        """Execute the fused dataflow on two register operands."""
        inputs = {"ext0": a}
        if self.n_externals == 2:
            inputs["ext1"] = b
        return self.semantics_cdfg.evaluate(inputs)["y"]

    def to_custom_op(self, opcode: int) -> CustomOp:
        """Materialize as an installable R-type custom instruction."""
        return CustomOp(
            name=self.mnemonic,
            opcode=opcode,
            semantics=self.semantics,
            cycles=self.cycles,
            area=self.area,
        )


def mine_candidates(
    workloads: Dict[str, Tuple[CDFG, float]],
    library: Optional[ComponentLibrary] = None,
    cpu_clock_ns: float = 10.0,
) -> List[CustomCandidate]:
    """Mine all workload CDFGs for fusable pairs.

    ``workloads`` maps a name to ``(cdfg, weight)`` where weight is the
    relative execution frequency (profile-derived).  Returns candidates
    sorted by decreasing value; deterministic.
    """
    library = library or default_library()
    by_key: Dict[PatternKey, CustomCandidate] = {}
    for wl_name in sorted(workloads):
        cdfg, weight = workloads[wl_name]
        for outer in cdfg.ops:
            if not outer.kind.is_compute:
                continue
            for port, arg in enumerate(outer.args):
                inner = cdfg.op(arg)
                if not inner.kind.is_compute:
                    continue
                if inner.kind in (OpKind.LOAD, OpKind.STORE) or \
                        outer.kind in (OpKind.LOAD, OpKind.STORE):
                    continue  # memory ops cannot fold into an ALU FU
                if cdfg.uses(inner.name) != [outer.name]:
                    continue
                candidate = _build_candidate(
                    cdfg, inner, outer, port, library, cpu_clock_ns
                )
                if candidate is None:
                    continue
                key, externals = candidate
                if key not in by_key:
                    # content-derived mnemonic: the same pattern gets the
                    # same name in any mining run (phases, workloads, ...)
                    digest = hashlib.md5(
                        repr(key).encode()
                    ).hexdigest()[:6]
                    mnemonic = f"fx_{digest}"
                    by_key[key] = _materialize(
                        key, mnemonic, library, cpu_clock_ns
                    )
                entry = by_key[key]
                entry.occurrences.append((
                    wl_name,
                    Fusion(
                        outer=outer.name,
                        inner=inner.name,
                        mnemonic=entry.mnemonic,
                        externals=tuple(externals),
                    ),
                ))
                entry.weight += weight
    out = sorted(
        by_key.values(), key=lambda c: (-c.value, c.mnemonic)
    )
    return out


_COMMUTATIVE = {
    OpKind.ADD, OpKind.MUL, OpKind.AND, OpKind.OR, OpKind.XOR,
    OpKind.EQ, OpKind.NE,
}


def _structure(
    cdfg: CDFG, inner: Op, outer: Op, port: int
) -> Optional[Tuple[PatternKey, List[str]]]:
    """Canonical pattern tokens + ordered external value names.

    Commutative operations are canonicalized (constants last on the
    inner op; the fused operand first on the outer op) so symmetric
    occurrences share one pattern/opcode.
    """
    inner_args = list(inner.args)
    if inner.kind in _COMMUTATIVE and len(inner_args) == 2:
        inner_args.sort(
            key=lambda a: cdfg.op(a).kind is OpKind.CONST
        )  # stable: externals keep relative order, consts go last
    outer_slots = [
        ("__inner__" if i == port and a == inner.name else a)
        for i, a in enumerate(outer.args)
    ]
    if outer.kind in _COMMUTATIVE and len(outer_slots) == 2 \
            and outer_slots[1] == "__inner__":
        outer_slots.reverse()

    externals: List[str] = []

    def token(arg: str):
        if arg == "__inner__":
            return (_INNER,)
        op = cdfg.op(arg)
        if op.kind is OpKind.CONST:
            return (_CONST, op.value)
        if arg not in externals:
            externals.append(arg)
        return (_EXT, externals.index(arg))

    inner_tokens = tuple(token(a) for a in inner_args)
    outer_tokens = tuple(token(a) for a in outer_slots)
    if len(externals) == 0 or len(externals) > 2:
        return None
    key: PatternKey = (
        inner.kind.value, outer.kind.value, inner_tokens, outer_tokens
    )
    return key, externals


def _build_candidate(
    cdfg: CDFG, inner: Op, outer: Op, port: int,
    library: ComponentLibrary, cpu_clock_ns: float,
) -> Optional[Tuple[PatternKey, List[str]]]:
    return _structure(cdfg, inner, outer, port)


def _materialize(
    key: PatternKey,
    mnemonic: str,
    library: ComponentLibrary,
    cpu_clock_ns: float,
) -> CustomCandidate:
    inner_kind = OpKind(key[0])
    outer_kind = OpKind(key[1])
    inner_tokens, outer_tokens = key[2], key[3]
    n_ext = 1 + max(
        [t[1] for t in inner_tokens + outer_tokens if t[0] == _EXT],
        default=-1,
    )
    mini = CDFG(f"pattern_{mnemonic}")
    ext_names = [mini.inp(f"ext{i}") for i in range(n_ext)]

    def resolve(tok) -> str:
        if tok[0] == _CONST:
            return mini.const(tok[1])
        if tok[0] == _EXT:
            return ext_names[tok[1]]
        return inner_name

    inner_name = mini.add_op(
        inner_kind, [resolve(t) for t in inner_tokens]
    )
    outer_name = mini.add_op(
        outer_kind, [resolve(t) for t in outer_tokens]
    )
    mini.out("y", outer_name)

    delay = mini.critical_path_delay()
    cycles = max(1, math.ceil(delay / cpu_clock_ns))
    area = (
        library.cheapest(inner_kind).area + library.cheapest(outer_kind).area
    )
    base_cycles = OP_CYCLES[inner_kind] + OP_CYCLES[outer_kind]
    return CustomCandidate(
        key=key,
        mnemonic=mnemonic,
        semantics_cdfg=mini,
        n_externals=n_ext,
        cycles=cycles,
        base_cycles=base_cycles,
        area=area,
        occurrences=[],
        weight=0.0,
    )


def fusions_for(
    candidates: Sequence[CustomCandidate], workload: str
) -> Dict[str, Fusion]:
    """Collect the fusion directives of ``candidates`` that apply to one
    workload, skipping overlapping occurrences (an op may participate in
    at most one fusion)."""
    taken: set = set()
    out: Dict[str, Fusion] = {}
    for cand in candidates:
        for wl_name, fusion in cand.occurrences:
            if wl_name != workload:
                continue
            if fusion.outer in taken or fusion.inner in taken:
                continue
            out[fusion.outer] = fusion
            taken.add(fusion.outer)
            taken.add(fusion.inner)
    return out


def install(
    isa: Isa, candidates: Sequence[CustomCandidate]
) -> Dict[str, CustomOp]:
    """Install candidates on an ISA; returns mnemonic -> CustomOp."""
    out: Dict[str, CustomOp] = {}
    for cand in candidates:
        op = cand.to_custom_op(isa.next_custom_opcode())
        isa.add_custom(op)
        out[cand.mnemonic] = op
    return out
