"""Instruction-set metamorphosis (Athanas & Silverman [15], Figure 7).

"What makes this configuration interesting is the possibility of using
field programmable hardware to implement the special-purpose functional
units.  In this case, the hardware/software partition need not be
static and could be adapted on the fly."

The workload runs in *phases* (e.g. a filtering phase, then a transform
phase).  A reconfigurable processor re-selects its custom-instruction
set per phase within the same FU area (the FPGA fabric), paying a
reconfiguration delay at each phase boundary; a static processor must
pick one instruction set for all phases.  ``plan_metamorphosis`` vs
``best_static_plan`` quantifies when adaptation wins — experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.asip.custom import (
    CustomCandidate,
    fusions_for,
    install,
    mine_candidates,
)
from repro.asip.explore import run_workload
from repro.asip.selection import select_instructions
from repro.graph.cdfg import CDFG
from repro.isa.instructions import Isa

#: default fabric reconfiguration cost, in CPU cycles
RECONFIG_CYCLES = 2000


@dataclass
class PhaseResult:
    """Measured cycles for one phase under one instruction set."""

    phase: str
    instructions: List[str]
    cycles: float


@dataclass
class ReconfigurablePlan:
    """A per-phase instruction-set plan and its total cost."""

    phases: List[PhaseResult]
    reconfigurations: int
    reconfig_cycles: int
    static: bool

    @property
    def compute_cycles(self) -> float:
        """Cycles spent computing (without reconfiguration)."""
        return sum(p.cycles for p in self.phases)

    @property
    def total_cycles(self) -> float:
        """Compute plus reconfiguration overhead."""
        return self.compute_cycles + \
            self.reconfigurations * self.reconfig_cycles


def _phase_cycles(
    phase_workloads: Dict[str, Tuple[CDFG, float]],
    chosen: Sequence[CustomCandidate],
) -> float:
    """Weighted cycles of one phase under an instruction set."""
    isa = Isa("phase")
    install(isa, chosen)
    total = 0.0
    for name, (cdfg, weight) in sorted(phase_workloads.items()):
        fusions = fusions_for(chosen, name)
        _out, cycles, _words = run_workload(cdfg, isa, fusions)
        total += cycles * weight
    return total


def plan_metamorphosis(
    phases: Dict[str, Dict[str, Tuple[CDFG, float]]],
    fabric_area: float,
    reconfig_cycles: int = RECONFIG_CYCLES,
    iterations_per_phase: int = 1,
) -> ReconfigurablePlan:
    """Reconfigure per phase: each phase gets the best instruction set
    that fits the fabric, mined from *that phase's* workloads alone.

    ``iterations_per_phase`` scales each phase's compute (an outer loop
    executing the phase many times before moving on), which amortizes
    the reconfiguration cost.
    """
    results: List[PhaseResult] = []
    for phase_name in sorted(phases):
        workloads = phases[phase_name]
        candidates = mine_candidates(workloads)
        chosen = select_instructions(candidates, fabric_area)
        cycles = _phase_cycles(workloads, chosen) * iterations_per_phase
        results.append(PhaseResult(
            phase=phase_name,
            instructions=[c.mnemonic for c in chosen],
            cycles=cycles,
        ))
    return ReconfigurablePlan(
        phases=results,
        reconfigurations=max(0, len(results) - 1) if len(results) > 1 else 0,
        reconfig_cycles=reconfig_cycles,
        static=False,
    )


def best_static_plan(
    phases: Dict[str, Dict[str, Tuple[CDFG, float]]],
    fabric_area: float,
    iterations_per_phase: int = 1,
) -> ReconfigurablePlan:
    """One instruction set for all phases: mined and selected over the
    union of workloads, no reconfiguration cost."""
    union: Dict[str, Tuple[CDFG, float]] = {}
    for phase_name in sorted(phases):
        for name, (cdfg, weight) in phases[phase_name].items():
            union[f"{phase_name}.{name}"] = (cdfg, weight)
    candidates = mine_candidates(union)
    chosen = select_instructions(candidates, fabric_area)
    results: List[PhaseResult] = []
    for phase_name in sorted(phases):
        scoped = {
            f"{phase_name}.{name}": wl
            for name, wl in phases[phase_name].items()
        }
        cycles = _phase_cycles(scoped, chosen) * iterations_per_phase
        results.append(PhaseResult(
            phase=phase_name,
            instructions=[c.mnemonic for c in chosen],
            cycles=cycles,
        ))
    return ReconfigurablePlan(
        phases=results,
        reconfigurations=0,
        reconfig_cycles=0,
        static=True,
    )
