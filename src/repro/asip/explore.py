"""ASIP design-space exploration: measured area/speedup frontiers.

Unlike the paper-era flows, which estimated the effect of a candidate
instruction set, this exploration *measures* it: each design point
installs the selected instructions on a fresh R32 variant, recompiles
every workload with the corresponding fusions, runs the binaries on the
CPU model, and cross-checks outputs against the stock-ISA run.  The
(custom area, measured speedup) pairs are Figure 6's trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.asip.custom import (
    CustomCandidate,
    fusions_for,
    install,
    mine_candidates,
)
from repro.asip.selection import select_instructions
from repro.graph.cdfg import CDFG
from repro.isa.codegen import compile_cdfg
from repro.isa.instructions import Isa


class ExplorationError(RuntimeError):
    """Raised when a rewritten program disagrees with the reference."""


@dataclass
class AsipDesignPoint:
    """One point on the area/performance frontier."""

    budget: float
    custom_area: float
    instructions: List[str]
    cycles: Dict[str, int]
    base_cycles: Dict[str, int]
    code_words: Dict[str, int]

    def weighted_cycles(self, weights: Dict[str, float]) -> float:
        """Workload-weighted cycle count."""
        return sum(self.cycles[n] * w for n, w in weights.items())

    def speedup(self, weights: Dict[str, float]) -> float:
        """Workload-weighted speedup over the stock ISA."""
        base = sum(self.base_cycles[n] * w for n, w in weights.items())
        mine = self.weighted_cycles(weights)
        return base / mine if mine else 1.0


def _reference_inputs(cdfg: CDFG) -> Dict[str, int]:
    return {
        op.name: (i * 37 + 11) & 0xFFFF for i, op in enumerate(cdfg.inputs())
    }


def run_workload(
    cdfg: CDFG,
    isa: Isa,
    fusions=None,
) -> Tuple[Dict[str, int], int, int]:
    """(outputs, cycles, code words) for one workload on one ISA."""
    compiled = compile_cdfg(cdfg, isa, fusions=fusions)
    outputs, cycles = compiled.run(_reference_inputs(cdfg), isa=isa)
    return outputs, cycles, compiled.code_size


def explore_asip(
    workloads: Dict[str, Tuple[CDFG, float]],
    budgets: Sequence[float],
    cpu_clock_ns: float = 10.0,
) -> List[AsipDesignPoint]:
    """Sweep area budgets; returns one verified design point per budget."""
    candidates = mine_candidates(workloads, cpu_clock_ns=cpu_clock_ns)
    base_isa = Isa("r32")
    reference: Dict[str, Tuple[Dict[str, int], int, int]] = {}
    for name, (cdfg, _w) in sorted(workloads.items()):
        reference[name] = run_workload(cdfg, base_isa)

    points: List[AsipDesignPoint] = []
    for budget in budgets:
        chosen = select_instructions(candidates, budget)
        isa = Isa(f"r32+{len(chosen)}fx")
        install(isa, chosen)
        cycles: Dict[str, int] = {}
        words: Dict[str, int] = {}
        for name, (cdfg, _w) in sorted(workloads.items()):
            fusions = fusions_for(chosen, name)
            outputs, n_cycles, n_words = run_workload(cdfg, isa, fusions)
            if outputs != reference[name][0]:
                raise ExplorationError(
                    f"budget {budget}: workload {name!r} output mismatch"
                )
            cycles[name] = n_cycles
            words[name] = n_words
        points.append(AsipDesignPoint(
            budget=budget,
            custom_area=isa.custom_area(),
            instructions=[c.mnemonic for c in chosen],
            cycles=cycles,
            base_cycles={n: reference[n][1] for n in reference},
            code_words=words,
        ))
    return points
