"""Instruction-subset selection under an area budget (PEAS-I style).

Choosing which candidate custom instructions to realize is a 0/1
knapsack: each candidate has a value (weighted cycles saved across the
workload) and a weight (datapath area).  Budgets in this framework are
small integers of gates, so the exact dynamic program is cheap and the
selection is optimal — matching the claim of the exact-optimization
ASIP flows the paper cites.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.asip.custom import CustomCandidate


def select_instructions(
    candidates: Sequence[CustomCandidate],
    area_budget: float,
    resolution: float = 1.0,
) -> List[CustomCandidate]:
    """Exact 0/1 knapsack selection.

    ``resolution`` discretizes areas (gates per DP cell); coarser values
    trade optimality for speed on very large budgets.  Candidates with
    zero value are never selected.
    """
    if area_budget < 0:
        raise ValueError("area_budget must be >= 0")
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    useful = [c for c in candidates if c.value > 0]
    capacity = int(area_budget / resolution)
    if capacity == 0 or not useful:
        return []
    weights = [max(1, math.ceil(c.area / resolution)) for c in useful]
    # dp[w] = (best value, chosen indices tuple) - keep choices compact
    best_value = [0.0] * (capacity + 1)
    choice: List[List[int]] = [[] for _ in range(capacity + 1)]
    for idx, cand in enumerate(useful):
        w = weights[idx]
        for cap in range(capacity, w - 1, -1):
            with_it = best_value[cap - w] + cand.value
            if with_it > best_value[cap] + 1e-12:
                best_value[cap] = with_it
                choice[cap] = choice[cap - w] + [idx]
    best_cap = max(range(capacity + 1), key=lambda cap: best_value[cap])
    return [useful[i] for i in choice[best_cap]]


def selection_frontier(
    candidates: Sequence[CustomCandidate],
    budgets: Sequence[float],
) -> List[Tuple[float, List[CustomCandidate], float]]:
    """(budget, selection, total value) per budget — the raw data of the
    Figure 6 experiment.  Value is monotone non-decreasing in budget."""
    out = []
    for budget in budgets:
        chosen = select_instructions(candidates, budget)
        out.append((budget, chosen, sum(c.value for c in chosen)))
    return out
