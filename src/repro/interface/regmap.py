"""Register-map allocation.

Assigns each device a naturally-aligned base address inside the I/O
window and produces the shared symbol table: the hardware decoder and
the generated drivers both derive their addresses from it, so they
cannot disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.interface.spec import DeviceSpec


class RegmapError(ValueError):
    """Raised when devices do not fit the I/O window."""


@dataclass
class RegisterMap:
    """Device base addresses plus a flat register symbol table."""

    io_base: int
    io_size: int
    bases: Dict[str, int]
    devices: Dict[str, DeviceSpec]

    def address_of(self, device: str, register: str) -> int:
        """Absolute word address of one register."""
        spec = self.devices[device]
        return self.bases[device] + spec.offset_of(register)

    def window_of(self, device: str) -> Tuple[int, int]:
        """(base, size) of one device's window."""
        return self.bases[device], self.devices[device].size

    def symbols(self) -> Dict[str, int]:
        """Flat ``DEV_REG`` -> address table."""
        out: Dict[str, int] = {}
        for name, spec in self.devices.items():
            out[f"{name.upper()}_BASE"] = self.bases[name]
            for reg in spec.registers:
                out[f"{name.upper()}_{reg.name.upper()}"] = \
                    self.address_of(name, reg.name)
        return out

    def asm_equates(self) -> str:
        """The symbol table as assembler constants (informational; the
        driver generator inlines addresses directly)."""
        lines = [f"; register map @ {self.io_base:#x}"]
        for symbol, addr in sorted(self.symbols().items(),
                                   key=lambda kv: (kv[1], kv[0])):
            lines.append(f"; {symbol} = {addr:#06x}")
        return "\n".join(lines)

    @property
    def end(self) -> int:
        """First address past the last allocated window."""
        return max(
            (self.bases[n] + self.devices[n].size for n in self.devices),
            default=self.io_base,
        )


def allocate_register_map(
    devices: List[DeviceSpec],
    io_base: int = 0x800,
    io_size: int = 0x400,
) -> RegisterMap:
    """Allocate naturally-aligned windows, largest devices first
    (minimizing padding), ties broken by name for determinism."""
    names = [d.name for d in devices]
    if len(set(names)) != len(names):
        raise RegmapError("duplicate device names")
    ordered = sorted(devices, key=lambda d: (-d.size, d.name))
    bases: Dict[str, int] = {}
    cursor = io_base
    for dev in ordered:
        aligned = _align(cursor, dev.size)
        if aligned + dev.size > io_base + io_size:
            raise RegmapError(
                f"device {dev.name!r} does not fit the I/O window "
                f"[{io_base:#x}, {io_base + io_size:#x})"
            )
        bases[dev.name] = aligned
        cursor = aligned + dev.size
    return RegisterMap(
        io_base=io_base,
        io_size=io_size,
        bases=bases,
        devices={d.name: d for d in devices},
    )


def _align(addr: int, size: int) -> int:
    return (addr + size - 1) // size * size
