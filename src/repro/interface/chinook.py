"""The Chinook-style interface synthesis flow (Section 4.1).

``synthesize_interface(devices)`` runs register-map allocation, glue
generation, and driver generation from the one shared specification,
and packages the result as an :class:`InterfaceDesign` that can:

* splice the generated driver under any application program
  (:meth:`InterfaceDesign.build_program`), and
* *deploy* itself onto a co-simulation: device models are instantiated
  behind the generated decoder, the IRQ combiner drives the CPU's
  interrupt pin, and the generated drivers are what the software runs
  (:meth:`InterfaceDesign.deploy`).  Becker et al.'s co-simulation [4]
  then validates the whole interface by execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cosim.backplane import Backplane, InterfaceAdapter
from repro.cosim.kernel import Simulator
from repro.interface.driver import DriverCode, generate_driver
from repro.interface.glue import GlueLogic, build_glue
from repro.interface.regmap import RegisterMap, allocate_register_map
from repro.interface.spec import DeviceSpec
from repro.isa.assembler import Program, assemble
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa

#: device-model behavior: (register offset, value, is_write) -> read value
DeviceModel = Callable[[int, int, bool], int]


@dataclass
class InterfaceDesign:
    """The synthesized interface: register map, glue, and drivers."""

    devices: List[DeviceSpec]
    regmap: RegisterMap
    glue: GlueLogic
    driver: DriverCode
    driver_base: int = 0x100
    ivec: int = 0x40
    isr_save_base: int = 0x7F0

    @property
    def glue_area(self) -> float:
        """Gate count of the generated hardware."""
        return self.glue.area

    def build_program(self, main_asm: str, isa: Optional[Isa] = None)\
            -> Program:
        """Assemble application + ISR stub + generated driver into one
        image.

        The ISR at ``ivec`` saves the registers the generated driver
        uses (r2, r3, ra) to a reserved area, calls the generated
        dispatch, and restores them before ``reti`` — interrupts stay
        disabled throughout, so a single save area suffices.
        """
        save = self.isr_save_base
        text = "\n".join([
            main_asm,
            f".org {self.ivec:#x}",
            f"    sw r2, {save:#x}(r0)",
            f"    sw r3, {save + 1:#x}(r0)",
            f"    sw ra, {save + 2:#x}(r0)",
            "    jal irq_dispatch",
            f"    lw r2, {save:#x}(r0)",
            f"    lw r3, {save + 1:#x}(r0)",
            f"    lw ra, {save + 2:#x}(r0)",
            "    reti",
            f".org {self.driver_base:#x}",
            self.driver.asm,
        ])
        return assemble(text, isa or Isa())

    def deploy(
        self,
        sim: Simulator,
        cpu: Cpu,
        models: Dict[str, DeviceModel],
        clock_period: float = 10.0,
    ) -> Backplane:
        """Mount the synthesized interface on a co-simulation.

        ``models`` gives each device's behavior; the glue's decoder
        routes accesses, per-device wait states charge time, the IRQ
        status word appears at ``regmap.end``, and device models may
        raise interrupts via the returned backplane.
        """
        missing = set(d.name for d in self.devices) - set(models)
        if missing:
            raise KeyError(f"no model for devices: {sorted(missing)}")
        backplane = Backplane(sim, cpu, clock_period=clock_period)
        pending: Dict[str, bool] = {d.name: False for d in self.devices}
        design = self

        class _GlueAdapter(InterfaceAdapter):
            """Routes window accesses through the generated decoder."""

            def access(self, offset: int, value: int, is_write: bool):
                addr = design.regmap.io_base + offset
                if addr == design.regmap.end and not is_write:
                    return design.glue.irq_status_word(pending)
                decoded = design.glue.decode(addr)
                if decoded is None:
                    return 0
                dev_name, reg_offset = decoded
                wait = design.glue.wait_states.get(dev_name, 0)
                if wait:
                    yield sim.timeout(wait * clock_period)
                result = models[dev_name](reg_offset, value, is_write)
                if not is_write and pending.get(dev_name):
                    # a read of the device acknowledges its interrupt;
                    # re-raise if another device is still waiting
                    pending[dev_name] = False
                    if any(pending.values()):
                        backplane.irq()
                return result
                yield  # pragma: no cover - makes this a generator

        # one mount covering the whole I/O window + the status word
        window = self.regmap.end - self.regmap.io_base + 1
        backplane.mount(self.regmap.io_base, window, _GlueAdapter())

        def raise_irq(device: str) -> None:
            if device not in pending:
                raise KeyError(f"unknown device {device!r}")
            pending[device] = True
            backplane.irq()

        backplane.raise_device_irq = raise_irq  # type: ignore[attr-defined]
        backplane.start()
        return backplane

    def report(self) -> str:
        """A synthesis report in the style of an interface compiler."""
        lines = [
            f"interface: {len(self.devices)} devices, "
            f"glue {self.glue_area:.0f} gates",
            self.regmap.asm_equates(),
            self.glue.netlist_text(),
        ]
        return "\n".join(lines)


def synthesize_interface(
    devices: List[DeviceSpec],
    io_base: int = 0x800,
    io_size: int = 0x400,
    address_bits: int = 16,
) -> InterfaceDesign:
    """Run the full interface-synthesis flow."""
    regmap = allocate_register_map(devices, io_base, io_size)
    glue = build_glue(regmap, address_bits)
    driver = generate_driver(regmap, glue)
    return InterfaceDesign(
        devices=list(devices),
        regmap=regmap,
        glue=glue,
        driver=driver,
    )
