"""Device specifications: the common description both sides consume.

A :class:`DeviceSpec` describes a peripheral the way Chinook's common
specification did: its register file (names, access modes, reset
values), whether it interrupts, and how many wait states its accesses
need.  The register-map allocator, glue generator, and driver generator
all read the *same* spec — which is the point: one description, two
implementations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Access(enum.Enum):
    """Register access modes."""

    RO = "ro"
    WO = "wo"
    RW = "rw"

    @property
    def readable(self) -> bool:
        return self is not Access.WO

    @property
    def writable(self) -> bool:
        return self is not Access.RO


@dataclass(frozen=True)
class RegisterSpec:
    """One device register."""

    name: str
    access: Access = Access.RW
    reset: int = 0

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"register name {self.name!r} not an identifier")


@dataclass
class DeviceSpec:
    """One peripheral device."""

    name: str
    registers: List[RegisterSpec]
    has_interrupt: bool = False
    wait_states: int = 0

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"device name {self.name!r} not an identifier")
        if not self.registers:
            raise ValueError(f"device {self.name!r} has no registers")
        names = [r.name for r in self.registers]
        if len(set(names)) != len(names):
            raise ValueError(f"device {self.name!r} has duplicate registers")
        if self.wait_states < 0:
            raise ValueError("wait_states must be >= 0")

    @property
    def size(self) -> int:
        """Address-window size: registers rounded up to a power of two."""
        n = len(self.registers)
        size = 1
        while size < n:
            size *= 2
        return size

    def register(self, name: str) -> RegisterSpec:
        """Look up a register by name."""
        for reg in self.registers:
            if reg.name == name:
                return reg
        raise KeyError(f"device {self.name!r} has no register {name!r}")

    def offset_of(self, name: str) -> int:
        """Word offset of a register within the device window."""
        for i, reg in enumerate(self.registers):
            if reg.name == name:
                return i
        raise KeyError(f"device {self.name!r} has no register {name!r}")


def uart_spec() -> DeviceSpec:
    """A UART-ish peripheral: the canonical embedded example."""
    return DeviceSpec(
        name="uart",
        registers=[
            RegisterSpec("data", Access.RW),
            RegisterSpec("status", Access.RO),
            RegisterSpec("ctrl", Access.RW),
            RegisterSpec("baud", Access.RW, reset=9600),
        ],
        has_interrupt=True,
        wait_states=1,
    )


def timer_spec() -> DeviceSpec:
    """A periodic timer peripheral."""
    return DeviceSpec(
        name="timer",
        registers=[
            RegisterSpec("count", Access.RO),
            RegisterSpec("reload", Access.RW),
            RegisterSpec("ctrl", Access.RW),
        ],
        has_interrupt=True,
    )


def gpio_spec() -> DeviceSpec:
    """A general-purpose I/O port."""
    return DeviceSpec(
        name="gpio",
        registers=[
            RegisterSpec("din", Access.RO),
            RegisterSpec("dout", Access.RW),
            RegisterSpec("dir", Access.RW),
        ],
    )
