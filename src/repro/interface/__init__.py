"""Chinook-style interface synthesis (Figure 4, Section 4.1).

Chou, Ortega & Borriello's Chinook system [11] "performs hardware/
software co-synthesis of the I/O drivers and interface logic ... uses a
common specification for the hardware and software components, but does
no hardware/software partitioning.  Instead, Chinook concentrates on
co-simulation and interface synthesis."

This package reproduces that scope:

* :mod:`repro.interface.spec` — device specifications (registers,
  interrupts, timing) shared by both sides;
* :mod:`repro.interface.regmap` — register-map allocation (device base
  addresses, symbol table);
* :mod:`repro.interface.glue` — glue-logic generation: address decoder,
  interrupt combiner, wait-state insertion, with gate-count estimates;
* :mod:`repro.interface.driver` — software driver generation: R32
  assembly access routines and an interrupt dispatch skeleton, assembled
  and validated by execution;
* :mod:`repro.interface.chinook` — the flow tying them together, with a
  deploy step that mounts everything on the co-simulation backplane so
  the generated drivers run against the generated glue.
"""

from repro.interface.spec import DeviceSpec, RegisterSpec
from repro.interface.regmap import RegisterMap, allocate_register_map
from repro.interface.glue import GlueLogic, build_glue
from repro.interface.driver import DriverCode, generate_driver
from repro.interface.chinook import InterfaceDesign, synthesize_interface

__all__ = [
    "DeviceSpec",
    "RegisterSpec",
    "RegisterMap",
    "allocate_register_map",
    "GlueLogic",
    "build_glue",
    "DriverCode",
    "generate_driver",
    "InterfaceDesign",
    "synthesize_interface",
]
