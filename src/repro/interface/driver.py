"""Software driver generation: the software half of the interface.

From the same register map the glue was generated from, emit R32
assembly access routines (one read/write routine per register, honoring
access modes) and an interrupt dispatch routine that reads the glue's
IRQ status word and calls per-device handlers in priority order.

Calling convention: argument in ``r1``, result in ``r2``, ``r3``
scratch, return address in ``ra`` — matching the framework's code
generator.  The generated text is real assembly: the Chinook flow
(:mod:`repro.interface.chinook`) assembles it and the tests execute it
against the generated glue on the co-simulation backplane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.interface.glue import GlueLogic
from repro.interface.regmap import RegisterMap


@dataclass
class DriverCode:
    """Generated driver assembly plus its entry-point labels."""

    asm: str
    routines: Dict[str, str]      # api name -> label
    irq_counter_base: int

    def label_for(self, device: str, register: str, op: str) -> str:
        """Label of the access routine for (device, register, read/write)."""
        key = f"{op}_{device}_{register}"
        if key not in self.routines:
            raise KeyError(f"no routine {key!r} (check access mode)")
        return self.routines[key]


def generate_driver(
    regmap: RegisterMap,
    glue: GlueLogic,
    irq_status_addr: Optional[int] = None,
    irq_counter_base: int = 0x700,
) -> DriverCode:
    """Generate the driver module.

    ``irq_status_addr`` is where the glue's IRQ status word is readable;
    defaults to the word after the last device window.  The dispatch
    routine bumps a per-device counter at ``irq_counter_base + i`` and
    acknowledges by reading the device's first readable register.
    """
    if irq_status_addr is None:
        irq_status_addr = regmap.end
    lines: List[str] = [
        f"; generated driver (io window {regmap.io_base:#x}.."
        f"{regmap.io_base + regmap.io_size:#x})",
    ]
    routines: Dict[str, str] = {}

    for dev_name in sorted(regmap.devices):
        spec = regmap.devices[dev_name]
        for reg in spec.registers:
            addr = regmap.address_of(dev_name, reg.name)
            if reg.access.readable:
                label = f"read_{dev_name}_{reg.name}"
                routines[label] = label
                lines += [
                    f"{label}:",
                    f"    lw r2, {addr:#x}(r0)",
                    "    jr ra",
                ]
            if reg.access.writable:
                label = f"write_{dev_name}_{reg.name}"
                routines[label] = label
                lines += [
                    f"{label}:",
                    f"    sw r1, {addr:#x}(r0)",
                    "    jr ra",
                ]

    # interrupt dispatch: read status, test bits in priority order
    lines += [
        "irq_dispatch:",
        f"    lw r2, {irq_status_addr:#x}(r0)",
    ]
    routines["irq_dispatch"] = "irq_dispatch"
    for i, dev_name in enumerate(glue.irq_lines):
        lines += [
            f"    andi r3, r2, {1 << i}",
            f"    bne  r3, r0, svc_{dev_name}",
        ]
    lines.append("    jr ra")
    for i, dev_name in enumerate(glue.irq_lines):
        spec = regmap.devices[dev_name]
        ack_reg = next(
            (r for r in spec.registers if r.access.readable), None
        )
        counter = irq_counter_base + i
        lines += [
            f"svc_{dev_name}:",
            f"    lw r3, {counter:#x}(r0)",
            "    addi r3, r3, 1",
            f"    sw r3, {counter:#x}(r0)",
        ]
        if ack_reg is not None:
            addr = regmap.address_of(dev_name, ack_reg.name)
            lines.append(f"    lw r3, {addr:#x}(r0)   ; acknowledge")
        lines.append("    jr ra")
        routines[f"svc_{dev_name}"] = f"svc_{dev_name}"

    return DriverCode(
        asm="\n".join(lines) + "\n",
        routines=routines,
        irq_counter_base=irq_counter_base,
    )
