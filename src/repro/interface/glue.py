"""Glue-logic generation: the hardware half of the interface.

From the register map, generate the structural glue an embedded
microprocessor system needs (Figure 4): the address decoder (one window
comparator per device), the interrupt combiner (OR of device request
lines into the CPU's IRQ pin, plus a priority-encoded status register),
and wait-state counters for slow devices.  Gate counts use simple but
explicit models so the area shows up in system-level cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.interface.regmap import RegisterMap

#: gates per address-comparator bit
DECODER_GATE_PER_BIT = 1.5
#: gates per interrupt-combiner input
IRQ_GATE_PER_LINE = 4.0
#: gates per wait-state counter bit
WAIT_GATE_PER_BIT = 6.0


@dataclass
class DecoderEntry:
    """One device select: match the high address bits of its window."""

    device: str
    base: int
    size: int
    match_bits: int

    def selects(self, addr: int) -> bool:
        """Whether this entry decodes ``addr``."""
        return self.base <= addr < self.base + self.size


@dataclass
class GlueLogic:
    """The generated glue: decoder, interrupt combiner, wait logic."""

    decoder: List[DecoderEntry]
    irq_lines: List[str]              # devices wired to the combiner
    wait_states: Dict[str, int]
    address_bits: int

    def decode(self, addr: int) -> Optional[Tuple[str, int]]:
        """(device, register offset) for an address, or None."""
        for entry in self.decoder:
            if entry.selects(addr):
                return entry.device, addr - entry.base
        return None

    def irq_status_word(self, pending: Dict[str, bool]) -> int:
        """The priority-encoded IRQ status register value: bit *i* set
        when ``irq_lines[i]`` is pending."""
        word = 0
        for i, name in enumerate(self.irq_lines):
            if pending.get(name, False):
                word |= 1 << i
        return word

    @property
    def area(self) -> float:
        """Gate-count estimate of the glue."""
        decoder_area = sum(
            entry.match_bits * DECODER_GATE_PER_BIT
            for entry in self.decoder
        )
        irq_area = len(self.irq_lines) * IRQ_GATE_PER_LINE
        wait_area = sum(
            max(0, ws).bit_length() * WAIT_GATE_PER_BIT
            for ws in self.wait_states.values()
        )
        return decoder_area + irq_area + wait_area

    def netlist_text(self) -> str:
        """A readable structural dump (the 'output netlist')."""
        lines = ["// generated glue logic"]
        for entry in self.decoder:
            lines.append(
                f"decoder {entry.device}_sel = "
                f"(addr[{self.address_bits - 1}:"
                f"{_window_shift(entry.size)}] == "
                f"{entry.base >> _window_shift(entry.size):#x})"
            )
        if self.irq_lines:
            srcs = " | ".join(f"{n}_irq" for n in self.irq_lines)
            lines.append(f"irq cpu_irq = {srcs}")
        for name, ws in sorted(self.wait_states.items()):
            if ws:
                lines.append(f"wait {name}: {ws} cycles")
        return "\n".join(lines)


def _window_shift(size: int) -> int:
    shift = 0
    while (1 << shift) < size:
        shift += 1
    return shift


def build_glue(regmap: RegisterMap, address_bits: int = 16) -> GlueLogic:
    """Generate glue logic from an allocated register map."""
    decoder: List[DecoderEntry] = []
    irq_lines: List[str] = []
    wait_states: Dict[str, int] = {}
    for name in sorted(regmap.devices):
        spec = regmap.devices[name]
        base, size = regmap.window_of(name)
        if base % size != 0:
            raise ValueError(
                f"window of {name!r} not naturally aligned"
            )
        decoder.append(DecoderEntry(
            device=name,
            base=base,
            size=size,
            match_bits=address_bits - _window_shift(size),
        ))
        if spec.has_interrupt:
            irq_lines.append(name)
        wait_states[name] = spec.wait_states
    return GlueLogic(
        decoder=decoder,
        irq_lines=irq_lines,
        wait_states=wait_states,
        address_bits=address_bits,
    )
