"""The SQLite-backed campaign store: results + a persistent job queue.

One database file holds two tables that together make a campaign
durable and resumable:

``results``
    fingerprint-addressed records, drop-in compatible with
    :class:`repro.sweep.cache.ResultCache` (same SHA-256 fingerprint
    keys, same :data:`~repro.sweep.cache.CACHE_VERSION` semantics —
    an entry written by a *newer* schema raises
    :class:`~repro.sweep.cache.CacheVersionError`, an older one reads
    as a miss and is recomputed over);

``jobs``
    the work queue: each row is one cell awaiting computation, with a
    lease stamp (owner + wall-clock deadline) while a worker holds it.
    Workers claim batches atomically (``BEGIN IMMEDIATE``), commit the
    batch's results and the ``done`` transitions in **one
    transaction**, so a SIGKILL at any instant loses at most the
    uncommitted batch — never a committed cell, and never leaves a
    half-written record.  Leases whose owner pid is dead (same-box
    workers) or whose deadline passed are reclaimed, which is what
    makes shards work-stealing: any worker can pick up a dead
    neighbour's cells.

The store opens its connection lazily *per process* — a store object
that crosses a ``fork`` (pool workers, service shards) transparently
reopens in the child instead of sharing the parent's connection, which
SQLite forbids.

Durability tuning: WAL journal (readers never block the writer),
``synchronous=NORMAL`` (a power loss can lose the last transactions
but never corrupt the database — the engine recomputes missing cells,
so this is the right trade), and batched commits on the write paths.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sweep.cache import CACHE_VERSION, CacheVersionError, ResultCache

#: A claimed unit of work: (fingerprint, payload dict).
ClaimedJob = Tuple[str, Dict[str, Any]]

#: One completed cell heading for :meth:`CampaignStore.commit`:
#: (fingerprint, record, obs payload or None, in-worker elapsed seconds).
CompletedJob = Tuple[str, Dict[str, Any], Optional[Dict[str, Any]], float]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    version     INTEGER NOT NULL,
    record      TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    fingerprint    TEXT PRIMARY KEY,
    payload        TEXT NOT NULL,
    state          TEXT NOT NULL DEFAULT 'pending',
    lease_owner    TEXT,
    lease_deadline REAL,
    attempts       INTEGER NOT NULL DEFAULT 0,
    error          TEXT,
    elapsed_s      REAL,
    obs            TEXT,
    drained        INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state);
CREATE TABLE IF NOT EXISTS telemetry (
    id        INTEGER PRIMARY KEY AUTOINCREMENT,
    kind      TEXT NOT NULL,
    owner     TEXT NOT NULL,
    role      TEXT NOT NULL,
    wall_time REAL NOT NULL,
    mono_time REAL NOT NULL,
    seq       INTEGER NOT NULL,
    data      TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS telemetry_kind_owner
    ON telemetry (kind, owner, id);
"""

#: Job states.  ``pending`` → ``leased`` → ``done`` is the happy path;
#: a worker that raises marks the job ``failed`` (retryable until
#: ``max_attempts`` claims have been burned).
JOB_STATES = ("pending", "leased", "done", "failed")


def _pid_alive(pid: int) -> bool:
    """Is a process with this pid running on this box?"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    return True


class CampaignStore:
    """Durable result store + job queue for sweep/fault campaigns.

    Implements the same ``get``/``put``/``fingerprints``/``clear``
    surface as :class:`~repro.sweep.cache.ResultCache`, so anything
    that takes a ``cache=`` accepts a store; the queue methods on top
    are what the campaign service schedules with.
    """

    def __init__(self, path, lease_s: float = 20.0,
                 max_attempts: int = 3,
                 heartbeat_timeout_s: Optional[float] = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.lease_s = float(lease_s)
        self.max_attempts = int(max_attempts)
        #: a lease owner that *has* emitted heartbeats but has been
        #: silent this long is presumed dead/hung even if its lease
        #: deadline has not passed — the liveness test that survives
        #: the move to cross-box shards, where ``_pid_alive`` cannot
        self.heartbeat_timeout_s = (
            float(heartbeat_timeout_s)
            if heartbeat_timeout_s is not None else 2.0 * self.lease_s
        )
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None
        self.conn  # create the schema eagerly

    # ------------------------------------------------------------------
    # connection management (fork-safe)
    # ------------------------------------------------------------------
    @property
    def conn(self) -> sqlite3.Connection:
        """This process's connection; reopened after a ``fork``."""
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            conn = sqlite3.connect(self.path, timeout=30.0,
                                   isolation_level=None)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.executescript(_SCHEMA)
            self._conn = conn
            self._conn_pid = pid
        return self._conn

    def close(self) -> None:
        """Close this process's connection (reopens on next use)."""
        if self._conn is not None and self._conn_pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._conn_pid = None

    # ------------------------------------------------------------------
    # result store (ResultCache-compatible surface)
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored record, or None on miss/stale version.

        Raises :class:`~repro.sweep.cache.CacheVersionError` for rows
        written by a newer schema — same contract as the JSON cache.
        """
        row = self.conn.execute(
            "SELECT version, record FROM results WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None:
            return None
        version, record = row
        if version > CACHE_VERSION:
            raise CacheVersionError(
                f"store entry {fingerprint} in {self.path} was written "
                f"by schema version {version}, but this build only "
                f"supports up to {CACHE_VERSION}; use a fresh store or "
                f"upgrade the tool"
            )
        if version != CACHE_VERSION:
            return None
        try:
            doc = json.loads(record)
        except ValueError:
            return None
        return doc if isinstance(doc, dict) else None

    def put(self, fingerprint: str, record: Dict[str, Any]) -> None:
        """Store one record (its own transaction)."""
        self.put_many([(fingerprint, record)])

    def put_many(
        self, items: Iterable[Tuple[str, Dict[str, Any]]]
    ) -> int:
        """Store many records in one batched transaction."""
        rows = [
            (fp, CACHE_VERSION, json.dumps(record, sort_keys=True))
            for fp, record in items
        ]
        if not rows:
            return 0
        with self._txn():
            self.conn.executemany(
                "INSERT OR REPLACE INTO results "
                "(fingerprint, version, record) VALUES (?, ?, ?)",
                rows,
            )
        return len(rows)

    def fingerprints(self) -> List[str]:
        """Fingerprints of every stored result, sorted."""
        return [
            row[0] for row in self.conn.execute(
                "SELECT fingerprint FROM results ORDER BY fingerprint"
            )
        ]

    def clear(self) -> int:
        """Drop every result, the whole queue, *and* the flight
        recorder; returns results removed."""
        with self._txn():
            removed = self.conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()[0]
            self.conn.execute("DELETE FROM results")
            self.conn.execute("DELETE FROM jobs")
            self.conn.execute("DELETE FROM telemetry")
        return removed

    def __len__(self) -> int:
        return self.conn.execute(
            "SELECT COUNT(*) FROM results").fetchone()[0]

    def __contains__(self, fingerprint: str) -> bool:
        return self.conn.execute(
            "SELECT 1 FROM results WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone() is not None

    def __repr__(self) -> str:
        counts = self.queue_counts()
        return (
            f"CampaignStore({str(self.path)!r}, {len(self)} results, "
            f"queue {counts})"
        )

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def import_cache(self, cache: ResultCache) -> int:
        """Import every readable entry of a JSON :class:`ResultCache`.

        The upgrade path from the flat one-file-per-fingerprint layout:
        unreadable/stale entries are skipped (they were misses there
        too); a newer-versioned entry raises, exactly as reading it
        from the cache would.  Returns how many records were imported.
        """
        items = []
        for fingerprint in cache.fingerprints():
            record = cache.get(fingerprint)
            if record is not None:
                items.append((fingerprint, record))
        return self.put_many(items)

    # ------------------------------------------------------------------
    # job queue
    # ------------------------------------------------------------------
    def enqueue(self, jobs: Iterable[ClaimedJob]) -> int:
        """Add jobs to the queue; returns how many are left to run.

        Idempotent on resume: a fingerprint already queued keeps its
        row (and its state), and any job whose result is already
        committed is marked ``done`` immediately so it is never
        recomputed.
        """
        rows = [(fp, json.dumps(payload, sort_keys=True))
                for fp, payload in jobs]
        with self._txn():
            if rows:
                self.conn.executemany(
                    "INSERT OR IGNORE INTO jobs (fingerprint, payload) "
                    "VALUES (?, ?)",
                    rows,
                )
            self.conn.execute(
                "UPDATE jobs SET state = 'done', lease_owner = NULL "
                "WHERE state != 'done' AND fingerprint IN "
                "(SELECT fingerprint FROM results)"
            )
            remaining = self.conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state != 'done'"
            ).fetchone()[0]
        return remaining

    def claim(self, owner: str, limit: int) -> List[ClaimedJob]:
        """Atomically lease up to ``limit`` runnable jobs to ``owner``.

        Runnable: ``pending``, ``failed`` with attempts left, or
        ``leased`` past its deadline (work stealing — the previous
        owner crashed or stalled).  Claimed rows are stamped with the
        owner and a fresh deadline; the claim burns one attempt.
        Stealing respects the retry budget: an expired lease whose
        attempts are spent settles as permanently ``failed`` instead
        of ping-ponging between thieves forever.
        """
        now = time.time()
        with self._txn():
            self.conn.execute(
                "UPDATE jobs SET state = 'failed', lease_owner = NULL, "
                "lease_deadline = NULL, error = COALESCE(error, "
                "'lease expired with retry budget exhausted') "
                "WHERE state = 'leased' AND lease_deadline < ? "
                "AND attempts >= ?",
                (now, self.max_attempts),
            )
            rows = self.conn.execute(
                "SELECT fingerprint, payload FROM jobs WHERE "
                "(state = 'pending'"
                " OR (state = 'failed' AND attempts < ?)"
                " OR (state = 'leased' AND lease_deadline < ?)) "
                "ORDER BY fingerprint LIMIT ?",
                (self.max_attempts, now, limit),
            ).fetchall()
            if rows:
                self.conn.executemany(
                    "UPDATE jobs SET state = 'leased', lease_owner = ?, "
                    "lease_deadline = ?, attempts = attempts + 1 "
                    "WHERE fingerprint = ?",
                    [(owner, now + self.lease_s, fp) for fp, _ in rows],
                )
        return [(fp, json.loads(payload)) for fp, payload in rows]

    def commit(self, owner: str, completed: List[CompletedJob]) -> None:
        """Commit a batch: results plus ``done`` transitions, one txn.

        This is the durability point — a worker killed before this
        call leaves its lease to be reclaimed; killed after, every
        cell in the batch is permanently recorded.
        """
        if not completed:
            return
        result_rows = [
            (fp, CACHE_VERSION, json.dumps(record, sort_keys=True))
            for fp, record, _, _ in completed
        ]
        job_rows = [
            (json.dumps(obs) if obs is not None else None, elapsed, fp)
            for fp, _, obs, elapsed in completed
        ]
        with self._txn():
            self.conn.executemany(
                "INSERT OR REPLACE INTO results "
                "(fingerprint, version, record) VALUES (?, ?, ?)",
                result_rows,
            )
            self.conn.executemany(
                "UPDATE jobs SET state = 'done', lease_owner = NULL, "
                "lease_deadline = NULL, error = NULL, obs = ?, "
                "elapsed_s = ?, drained = 0 WHERE fingerprint = ?",
                job_rows,
            )

    def fail(self, owner: str, fingerprint: str, error: str) -> None:
        """Record a cell failure (retryable until attempts run out)."""
        with self._txn():
            self.conn.execute(
                "UPDATE jobs SET state = 'failed', lease_owner = NULL, "
                "lease_deadline = NULL, error = ? WHERE fingerprint = ?",
                (error, fingerprint),
            )

    def reclaim_stale(self) -> int:
        """Return stale leases to the pool; how many were reclaimed.

        A lease is stale when its deadline passed, its owner was a
        ``pid:<n>`` on this box that no longer runs (instant
        resume-after-SIGKILL), *or* its owner has emitted heartbeats
        into the ``telemetry`` table but has been silent longer than
        :attr:`heartbeat_timeout_s` — the liveness test that catches
        hung-but-alive shards today and remote shards (no testable
        pid) once the store grows a cross-box transport.  Owners that
        never heartbeat are judged only by deadline and pid, so
        telemetry-off campaigns behave exactly as before.  A stale
        lease with retry budget left goes back to ``pending``; one
        whose attempts are spent settles as permanently ``failed``
        (same rule as :meth:`claim`'s stealing).
        """
        now = time.time()
        heartbeats = self.latest_heartbeats()
        with self._txn():
            leased = self.conn.execute(
                "SELECT fingerprint, lease_owner, lease_deadline, "
                "attempts FROM jobs WHERE state = 'leased'"
            ).fetchall()
            stale = []
            for fp, lease_owner, deadline, attempts in leased:
                if deadline is not None and deadline < now:
                    stale.append((fp, attempts))
                    continue
                if lease_owner and lease_owner.startswith("pid:"):
                    try:
                        pid = int(lease_owner[4:])
                    except ValueError:
                        continue
                    if not _pid_alive(pid):
                        stale.append((fp, attempts))
                        continue
                beat = heartbeats.get(lease_owner)
                if beat is not None and \
                        now - beat["wall_time"] > self.heartbeat_timeout_s:
                    stale.append((fp, attempts))
            repend = [(fp,) for fp, attempts in stale
                      if attempts < self.max_attempts]
            exhaust = [(fp,) for fp, attempts in stale
                       if attempts >= self.max_attempts]
            if repend:
                self.conn.executemany(
                    "UPDATE jobs SET state = 'pending', "
                    "lease_owner = NULL, lease_deadline = NULL "
                    "WHERE fingerprint = ? AND state = 'leased'",
                    repend,
                )
            if exhaust:
                self.conn.executemany(
                    "UPDATE jobs SET state = 'failed', "
                    "lease_owner = NULL, lease_deadline = NULL, "
                    "error = COALESCE(error, 'lease expired with "
                    "retry budget exhausted') "
                    "WHERE fingerprint = ? AND state = 'leased'",
                    exhaust,
                )
        return len(stale)

    def drain_completed(
        self,
    ) -> List[Tuple[str, Dict[str, Any], Optional[Dict[str, Any]], float]]:
        """Completions not yet reported: (fp, record, obs, elapsed_s).

        Marks the returned jobs drained, so each completion is
        delivered to the coordinator exactly once.
        """
        with self._txn():
            rows = self.conn.execute(
                "SELECT j.fingerprint, r.record, j.obs, j.elapsed_s "
                "FROM jobs j JOIN results r USING (fingerprint) "
                "WHERE j.state = 'done' AND j.drained = 0 "
                "ORDER BY j.fingerprint"
            ).fetchall()
            if rows:
                self.conn.executemany(
                    "UPDATE jobs SET drained = 1 WHERE fingerprint = ?",
                    [(fp,) for fp, _, _, _ in rows],
                )
        out = []
        for fp, record, obs, elapsed in rows:
            out.append((
                fp,
                json.loads(record),
                json.loads(obs) if obs else None,
                elapsed if elapsed is not None else 0.0,
            ))
        return out

    def queue_counts(self) -> Dict[str, int]:
        """Row count per job state (every state present, zero-filled)."""
        counts = {state: 0 for state in JOB_STATES}
        for state, n in self.conn.execute(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state"
        ):
            counts[state] = n
        return counts

    def remaining_runnable(self) -> int:
        """Jobs a worker could still make progress on: pending, leased
        (maybe by a peer that will die), or failed with attempts left."""
        return self.conn.execute(
            "SELECT COUNT(*) FROM jobs WHERE state IN "
            "('pending', 'leased') "
            "OR (state = 'failed' AND attempts < ?)",
            (self.max_attempts,),
        ).fetchone()[0]

    def failed_jobs(self) -> List[Tuple[str, str]]:
        """Permanently failed jobs: (fingerprint, error), sorted."""
        return [
            (fp, error or "")
            for fp, error in self.conn.execute(
                "SELECT fingerprint, error FROM jobs "
                "WHERE state = 'failed' AND attempts >= ? "
                "ORDER BY fingerprint",
                (self.max_attempts,),
            )
        ]

    def leased_jobs(self) -> List[Tuple[str, str, float, int]]:
        """Leases currently held: (fingerprint, owner, deadline,
        attempts), sorted — the post-mortem's "uncommitted cells"."""
        return [
            (fp, owner or "", deadline, attempts)
            for fp, owner, deadline, attempts in self.conn.execute(
                "SELECT fingerprint, lease_owner, lease_deadline, "
                "attempts FROM jobs WHERE state = 'leased' "
                "ORDER BY fingerprint"
            )
        ]

    # ------------------------------------------------------------------
    # flight recorder (the telemetry table)
    # ------------------------------------------------------------------
    def record_telemetry(
        self, samples: Iterable[Dict[str, Any]]
    ) -> int:
        """Append flight-recorder samples (one batched transaction).

        ``samples`` are :meth:`TelemetrySample.to_dict` dicts.  The
        table is append-only and lives outside the results/jobs
        contract entirely: nothing here ever feeds a fingerprint or a
        record, so recording cannot perturb resumability or
        byte-identity.
        """
        rows = [
            (s["kind"], s["owner"], s["role"], s["wall_time"],
             s["mono_time"], s["seq"],
             json.dumps(s.get("data", {}), sort_keys=True))
            for s in samples
        ]
        if not rows:
            return 0
        with self._txn():
            self.conn.executemany(
                "INSERT INTO telemetry (kind, owner, role, wall_time, "
                "mono_time, seq, data) VALUES (?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
        return len(rows)

    def telemetry(
        self,
        kind: Optional[str] = None,
        owner: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Recorded samples in arrival order, optionally filtered."""
        query = ("SELECT kind, owner, role, wall_time, mono_time, "
                 "seq, data FROM telemetry")
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if owner is not None:
            clauses.append("owner = ?")
            params.append(owner)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id"
        return [
            {
                "kind": k, "owner": o, "role": r, "wall_time": w,
                "mono_time": m, "seq": q, "data": json.loads(data),
            }
            for k, o, r, w, m, q, data in self.conn.execute(
                query, params)
        ]

    def latest_heartbeats(self) -> Dict[str, Dict[str, Any]]:
        """The newest heartbeat sample per owner (empty when the
        campaign never recorded telemetry)."""
        rows = self.conn.execute(
            "SELECT kind, owner, role, wall_time, mono_time, seq, data "
            "FROM telemetry WHERE id IN (SELECT MAX(id) FROM telemetry "
            "WHERE kind = 'heartbeat' GROUP BY owner)"
        ).fetchall()
        return {
            owner: {
                "kind": kind, "owner": owner, "role": role,
                "wall_time": wall_time, "mono_time": mono_time,
                "seq": seq, "data": json.loads(data),
            }
            for kind, owner, role, wall_time, mono_time, seq, data
            in rows
        }

    # ------------------------------------------------------------------
    def _txn(self):
        return _Transaction(self.conn)


class _Transaction:
    """``BEGIN IMMEDIATE`` … ``COMMIT``/``ROLLBACK`` as a context.

    ``BEGIN IMMEDIATE`` takes the write lock up front, so two
    processes claiming from the same queue serialize instead of both
    reading the same pending rows and double-leasing them.
    """

    def __init__(self, conn: sqlite3.Connection) -> None:
        self.conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self.conn.execute("BEGIN IMMEDIATE")
        return self.conn

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.conn.execute("COMMIT")
        else:
            self.conn.execute("ROLLBACK")
