"""Campaign-as-a-service: durable, sharded, resumable experiment runs.

The substrate ROADMAP item 1 asks for, under both the sweep and fault
engines:

* :mod:`repro.campaign.store` — :class:`CampaignStore`, one SQLite
  file holding a fingerprint-keyed result store (drop-in for
  :class:`repro.sweep.cache.ResultCache`, same ``CACHE_VERSION``
  semantics, plus a migration import from existing cache directories)
  and a lease-stamped persistent job queue;
* :mod:`repro.campaign.service` — :func:`run_store_jobs`, the
  coordinator + N work-stealing shard processes that drain the queue
  with batched claim/commit transactions, reclaim dead leases, and
  make any interrupted campaign resumable with byte-identical final
  tables;
* :mod:`repro.campaign.runners` — the named payload→record runner
  registry shards execute from.

Quick tour::

    from repro.campaign import CampaignStore
    from repro.sweep import expand_grid, run_sweep

    store = CampaignStore("campaign.sqlite")
    grid = expand_grid(heuristics=("greedy", "kl"), seeds=range(32))
    table = run_sweep(grid, workers=4, cache=store)   # kill it anytime;
    table = run_sweep(grid, workers=4, cache=store)   # resumes, 0 recompute
"""

from repro.campaign.store import (
    CampaignStore,
    JOB_STATES,
)
from repro.campaign.service import (
    CampaignCellError,
    CampaignInterrupted,
    run_store_jobs,
)
from repro.campaign.runners import (
    RUNNERS,
    get_runner,
    register_runner,
)

__all__ = [
    "CampaignStore",
    "JOB_STATES",
    "CampaignCellError",
    "CampaignInterrupted",
    "run_store_jobs",
    "RUNNERS",
    "get_runner",
    "register_runner",
]
