"""The campaign service: a coordinator plus N work-stealing shards.

:func:`run_store_jobs` is the execution discipline both engines
(:func:`repro.sweep.engine.run_sweep` and
:func:`repro.fault.campaign.run_campaign`) delegate to when handed a
:class:`~repro.campaign.store.CampaignStore` — the durable counterpart
of :func:`~repro.sweep.engine.pool_map`:

* the coordinator reclaims stale leases (instant resume after a
  SIGKILL'd run), enqueues the still-missing cells, and spawns shard
  processes;
* each shard loops *claim batch → compute → commit batch* against the
  store, so any interruption loses at most one uncommitted batch and a
  restarted campaign recomputes only uncommitted cells;
* shards steal work: a claim considers expired or dead-owner leases
  runnable, so one slow or dead shard never strands its cells;
* the coordinator streams completions back through ``on_done`` in
  deterministic (fingerprint) batches — callers key results by
  fingerprint, so table order never depends on completion order.

Shards talk to the coordinator *only through the store*.  That is the
point: the same protocol runs N processes on one box today and N boxes
against one database file (or a socket-served store) later, and a
coordinator crash is no worse than a worker crash — the queue is the
one source of truth.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.campaign.runners import get_runner
from repro.campaign.store import CampaignStore
from repro.obs.live import (
    DEFAULT_HEARTBEAT_S,
    StoreRecorder,
    TelemetryEmitter,
)

#: ``on_done(fingerprint, record, obs_or_none, in_worker_elapsed_s)``.
OnDone = Callable[[str, Dict[str, Any], Optional[Dict[str, Any]], float],
                  None]


class CampaignInterrupted(RuntimeError):
    """Every shard died while runnable jobs remained.

    The committed cells are safe in the store — re-running the same
    campaign against it resumes where this one stopped.
    """


class CampaignCellError(RuntimeError):
    """One or more cells failed on every attempt.

    ``failures`` maps fingerprint → last error text; completed cells
    stay committed, so a fixed build re-runs only the failures.
    """

    def __init__(self, failures: Dict[str, str]) -> None:
        first = next(iter(sorted(failures)))
        super().__init__(
            f"{len(failures)} campaign cell(s) failed on every "
            f"attempt; first: {first} ({failures[first]}); completed "
            f"cells remain committed in the store"
        )
        self.failures = dict(failures)


def _shard_main(path, lease_s: float, max_attempts: int,
                runner_name: str, batch: int, poll_s: float,
                heartbeat_s: Optional[float] = None) -> None:
    """One shard process: claim → compute → commit until drained.

    With ``heartbeat_s`` set, the shard also heartbeats into the
    store's ``telemetry`` table (cumulative ``done``/``failed`` gauges
    plus the in-flight batch size) so the coordinator, a live
    ``campaign_top``, and :meth:`CampaignStore.reclaim_stale` can all
    judge its liveness from the outside.  ``None`` constructs no
    telemetry object at all — the zero-cost-when-disabled contract.
    """
    store = CampaignStore(path, lease_s=lease_s,
                          max_attempts=max_attempts)
    runner = get_runner(runner_name)
    owner = f"pid:{os.getpid()}"
    emitter = None
    if heartbeat_s is not None:
        emitter = TelemetryEmitter(StoreRecorder(store), owner=owner,
                                   role="shard",
                                   interval_s=heartbeat_s)
    done = failed = 0
    while True:
        jobs = store.claim(owner, batch)
        if emitter is not None:
            emitter.heartbeat(done=done, failed=failed,
                              in_flight=len(jobs))
        if not jobs:
            if store.remaining_runnable() == 0:
                if emitter is not None:
                    emitter.heartbeat(force=True, done=done,
                                      failed=failed, in_flight=0,
                                      exiting=True)
                return
            # peers hold live leases; wait for expiry/reclaim to steal
            time.sleep(poll_s)
            continue
        completed = []
        for fingerprint, payload in jobs:
            t0 = time.perf_counter()
            try:
                record, obs = runner(payload)
            except Exception as exc:  # noqa: BLE001 — cell isolation
                store.fail(owner, fingerprint,
                           f"{type(exc).__name__}: {exc}")
                failed += 1
                continue
            completed.append(
                (fingerprint, record, obs, time.perf_counter() - t0)
            )
            if emitter is not None:
                emitter.heartbeat(
                    done=done + len(completed), failed=failed,
                    in_flight=len(jobs) - len(completed))
        store.commit(owner, completed)
        done += len(completed)


def run_store_jobs(
    store: CampaignStore,
    runner_name: str,
    jobs: Iterable[Tuple[str, Dict[str, Any]]],
    workers: int,
    on_done: OnDone,
    batch: int = 2,
    poll_s: float = 0.02,
    metrics=None,
    span_tracer=None,
    recorder=None,
    heartbeat_s: Optional[float] = None,
) -> None:
    """Run ``jobs`` through the store's queue on ``workers`` shards.

    ``workers == 1`` runs the shard loop in-process (still durable and
    resumable — every batch commits); more workers spawn shard
    processes and the coordinator streams completions, reclaims stale
    leases, and emits queue-depth telemetry.  Raises
    :class:`CampaignCellError` when cells exhausted their attempts and
    :class:`CampaignInterrupted` when all shards died early.

    ``recorder``/``heartbeat_s`` arm the flight recorder: shards
    heartbeat into the store's ``telemetry`` table every
    ``heartbeat_s`` seconds and the coordinator records its own
    heartbeats plus ``queue`` gauge samples to ``recorder`` (default:
    the store itself).  Both ``None`` — the default — constructs no
    telemetry object anywhere on the path.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if heartbeat_s is None and recorder is not None:
        heartbeat_s = DEFAULT_HEARTBEAT_S
    emitter = None
    if heartbeat_s is not None:
        # owner "coord:<pid>" keeps the coordinator's stream distinct
        # from an in-process shard's "pid:<pid>" lease owner
        emitter = TelemetryEmitter(
            recorder if recorder is not None else StoreRecorder(store),
            owner=f"coord:{os.getpid()}",
            role="coordinator", interval_s=heartbeat_s,
        )
    reclaimed = store.reclaim_stale()
    if reclaimed and metrics is not None:
        metrics.counter("campaign.leases.reclaimed").inc(reclaimed)
    jobs = list(jobs)
    remaining = store.enqueue(jobs)
    if metrics is not None:
        metrics.counter("campaign.jobs.enqueued").inc(len(jobs))

    #: only this run's jobs flow back through on_done — a resumed
    #: store also holds done-but-never-drained rows from an earlier,
    #: interrupted coordinator, and those are the caller's cache hits,
    #: not completions it asked this run to compute
    wanted = {fingerprint for fingerprint, _ in jobs}
    delivered = set()

    def deliver(fingerprint, record, obs, elapsed) -> None:
        if fingerprint not in wanted or fingerprint in delivered:
            return
        delivered.add(fingerprint)
        if metrics is not None:
            metrics.counter("campaign.jobs.committed").inc()
        on_done(fingerprint, record, obs, elapsed)

    def drain() -> None:
        for completion in store.drain_completed():
            deliver(*completion)

    def depth_event() -> None:
        if span_tracer is not None:
            counts = store.queue_counts()
            span_tracer.event("queue.depth", **counts)

    def pulse(force: bool = False, exiting: bool = False) -> None:
        # coordinator-side flight-recorder sample: heartbeat + the
        # queue gauges a live status view renders its footer from
        if emitter is None:
            return
        data = {"done": len(delivered), "workers": workers}
        if exiting:
            data["exiting"] = True
        if emitter.heartbeat(force=force, **data):
            emitter.emit("queue", **store.queue_counts())

    depth_event()
    pulse(force=True)
    if workers == 1 or remaining <= 1:
        args = (store.path, store.lease_s, store.max_attempts,
                runner_name, batch, poll_s, heartbeat_s)
        _shard_main(*args)
    else:
        ctx = multiprocessing.get_context()
        shards = [
            ctx.Process(
                target=_shard_main,
                args=(store.path, store.lease_s, store.max_attempts,
                      runner_name, batch, poll_s, heartbeat_s),
                name=f"campaign-shard-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for shard in shards:
            shard.start()
        try:
            while True:
                drain()
                depth_event()
                pulse()
                counts = store.queue_counts()
                undone = sum(
                    n for state, n in counts.items() if state != "done"
                )
                if undone == 0:
                    break
                stale = store.reclaim_stale()
                if stale and metrics is not None:
                    metrics.counter(
                        "campaign.leases.reclaimed").inc(stale)
                if not any(s.is_alive() for s in shards):
                    if store.remaining_runnable() > 0:
                        raise CampaignInterrupted(
                            f"all {workers} shards exited with "
                            f"{store.remaining_runnable()} runnable "
                            f"job(s) left in {store.path}; re-run to "
                            f"resume from the committed cells"
                        )
                    break  # only permanently-failed jobs remain
                time.sleep(poll_s)
        finally:
            for shard in shards:
                shard.join(timeout=5.0)
                if shard.is_alive():
                    shard.terminate()
    drain()
    # belt-and-braces: anything committed but missed by the drain
    # cursor (e.g. drained by a concurrent coordinator) is read back
    # from the results table so every wanted job is delivered
    for fingerprint in sorted(wanted - delivered):
        record = store.get(fingerprint)
        if record is not None:
            deliver(fingerprint, record, None, 0.0)
    depth_event()
    pulse(force=True, exiting=True)

    failures = dict(store.failed_jobs())
    if failures:
        if metrics is not None:
            metrics.counter("campaign.cells.failed").inc(len(failures))
        raise CampaignCellError(failures)
