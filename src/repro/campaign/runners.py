"""Payload runners: how a campaign worker turns a queued job into a
record.

A job payload must be plain JSON (it lives in the ``jobs`` table and
survives process death), so runners rebuild the typed objects from
dicts — the same dict forms the engines already fingerprint.  Every
runner returns ``(record, obs)`` where ``obs`` is the worker-side
observability payload (or None on the unobserved path); records are
pure functions of the payload, so a resumed, re-sharded, or
work-stolen cell produces byte-identical output wherever it runs.

The registry is keyed by name because worker *processes* receive the
runner by name over ``multiprocessing`` — a string round-trips through
spawn/fork and the jobs table; a closure does not.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

RunnerResult = Tuple[Dict[str, Any], Optional[Dict[str, Any]]]
Runner = Callable[[Dict[str, Any]], RunnerResult]

#: name → runner; extended via :func:`register_runner`.
RUNNERS: Dict[str, Runner] = {}


def register_runner(name: str, fn: Runner) -> None:
    """Register a runner under ``name`` (last registration wins)."""
    RUNNERS[name] = fn


def get_runner(name: str) -> Runner:
    """Look up a runner, with a helpful error on typos."""
    try:
        return RUNNERS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign runner {name!r}; have {sorted(RUNNERS)}"
        ) from None


# ----------------------------------------------------------------------
# sweep cells
# ----------------------------------------------------------------------
def _sweep_weights(payload: Dict[str, Any]):
    from repro.partition import CostWeights

    weights = payload.get("weights")
    return CostWeights(**weights) if weights is not None else None


def run_sweep_payload(payload: Dict[str, Any]) -> RunnerResult:
    """One sweep cell from its JSON payload (unobserved)."""
    from repro.sweep.config import SweepConfig
    from repro.sweep.engine import run_cell

    config = SweepConfig.from_dict(payload["config"])
    return run_cell(config, weights=_sweep_weights(payload)), None


def run_sweep_payload_observed(payload: Dict[str, Any]) -> RunnerResult:
    """One sweep cell plus its worker-side spans/probe/metrics."""
    from repro.sweep.config import SweepConfig
    from repro.sweep.engine import run_cell_observed

    config = SweepConfig.from_dict(payload["config"])
    return run_cell_observed(config, weights=_sweep_weights(payload))


# ----------------------------------------------------------------------
# fault cells
# ----------------------------------------------------------------------
def run_fault_payload(payload: Dict[str, Any]) -> RunnerResult:
    """One fault-campaign cell from its JSON payload (unobserved)."""
    from repro.fault.campaign import run_fault_cell

    return run_fault_cell((payload["scenario"], payload["fault"])), None


def run_fault_payload_observed(payload: Dict[str, Any]) -> RunnerResult:
    """One fault-campaign cell plus its observability payload."""
    from repro.fault.campaign import run_fault_cell_observed

    return run_fault_cell_observed(
        (payload["scenario"], payload["fault"])
    )


# ----------------------------------------------------------------------
# explorer genome cells
# ----------------------------------------------------------------------
def run_explore_payload(payload: Dict[str, Any]) -> RunnerResult:
    """One explorer genome evaluation from its JSON payload."""
    from repro.explore.evaluate import run_genome

    return run_genome(payload), None


def run_explore_payload_observed(payload: Dict[str, Any]) -> RunnerResult:
    """One explorer genome evaluation plus its observability payload."""
    from repro.explore.evaluate import run_genome_observed

    return run_genome_observed(payload)


register_runner("sweep", run_sweep_payload)
register_runner("sweep_observed", run_sweep_payload_observed)
register_runner("fault", run_fault_payload)
register_runner("fault_observed", run_fault_payload_observed)
register_runner("explore", run_explore_payload)
register_runner("explore_observed", run_explore_payload_observed)
