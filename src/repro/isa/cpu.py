"""A cycle-counting functional model of the R32 processor.

The model executes one instruction per :meth:`Cpu.step` and reports the
cycles it consumed.  Two features make it a *co-simulation* CPU rather
than just an interpreter:

* **External (memory-mapped) regions.**  A load or store that hits a
  region registered as *external* does not complete synchronously;
  ``step`` returns an :class:`ExternalAccess` describing the request and
  the CPU freezes mid-instruction until :meth:`Cpu.complete_access` is
  called.  The co-simulation backplane (:mod:`repro.cosim.backplane`)
  services the request through whichever interface abstraction is mounted
  — pin-level handshake, bus transaction, register access, or message —
  and charges the elapsed model time.  This is how "actions in one domain
  affect the state of the other" (Section 3.1).

* **Interrupts.**  Devices call :meth:`Cpu.raise_irq`; the CPU vectors to
  ``ivec`` at the next instruction boundary, saving the return address in
  ``epc``; ``reti`` returns and re-enables interrupts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.isa.instructions import (
    Instruction,
    Isa,
    MASK32,
    N_REGS,
    Opcode,
)


class CpuError(RuntimeError):
    """Raised for illegal instructions or execution faults."""


def _signed(x: int) -> int:
    x &= MASK32
    return x - 0x100000000 if x & 0x80000000 else x


@dataclass
class ExternalAccess:
    """A pending memory-mapped access awaiting the backplane.

    ``value`` is the word being written (stores) and is 0 for loads.
    """

    addr: int
    value: int
    is_write: bool


@dataclass
class _Region:
    name: str
    base: int
    size: int
    read_fn: Optional[Callable[[int], int]]
    write_fn: Optional[Callable[[int, int], None]]
    external: bool

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


class Memory:
    """Sparse word-addressed memory with device regions.

    Plain addresses are backed by a dict (unwritten words read as zero).
    Regions may carry synchronous read/write handlers (cheap device
    models) or be marked *external*, deferring the access to the
    co-simulation backplane.
    """

    def __init__(self) -> None:
        self.ram: Dict[int, int] = {}
        self._regions: List[_Region] = []
        self.loads = 0
        self.stores = 0
        #: addresses covered by translated code (owned by the block
        #: translator; None until one attaches, keeping plain-RAM
        #: writes a single extra ``is not None`` test)
        self.code_watch: Optional[set] = None
        #: bumped whenever a write or image load touches a watched
        #: address — the translated tier's invalidation clock
        self.code_version = 0

    def add_region(
        self,
        name: str,
        base: int,
        size: int,
        read_fn: Optional[Callable[[int], int]] = None,
        write_fn: Optional[Callable[[int, int], None]] = None,
        external: bool = False,
    ) -> None:
        """Map a device region at [base, base+size) word addresses."""
        if size <= 0:
            raise ValueError("region size must be positive")
        for region in self._regions:
            if region.base < base + size and base < region.base + region.size:
                raise ValueError(
                    f"region {name!r} overlaps {region.name!r}"
                )
        self._regions.append(
            _Region(name, base, size, read_fn, write_fn, external)
        )

    def region_at(self, addr: int) -> Optional[_Region]:
        """The region containing ``addr``, or None for plain RAM."""
        for region in self._regions:
            if region.contains(addr):
                return region
        return None

    def load_image(self, image: Dict[int, int]) -> None:
        """Copy an assembled program image into RAM."""
        self.ram.update(image)
        watch = self.code_watch
        if watch is not None and not watch.isdisjoint(image):
            self.code_version += 1

    def read(self, addr: int) -> int:
        """Read one word (may raise :class:`_Defer` for external regions)."""
        addr &= MASK32
        self.loads += 1
        region = self.region_at(addr)
        if region is None:
            return self.ram.get(addr, 0)
        if region.external:
            raise _Defer(ExternalAccess(addr, 0, False))
        if region.read_fn is None:
            raise CpuError(f"region {region.name!r} is not readable")
        return region.read_fn(addr - region.base) & MASK32

    def write(self, addr: int, value: int) -> None:
        """Write one word (may raise :class:`_Defer` for external regions)."""
        addr &= MASK32
        value &= MASK32
        self.stores += 1
        region = self.region_at(addr)
        if region is None:
            self.ram[addr] = value
            watch = self.code_watch
            if watch is not None and addr in watch:
                self.code_version += 1
            return
        if region.external:
            raise _Defer(ExternalAccess(addr, value, True))
        if region.write_fn is None:
            raise CpuError(f"region {region.name!r} is not writable")
        region.write_fn(addr - region.base, value)


class _Defer(Exception):
    """Internal: carries an :class:`ExternalAccess` out of Memory."""

    def __init__(self, access: ExternalAccess) -> None:
        super().__init__(access)
        self.access = access


IRQ_ENTRY_CYCLES = 4


#: When set, every new :class:`Cpu` gets ``factory(cpu)`` as its
#: :attr:`~Cpu.translator` — how ``repro.isa.translate`` enables the
#: block-translation tier fleet-wide (scenario builders construct their
#: own CPUs, so a per-instance install cannot reach them).  Managed by
#: :func:`repro.isa.translate.enable_auto_translation`; also armed by
#: the ``REPRO_TRANSLATE=1`` environment variable.
_TRANSLATOR_FACTORY: Optional[Callable[["Cpu"], Any]] = None
_FACTORY_RESOLVED = False


def _resolve_translator_factory() -> Optional[Callable[["Cpu"], Any]]:
    global _TRANSLATOR_FACTORY, _FACTORY_RESOLVED
    _FACTORY_RESOLVED = True
    if os.environ.get("REPRO_TRANSLATE", "") not in ("", "0"):
        from repro.isa.translate import BlockTranslator

        _TRANSLATOR_FACTORY = BlockTranslator
    return _TRANSLATOR_FACTORY


class Cpu:
    """The R32 processor model.

    Typical pure-software use::

        cpu = Cpu(isa, memory)
        memory.load_image(program.image)
        cpu.run()
        print(cpu.cycle_count)

    Co-simulation use alternates ``step()`` / ``complete_access()`` under
    the backplane's control.
    """

    def __init__(
        self,
        isa: Isa,
        memory: Optional[Memory] = None,
        pc: int = 0,
        ivec: int = 0x40,
    ) -> None:
        self.isa = isa
        self.memory = memory if memory is not None else Memory()
        self.regs: List[int] = [0] * N_REGS
        self.pc = pc
        self.ivec = ivec
        self.epc = 0
        self.halted = False
        self.irq_pending = False
        self.irq_enabled = True
        self.cycle_count = 0
        self.instr_count = 0
        self.irq_count = 0
        self._pending: Optional[Tuple[int, Instruction, ExternalAccess]] = None
        #: observers called as fn(pc, instr) after each retired instruction
        self.observers: List[Callable[[int, Instruction], None]] = []
        # fast-path operand cache: word -> (opcode, rd, rs1, rs2, imm,
        # cycles, Instruction, custom-semantics-or-None), invalidated
        # whenever the ISA's version changes (custom ops, cycle edits)
        self._ops: Dict[int, tuple] = {}
        self._ops_version = -1
        #: the block-translation tier (:mod:`repro.isa.translate`), or
        #: None; :meth:`run_block` dispatches to it whenever no
        #: observers are armed
        factory = (_TRANSLATOR_FACTORY if _FACTORY_RESOLVED
                   else _resolve_translator_factory())
        self.translator = factory(self) if factory is not None else None

    # ------------------------------------------------------------------
    # register access helpers (r0 is hardwired to zero)
    # ------------------------------------------------------------------
    def get_reg(self, index: int) -> int:
        """Read a register (r0 reads as zero)."""
        return 0 if index == 0 else self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        """Write a register (writes to r0 are discarded)."""
        if index != 0:
            self.regs[index] = value & MASK32

    # ------------------------------------------------------------------
    # interrupts
    # ------------------------------------------------------------------
    def raise_irq(self) -> None:
        """Assert the (single) interrupt request line."""
        self.irq_pending = True

    def _take_irq(self) -> int:
        self.irq_pending = False
        self.irq_enabled = False
        self.epc = self.pc
        self.pc = self.ivec
        self.irq_count += 1
        return IRQ_ENTRY_CYCLES

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Union[int, ExternalAccess]:
        """Execute one instruction.

        Returns the cycles consumed, or an :class:`ExternalAccess` if the
        instruction touched an external region (the CPU is then frozen
        until :meth:`complete_access`).
        """
        if self.halted:
            return 0
        if self._pending is not None:
            raise CpuError("step() while an external access is pending")
        if self.irq_pending and self.irq_enabled:
            return self._take_irq()
        word = self.memory.ram.get(self.pc)
        if word is None:
            raise CpuError(f"fetch from unprogrammed address {self.pc:#x}")
        try:
            instr = self.isa.decode(word)
        except ValueError as exc:
            raise CpuError(f"pc={self.pc:#x}: {exc}") from None
        pc_before = self.pc
        try:
            cycles = self._execute(instr)
        except _Defer as defer:
            self._pending = (pc_before, instr, defer.access)
            return defer.access
        self._retire(pc_before, instr, cycles)
        return cycles

    def complete_access(
        self, read_value: int = 0, extra_cycles: int = 0
    ) -> int:
        """Finish a deferred external access.

        ``read_value`` is the word returned by the device for loads.
        ``extra_cycles`` lets the backplane charge bus stall cycles into
        the CPU's cycle counter.  Returns total cycles for the
        instruction.
        """
        if self._pending is None:
            raise CpuError("no external access pending")
        pc_before, instr, access = self._pending
        self._pending = None
        if not access.is_write:
            self.set_reg(instr.rd, read_value)
        self.pc = pc_before + 1  # loads/stores never branch
        cycles = self.isa.cycles_of(instr.opcode) + extra_cycles
        self._retire(pc_before, instr, cycles)
        return cycles

    @property
    def pending_access(self) -> Optional[ExternalAccess]:
        """The in-flight external access, if any."""
        return self._pending[2] if self._pending else None

    def _retire(self, pc: int, instr: Instruction, cycles: int) -> None:
        self.instr_count += 1
        self.cycle_count += cycles
        for observer in self.observers:
            observer(pc, instr)

    def run(
        self, max_instructions: int = 1_000_000
    ) -> int:
        """Run until ``halt`` (pure-software mode; external accesses are a
        :class:`CpuError` here).  Returns cycles consumed.

        Executes on the :meth:`run_block` fast path, which falls back to
        :meth:`step` semantics automatically whenever observers are
        armed — the result is observably identical either way.
        """
        start_cycles = self.cycle_count
        executed = 0
        while not self.halted:
            if executed >= max_instructions:
                raise CpuError(
                    f"instruction budget {max_instructions} exhausted "
                    f"at pc={self.pc:#x}"
                )
            steps, _cycles, access = self.run_block(
                max_instructions - executed
            )
            if access is not None:
                raise CpuError(
                    f"external access at {access.addr:#x} outside "
                    "co-simulation; mount the region synchronously or "
                    "run under a backplane"
                )
            executed += steps
        return self.cycle_count - start_cycles

    # ------------------------------------------------------------------
    # fast-path execution
    # ------------------------------------------------------------------
    def run_block(
        self, max_steps: int = 1 << 30
    ) -> Tuple[int, int, Optional[ExternalAccess]]:
        """Execute up to ``max_steps`` step-equivalents in one call.

        Observably identical to calling :meth:`step` up to ``max_steps``
        times, stopping early after ``halt`` retires or an external
        access defers — but the common case (no observers armed) retires
        whole runs of instructions in a single Python frame over a
        pre-decoded operand cache, skipping the per-instruction
        method-call and re-decode overhead (the equivalence contract is
        spelled out in DESIGN.md §9 and enforced by
        ``tests/isa/test_fastpath.py``).

        Returns ``(steps, cycles, access)``:

        * ``steps`` — step-equivalents consumed: retired instructions
          plus taken interrupts, plus one for a deferred external
          access (mirroring what a ``step()`` loop would count);
        * ``cycles`` — the sum a ``step()`` loop would have returned:
          retired-instruction cycles plus interrupt-entry cycles (the
          latter are *returned* for the caller's timekeeping but — as
          on the slow path — never charged into ``cycle_count``).  A
          deferred instruction's cycles are charged by
          :meth:`complete_access`, as on the slow path;
        * ``access`` — the pending :class:`ExternalAccess` if one was
          hit (the CPU is then frozen until :meth:`complete_access`).

        Whenever observers are armed (profilers, fault saboteurs, trace
        hooks) the fast path disables itself and the same loop runs
        over :meth:`step`, preserving the repo's convention that hooks
        cost nothing when absent and change nothing when present.  The
        check covers *every* fast tier: with observers armed neither
        the interpreted fast loop nor the translated tier
        (:mod:`repro.isa.translate`) runs, and detaching the last
        observer (``Profiler.detach()``, ``FaultInjector.disarm()``)
        re-engages whichever fast tier is installed on the very next
        call — there is no sticky disabled state to reset.
        """
        if self.halted or max_steps <= 0:
            return 0, 0, None
        if self._pending is not None:
            raise CpuError("run_block() while an external access is pending")
        if self.observers:
            return self._run_block_slow(max_steps)
        if self.translator is not None:
            return self.translator.execute(max_steps)
        return self._run_block_fast(max_steps)

    def _run_block_fast(
        self, max_steps: int
    ) -> Tuple[int, int, Optional[ExternalAccess]]:
        """The interpreted fast tier: :meth:`run_block` semantics over
        the pre-decoded operand cache (no observer/translator
        dispatch — callers guarantee no observers are armed)."""
        if self.halted or max_steps <= 0:
            return 0, 0, None

        memory = self.memory
        ram_get = memory.ram.get
        regs = self.regs
        isa = self.isa
        if self._ops_version != isa.version:
            self._ops.clear()
            self._ops_version = isa.version
        ops_get = self._ops.get
        instr0 = self.instr_count
        cycles0 = self.cycle_count
        pc = self.pc
        retired = 0
        steps = 0
        cycles = 0
        irq_cycles = 0  # returned to the caller, never in cycle_count
        try:
            while steps < max_steps:
                if self.irq_pending and self.irq_enabled:
                    self.pc = pc
                    irq_cycles += self._take_irq()
                    pc = self.pc
                    steps += 1
                    continue
                word = ram_get(pc)
                if word is None:
                    raise CpuError(
                        f"fetch from unprogrammed address {pc:#x}"
                    )
                entry = ops_get(word)
                if entry is None:
                    entry = self._predecode(word, pc)
                op, rd, rs1, rs2, imm, cyc, instr, custom = entry
                a = regs[rs1] if rs1 else 0
                next_pc = pc + 1
                if custom is not None:
                    v = custom(a, regs[rs2] if rs2 else 0) & MASK32
                    if rd:
                        regs[rd] = v
                elif op == 0x20:  # ADDI
                    if rd:
                        regs[rd] = (a + imm) & MASK32
                elif op == 0x01:  # ADD
                    if rd:
                        regs[rd] = (a + (regs[rs2] if rs2 else 0)) & MASK32
                elif 0x40 <= op <= 0x43:  # BEQ/BNE/BLT/BGE
                    lhs = regs[rd] if rd else 0
                    if op == 0x40:
                        taken = lhs == a
                    elif op == 0x41:
                        taken = lhs != a
                    else:
                        sl = lhs - 0x100000000 if lhs & 0x80000000 else lhs
                        sa = a - 0x100000000 if a & 0x80000000 else a
                        taken = sl < sa if op == 0x42 else sl >= sa
                    if taken:
                        next_pc = pc + 1 + imm
                        cyc += 1  # taken-branch penalty
                elif op == 0x30 or op == 0x31:  # LW / SW
                    # call-out: expose architectural state to handlers
                    self.pc = pc
                    self.instr_count = instr0 + retired
                    self.cycle_count = cycles0 + cycles
                    try:
                        if op == 0x30:
                            v = memory.read(a + imm) & MASK32
                            if rd:
                                regs[rd] = v
                        else:
                            memory.write(a + imm, regs[rd] if rd else 0)
                    except _Defer as defer:
                        self._pending = (pc, instr, defer.access)
                        return steps + 1, cycles + irq_cycles, defer.access
                elif op == 0x02:  # SUB
                    if rd:
                        regs[rd] = (a - (regs[rs2] if rs2 else 0)) & MASK32
                elif op == 0x03:  # MUL
                    if rd:
                        regs[rd] = (a * (regs[rs2] if rs2 else 0)) & MASK32
                elif op == 0x04:  # DIV
                    v = self._div(a, regs[rs2] if rs2 else 0) & MASK32
                    if rd:
                        regs[rd] = v
                elif op == 0x05:  # MOD
                    v = self._mod(a, regs[rs2] if rs2 else 0) & MASK32
                    if rd:
                        regs[rd] = v
                elif op == 0x06:  # AND
                    if rd:
                        regs[rd] = a & (regs[rs2] if rs2 else 0)
                elif op == 0x07:  # OR
                    if rd:
                        regs[rd] = a | (regs[rs2] if rs2 else 0)
                elif op == 0x08:  # XOR
                    if rd:
                        regs[rd] = a ^ (regs[rs2] if rs2 else 0)
                elif op == 0x09:  # SLL
                    if rd:
                        regs[rd] = (
                            a << ((regs[rs2] if rs2 else 0) & 31)
                        ) & MASK32
                elif op == 0x0A:  # SRL
                    if rd:
                        regs[rd] = (a & MASK32) >> (
                            (regs[rs2] if rs2 else 0) & 31
                        )
                elif op == 0x0B:  # SRA
                    sa = a - 0x100000000 if a & 0x80000000 else a
                    if rd:
                        regs[rd] = (
                            sa >> ((regs[rs2] if rs2 else 0) & 31)
                        ) & MASK32
                elif op == 0x0C:  # SLT
                    b = regs[rs2] if rs2 else 0
                    sa = a - 0x100000000 if a & 0x80000000 else a
                    sb = b - 0x100000000 if b & 0x80000000 else b
                    if rd:
                        regs[rd] = int(sa < sb)
                elif op == 0x0D:  # SLTU
                    if rd:
                        regs[rd] = int(
                            (a & MASK32) < ((regs[rs2] if rs2 else 0)
                                            & MASK32)
                        )
                elif op == 0x21:  # ANDI
                    if rd:
                        regs[rd] = a & (imm & 0xFFFF)
                elif op == 0x22:  # ORI
                    if rd:
                        regs[rd] = (a | (imm & 0xFFFF)) & MASK32
                elif op == 0x23:  # XORI
                    if rd:
                        regs[rd] = (a ^ (imm & 0xFFFF)) & MASK32
                elif op == 0x24:  # SLLI
                    if rd:
                        regs[rd] = (a << (imm & 31)) & MASK32
                elif op == 0x25:  # SRLI
                    if rd:
                        regs[rd] = (a & MASK32) >> (imm & 31)
                elif op == 0x26:  # SLTI
                    sa = a - 0x100000000 if a & 0x80000000 else a
                    if rd:
                        regs[rd] = int(sa < imm)
                elif op == 0x27:  # LUI
                    if rd:
                        regs[rd] = ((imm & 0xFFFF) << 16) & MASK32
                elif op == 0x50:  # J
                    next_pc = imm
                elif op == 0x51:  # JAL
                    regs[15] = (pc + 1) & MASK32
                    next_pc = imm
                elif op == 0x52:  # JR
                    next_pc = a
                elif op == 0x60:  # RETI
                    next_pc = self.epc
                    self.irq_enabled = True
                elif op == 0x7F:  # HALT
                    self.halted = True
                    next_pc = pc
                else:  # pragma: no cover - decode guarantees known opcodes
                    raise CpuError(f"unimplemented opcode {op:#x}")

                cycles += cyc
                retired += 1
                steps += 1
                pc = next_pc
                if self.halted:
                    break
        finally:
            self.pc = pc
            self.instr_count = instr0 + retired
            self.cycle_count = cycles0 + cycles
        return steps, cycles + irq_cycles, None

    def _run_block_slow(self, max_steps: int) \
            -> Tuple[int, int, Optional[ExternalAccess]]:
        """:meth:`run_block` semantics over plain :meth:`step` calls —
        the automatic fallback while observers are armed."""
        steps = 0
        cycles = 0
        while steps < max_steps and not self.halted:
            result = self.step()
            steps += 1
            if isinstance(result, ExternalAccess):
                return steps, cycles, result
            cycles += result
        return steps, cycles, None

    def _predecode(self, word: int, pc: int) -> tuple:
        """Fill one fast-path operand-cache entry for ``word``."""
        isa = self.isa
        try:
            instr = isa.decode(word)
        except ValueError as exc:
            raise CpuError(f"pc={pc:#x}: {exc}") from None
        custom = isa.custom(instr.opcode)
        entry = (
            instr.opcode, instr.rd, instr.rs1, instr.rs2, instr.imm,
            isa.cycle_table()[instr.opcode], instr,
            custom.semantics if custom is not None else None,
        )
        self._ops[word] = entry
        return entry

    # ------------------------------------------------------------------
    def _execute(self, instr: Instruction) -> int:
        op = instr.opcode
        cycles = self.isa.cycles_of(op)
        next_pc = self.pc + 1
        # read the register file once; r0 semantics (reads as zero,
        # writes discarded) are kept inline instead of paying a
        # get_reg/set_reg method call per operand
        regs = self.regs
        rd = instr.rd
        rs1 = instr.rs1
        rs2 = instr.rs2
        a = regs[rs1] if rs1 else 0
        b = regs[rs2] if rs2 else 0

        custom = self.isa.custom(op)
        if custom is not None:
            v = custom.semantics(a, b) & MASK32
            if rd:
                regs[rd] = v
        elif op == Opcode.ADD:
            if rd:
                regs[rd] = (a + b) & MASK32
        elif op == Opcode.SUB:
            if rd:
                regs[rd] = (a - b) & MASK32
        elif op == Opcode.MUL:
            if rd:
                regs[rd] = (a * b) & MASK32
        elif op == Opcode.DIV:
            v = self._div(a, b) & MASK32
            if rd:
                regs[rd] = v
        elif op == Opcode.MOD:
            v = self._mod(a, b) & MASK32
            if rd:
                regs[rd] = v
        elif op == Opcode.AND:
            if rd:
                regs[rd] = a & b
        elif op == Opcode.OR:
            if rd:
                regs[rd] = a | b
        elif op == Opcode.XOR:
            if rd:
                regs[rd] = a ^ b
        elif op == Opcode.SLL:
            if rd:
                regs[rd] = (a << (b & 31)) & MASK32
        elif op == Opcode.SRL:
            if rd:
                regs[rd] = (a & MASK32) >> (b & 31)
        elif op == Opcode.SRA:
            if rd:
                regs[rd] = (_signed(a) >> (b & 31)) & MASK32
        elif op == Opcode.SLT:
            if rd:
                regs[rd] = int(_signed(a) < _signed(b))
        elif op == Opcode.SLTU:
            if rd:
                regs[rd] = int((a & MASK32) < (b & MASK32))
        elif op == Opcode.ADDI:
            if rd:
                regs[rd] = (a + instr.imm) & MASK32
        elif op == Opcode.ANDI:
            if rd:
                regs[rd] = a & (instr.imm & 0xFFFF)
        elif op == Opcode.ORI:
            if rd:
                regs[rd] = (a | (instr.imm & 0xFFFF)) & MASK32
        elif op == Opcode.XORI:
            if rd:
                regs[rd] = (a ^ (instr.imm & 0xFFFF)) & MASK32
        elif op == Opcode.SLLI:
            if rd:
                regs[rd] = (a << (instr.imm & 31)) & MASK32
        elif op == Opcode.SRLI:
            if rd:
                regs[rd] = (a & MASK32) >> (instr.imm & 31)
        elif op == Opcode.SLTI:
            if rd:
                regs[rd] = int(_signed(a) < instr.imm)
        elif op == Opcode.LUI:
            if rd:
                regs[rd] = ((instr.imm & 0xFFFF) << 16) & MASK32
        elif op == Opcode.LW:
            v = self.memory.read(a + instr.imm) & MASK32
            if rd:
                regs[rd] = v
        elif op == Opcode.SW:
            self.memory.write(a + instr.imm, regs[rd] if rd else 0)
        elif op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            lhs = regs[rd] if rd else 0
            if op == Opcode.BEQ:
                taken = lhs == a
            elif op == Opcode.BNE:
                taken = lhs != a
            elif op == Opcode.BLT:
                taken = _signed(lhs) < _signed(a)
            else:
                taken = _signed(lhs) >= _signed(a)
            if taken:
                next_pc = self.pc + 1 + instr.imm
                cycles += 1  # taken-branch penalty
        elif op == Opcode.J:
            next_pc = instr.imm
        elif op == Opcode.JAL:
            regs[15] = (self.pc + 1) & MASK32
            next_pc = instr.imm
        elif op == Opcode.JR:
            next_pc = a
        elif op == Opcode.RETI:
            next_pc = self.epc
            self.irq_enabled = True
        elif op == Opcode.HALT:
            self.halted = True
            next_pc = self.pc
        else:  # pragma: no cover - decode guarantees known opcodes
            raise CpuError(f"unimplemented opcode {op:#x}")

        self.pc = next_pc
        return cycles

    @staticmethod
    def _div(a: int, b: int) -> int:
        sa, sb = _signed(a), _signed(b)
        if sb == 0:
            raise CpuError("division by zero")
        q = abs(sa) // abs(sb)
        return q if (sa >= 0) == (sb >= 0) else -q

    @staticmethod
    def _mod(a: int, b: int) -> int:
        sa, sb = _signed(a), _signed(b)
        if sb == 0:
            raise CpuError("modulo by zero")
        r = abs(sa) % abs(sb)
        return r if sa >= 0 else -r

    def __repr__(self) -> str:
        return (
            f"Cpu(pc={self.pc:#x}, cycles={self.cycle_count}, "
            f"instrs={self.instr_count}, halted={self.halted})"
        )
