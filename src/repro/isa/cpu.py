"""A cycle-counting functional model of the R32 processor.

The model executes one instruction per :meth:`Cpu.step` and reports the
cycles it consumed.  Two features make it a *co-simulation* CPU rather
than just an interpreter:

* **External (memory-mapped) regions.**  A load or store that hits a
  region registered as *external* does not complete synchronously;
  ``step`` returns an :class:`ExternalAccess` describing the request and
  the CPU freezes mid-instruction until :meth:`Cpu.complete_access` is
  called.  The co-simulation backplane (:mod:`repro.cosim.backplane`)
  services the request through whichever interface abstraction is mounted
  — pin-level handshake, bus transaction, register access, or message —
  and charges the elapsed model time.  This is how "actions in one domain
  affect the state of the other" (Section 3.1).

* **Interrupts.**  Devices call :meth:`Cpu.raise_irq`; the CPU vectors to
  ``ivec`` at the next instruction boundary, saving the return address in
  ``epc``; ``reti`` returns and re-enables interrupts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.isa.instructions import (
    Instruction,
    Isa,
    MASK32,
    N_REGS,
    Opcode,
)


class CpuError(RuntimeError):
    """Raised for illegal instructions or execution faults."""


def _signed(x: int) -> int:
    x &= MASK32
    return x - 0x100000000 if x & 0x80000000 else x


@dataclass
class ExternalAccess:
    """A pending memory-mapped access awaiting the backplane.

    ``value`` is the word being written (stores) and is 0 for loads.
    """

    addr: int
    value: int
    is_write: bool


@dataclass
class _Region:
    name: str
    base: int
    size: int
    read_fn: Optional[Callable[[int], int]]
    write_fn: Optional[Callable[[int, int], None]]
    external: bool

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


class Memory:
    """Sparse word-addressed memory with device regions.

    Plain addresses are backed by a dict (unwritten words read as zero).
    Regions may carry synchronous read/write handlers (cheap device
    models) or be marked *external*, deferring the access to the
    co-simulation backplane.
    """

    def __init__(self) -> None:
        self.ram: Dict[int, int] = {}
        self._regions: List[_Region] = []
        self.loads = 0
        self.stores = 0

    def add_region(
        self,
        name: str,
        base: int,
        size: int,
        read_fn: Optional[Callable[[int], int]] = None,
        write_fn: Optional[Callable[[int, int], None]] = None,
        external: bool = False,
    ) -> None:
        """Map a device region at [base, base+size) word addresses."""
        if size <= 0:
            raise ValueError("region size must be positive")
        for region in self._regions:
            if region.base < base + size and base < region.base + region.size:
                raise ValueError(
                    f"region {name!r} overlaps {region.name!r}"
                )
        self._regions.append(
            _Region(name, base, size, read_fn, write_fn, external)
        )

    def region_at(self, addr: int) -> Optional[_Region]:
        """The region containing ``addr``, or None for plain RAM."""
        for region in self._regions:
            if region.contains(addr):
                return region
        return None

    def load_image(self, image: Dict[int, int]) -> None:
        """Copy an assembled program image into RAM."""
        self.ram.update(image)

    def read(self, addr: int) -> int:
        """Read one word (may raise :class:`_Defer` for external regions)."""
        addr &= MASK32
        self.loads += 1
        region = self.region_at(addr)
        if region is None:
            return self.ram.get(addr, 0)
        if region.external:
            raise _Defer(ExternalAccess(addr, 0, False))
        if region.read_fn is None:
            raise CpuError(f"region {region.name!r} is not readable")
        return region.read_fn(addr - region.base) & MASK32

    def write(self, addr: int, value: int) -> None:
        """Write one word (may raise :class:`_Defer` for external regions)."""
        addr &= MASK32
        value &= MASK32
        self.stores += 1
        region = self.region_at(addr)
        if region is None:
            self.ram[addr] = value
            return
        if region.external:
            raise _Defer(ExternalAccess(addr, value, True))
        if region.write_fn is None:
            raise CpuError(f"region {region.name!r} is not writable")
        region.write_fn(addr - region.base, value)


class _Defer(Exception):
    """Internal: carries an :class:`ExternalAccess` out of Memory."""

    def __init__(self, access: ExternalAccess) -> None:
        super().__init__(access)
        self.access = access


IRQ_ENTRY_CYCLES = 4


class Cpu:
    """The R32 processor model.

    Typical pure-software use::

        cpu = Cpu(isa, memory)
        memory.load_image(program.image)
        cpu.run()
        print(cpu.cycle_count)

    Co-simulation use alternates ``step()`` / ``complete_access()`` under
    the backplane's control.
    """

    def __init__(
        self,
        isa: Isa,
        memory: Optional[Memory] = None,
        pc: int = 0,
        ivec: int = 0x40,
    ) -> None:
        self.isa = isa
        self.memory = memory if memory is not None else Memory()
        self.regs: List[int] = [0] * N_REGS
        self.pc = pc
        self.ivec = ivec
        self.epc = 0
        self.halted = False
        self.irq_pending = False
        self.irq_enabled = True
        self.cycle_count = 0
        self.instr_count = 0
        self.irq_count = 0
        self._pending: Optional[Tuple[int, Instruction, ExternalAccess]] = None
        #: observers called as fn(pc, instr) after each retired instruction
        self.observers: List[Callable[[int, Instruction], None]] = []

    # ------------------------------------------------------------------
    # register access helpers (r0 is hardwired to zero)
    # ------------------------------------------------------------------
    def get_reg(self, index: int) -> int:
        """Read a register (r0 reads as zero)."""
        return 0 if index == 0 else self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        """Write a register (writes to r0 are discarded)."""
        if index != 0:
            self.regs[index] = value & MASK32

    # ------------------------------------------------------------------
    # interrupts
    # ------------------------------------------------------------------
    def raise_irq(self) -> None:
        """Assert the (single) interrupt request line."""
        self.irq_pending = True

    def _take_irq(self) -> int:
        self.irq_pending = False
        self.irq_enabled = False
        self.epc = self.pc
        self.pc = self.ivec
        self.irq_count += 1
        return IRQ_ENTRY_CYCLES

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Union[int, ExternalAccess]:
        """Execute one instruction.

        Returns the cycles consumed, or an :class:`ExternalAccess` if the
        instruction touched an external region (the CPU is then frozen
        until :meth:`complete_access`).
        """
        if self.halted:
            return 0
        if self._pending is not None:
            raise CpuError("step() while an external access is pending")
        if self.irq_pending and self.irq_enabled:
            return self._take_irq()
        word = self.memory.ram.get(self.pc)
        if word is None:
            raise CpuError(f"fetch from unprogrammed address {self.pc:#x}")
        try:
            instr = self.isa.decode(word)
        except ValueError as exc:
            raise CpuError(f"pc={self.pc:#x}: {exc}") from None
        pc_before = self.pc
        try:
            cycles = self._execute(instr)
        except _Defer as defer:
            self._pending = (pc_before, instr, defer.access)
            return defer.access
        self._retire(pc_before, instr, cycles)
        return cycles

    def complete_access(
        self, read_value: int = 0, extra_cycles: int = 0
    ) -> int:
        """Finish a deferred external access.

        ``read_value`` is the word returned by the device for loads.
        ``extra_cycles`` lets the backplane charge bus stall cycles into
        the CPU's cycle counter.  Returns total cycles for the
        instruction.
        """
        if self._pending is None:
            raise CpuError("no external access pending")
        pc_before, instr, access = self._pending
        self._pending = None
        if not access.is_write:
            self.set_reg(instr.rd, read_value)
        self.pc = pc_before + 1  # loads/stores never branch
        cycles = self.isa.cycles_of(instr.opcode) + extra_cycles
        self._retire(pc_before, instr, cycles)
        return cycles

    @property
    def pending_access(self) -> Optional[ExternalAccess]:
        """The in-flight external access, if any."""
        return self._pending[2] if self._pending else None

    def _retire(self, pc: int, instr: Instruction, cycles: int) -> None:
        self.instr_count += 1
        self.cycle_count += cycles
        for observer in self.observers:
            observer(pc, instr)

    def run(
        self, max_instructions: int = 1_000_000
    ) -> int:
        """Run until ``halt`` (pure-software mode; external accesses are a
        :class:`CpuError` here).  Returns cycles consumed."""
        start_cycles = self.cycle_count
        executed = 0
        while not self.halted:
            if executed >= max_instructions:
                raise CpuError(
                    f"instruction budget {max_instructions} exhausted "
                    f"at pc={self.pc:#x}"
                )
            result = self.step()
            if isinstance(result, ExternalAccess):
                raise CpuError(
                    f"external access at {result.addr:#x} outside "
                    "co-simulation; mount the region synchronously or "
                    "run under a backplane"
                )
            executed += 1
        return self.cycle_count - start_cycles

    # ------------------------------------------------------------------
    def _execute(self, instr: Instruction) -> int:
        op = instr.opcode
        cycles = self.isa.cycles_of(op)
        next_pc = self.pc + 1
        a = self.get_reg(instr.rs1)
        b = self.get_reg(instr.rs2)

        custom = self.isa.custom(op)
        if custom is not None:
            self.set_reg(instr.rd, custom.semantics(a, b) & MASK32)
        elif op == Opcode.ADD:
            self.set_reg(instr.rd, a + b)
        elif op == Opcode.SUB:
            self.set_reg(instr.rd, a - b)
        elif op == Opcode.MUL:
            self.set_reg(instr.rd, a * b)
        elif op == Opcode.DIV:
            self.set_reg(instr.rd, self._div(a, b))
        elif op == Opcode.MOD:
            self.set_reg(instr.rd, self._mod(a, b))
        elif op == Opcode.AND:
            self.set_reg(instr.rd, a & b)
        elif op == Opcode.OR:
            self.set_reg(instr.rd, a | b)
        elif op == Opcode.XOR:
            self.set_reg(instr.rd, a ^ b)
        elif op == Opcode.SLL:
            self.set_reg(instr.rd, a << (b & 31))
        elif op == Opcode.SRL:
            self.set_reg(instr.rd, (a & MASK32) >> (b & 31))
        elif op == Opcode.SRA:
            self.set_reg(instr.rd, _signed(a) >> (b & 31))
        elif op == Opcode.SLT:
            self.set_reg(instr.rd, int(_signed(a) < _signed(b)))
        elif op == Opcode.SLTU:
            self.set_reg(instr.rd, int((a & MASK32) < (b & MASK32)))
        elif op == Opcode.ADDI:
            self.set_reg(instr.rd, a + instr.imm)
        elif op == Opcode.ANDI:
            self.set_reg(instr.rd, a & (instr.imm & 0xFFFF))
        elif op == Opcode.ORI:
            self.set_reg(instr.rd, a | (instr.imm & 0xFFFF))
        elif op == Opcode.XORI:
            self.set_reg(instr.rd, a ^ (instr.imm & 0xFFFF))
        elif op == Opcode.SLLI:
            self.set_reg(instr.rd, a << (instr.imm & 31))
        elif op == Opcode.SRLI:
            self.set_reg(instr.rd, (a & MASK32) >> (instr.imm & 31))
        elif op == Opcode.SLTI:
            self.set_reg(instr.rd, int(_signed(a) < instr.imm))
        elif op == Opcode.LUI:
            self.set_reg(instr.rd, (instr.imm & 0xFFFF) << 16)
        elif op == Opcode.LW:
            self.set_reg(instr.rd, self.memory.read(a + instr.imm))
        elif op == Opcode.SW:
            self.memory.write(a + instr.imm, self.get_reg(instr.rd))
        elif op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            lhs = self.get_reg(instr.rd)
            taken = {
                Opcode.BEQ: lhs == a,
                Opcode.BNE: lhs != a,
                Opcode.BLT: _signed(lhs) < _signed(a),
                Opcode.BGE: _signed(lhs) >= _signed(a),
            }[Opcode(op)]
            if taken:
                next_pc = self.pc + 1 + instr.imm
                cycles += 1  # taken-branch penalty
        elif op == Opcode.J:
            next_pc = instr.imm
        elif op == Opcode.JAL:
            self.set_reg(15, self.pc + 1)
            next_pc = instr.imm
        elif op == Opcode.JR:
            next_pc = a
        elif op == Opcode.RETI:
            next_pc = self.epc
            self.irq_enabled = True
        elif op == Opcode.HALT:
            self.halted = True
            next_pc = self.pc
        else:  # pragma: no cover - decode guarantees known opcodes
            raise CpuError(f"unimplemented opcode {op:#x}")

        self.pc = next_pc
        return cycles

    @staticmethod
    def _div(a: int, b: int) -> int:
        sa, sb = _signed(a), _signed(b)
        if sb == 0:
            raise CpuError("division by zero")
        q = abs(sa) // abs(sb)
        return q if (sa >= 0) == (sb >= 0) else -q

    @staticmethod
    def _mod(a: int, b: int) -> int:
        sa, sb = _signed(a), _signed(b)
        if sb == 0:
            raise CpuError("modulo by zero")
        r = abs(sa) % abs(sb)
        return r if sa >= 0 else -r

    def __repr__(self) -> str:
        return (
            f"Cpu(pc={self.pc:#x}, cycles={self.cycle_count}, "
            f"instrs={self.instr_count}, halted={self.halted})"
        )
