"""The R32 instruction set: definition and binary encoding.

R32 is a small 32-bit RISC ISA in the spirit of the embedded cores of the
paper's era.  Sixteen general registers (``r0`` reads as zero; ``r15`` is
the link register), word-addressed memory, and three instruction formats:

* **R-type** ``op rd, rs1, rs2`` — register ALU operations;
* **I-type** ``op rd, rs1, imm16`` — immediates, loads/stores, branches
  (branches use rd/rs1 as the two compared registers);
* **J-type** ``op imm24`` — jumps and calls.

Binary layout (32 bits)::

    [31:24] opcode   [23:20] rd   [19:16] rs1   [15:12] rs2   [11:0] 0
    [31:24] opcode   [23:20] rd   [19:16] rs1   [15:0]  imm16 (signed)
    [31:24] opcode   [23:0]  imm24 (signed)

Opcodes ``0x80``-``0xFF`` are the *custom instruction* space: an ASIP
derivative of R32 binds these to application-specific functional units
(Section 4.3/4.4 of the paper; PEAS-I [14], instruction-set metamorphosis
[15]).  The base ISA traps on them unless an implementation is installed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

MASK32 = 0xFFFFFFFF
N_REGS = 16
LINK_REG = 15
CUSTOM_BASE = 0x80


class Format(enum.Enum):
    """Instruction encoding formats."""

    R = "r"
    I = "i"  # noqa: E741 - conventional format name
    J = "j"


class Opcode(enum.IntEnum):
    """Base R32 opcodes (custom space starts at :data:`CUSTOM_BASE`)."""

    # R-type ALU
    ADD = 0x01
    SUB = 0x02
    MUL = 0x03
    DIV = 0x04
    MOD = 0x05
    AND = 0x06
    OR = 0x07
    XOR = 0x08
    SLL = 0x09
    SRL = 0x0A
    SRA = 0x0B
    SLT = 0x0C
    SLTU = 0x0D
    # I-type ALU
    ADDI = 0x20
    ANDI = 0x21
    ORI = 0x22
    XORI = 0x23
    SLLI = 0x24
    SRLI = 0x25
    SLTI = 0x26
    LUI = 0x27
    # memory
    LW = 0x30
    SW = 0x31
    # control (I-type compares rd and rs1)
    BEQ = 0x40
    BNE = 0x41
    BLT = 0x42
    BGE = 0x43
    # J-type
    J = 0x50
    JAL = 0x51
    JR = 0x52  # I-type: jump to rs1
    # system
    RETI = 0x60
    HALT = 0x7F


FORMATS: Dict[int, Format] = {
    Opcode.ADD: Format.R, Opcode.SUB: Format.R, Opcode.MUL: Format.R,
    Opcode.DIV: Format.R, Opcode.MOD: Format.R, Opcode.AND: Format.R,
    Opcode.OR: Format.R, Opcode.XOR: Format.R, Opcode.SLL: Format.R,
    Opcode.SRL: Format.R, Opcode.SRA: Format.R, Opcode.SLT: Format.R,
    Opcode.SLTU: Format.R,
    Opcode.ADDI: Format.I, Opcode.ANDI: Format.I, Opcode.ORI: Format.I,
    Opcode.XORI: Format.I, Opcode.SLLI: Format.I, Opcode.SRLI: Format.I,
    Opcode.SLTI: Format.I, Opcode.LUI: Format.I,
    Opcode.LW: Format.I, Opcode.SW: Format.I,
    Opcode.BEQ: Format.I, Opcode.BNE: Format.I, Opcode.BLT: Format.I,
    Opcode.BGE: Format.I,
    Opcode.J: Format.J, Opcode.JAL: Format.J, Opcode.JR: Format.I,
    Opcode.RETI: Format.J, Opcode.HALT: Format.J,
}

#: Default cycle costs per opcode family; an :class:`Isa` may override.
DEFAULT_CYCLES: Dict[int, int] = {
    Opcode.MUL: 4,
    Opcode.DIV: 12,
    Opcode.MOD: 12,
    Opcode.LW: 2,
    Opcode.SW: 2,
    Opcode.JAL: 2,
    Opcode.J: 1,
    Opcode.JR: 1,
    Opcode.RETI: 2,
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    opcode: int
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def mnemonic(self, isa: "Isa") -> str:
        """Assembly mnemonic for this opcode under ``isa``."""
        return isa.mnemonic(self.opcode)


@dataclass
class CustomOp:
    """An application-specific instruction bound into the custom space.

    ``semantics(a, b) -> result`` defines the operation on two source
    operands; ``cycles`` its latency; ``area`` the silicon cost of the
    functional unit that implements it (used by the ASIP selection tools).
    """

    name: str
    opcode: int
    semantics: Callable[[int, int], int]
    cycles: int = 1
    area: float = 50.0

    def __post_init__(self) -> None:
        if not CUSTOM_BASE <= self.opcode <= 0xFF:
            raise ValueError(
                f"custom opcode {self.opcode:#x} outside custom space"
            )
        if self.cycles < 1:
            raise ValueError("custom op cycles must be >= 1")


class _CycleMap(dict):
    """The ISA's opcode→cycles override table, invalidation-aware.

    Behaves exactly like the plain dict it replaces, but bumps the
    owning :class:`Isa`'s :attr:`~Isa.version` on every mutation so the
    memoized :meth:`Isa.cycle_table` (and any CPU-side cache keyed on
    the version) can never serve stale timing.
    """

    def __init__(self, isa: "Isa", *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._isa = isa

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self._isa.version += 1

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self._isa.version += 1

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self._isa.version += 1

    def pop(self, *args):
        result = super().pop(*args)
        self._isa.version += 1
        return result

    def clear(self) -> None:
        super().clear()
        self._isa.version += 1

    def setdefault(self, key, default=None):
        result = super().setdefault(key, default)
        self._isa.version += 1
        return result


class Isa:
    """An R32 ISA variant: base opcodes plus installed custom ops.

    A plain ``Isa()`` is the stock processor; the ASIP tools derive
    variants by :meth:`add_custom` — this object *is* the
    hardware/software boundary of a Type I system, and moving a function
    into a custom instruction is the paper's Section 4.3 form of
    hardware/software partitioning.

    Decoding is memoized per 32-bit word (an executed word decodes to
    the same :class:`Instruction` forever under a fixed custom-op set),
    and the per-opcode timing model can be flattened into one dict by
    :meth:`cycle_table`.  :attr:`version` counts every mutation that
    could invalidate either — installing a custom op or editing
    :attr:`cycles` — so caches key on it.
    """

    def __init__(self, name: str = "r32") -> None:
        self.name = name
        self._customs: Dict[int, CustomOp] = {}
        self._custom_by_name: Dict[str, CustomOp] = {}
        #: bumped on any change to decode or timing behavior
        self.version = 0
        self.cycles: Dict[int, int] = _CycleMap(self, DEFAULT_CYCLES)
        self._decode_cache: Dict[int, Instruction] = {}
        self._cycle_table: Optional[Dict[int, int]] = None
        self._cycle_table_version = -1

    def add_custom(self, op: CustomOp) -> CustomOp:
        """Install a custom instruction (R-type)."""
        if op.opcode in self._customs:
            raise ValueError(f"custom opcode {op.opcode:#x} already in use")
        if op.name.upper() in Opcode.__members__ or \
                op.name in self._custom_by_name:
            raise ValueError(f"mnemonic {op.name!r} already in use")
        self._customs[op.opcode] = op
        self._custom_by_name[op.name] = op
        # a formerly-illegal word may now decode; drop the memo table
        self._decode_cache.clear()
        self.version += 1
        return op

    def next_custom_opcode(self) -> int:
        """Lowest free opcode in the custom space."""
        for code in range(CUSTOM_BASE, 0x100):
            if code not in self._customs:
                return code
        raise ValueError("custom opcode space exhausted")

    def custom(self, opcode: int) -> Optional[CustomOp]:
        """The custom op at ``opcode``, or None."""
        return self._customs.get(opcode)

    def custom_by_name(self, name: str) -> Optional[CustomOp]:
        """The custom op with mnemonic ``name``, or None."""
        return self._custom_by_name.get(name)

    @property
    def customs(self) -> Tuple[CustomOp, ...]:
        """All installed custom ops, by opcode order."""
        return tuple(self._customs[k] for k in sorted(self._customs))

    def custom_area(self) -> float:
        """Total functional-unit area of the installed custom ops."""
        return sum(op.area for op in self._customs.values())

    def fmt(self, opcode: int) -> Format:
        """Encoding format of ``opcode`` (custom ops are R-type)."""
        if opcode in self._customs:
            return Format.R
        return FORMATS[Opcode(opcode)]

    def mnemonic(self, opcode: int) -> str:
        """Assembly mnemonic of ``opcode``."""
        if opcode in self._customs:
            return self._customs[opcode].name
        return Opcode(opcode).name.lower()

    def opcode_of(self, mnemonic: str) -> int:
        """Opcode for ``mnemonic`` (base or custom)."""
        upper = mnemonic.upper()
        if upper in Opcode.__members__:
            return int(Opcode[upper])
        op = self._custom_by_name.get(mnemonic)
        if op is not None:
            return op.opcode
        raise KeyError(f"unknown mnemonic {mnemonic!r}")

    def cycles_of(self, opcode: int) -> int:
        """Cycle cost of ``opcode`` under this ISA's timing model."""
        if opcode in self._customs:
            return self._customs[opcode].cycles
        return self.cycles.get(opcode, 1)

    def cycle_table(self) -> Dict[int, int]:
        """The timing model flattened to one opcode→cycles dict.

        Covers every decodable opcode (all base opcodes plus installed
        customs), so an executor may index it with any decoded
        instruction's opcode without a fallback.  Memoized against
        :attr:`version`; treat the returned dict as read-only.
        """
        if self._cycle_table_version != self.version:
            table = {int(op): self.cycles_of(int(op)) for op in Opcode}
            for code in self._customs:
                table[code] = self.cycles_of(code)
            self._cycle_table = table
            self._cycle_table_version = self.version
        return self._cycle_table

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    def encode(self, instr: Instruction) -> int:
        """Encode to a 32-bit word."""
        self._check_fields(instr)
        word = (instr.opcode & 0xFF) << 24
        fmt = self.fmt(instr.opcode)
        if fmt is Format.R:
            word |= (instr.rd & 0xF) << 20
            word |= (instr.rs1 & 0xF) << 16
            word |= (instr.rs2 & 0xF) << 12
        elif fmt is Format.I:
            word |= (instr.rd & 0xF) << 20
            word |= (instr.rs1 & 0xF) << 16
            word |= instr.imm & 0xFFFF
        else:
            word |= instr.imm & 0xFFFFFF
        return word

    def decode(self, word: int) -> Instruction:
        """Decode a 32-bit word (memoized per word value).

        The memo table is invalidated when a custom op is installed;
        illegal words are never cached, so they stay re-decodable after
        the custom space grows over them.
        """
        instr = self._decode_cache.get(word)
        if instr is None:
            instr = self.decode_uncached(word)
            self._decode_cache[word] = instr
        return instr

    def decode_uncached(self, word: int) -> Instruction:
        """Decode a 32-bit word without consulting the memo table.

        The reference decode path: :meth:`decode` is defined as a cache
        over exactly this function (asserted by the fast-path
        differential tests and timed by ``benchmarks/test_bench_isa``).
        """
        opcode = (word >> 24) & 0xFF
        if opcode not in self._customs:
            try:
                Opcode(opcode)
            except ValueError:
                raise ValueError(f"illegal opcode {opcode:#x}") from None
        fmt = self.fmt(opcode)
        if fmt is Format.R:
            return Instruction(
                opcode,
                rd=(word >> 20) & 0xF,
                rs1=(word >> 16) & 0xF,
                rs2=(word >> 12) & 0xF,
            )
        if fmt is Format.I:
            imm = word & 0xFFFF
            if imm & 0x8000:
                imm -= 0x10000
            return Instruction(
                opcode,
                rd=(word >> 20) & 0xF,
                rs1=(word >> 16) & 0xF,
                imm=imm,
            )
        imm = word & 0xFFFFFF
        if imm & 0x800000:
            imm -= 0x1000000
        return Instruction(opcode, imm=imm)

    def _check_fields(self, instr: Instruction) -> None:
        for reg in (instr.rd, instr.rs1, instr.rs2):
            if not 0 <= reg < N_REGS:
                raise ValueError(f"register r{reg} out of range")
        fmt = self.fmt(instr.opcode)
        if fmt is Format.I and not -0x8000 <= instr.imm <= 0xFFFF:
            raise ValueError(f"imm16 {instr.imm} out of range")
        if fmt is Format.J and not -0x800000 <= instr.imm <= 0xFFFFFF:
            raise ValueError(f"imm24 {instr.imm} out of range")

    def disassemble(self, instr: Instruction) -> str:
        """Human-readable assembly text for one instruction."""
        mn = self.mnemonic(instr.opcode)
        fmt = self.fmt(instr.opcode)
        if instr.opcode in (Opcode.HALT, Opcode.RETI):
            return mn
        if fmt is Format.R:
            return f"{mn} r{instr.rd}, r{instr.rs1}, r{instr.rs2}"
        if instr.opcode == Opcode.LW:
            return f"{mn} r{instr.rd}, {instr.imm}(r{instr.rs1})"
        if instr.opcode == Opcode.SW:
            return f"{mn} r{instr.rd}, {instr.imm}(r{instr.rs1})"
        if instr.opcode == Opcode.JR:
            return f"{mn} r{instr.rs1}"
        if instr.opcode == Opcode.LUI:
            return f"{mn} r{instr.rd}, {instr.imm}"
        if fmt is Format.I:
            return f"{mn} r{instr.rd}, r{instr.rs1}, {instr.imm}"
        return f"{mn} {instr.imm}"

    def __repr__(self) -> str:
        return f"Isa({self.name!r}, customs={len(self._customs)})"
