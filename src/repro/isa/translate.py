"""The block-translation execution tier: hot basic blocks as closures.

This is the third R32 execution engine, above ``step()`` (the
reference interpreter) and ``Cpu._run_block_fast`` (the pre-decoded
operand-cache loop).  A :class:`BlockTranslator` compiles each hot
basic block — a maximal straight-line run of instructions ending at
the first control transfer — into one specialized Python function:
operands are pre-resolved to direct ``regs[i]`` subscripts (``r0``
folds to literal zeros, ``lui``/``addi r, r0`` to constants), cycle
accounting is fused into compile-time prefix sums, and the dispatch
chain of the interpreter disappears entirely.  Executing a block is
one function call instead of one interpreter iteration per
instruction.

The tier is governed by the DESIGN.md §9/§13 equivalence contract —
**a fast path may move host time, never model results** — and keeps it
the same way ``run_block`` does:

* **Observers force the slow path.**  ``Cpu.run_block`` dispatches to
  the translator only when ``cpu.observers`` is empty, so profilers,
  fault saboteurs, and trace hooks always see instruction-granular
  execution.  Detaching the last observer re-engages the translated
  tier on the next call; there is no sticky disabled state.
* **Interrupts hit the same boundaries.**  The dispatcher checks the
  IRQ lines between blocks, and translated code re-checks after every
  instruction whose side effects could raise one mid-block (memory
  accesses through device regions, custom-op semantics) — exactly the
  points where the interpreted loop's per-instruction check could
  observe a new ``irq_pending``.
* **External accesses defer identically.**  A load/store that hits an
  external region sets ``cpu._pending`` with the same ``(pc, instr,
  access)`` triple, the same un-advanced ``pc``, and the same counter
  state as the interpreter, then surfaces the
  :class:`~repro.isa.cpu.ExternalAccess` out of ``run_block``.
* **Errors carry the same message at the same state.**  Translated
  code commits architectural state *before* every faultable operation
  (div/mod, memory, custom semantics), so a ``CpuError`` propagates
  with the identical boundary snapshot the interpreter's ``finally``
  would leave.

The block cache is keyed by ``(pc, Isa.version, code words)``: blocks
are stored per entry ``pc``; :attr:`Isa.version` invalidates the whole
cache on ``add_custom`` or cycle-table edits; and the code words are
guarded by a write-watch — :class:`~repro.isa.cpu.Memory` bumps its
``code_version`` whenever a store or ``load_image`` touches an address
covered by translated code, from *any* tier (so self-modifying stores
executed under observers still invalidate), and translated stores
additionally early-exit their own block when they rewrite it.  RAM
mutations that bypass ``Memory.write``/``load_image`` (direct pokes at
the ``ram`` dict) are outside the contract.

Budget exactness: the backplane's ``batch_instructions`` budget is a
step-equivalent count, so a block longer than the remaining budget is
never run translated — the dispatcher hands the exact remainder to the
interpreted fast tier instead, preserving the precise sequence of
timeouts and adapter activations at any batch size.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Tuple

from repro.isa import cpu as _cpu_mod
from repro.isa.cpu import Cpu, CpuError, ExternalAccess, _Defer
from repro.isa.instructions import Instruction, MASK32

__all__ = [
    "BlockTranslator",
    "install",
    "scan_block",
    "enable_auto_translation",
    "disable_auto_translation",
    "auto_translation",
]

#: Longest translated block, in instructions.
MAX_BLOCK_LEN = 64
#: Block-cache entries before the oldest translation is evicted.
MAX_BLOCKS = 1024
#: Entries into a block before it is compiled (1 = translate eagerly).
DEFAULT_HOT_THRESHOLD = 2

# exit flags in the low 3 bits of a translated function's return value
# (the high bits carry the step count, so most returns are baked-in
# integer literals)
_END = 0     # block ran to its terminator or fell off its end
_IRQ = 1     # an enabled interrupt became pending mid-block
_SMC = 2     # a store rewrote this block's own code
_DEFER = 3   # an external access deferred (cpu._pending is set)
_HALT = 4    # halt retired

#: Opcodes that end a basic block.
_TERMINATORS = frozenset(
    (0x40, 0x41, 0x42, 0x43, 0x50, 0x51, 0x52, 0x60, 0x7F)
)

_M = MASK32  # literal spelled into generated source
_SIGN = 0x80000000
_WRAP = 0x100000000


def _reg(index: int) -> str:
    """Operand source text with r0 pre-resolved to a literal zero."""
    return f"regs[{index}]" if index else "0"


def scan_block(ram_get, decode, pc: int, max_len: int = MAX_BLOCK_LEN):
    """Decode the basic block entered at ``pc`` straight from RAM.

    Stops at the first control transfer (inclusive), at an
    unprogrammed or undecodable word (exclusive), or at ``max_len``.
    Shared by the scalar translator and the batch tier
    (:mod:`repro.isa.batch`) so both form identical blocks from
    identical code.  Returns ``(instrs, addrs)``.
    """
    instrs: List[Instruction] = []
    addrs: List[int] = []
    while len(instrs) < max_len:
        word = ram_get(pc)
        if word is None:
            break
        try:
            instr = decode(word)
        except ValueError:
            break
        instrs.append(instr)
        addrs.append(pc)
        if instr.opcode in _TERMINATORS:
            break
        pc += 1
    return instrs, addrs


def _signed_lines(var: str, out: List[str], indent: str) -> None:
    out.append(
        f"{indent}{var} = {var} - {_WRAP} if {var} & {_SIGN} else {var}"
    )


class BlockTranslator:
    """Attach to a :class:`~repro.isa.cpu.Cpu` as its translated tier.

    ``cpu.run_block`` dispatches here whenever no observers are armed;
    :meth:`execute` is observably identical to the interpreted tiers
    (enforced by ``tests/isa/test_translate.py``).  Construction is
    cheap and touches nothing but ``memory.code_watch``; blocks are
    scanned on first entry and compiled once entered
    ``hot_threshold`` times.
    """

    def __init__(
        self,
        cpu: Cpu,
        hot_threshold: int = DEFAULT_HOT_THRESHOLD,
        max_blocks: int = MAX_BLOCKS,
        max_block_len: int = MAX_BLOCK_LEN,
    ) -> None:
        if hot_threshold < 1:
            raise ValueError("hot_threshold must be >= 1")
        self.cpu = cpu
        self.hot_threshold = hot_threshold
        self.max_blocks = max_blocks
        self.max_block_len = max_block_len
        #: pc -> (fn, length, memory.code_version at translation)
        self._blocks: Dict[int, Tuple] = {}
        self._counts: Dict[int, int] = {}
        self._isa_version = cpu.isa.version
        #: blocks compiled over the translator's lifetime
        self.translations = 0
        #: whole-cache drops (ISA mutation)
        self.invalidations = 0
        #: single blocks dropped oldest-first at ``max_blocks``
        self.evictions = 0
        #: mid-block early exits (self-modifying store or IRQ)
        self.early_exits = 0
        if cpu.memory.code_watch is None:
            cpu.memory.code_watch = set()

    def __repr__(self) -> str:
        return (
            f"BlockTranslator(blocks={len(self._blocks)}, "
            f"translations={self.translations}, "
            f"hot_threshold={self.hot_threshold})"
        )

    @property
    def block_count(self) -> int:
        """Live entries in the block cache."""
        return len(self._blocks)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self, max_steps: int
    ) -> Tuple[int, int, Optional[ExternalAccess]]:
        """:meth:`Cpu.run_block` semantics over translated blocks.

        Returns the same ``(steps, cycles, access)`` triple with the
        same counting rules — IRQ-entry cycles are returned to the
        caller but never charged into ``cycle_count``, a deferred
        access counts one step and leaves the CPU frozen.  Falls back
        to the interpreted fast tier for cold blocks and for blocks
        longer than the remaining step budget.
        """
        cpu = self.cpu
        if cpu.halted or max_steps <= 0:
            return 0, 0, None
        if cpu._pending is not None:
            raise CpuError("run_block() while an external access is pending")
        isa = cpu.isa
        memory = cpu.memory
        if self._isa_version != isa.version:
            self._blocks.clear()
            self._counts.clear()
            self._isa_version = isa.version
            self.invalidations += 1
        blocks = self._blocks
        counts = self._counts
        regs = cpu.regs
        steps = 0
        extra = 0  # IRQ-entry cycles: returned, never in cycle_count
        cycles0 = cpu.cycle_count
        while steps < max_steps:
            if cpu.irq_pending and cpu.irq_enabled:
                extra += cpu._take_irq()
                steps += 1
                continue
            pc = cpu.pc
            entry = blocks.get(pc)
            if entry is not None and entry[2] == memory.code_version:
                if entry[1] > max_steps - steps:
                    # not enough budget for the whole block: hand the
                    # exact remainder to the interpreted tier
                    before = cpu.cycle_count
                    s, c, access = cpu._run_block_fast(max_steps - steps)
                    steps += s
                    extra += c - (cpu.cycle_count - before)
                    if access is not None:
                        return (steps, cpu.cycle_count - cycles0 + extra,
                                access)
                    if cpu.halted:
                        break
                    continue
                res = entry[0](
                    cpu, regs, memory, cpu.instr_count, cpu.cycle_count
                )
                steps += res >> 3
                flag = res & 7
                if flag == _END:
                    continue
                if flag == _HALT:
                    break
                if flag == _DEFER:
                    return (steps, cpu.cycle_count - cycles0 + extra,
                            cpu._pending[2])
                self.early_exits += 1  # _IRQ or _SMC: re-dispatch
                continue
            # cold block, or stale after a code-watch bump
            instrs, addrs = self._scan(pc)
            if not instrs:
                self._raise_fetch_error(pc)
            hits = counts.get(pc, 0) + 1
            counts[pc] = hits
            if entry is not None or hits >= self.hot_threshold:
                blocks[pc] = self._compile(pc, instrs, addrs)
                continue
            before = cpu.cycle_count
            s, c, access = cpu._run_block_fast(
                min(len(instrs), max_steps - steps)
            )
            steps += s
            extra += c - (cpu.cycle_count - before)
            if access is not None:
                return steps, cpu.cycle_count - cycles0 + extra, access
            if cpu.halted:
                break
        return steps, cpu.cycle_count - cycles0 + extra, None

    # ------------------------------------------------------------------
    # block formation
    # ------------------------------------------------------------------
    def _scan(self, pc: int) -> Tuple[List[Instruction], List[int]]:
        """Decode the basic block entered at ``pc`` straight from RAM.

        Stops at the first control transfer (inclusive), at an
        unprogrammed or undecodable word (exclusive), or at
        ``max_block_len``.
        """
        return scan_block(
            self.cpu.memory.ram.get, self.cpu.isa.decode, pc,
            self.max_block_len,
        )

    def _raise_fetch_error(self, pc: int) -> None:
        """Reproduce the interpreter's fetch/decode error exactly."""
        word = self.cpu.memory.ram.get(pc)
        if word is None:
            raise CpuError(f"fetch from unprogrammed address {pc:#x}")
        try:
            self.cpu.isa.decode(word)
        except ValueError as exc:
            raise CpuError(f"pc={pc:#x}: {exc}") from None
        raise AssertionError(  # pragma: no cover - scan() mirrors decode
            f"block scan rejected decodable word at {pc:#x}"
        )

    # ------------------------------------------------------------------
    # code generation
    # ------------------------------------------------------------------
    def _compile(
        self, pc0: int, instrs: List[Instruction], addrs: List[int]
    ) -> Tuple:
        """Compile one scanned block into its specialized function."""
        if pc0 not in self._blocks and len(self._blocks) >= self.max_blocks:
            # evict oldest-first (dict insertion order) so a long
            # campaign replaces one cold translation instead of
            # periodically re-translating every hot block
            oldest = next(iter(self._blocks))
            del self._blocks[oldest]
            self._counts.pop(oldest, None)
            self.evictions += 1
        cpu = self.cpu
        isa = cpu.isa
        table = isa.cycle_table()
        # compile-time cycle prefix sums: cyc[k] = cycles retired
        # before instruction k
        cyc = [0]
        for instr in instrs:
            cyc.append(cyc[-1] + table[instr.opcode])
        namespace = {
            "_Defer": _Defer,
            "_div": Cpu._div,
            "_mod": Cpu._mod,
            "INSTRS": tuple(instrs),
            "ADDRS": frozenset(addrs),
        }
        lines = [
            f"def _block_{pc0 & _M:x}(cpu, regs, memory, i0, c0):",
        ]
        for k, (instr, pc) in enumerate(zip(instrs, addrs)):
            self._emit(lines, namespace, k, pc, instr, cyc)
        last = instrs[-1]
        if last.opcode not in _TERMINATORS:
            # fell off the scanned end (length cap or untranslatable
            # next word): commit and let the dispatcher continue
            k = len(instrs)
            lines.append(f"    cpu.pc = {addrs[-1] + 1}")
            lines.append(f"    cpu.instr_count = i0 + {k}")
            lines.append(f"    cpu.cycle_count = c0 + {cyc[k]}")
            lines.append(f"    return {k * 8 + _END}")
        source = "\n".join(lines)
        code = compile(source, f"<r32-block@{pc0:#x}>", "exec")
        exec(code, namespace)
        fn = namespace[f"_block_{pc0 & _M:x}"]
        self.translations += 1
        cpu.memory.code_watch.update(addrs)
        return (fn, len(instrs), cpu.memory.code_version)

    def _emit(
        self,
        out: List[str],
        namespace: dict,
        k: int,
        pc: int,
        instr: Instruction,
        cyc: List[int],
    ) -> None:
        """Append the source lines for instruction ``k`` at ``pc``."""
        isa = self.cpu.isa
        op = instr.opcode
        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
        a, b = _reg(rs1), _reg(rs2)
        k1 = k + 1
        out.append(f"    # {pc:#x}: {isa.disassemble(instr)}")

        def commit_here() -> None:
            """State the interpreter exposes before a faultable op."""
            out.append(
                f"    cpu.pc = {pc}; cpu.instr_count = i0 + {k}; "
                f"cpu.cycle_count = c0 + {cyc[k]}"
            )

        def exit_next(flag: int, indent: str = "    ") -> None:
            """Early exit with instruction ``k`` retired."""
            out.append(
                f"{indent}cpu.pc = {pc + 1}; "
                f"cpu.instr_count = i0 + {k1}; "
                f"cpu.cycle_count = c0 + {cyc[k1]}"
            )
            out.append(f"{indent}return {k1 * 8 + flag}")

        def irq_recheck() -> None:
            """Mirror the interpreter's per-instruction IRQ check
            after an op whose side effects may raise one."""
            out.append("    if cpu.irq_pending and cpu.irq_enabled:")
            exit_next(_IRQ, "        ")

        custom = isa.custom(op)
        if custom is not None:
            cname = f"C{k}"
            namespace[cname] = custom.semantics
            commit_here()
            call = f"{cname}({a}, {b}) & {_M}"
            out.append(f"    {f'regs[{rd}] = ' if rd else ''}{call}")
            irq_recheck()
        elif op == 0x20:  # ADDI
            if rd:
                if rs1:
                    out.append(f"    regs[{rd}] = ({a} + {imm}) & {_M}")
                else:
                    out.append(f"    regs[{rd}] = {imm & _M}")
        elif op == 0x01:  # ADD
            if rd:
                out.append(f"    regs[{rd}] = ({a} + {b}) & {_M}")
        elif op == 0x02:  # SUB
            if rd:
                out.append(f"    regs[{rd}] = ({a} - {b}) & {_M}")
        elif op == 0x03:  # MUL
            if rd:
                out.append(f"    regs[{rd}] = ({a} * {b}) & {_M}")
        elif op in (0x04, 0x05):  # DIV / MOD
            fn = "_div" if op == 0x04 else "_mod"
            commit_here()
            call = f"{fn}({a}, {b}) & {_M}"
            out.append(f"    {f'regs[{rd}] = ' if rd else ''}{call}")
        elif op == 0x06:  # AND
            if rd:
                out.append(f"    regs[{rd}] = {a} & {b}")
        elif op == 0x07:  # OR
            if rd:
                out.append(f"    regs[{rd}] = {a} | {b}")
        elif op == 0x08:  # XOR
            if rd:
                out.append(f"    regs[{rd}] = {a} ^ {b}")
        elif op == 0x09:  # SLL
            if rd:
                out.append(
                    f"    regs[{rd}] = ({a} << ({b} & 31)) & {_M}"
                )
        elif op == 0x0A:  # SRL
            if rd:
                out.append(
                    f"    regs[{rd}] = ({a} & {_M}) >> ({b} & 31)"
                )
        elif op == 0x0B:  # SRA
            if rd:
                out.append(f"    _a = {a}")
                _signed_lines("_a", out, "    ")
                out.append(
                    f"    regs[{rd}] = (_a >> ({b} & 31)) & {_M}"
                )
        elif op == 0x0C:  # SLT
            if rd:
                out.append(f"    _a = {a}")
                out.append(f"    _b = {b}")
                _signed_lines("_a", out, "    ")
                _signed_lines("_b", out, "    ")
                out.append(f"    regs[{rd}] = 1 if _a < _b else 0")
        elif op == 0x0D:  # SLTU
            if rd:
                out.append(
                    f"    regs[{rd}] = "
                    f"1 if ({a} & {_M}) < ({b} & {_M}) else 0"
                )
        elif op == 0x21:  # ANDI
            if rd:
                out.append(f"    regs[{rd}] = {a} & {imm & 0xFFFF}")
        elif op == 0x22:  # ORI
            if rd:
                out.append(
                    f"    regs[{rd}] = ({a} | {imm & 0xFFFF}) & {_M}"
                )
        elif op == 0x23:  # XORI
            if rd:
                out.append(
                    f"    regs[{rd}] = ({a} ^ {imm & 0xFFFF}) & {_M}"
                )
        elif op == 0x24:  # SLLI
            if rd:
                out.append(
                    f"    regs[{rd}] = ({a} << {imm & 31}) & {_M}"
                )
        elif op == 0x25:  # SRLI
            if rd:
                out.append(
                    f"    regs[{rd}] = ({a} & {_M}) >> {imm & 31}"
                )
        elif op == 0x26:  # SLTI
            if rd:
                out.append(f"    _a = {a}")
                _signed_lines("_a", out, "    ")
                out.append(f"    regs[{rd}] = 1 if _a < {imm} else 0")
        elif op == 0x27:  # LUI
            if rd:
                out.append(f"    regs[{rd}] = {((imm & 0xFFFF) << 16) & _M}")
        elif op == 0x30:  # LW
            commit_here()
            addr = f"{a} + {imm}" if rs1 else f"{imm}"
            out.append("    try:")
            if rd:
                out.append(f"        _v = memory.read({addr}) & {_M}")
            else:
                out.append(f"        memory.read({addr})")
            out.append("    except _Defer as _d:")
            out.append(
                f"        cpu._pending = ({pc}, INSTRS[{k}], _d.access)"
            )
            out.append(f"        return {k1 * 8 + _DEFER}")
            if rd:
                out.append(f"    regs[{rd}] = _v")
            irq_recheck()
        elif op == 0x31:  # SW
            commit_here()
            if rs1:
                out.append(f"    _wa = ({a} + {imm}) & {_M}")
            else:
                out.append(f"    _wa = {imm & _M}")
            out.append("    try:")
            out.append(f"        memory.write(_wa, {_reg(rd)})")
            out.append("    except _Defer as _d:")
            out.append(
                f"        cpu._pending = ({pc}, INSTRS[{k}], _d.access)"
            )
            out.append(f"        return {k1 * 8 + _DEFER}")
            out.append("    if _wa in ADDRS:")
            exit_next(_SMC, "        ")
            irq_recheck()
        elif 0x40 <= op <= 0x43:  # BEQ/BNE/BLT/BGE
            lhs = _reg(rd)
            out.append(f"    _l = {lhs}")
            out.append(f"    _a = {a}")
            if op in (0x42, 0x43):
                _signed_lines("_l", out, "    ")
                _signed_lines("_a", out, "    ")
            cond = {0x40: "==", 0x41: "!=", 0x42: "<", 0x43: ">="}[op]
            out.append(f"    if _l {cond} _a:")
            out.append(f"        cpu.pc = {pc + 1 + imm}")
            out.append(f"        cpu.cycle_count = c0 + {cyc[k1] + 1}")
            out.append("    else:")
            out.append(f"        cpu.pc = {pc + 1}")
            out.append(f"        cpu.cycle_count = c0 + {cyc[k1]}")
            out.append(f"    cpu.instr_count = i0 + {k1}")
            out.append(f"    return {k1 * 8 + _END}")
        elif op == 0x50:  # J
            out.append(f"    cpu.pc = {imm}")
            out.append(f"    cpu.instr_count = i0 + {k1}")
            out.append(f"    cpu.cycle_count = c0 + {cyc[k1]}")
            out.append(f"    return {k1 * 8 + _END}")
        elif op == 0x51:  # JAL
            out.append(f"    regs[15] = {(pc + 1) & _M}")
            out.append(f"    cpu.pc = {imm}")
            out.append(f"    cpu.instr_count = i0 + {k1}")
            out.append(f"    cpu.cycle_count = c0 + {cyc[k1]}")
            out.append(f"    return {k1 * 8 + _END}")
        elif op == 0x52:  # JR
            out.append(f"    cpu.pc = {a}")
            out.append(f"    cpu.instr_count = i0 + {k1}")
            out.append(f"    cpu.cycle_count = c0 + {cyc[k1]}")
            out.append(f"    return {k1 * 8 + _END}")
        elif op == 0x60:  # RETI
            out.append("    cpu.irq_enabled = True")
            out.append("    cpu.pc = cpu.epc")
            out.append(f"    cpu.instr_count = i0 + {k1}")
            out.append(f"    cpu.cycle_count = c0 + {cyc[k1]}")
            out.append(f"    return {k1 * 8 + _END}")
        elif op == 0x7F:  # HALT
            out.append("    cpu.halted = True")
            out.append(f"    cpu.pc = {pc}")
            out.append(f"    cpu.instr_count = i0 + {k1}")
            out.append(f"    cpu.cycle_count = c0 + {cyc[k1]}")
            out.append(f"    return {k1 * 8 + _HALT}")
        else:  # pragma: no cover - decode guarantees known opcodes
            raise CpuError(f"unimplemented opcode {op:#x}")


# ----------------------------------------------------------------------
# installation helpers
# ----------------------------------------------------------------------
def install(cpu: Cpu, **kwargs) -> BlockTranslator:
    """Attach a translated tier to one CPU; returns the translator."""
    translator = BlockTranslator(cpu, **kwargs)
    cpu.translator = translator
    return translator


def enable_auto_translation(**kwargs) -> None:
    """Give every subsequently constructed :class:`Cpu` a translated
    tier (scenario builders, campaigns, and examples construct their
    own CPUs — this is the fleet-wide switch the byte-identity
    acceptance tests toggle).  ``kwargs`` forward to
    :class:`BlockTranslator`."""
    _cpu_mod._FACTORY_RESOLVED = True
    if kwargs:
        _cpu_mod._TRANSLATOR_FACTORY = (
            lambda cpu: BlockTranslator(cpu, **kwargs)
        )
    else:
        _cpu_mod._TRANSLATOR_FACTORY = BlockTranslator


def disable_auto_translation() -> None:
    """New CPUs get no translated tier (the seed default)."""
    _cpu_mod._FACTORY_RESOLVED = True
    _cpu_mod._TRANSLATOR_FACTORY = None


@contextlib.contextmanager
def auto_translation(enabled: bool = True, **kwargs):
    """Scoped :func:`enable_auto_translation` /
    :func:`disable_auto_translation`, restoring the previous factory —
    how tests compare whole subsystems translation-on vs -off."""
    saved = (_cpu_mod._FACTORY_RESOLVED, _cpu_mod._TRANSLATOR_FACTORY)
    try:
        if enabled:
            enable_auto_translation(**kwargs)
        else:
            disable_auto_translation()
        yield
    finally:
        _cpu_mod._FACTORY_RESOLVED, _cpu_mod._TRANSLATOR_FACTORY = saved
