"""A two-pass assembler for the R32 ISA.

Syntax summary::

    ; full-line or trailing comments (also '#')
    start:                    ; labels
        addi  r1, r0, 10
        lw    r2, 4(r1)       ; loads/stores: imm(base)
        sw    r2, 0(r3)
        beq   r1, r2, done    ; branches take a label (pc-relative encode)
        jal   func            ; jumps take a label (absolute encode)
        jr    r15
        li    r4, 0x12345678  ; pseudo: load 32-bit immediate
        la    r5, table       ; pseudo: load address of label
        mov   r6, r4          ; pseudo: add r6, r4, r0
        nop                   ; pseudo: add r0, r0, r0
        halt
    .org  0x100               ; set location counter (words)
    table:
    .word 1, 2, 0xdead        ; literal data words
    .space 4                  ; reserve zeroed words

Addresses are *word* addresses; the location counter advances by one per
instruction or data word.  Custom instructions installed on the
:class:`repro.isa.instructions.Isa` assemble like R-type ops by their
mnemonic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Format, Instruction, Isa, Opcode


class AssemblerError(ValueError):
    """Raised with a line number for any assembly problem."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


@dataclass
class Program:
    """An assembled memory image.

    ``image`` maps word address to 32-bit word.  ``symbols`` maps label to
    word address.  ``source_map`` maps instruction address back to the
    source line for profiling and disassembly listings.
    """

    image: Dict[int, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    source_map: Dict[int, int] = field(default_factory=dict)
    entry: int = 0

    @property
    def size(self) -> int:
        """Number of occupied memory words (code + data)."""
        return len(self.image)

    def listing(self, isa: Isa) -> str:
        """Disassembly listing of the whole image."""
        lines = []
        for addr in sorted(self.image):
            word = self.image[addr]
            try:
                text = isa.disassemble(isa.decode(word))
            except ValueError:
                text = f".word {word:#010x}"
            lines.append(f"{addr:6d}: {word:08x}  {text}")
        return "\n".join(lines)


_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MEM_RE = re.compile(r"^(-?\w+)\((r\d+|zero|ra|sp)\)$")

REG_ALIASES = {"zero": 0, "ra": 15, "sp": 14}


def _parse_reg(tok: str, lineno: int) -> int:
    tok = tok.lower()
    if tok in REG_ALIASES:
        return REG_ALIASES[tok]
    if tok.startswith("r") and tok[1:].isdigit():
        n = int(tok[1:])
        if 0 <= n < 16:
            return n
    raise AssemblerError(lineno, f"bad register {tok!r}")


def _parse_int(tok: str, lineno: int) -> int:
    try:
        return int(tok, 0)
    except ValueError:
        raise AssemblerError(lineno, f"bad integer {tok!r}") from None


@dataclass
class _Item:
    """One location-counter entry produced by pass 1."""

    addr: int
    lineno: int
    kind: str  # 'instr' | 'word'
    mnemonic: str = ""
    operands: Tuple[str, ...] = ()
    value: int = 0


def _tokenize_operands(rest: str) -> List[str]:
    return [tok.strip() for tok in rest.split(",")] if rest.strip() else []


def assemble(text: str, isa: Optional[Isa] = None, origin: int = 0) -> Program:
    """Assemble R32 source text into a :class:`Program`."""
    isa = isa or Isa()
    items, symbols = _pass1(text, isa, origin)
    return _pass2(items, symbols, isa, origin)


def _pass1(
    text: str, isa: Isa, origin: int
) -> Tuple[List[_Item], Dict[str, int]]:
    loc = origin
    items: List[_Item] = []
    symbols: Dict[str, int] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        while line:
            if ":" in line and not line.startswith("."):
                head, _, tail = line.partition(":")
                head = head.strip()
                if _LABEL_RE.match(head):
                    if head in symbols:
                        raise AssemblerError(lineno, f"duplicate label {head!r}")
                    symbols[head] = loc
                    line = tail.strip()
                    continue
            break
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if mnemonic == ".org":
            new_loc = _parse_int(rest.strip(), lineno)
            if new_loc < loc:
                raise AssemblerError(lineno, ".org may not move backwards")
            loc = new_loc
        elif mnemonic == ".word":
            for tok in _tokenize_operands(rest):
                items.append(_Item(loc, lineno, "word",
                                   value=_parse_int(tok, lineno)))
                loc += 1
        elif mnemonic == ".space":
            count = _parse_int(rest.strip(), lineno)
            if count < 0:
                raise AssemblerError(lineno, ".space count must be >= 0")
            for _ in range(count):
                items.append(_Item(loc, lineno, "word", value=0))
                loc += 1
        else:
            operands = tuple(_tokenize_operands(rest))
            size = _instr_size(mnemonic, operands, isa, lineno)
            items.append(_Item(loc, lineno, "instr", mnemonic, operands))
            loc += size
    return items, symbols


def _instr_size(
    mnemonic: str, operands: Tuple[str, ...], isa: Isa, lineno: int
) -> int:
    """Words occupied by an instruction (pseudo-ops may expand)."""
    if mnemonic == "la":
        return 2
    if mnemonic == "li":
        if len(operands) != 2:
            raise AssemblerError(lineno, "li takes rd, imm32")
        value = _parse_int(operands[1], lineno) & 0xFFFFFFFF
        signed = value - 0x100000000 if value & 0x80000000 else value
        return 1 if -0x8000 <= signed < 0x8000 else 2
    if mnemonic in ("mov", "nop"):
        return 1
    try:
        isa.opcode_of(mnemonic)
    except KeyError:
        raise AssemblerError(lineno, f"unknown mnemonic {mnemonic!r}") from None
    return 1


def _pass2(
    items: List[_Item], symbols: Dict[str, int], isa: Isa, origin: int
) -> Program:
    prog = Program(entry=origin, symbols=dict(symbols))
    for item in items:
        if item.kind == "word":
            _emit(prog, item.addr, item.value & 0xFFFFFFFF, item.lineno)
            continue
        for offset, instr in enumerate(
            _expand(item, symbols, isa)
        ):
            _emit(prog, item.addr + offset, isa.encode(instr), item.lineno)
    return prog


def _emit(prog: Program, addr: int, word: int, lineno: int) -> None:
    if addr in prog.image:
        raise AssemblerError(lineno, f"address {addr} assembled twice")
    prog.image[addr] = word
    prog.source_map[addr] = lineno


def _resolve(tok: str, symbols: Dict[str, int], lineno: int) -> int:
    if _LABEL_RE.match(tok) and tok in symbols:
        return symbols[tok]
    if _LABEL_RE.match(tok) and not tok.lstrip("-").isdigit() \
            and not tok.lower().startswith("0x"):
        # looks like a label but undefined
        try:
            return int(tok, 0)
        except ValueError:
            raise AssemblerError(lineno, f"undefined label {tok!r}") from None
    return _parse_int(tok, lineno)


def _expand(
    item: _Item, symbols: Dict[str, int], isa: Isa
) -> List[Instruction]:
    mn, ops, lineno = item.mnemonic, item.operands, item.lineno

    if mn == "nop":
        _expect(ops, 0, lineno, "nop")
        return [Instruction(Opcode.ADD, 0, 0, 0)]
    if mn == "mov":
        _expect(ops, 2, lineno, "mov rd, rs")
        return [Instruction(Opcode.ADD, _parse_reg(ops[0], lineno),
                            _parse_reg(ops[1], lineno), 0)]
    if mn == "li":
        _expect(ops, 2, lineno, "li rd, imm32")
        rd = _parse_reg(ops[0], lineno)
        value = _parse_int(ops[1], lineno) & 0xFFFFFFFF
        return _load_imm(rd, value, lineno)
    if mn == "la":
        _expect(ops, 2, lineno, "la rd, label")
        rd = _parse_reg(ops[0], lineno)
        value = _resolve(ops[1], symbols, lineno) & 0xFFFFFFFF
        seq = _load_imm(rd, value, lineno)
        if len(seq) == 1:
            seq.append(Instruction(Opcode.ADD, rd, rd, 0))  # keep size == 2
        return seq

    opcode = isa.opcode_of(mn)
    fmt = isa.fmt(opcode)

    if opcode in (Opcode.HALT, Opcode.RETI):
        _expect(ops, 0, lineno, mn)
        return [Instruction(opcode)]
    if opcode in (Opcode.J, Opcode.JAL):
        _expect(ops, 1, lineno, f"{mn} target")
        return [Instruction(opcode, imm=_resolve(ops[0], symbols, lineno))]
    if opcode == Opcode.JR:
        _expect(ops, 1, lineno, "jr rs")
        return [Instruction(opcode, rs1=_parse_reg(ops[0], lineno))]
    if opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        _expect(ops, 3, lineno, f"{mn} ra, rb, target")
        target = _resolve(ops[2], symbols, lineno)
        offset = target - (item.addr + 1)
        if not -0x8000 <= offset < 0x8000:
            raise AssemblerError(lineno, f"branch to {target} out of range")
        return [Instruction(opcode, rd=_parse_reg(ops[0], lineno),
                            rs1=_parse_reg(ops[1], lineno), imm=offset)]
    if opcode in (Opcode.LW, Opcode.SW):
        _expect(ops, 2, lineno, f"{mn} rd, imm(base)")
        match = _MEM_RE.match(ops[1].replace(" ", ""))
        if not match:
            raise AssemblerError(lineno, f"bad memory operand {ops[1]!r}")
        imm = _resolve(match.group(1), symbols, lineno)
        base = _parse_reg(match.group(2), lineno)
        return [Instruction(opcode, rd=_parse_reg(ops[0], lineno),
                            rs1=base, imm=imm)]
    if opcode == Opcode.LUI:
        _expect(ops, 2, lineno, "lui rd, imm16")
        return [Instruction(opcode, rd=_parse_reg(ops[0], lineno),
                            imm=_parse_int(ops[1], lineno))]
    if fmt is Format.R:
        _expect(ops, 3, lineno, f"{mn} rd, rs1, rs2")
        return [Instruction(opcode, rd=_parse_reg(ops[0], lineno),
                            rs1=_parse_reg(ops[1], lineno),
                            rs2=_parse_reg(ops[2], lineno))]
    # generic I-type ALU
    _expect(ops, 3, lineno, f"{mn} rd, rs1, imm")
    return [Instruction(opcode, rd=_parse_reg(ops[0], lineno),
                        rs1=_parse_reg(ops[1], lineno),
                        imm=_resolve(ops[2], symbols, lineno))]


def _load_imm(rd: int, value: int, lineno: int) -> List[Instruction]:
    signed = value - 0x100000000 if value & 0x80000000 else value
    if -0x8000 <= signed < 0x8000:
        return [Instruction(Opcode.ADDI, rd, 0, imm=signed)]
    return [
        Instruction(Opcode.LUI, rd, imm=(value >> 16) & 0xFFFF),
        Instruction(Opcode.ORI, rd, rd, imm=value & 0xFFFF),
    ]


def _expect(ops: Tuple[str, ...], count: int, lineno: int, usage: str) -> None:
    if len(ops) != count:
        raise AssemblerError(lineno, f"expected: {usage}")
