"""The vectorized batch execution tier: many fault lanes, one machine.

Fault campaigns and sweep cells run the *same* R32 program thousands
of times with tiny deltas — one flipped register bit, one seeded input
word.  This module executes those near-identical runs as **lanes of a
single structure-of-arrays machine**: the register file is an
``(N_REGS, n_lanes)`` numpy array, one campaign run per column, and
each decoded instruction is dispatched *once* across every lane
(ROADMAP item 3, attack (b); the block-translation half is
:mod:`repro.isa.translate`).

Execution model — *convergent and compacting*:

* All active lanes share **one** scalar ``pc`` and retire the same
  instruction stream; per-lane state is only the register columns,
  the IRQ flags, and a sparse memory *overlay* (address → column of
  per-lane values) layered over the shared program image.
* Any lane that would diverge from the shared stream is **drained**:
  its column is materialized into an ordinary scalar
  :class:`~repro.isa.cpu.Cpu` (plus the exact remaining-fault
  bookkeeping) and physically removed from the batch, so the vector
  body never carries masks — every array op is full-width.
* Draining happens **before** the divergent instruction executes, so
  the scalar tiers — not this module — produce every fault, trap, and
  error, with byte-identical messages and boundary state.  The batch
  tier may move host time, never model results (DESIGN.md §9/§13/§14).

Lanes drain (``LaneExit.reason``) when they: take the minority side of
a branch or ``jr`` (``branch``/``jr``), address memory off the
majority address (``mem``), are about to fault on a zero divisor
(``div``), reach code the batch cannot fetch uniformly — unprogrammed
or undecodable words, custom opcodes with stateful semantics,
self-modified code (``fetch``/``decode``/``custom``/``smc``) — or need
observer-grade fault handling the vector body cannot reproduce exactly
(``observer``/``pc_flip``/``halt_flip``/``irq``).  ``halt`` and
``budget`` are the two non-divergent exits.

Armed faults (the ``cpu_*`` kinds of :mod:`repro.fault.spec`) execute
*natively* in the common case: a register flip is a single-element XOR
on the lane's column at exactly the retirement the scalar saboteur
would fire, after which the lane keeps running vectorized — this is
where the campaign speedup comes from, since the scalar engine must
run every armed lane on the instruction-granular observer path.

A batched block codegen layer mirrors :mod:`repro.isa.translate`:
blocks are formed by the same :func:`~repro.isa.translate.scan_block`
scan, keyed by head pc, compiled once hot, and emit one vector body
per straight-line instruction run.  Blocks *bail* (commit what ran,
fall back to the per-instruction dispatcher) at the first lane-variant
condition — a zero divisor, a non-uniform address, a store into
fetched code — so the single drain implementation above stays the only
source of divergence handling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import MASK32, N_REGS, Isa
from repro.isa.translate import (
    DEFAULT_HOT_THRESHOLD,
    MAX_BLOCK_LEN,
    MAX_BLOCKS,
    scan_block,
)

__all__ = ["BatchCpu", "BatchStats", "LaneExit"]

_M = MASK32
#: trigger sentinel: no armed fault on this lane
_NO_TRIG = int(np.iinfo(np.int64).max)
#: mirrors ``repro.fault.spec.CPU_KINDS`` (kept literal: the isa layer
#: must not import upward from repro.fault)
_CPU_KINDS = ("cpu_reg_flip", "cpu_pc_flip", "cpu_flag_flip")

_BRANCHES = (0x40, 0x41, 0x42, 0x43)


def _sx(x):
    """Reinterpret masked 32-bit values as signed (arrays or ints)."""
    return x - ((x >> 31) << 32)


@dataclass
class LaneExit:
    """One lane's handoff out of the batch.

    ``cpu`` is a fully materialized scalar CPU at the lane's exact
    architectural state; ``steps`` is the instruction count already
    retired (the scalar continuation's budget baseline).  ``spec`` and
    ``fired`` carry the lane's fault bookkeeping: an unfired spec must
    be re-armed scalar-side with its retirement counter preset to
    ``steps``; a fired one needs nothing.
    """

    lane: int
    reason: str
    cpu: Cpu
    steps: int
    spec: Any = None
    fired: bool = False


@dataclass
class BatchStats:
    """Volatile facts about one batch run (telemetry, never results)."""

    lanes: int = 0
    dispatches: int = 0
    block_calls: int = 0
    lane_instrs: int = 0
    steps: int = 0
    reasons: Dict[str, int] = field(default_factory=dict)

    def drained(self) -> int:
        """Lanes that left through the divergence protocol."""
        return sum(
            n for reason, n in self.reasons.items()
            if reason not in ("halt", "budget")
        )

    def occupancy(self) -> float:
        """Mean fraction of lanes still vectorized per dispatched
        instruction (1.0 = no lane ever drained early)."""
        if not self.steps or not self.lanes:
            return 1.0
        return self.lane_instrs / (self.lanes * self.steps)


class BatchCpu:
    """A structure-of-arrays R32 running ``n_lanes`` programs at once.

    Single-shot: construct, optionally :meth:`arm` one fault spec per
    lane and :meth:`seed_lane` per-lane input words, then :meth:`run`
    once.  Every lane comes back as a :class:`LaneExit` whose scalar
    CPU the caller drives through the ordinary tiers — lanes that
    halted in-batch return a halted CPU and cost nothing more.
    """

    def __init__(
        self,
        isa: Isa,
        image: Dict[int, int],
        n_lanes: int,
        pc: int = 0,
        ivec: int = 0x40,
        hot_threshold: int = DEFAULT_HOT_THRESHOLD,
        max_blocks: int = MAX_BLOCKS,
        max_block_len: int = MAX_BLOCK_LEN,
    ) -> None:
        if n_lanes < 1:
            raise ValueError("n_lanes must be >= 1")
        if hot_threshold < 1:
            raise ValueError("hot_threshold must be >= 1")
        self.isa = isa
        self.n_lanes = n_lanes
        self.ivec = ivec
        self.hot_threshold = hot_threshold
        self.max_blocks = max_blocks
        self.max_block_len = max_block_len
        #: the shared program image (never mutated; stores go to the
        #: per-lane overlay)
        self._base: Dict[int, int] = dict(image)
        m = n_lanes
        self.regs = np.zeros((N_REGS, m), dtype=np.int64)
        self.irq_enabled = np.ones(m, dtype=bool)
        self.irq_pending = np.zeros(m, dtype=bool)
        #: per-lane retirement count at which the armed fault fires
        self.trig = np.full(m, _NO_TRIG, dtype=np.int64)
        self.lane_ids = np.arange(m, dtype=np.int64)
        self.specs: List[Any] = [None] * m
        self._fired: List[bool] = [False] * m
        #: lanes whose spec the scalar observer itself would crash on
        #: (register index off the file) — pre-drained at the trigger
        self._unsafe = np.zeros(m, dtype=bool)
        # shared architectural scalars: every active lane has retired
        # the identical instruction sequence, so these never diverge
        self.pc = pc
        self.epc = 0
        self.steps = 0
        self.cycles = 0
        self.loads = 0
        self.stores = 0
        self._m = m
        #: address -> (m,) int64 column of per-lane memory values
        self._overlay: Dict[int, np.ndarray] = {}
        #: every address ever fetched or compiled (conservative SMC)
        self._fetched: Set[int] = set()
        self._pending_any = False
        self._next_trig = _NO_TRIG
        self._at_head = True
        self._exits: List[LaneExit] = []
        self._ran = False
        # decode + block caches (the image and ISA are fixed for the
        # lifetime of a run, so neither needs invalidation)
        self._ops: Dict[int, tuple] = {}
        self._cycle_table = isa.cycle_table()
        self._blocks: Dict[int, Tuple] = {}
        self._heads: Dict[int, int] = {}
        self._uncompilable: Set[int] = set()
        self.stats = BatchStats(lanes=n_lanes)

    def __repr__(self) -> str:
        return (
            f"BatchCpu(lanes={self.n_lanes}, active={self._m}, "
            f"pc={self.pc:#x}, steps={self.steps})"
        )

    # ------------------------------------------------------------------
    # pre-run lane setup
    # ------------------------------------------------------------------
    def arm(self, lane: int, spec: Any) -> None:
        """Arm one ``cpu_*`` fault spec on ``lane`` (pre-run only).

        ``spec`` is duck-typed on the :class:`repro.fault.spec.FaultSpec`
        fields (``kind``/``index``/``bit``/``count``/``flag``) so this
        layer stays import-free of :mod:`repro.fault`.
        """
        if self._ran:
            raise RuntimeError("arm() after run()")
        if spec.kind not in _CPU_KINDS:
            raise ValueError(
                f"batch lanes take cpu_* faults only, not {spec.kind!r}"
            )
        if not 0 <= lane < self.n_lanes:
            raise ValueError(f"lane {lane} out of range")
        if self.specs[lane] is not None:
            raise ValueError(f"lane {lane} already armed")
        self.specs[lane] = spec
        # the scalar saboteur fires at the first retirement where
        # retired >= count, i.e. at retirement max(1, count)
        self.trig[lane] = max(1, spec.count)
        if spec.kind == "cpu_reg_flip" and not 0 <= spec.index < N_REGS:
            self._unsafe[lane] = True
        self._next_trig = int(self.trig.min())

    def seed_lane(self, lane: int, addr: int, value: int) -> None:
        """Override one memory word for one lane (input sweeps).

        Seeding materializes an overlay column for ``addr``, so every
        lane's scalar handoff carries the address explicitly — seed
        only addresses present in the shared image if byte-identity
        with unseeded scalar runs matters.
        """
        if self._ran:
            raise RuntimeError("seed_lane() after run()")
        if not 0 <= lane < self.n_lanes:
            raise ValueError(f"lane {lane} out of range")
        addr &= _M
        col = self._overlay.get(addr)
        if col is None:
            col = np.full(
                self._m, self._base.get(addr, 0), dtype=np.int64
            )
            self._overlay[addr] = col
        col[lane] = value & _M

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def run(self, budget: int) -> List[LaneExit]:
        """Execute every lane for up to ``budget`` retirements.

        Single-shot.  Returns one :class:`LaneExit` per lane, in lane
        order; the batch machine is spent afterwards.
        """
        if self._ran:
            raise RuntimeError("BatchCpu.run() is single-shot")
        self._ran = True
        while self._m and self.steps < budget:
            self._dispatch(budget)
        if self._m:
            self._exit_all("budget")
        self.stats.steps = self.steps
        self._exits.sort(key=lambda e: e.lane)
        return self._exits

    # ------------------------------------------------------------------
    # lane draining
    # ------------------------------------------------------------------
    def _materialize(
        self, col: int, reason: str, pc: int, halted: bool
    ) -> LaneExit:
        """Freeze one column into a scalar CPU at its exact state."""
        mem = Memory()
        ram = dict(self._base)
        for addr, column in self._overlay.items():
            ram[addr] = int(column[col])
        mem.ram = ram
        mem.loads = self.loads
        mem.stores = self.stores
        cpu = Cpu(self.isa, mem, pc=pc, ivec=self.ivec)
        cpu.regs = [int(v) for v in self.regs[:, col]]
        cpu.epc = self.epc
        cpu.halted = halted
        cpu.irq_enabled = bool(self.irq_enabled[col])
        cpu.irq_pending = bool(self.irq_pending[col])
        cpu.instr_count = self.steps
        cpu.cycle_count = self.cycles
        return LaneExit(
            lane=int(self.lane_ids[col]), reason=reason, cpu=cpu,
            steps=self.steps, spec=self.specs[col],
            fired=self._fired[col],
        )

    def _drain(self, items: List[Tuple[int, str, int, bool]]) -> None:
        """Exit the given ``(col, reason, pc, halted)`` lanes and
        compact every per-lane array down to the survivors."""
        reasons = self.stats.reasons
        drop = np.zeros(self._m, dtype=bool)
        for col, reason, pc, halted in items:
            drop[col] = True
            self._exits.append(
                self._materialize(col, reason, pc, halted)
            )
            reasons[reason] = reasons.get(reason, 0) + 1
        keep = ~drop
        self.regs = self.regs[:, keep]
        self.irq_enabled = self.irq_enabled[keep]
        self.irq_pending = self.irq_pending[keep]
        self.trig = self.trig[keep]
        self.lane_ids = self.lane_ids[keep]
        self._unsafe = self._unsafe[keep]
        self.specs = [s for s, k in zip(self.specs, keep) if k]
        self._fired = [f for f, k in zip(self._fired, keep) if k]
        for addr in self._overlay:
            self._overlay[addr] = self._overlay[addr][keep]
        self._m = int(keep.sum())
        self._next_trig = (
            int(self.trig.min()) if self._m else _NO_TRIG
        )
        if self._pending_any:
            self._pending_any = bool(self.irq_pending.any())

    def _exit_all(self, reason: str, halted: bool = False) -> None:
        pc = self.pc
        self._drain(
            [(col, reason, pc, halted) for col in range(self._m)]
        )

    def _drain_irq(self) -> None:
        """Drain lanes whose next step boundary would take an IRQ."""
        mask = self.irq_pending & self.irq_enabled
        if mask.any():
            pc = self.pc
            self._drain([
                (int(c), "irq", pc, False)
                for c in np.nonzero(mask)[0]
            ])

    # ------------------------------------------------------------------
    # fault triggers
    # ------------------------------------------------------------------
    def _fire_triggers(self) -> None:
        """Fire every armed fault due at the just-retired instruction.

        Mirrors the scalar saboteur's timing exactly: ``_execute`` has
        already advanced ``pc``, so a pc flip xors the *next* pc, and a
        register flip lands after the instruction's own writeback.
        """
        steps = self.steps
        cols = np.nonzero(self.trig == steps)[0]
        drains: List[Tuple[int, str, int, bool]] = []
        regs = self.regs
        for c in cols:
            c = int(c)
            spec = self.specs[c]
            self._fired[c] = True
            self.trig[c] = _NO_TRIG
            kind = spec.kind
            if kind == "cpu_reg_flip":
                # raw row semantics, r0 included — the scalar observer
                # pokes cpu.regs[i] directly too
                regs[spec.index, c] ^= (1 << spec.bit)
                regs[spec.index, c] &= _M
            elif kind == "cpu_pc_flip":
                drains.append(
                    (c, "pc_flip", self.pc ^ (1 << spec.bit), False)
                )
            else:  # cpu_flag_flip
                flag = spec.flag
                if flag == "halted":
                    drains.append((c, "halt_flip", self.pc, True))
                elif flag == "irq_enabled":
                    self.irq_enabled[c] = not self.irq_enabled[c]
                else:  # irq_pending
                    self.irq_pending[c] = not self.irq_pending[c]
                    if self.irq_pending[c]:
                        self._pending_any = True
        if drains:
            self._drain(drains)
        else:
            self._next_trig = (
                int(self.trig.min()) if self._m else _NO_TRIG
            )
        if self._pending_any:
            self._drain_irq()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, budget: int) -> None:
        """Execute one instruction (or one hot block) across all lanes."""
        self.stats.dispatches += 1
        pc = self.pc
        if pc in self._overlay:
            # a store rewrote the word we are about to fetch: lanes may
            # now run different code — only the scalar tiers can
            self._exit_all("smc")
            return
        if self._at_head:
            pc = self._try_block(pc, budget)
            if pc is None:
                return

        # ---- per-instruction path -------------------------------------
        word = self._base.get(pc)
        if word is None:
            self._exit_all("fetch")
            return
        entry = self._ops.get(word)
        if entry is None:
            try:
                instr = self.isa.decode(word)
            except ValueError:
                self._exit_all("decode")
                return
            entry = (
                instr.opcode, instr.rd, instr.rs1, instr.rs2,
                instr.imm, self._cycle_table[instr.opcode],
                self.isa.custom(instr.opcode) is not None,
            )
            self._ops[word] = entry
        op, rd, rs1, rs2, imm, cyc, is_custom = entry
        if is_custom:
            # stateful semantics must run exactly once per lane —
            # scalar-side only
            self._exit_all("custom")
            return
        self._fetched.add(pc)

        if self._next_trig == self.steps + 1:
            # a fault fires at this retirement; pre-drain the cases the
            # vector body cannot reproduce exactly
            if op == 0x7F:
                # an observer at halt retirement may flip flags on the
                # just-halted CPU (a halted flip even un-halts it)
                self._exit_all("observer")
                return
            if self._unsafe.any():
                mask = self._unsafe & (self.trig == self.steps + 1)
                if mask.any():
                    self._drain([
                        (int(c), "observer", pc, False)
                        for c in np.nonzero(mask)[0]
                    ])
                    if not self._m:
                        return

        regs = self.regs
        a = regs[rs1] if rs1 else 0
        next_pc = pc + 1
        extra = 0
        at_head_next = False

        if op == 0x20:  # ADDI
            if rd:
                regs[rd] = (a + imm) & _M
        elif op == 0x01:  # ADD
            if rd:
                regs[rd] = (a + (regs[rs2] if rs2 else 0)) & _M
        elif op in _BRANCHES:  # BEQ/BNE/BLT/BGE
            lhs = regs[rd] if rd else 0
            if op == 0x40:
                t = lhs == a
            elif op == 0x41:
                t = lhs != a
            else:
                sl, sa = _sx(lhs), _sx(a)
                t = (sl < sa) if op == 0x42 else (sl >= sa)
            if t is True or t is False:
                taken = t
            else:
                nt = int(t.sum())
                if nt == 0:
                    taken = False
                elif nt == self._m:
                    taken = True
                else:
                    # the majority continues; the minority drains and
                    # re-executes the branch scalar-side
                    taken = nt * 2 >= self._m
                    self._drain([
                        (int(c), "branch", pc, False)
                        for c in np.nonzero(t != taken)[0]
                    ])
                    if not self._m:
                        return
            if taken:
                next_pc = pc + 1 + imm
                extra = 1  # taken-branch penalty
            at_head_next = True
        elif op == 0x30:  # LW
            if rs1 == 0:
                ad: Optional[int] = imm & _M
            elif (a != a[0]).any():
                if rd:
                    av = (a + imm) & _M
                    vals, counts = np.unique(av, return_counts=True)
                    maj = int(vals[int(np.argmax(counts))])
                    self._drain([
                        (int(c), "mem", pc, False)
                        for c in np.nonzero(av != maj)[0]
                    ])
                    if not self._m:
                        return
                    ad = maj
                else:
                    # value discarded: per-lane addresses leave no
                    # per-lane state behind
                    ad = None
            else:
                ad = (int(a[0]) + imm) & _M
            if rd and ad is not None:
                v = self._overlay.get(ad)
                if v is None:
                    v = self._base.get(ad, 0)
                self.regs[rd] = v
            self.loads += 1
        elif op == 0x31:  # SW
            if rs1 == 0:
                ad = imm & _M
            elif (a != a[0]).any():
                av = (a + imm) & _M
                vals, counts = np.unique(av, return_counts=True)
                maj = int(vals[int(np.argmax(counts))])
                self._drain([
                    (int(c), "mem", pc, False)
                    for c in np.nonzero(av != maj)[0]
                ])
                if not self._m:
                    return
                ad = maj
            else:
                ad = (int(a[0]) + imm) & _M
            if ad in self._fetched:
                # self-modifying store: the scalar tiers own the
                # invalidation protocol
                self._exit_all("smc")
                return
            regs = self.regs  # a drain above replaces the array
            self._overlay[ad] = (
                regs[rd].copy() if rd
                else np.zeros(self._m, dtype=np.int64)
            )
            self.stores += 1
        elif op == 0x02:  # SUB
            if rd:
                regs[rd] = (a - (regs[rs2] if rs2 else 0)) & _M
        elif op == 0x03:  # MUL
            if rd:
                regs[rd] = (a * (regs[rs2] if rs2 else 0)) & _M
        elif op in (0x04, 0x05):  # DIV / MOD
            if rs2 == 0:
                # zero divisor on every lane: the scalar tiers raise
                # the exact CpuError
                self._exit_all("div")
                return
            b = regs[rs2]
            zero = b == 0
            if zero.any():
                self._drain([
                    (int(c), "div", pc, False)
                    for c in np.nonzero(zero)[0]
                ])
                if not self._m:
                    return
                regs = self.regs
                a = regs[rs1] if rs1 else 0
                b = regs[rs2]
            sa, sb = _sx(a), _sx(b)
            if op == 0x04:
                q = np.abs(sa) // np.abs(sb)
                v = np.where((sa >= 0) == (sb >= 0), q, -q) & _M
            else:
                r = np.abs(sa) % np.abs(sb)
                v = np.where(sa >= 0, r, -r) & _M
            if rd:
                regs[rd] = v
        elif op == 0x06:  # AND
            if rd:
                regs[rd] = a & (regs[rs2] if rs2 else 0)
        elif op == 0x07:  # OR
            if rd:
                regs[rd] = a | (regs[rs2] if rs2 else 0)
        elif op == 0x08:  # XOR
            if rd:
                regs[rd] = a ^ (regs[rs2] if rs2 else 0)
        elif op == 0x09:  # SLL
            if rd:
                regs[rd] = (
                    a << ((regs[rs2] if rs2 else 0) & 31)
                ) & _M
        elif op == 0x0A:  # SRL
            if rd:
                regs[rd] = (a & _M) >> (
                    (regs[rs2] if rs2 else 0) & 31
                )
        elif op == 0x0B:  # SRA
            if rd:
                regs[rd] = (
                    _sx(a) >> ((regs[rs2] if rs2 else 0) & 31)
                ) & _M
        elif op == 0x0C:  # SLT
            if rd:
                regs[rd] = _sx(a) < _sx(regs[rs2] if rs2 else 0)
        elif op == 0x0D:  # SLTU
            if rd:
                regs[rd] = (a & _M) < (
                    (regs[rs2] if rs2 else 0) & _M
                )
        elif op == 0x21:  # ANDI
            if rd:
                regs[rd] = a & (imm & 0xFFFF)
        elif op == 0x22:  # ORI
            if rd:
                regs[rd] = (a | (imm & 0xFFFF)) & _M
        elif op == 0x23:  # XORI
            if rd:
                regs[rd] = (a ^ (imm & 0xFFFF)) & _M
        elif op == 0x24:  # SLLI
            if rd:
                regs[rd] = (a << (imm & 31)) & _M
        elif op == 0x25:  # SRLI
            if rd:
                regs[rd] = (a & _M) >> (imm & 31)
        elif op == 0x26:  # SLTI
            if rd:
                regs[rd] = _sx(a) < imm
        elif op == 0x27:  # LUI
            if rd:
                regs[rd] = ((imm & 0xFFFF) << 16) & _M
        elif op == 0x50:  # J
            next_pc = imm
            at_head_next = True
        elif op == 0x51:  # JAL
            regs[15] = (pc + 1) & _M
            next_pc = imm
            at_head_next = True
        elif op == 0x52:  # JR
            if rs1 == 0:
                next_pc = 0
            elif (a != a[0]).any():
                vals, counts = np.unique(a, return_counts=True)
                maj = int(vals[int(np.argmax(counts))])
                self._drain([
                    (int(c), "jr", pc, False)
                    for c in np.nonzero(a != maj)[0]
                ])
                if not self._m:
                    return
                next_pc = maj
            else:
                next_pc = int(a[0])
            at_head_next = True
        elif op == 0x60:  # RETI
            next_pc = self.epc
            self.irq_enabled[:] = True
            at_head_next = True
        elif op == 0x7F:  # HALT
            self.steps += 1
            self.cycles += cyc
            self.stats.lane_instrs += self._m
            self._exit_all("halt", halted=True)
            return
        else:  # pragma: no cover - decode guarantees known opcodes
            self._exit_all("decode")
            return

        self.steps += 1
        self.cycles += cyc + extra
        self.stats.lane_instrs += self._m
        self.pc = next_pc
        self._at_head = at_head_next
        if self.steps == self._next_trig:
            self._fire_triggers()
            if not self._m:
                return
        if op == 0x60 and self._pending_any:
            self._drain_irq()

    # ------------------------------------------------------------------
    # batched block codegen
    # ------------------------------------------------------------------
    def _try_block(self, pc: int, budget: int) -> Optional[int]:
        """Run the hot block at ``pc`` if one applies.

        Returns the pc for the per-instruction path to continue at, or
        None when the block finished the dispatch (control transfer,
        halt, or a drain).
        """
        ent = self._blocks.get(pc)
        if ent is None:
            if pc in self._uncompilable:
                return pc
            hits = self._heads.get(pc, 0) + 1
            self._heads[pc] = hits
            if hits < self.hot_threshold:
                return pc
            ent = self._compile_block(pc)
            if ent is None:
                return pc
        fn, addrs, max_commit, cyc_p, lds_p, sts_p = ent
        if (
            self.steps + max_commit > budget
            or self._next_trig <= self.steps + max_commit
            or (self._overlay
                and not addrs.isdisjoint(self._overlay))
        ):
            # not enough budget for a full commit, a trigger could fire
            # mid-block, or the block's code is overlaid: the
            # per-instruction path handles all three exactly
            return pc
        k, tag, payload = fn(
            self.regs, self._base, self._overlay, self._fetched
        )
        if k:
            self.stats.block_calls += 1
            self.steps += k
            self.cycles += cyc_p[k]
            self.loads += lds_p[k]
            self.stores += sts_p[k]
            self.stats.lane_instrs += k * self._m
        if tag == 1:  # jump (J/JAL)
            self.pc = payload
            return None
        if tag == 2:  # halt
            self.pc = payload
            self._exit_all("halt", halted=True)
            return None
        if tag == 3:  # reti
            self.pc = self.epc
            self.irq_enabled[:] = True
            if self._pending_any:
                self._drain_irq()
            return None
        # tag 0: committed k instructions, then bailed (or fell off the
        # scanned end) — continue per-instruction in this same dispatch
        pc += k
        self.pc = pc
        if k:
            self._at_head = False
            if pc in self._overlay:
                self._exit_all("smc")
                return None
        return pc

    def _compile_block(self, pc0: int) -> Optional[Tuple]:
        """Compile the straight-line block at ``pc0`` into one vector
        function, or record it as uncompilable."""
        instrs, addrs = scan_block(
            self._base.get, self.isa.decode, pc0, self.max_block_len
        )
        # cut before the first instruction the vector body cannot
        # express: per-lane control flow, stateful custom semantics,
        # and certain-fault divisions all belong to the drain protocol
        cut = len(instrs)
        for k, instr in enumerate(instrs):
            op = instr.opcode
            if (
                op in _BRANCHES
                or op == 0x52
                or self.isa.custom(op) is not None
                or (op in (0x04, 0x05) and instr.rs2 == 0)
            ):
                cut = k
                break
        instrs = instrs[:cut]
        addrs = addrs[:cut]
        if not instrs:
            self._uncompilable.add(pc0)
            return None
        if len(self._blocks) >= self.max_blocks:
            # oldest-first eviction, mirroring BlockTranslator
            del self._blocks[next(iter(self._blocks))]
        table = self._cycle_table
        cyc_p = [0]
        lds_p = [0]
        sts_p = [0]
        for instr in instrs:
            cyc_p.append(cyc_p[-1] + table[instr.opcode])
            lds_p.append(lds_p[-1] + (instr.opcode == 0x30))
            sts_p.append(sts_p[-1] + (instr.opcode == 0x31))
        namespace: Dict[str, Any] = {"np": np}
        lines = ["def _bb(regs, base, overlay, fetched):"]
        for k, (instr, pc) in enumerate(zip(instrs, addrs)):
            self._emit_vec(lines, k, pc, instr)
        last = instrs[-1]
        if last.opcode not in (0x50, 0x51, 0x60, 0x7F):
            # fell off the scanned end: full commit, dispatcher
            # continues per-instruction
            lines.append(f"    return ({len(instrs)}, 0, None)")
        source = "\n".join(lines)
        code = compile(source, f"<r32-batch-block@{pc0:#x}>", "exec")
        exec(code, namespace)
        ent = (
            namespace["_bb"], frozenset(addrs), len(instrs),
            cyc_p, lds_p, sts_p,
        )
        self._blocks[pc0] = ent
        self._fetched.update(addrs)
        return ent

    def _emit_vec(
        self, out: List[str], k: int, pc: int, instr: Any
    ) -> None:
        """Append the vector-body source for instruction ``k``."""
        op = instr.opcode
        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
        a = f"regs[{rs1}]" if rs1 else "0"
        b = f"regs[{rs2}]" if rs2 else "0"
        bail = f"        return ({k}, 0, None)"

        def sx(src: str, var: str) -> None:
            out.append(f"    {var} = {src}")
            out.append(f"    {var} = {var} - (({var} >> 31) << 32)")

        def uniform_addr() -> None:
            """Bail unless every lane addresses the same word."""
            out.append(f"    _a = regs[{rs1}]")
            out.append("    if (_a != _a[0]).any():")
            out.append(bail)
            out.append(f"    _ad = (int(_a[0]) + {imm}) & {_M}")

        if op == 0x20:  # ADDI
            if rd:
                if rs1:
                    out.append(f"    regs[{rd}] = ({a} + {imm}) & {_M}")
                else:
                    out.append(f"    regs[{rd}] = {imm & _M}")
        elif op == 0x01:  # ADD
            if rd:
                out.append(f"    regs[{rd}] = ({a} + {b}) & {_M}")
        elif op == 0x02:  # SUB
            if rd:
                out.append(f"    regs[{rd}] = ({a} - {b}) & {_M}")
        elif op == 0x03:  # MUL
            if rd:
                out.append(f"    regs[{rd}] = ({a} * {b}) & {_M}")
        elif op in (0x04, 0x05):  # DIV / MOD (rs2 != 0 by the cut)
            out.append(f"    _b = regs[{rs2}]")
            out.append("    if (_b == 0).any():")
            out.append(bail)
            if rd:
                sx(a, "_sa")
                out.append(
                    "    _sb = _b - ((_b >> 31) << 32)"
                )
                if op == 0x04:
                    out.append(
                        "    _q = np.abs(_sa) // np.abs(_sb)"
                    )
                    out.append(
                        f"    regs[{rd}] = np.where("
                        f"(_sa >= 0) == (_sb >= 0), _q, -_q) & {_M}"
                    )
                else:
                    out.append(
                        "    _r = np.abs(_sa) % np.abs(_sb)"
                    )
                    out.append(
                        f"    regs[{rd}] = "
                        f"np.where(_sa >= 0, _r, -_r) & {_M}"
                    )
        elif op == 0x06:  # AND
            if rd:
                out.append(f"    regs[{rd}] = {a} & {b}")
        elif op == 0x07:  # OR
            if rd:
                out.append(f"    regs[{rd}] = {a} | {b}")
        elif op == 0x08:  # XOR
            if rd:
                out.append(f"    regs[{rd}] = {a} ^ {b}")
        elif op == 0x09:  # SLL
            if rd:
                out.append(
                    f"    regs[{rd}] = ({a} << ({b} & 31)) & {_M}"
                )
        elif op == 0x0A:  # SRL
            if rd:
                out.append(
                    f"    regs[{rd}] = ({a} & {_M}) >> ({b} & 31)"
                )
        elif op == 0x0B:  # SRA
            if rd:
                sx(a, "_sa")
                out.append(
                    f"    regs[{rd}] = (_sa >> ({b} & 31)) & {_M}"
                )
        elif op == 0x0C:  # SLT
            if rd:
                sx(a, "_sa")
                sx(b, "_sb")
                out.append(f"    regs[{rd}] = _sa < _sb")
        elif op == 0x0D:  # SLTU
            if rd:
                out.append(
                    f"    regs[{rd}] = ({a} & {_M}) < ({b} & {_M})"
                )
        elif op == 0x21:  # ANDI
            if rd:
                out.append(f"    regs[{rd}] = {a} & {imm & 0xFFFF}")
        elif op == 0x22:  # ORI
            if rd:
                out.append(
                    f"    regs[{rd}] = ({a} | {imm & 0xFFFF}) & {_M}"
                )
        elif op == 0x23:  # XORI
            if rd:
                out.append(
                    f"    regs[{rd}] = ({a} ^ {imm & 0xFFFF}) & {_M}"
                )
        elif op == 0x24:  # SLLI
            if rd:
                out.append(
                    f"    regs[{rd}] = ({a} << {imm & 31}) & {_M}"
                )
        elif op == 0x25:  # SRLI
            if rd:
                out.append(
                    f"    regs[{rd}] = ({a} & {_M}) >> {imm & 31}"
                )
        elif op == 0x26:  # SLTI
            if rd:
                sx(a, "_sa")
                out.append(f"    regs[{rd}] = _sa < {imm}")
        elif op == 0x27:  # LUI
            if rd:
                out.append(
                    f"    regs[{rd}] = {((imm & 0xFFFF) << 16) & _M}"
                )
        elif op == 0x30:  # LW
            if rd:
                if rs1:
                    uniform_addr()
                    ad = "_ad"
                else:
                    ad = str(imm & _M)
                out.append(f"    _v = overlay.get({ad})")
                out.append(
                    f"    regs[{rd}] = "
                    f"base.get({ad}, 0) if _v is None else _v"
                )
            # rd == 0: the load count is in the prefix; per-lane
            # addresses leave no per-lane state, so no uniformity check
        elif op == 0x31:  # SW
            if rs1:
                uniform_addr()
                ad = "_ad"
            else:
                ad = str(imm & _M)
                out.append(f"    _ad = {ad}")
            out.append("    if _ad in fetched:")
            out.append(bail)
            if rd:
                out.append(f"    overlay[_ad] = regs[{rd}].copy()")
            else:
                out.append(
                    "    overlay[_ad] = "
                    "np.zeros(regs.shape[1], dtype=np.int64)"
                )
        elif op == 0x50:  # J
            out.append(f"    return ({k + 1}, 1, {imm})")
        elif op == 0x51:  # JAL
            out.append(f"    regs[15] = {(pc + 1) & _M}")
            out.append(f"    return ({k + 1}, 1, {imm})")
        elif op == 0x60:  # RETI
            out.append(f"    return ({k + 1}, 3, 0)")
        elif op == 0x7F:  # HALT
            out.append(f"    return ({k + 1}, 2, {pc})")
        else:  # pragma: no cover - the cut excludes everything else
            raise AssertionError(f"unvectorizable opcode {op:#x}")
