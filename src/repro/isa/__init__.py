"""The R32 instruction-set processor: the framework's software substrate.

Type I hardware/software systems (Figure 1a) view software as a program
executing on an instruction-set processor.  This package provides that
processor end to end:

* :mod:`repro.isa.instructions` — the R32 ISA definition and binary
  encoding, including a reserved *custom-instruction* opcode space used
  by the ASIP tools (Section 4.3/4.4 of the paper);
* :mod:`repro.isa.assembler` — a two-pass assembler with labels, data
  directives, and pseudo-instructions;
* :mod:`repro.isa.cpu` — a cycle-counting functional CPU model with
  memory-mapped I/O and interrupts;
* :mod:`repro.isa.codegen` — a code generator lowering CDFG behaviors to
  R32 assembly (the same behaviors high-level synthesis lowers to
  hardware, enabling true co-verification);
* :mod:`repro.isa.profiler` — execution profiling for hot-spot-driven
  partitioning and custom-instruction mining;
* :mod:`repro.isa.translate` — the block-translation execution tier:
  hot basic blocks compiled to specialized Python closures, proven
  equivalent to ``step()``/``run_block()`` (DESIGN §13);
* :mod:`repro.isa.batch` — the vectorized batch execution tier: many
  near-identical runs (fault lanes, input sweeps) as columns of one
  structure-of-arrays machine, with divergent lanes drained to the
  scalar tiers (DESIGN §14).
"""

from repro.isa.instructions import Instruction, Isa, Opcode
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.cpu import Cpu, CpuError, Memory
from repro.isa.translate import (
    BlockTranslator,
    auto_translation,
    disable_auto_translation,
    enable_auto_translation,
    install,
)
from repro.isa.batch import BatchCpu, BatchStats, LaneExit

__all__ = [
    "Isa",
    "Opcode",
    "Instruction",
    "assemble",
    "AssemblerError",
    "Cpu",
    "Memory",
    "CpuError",
    "BlockTranslator",
    "BatchCpu",
    "BatchStats",
    "LaneExit",
    "install",
    "auto_translation",
    "enable_auto_translation",
    "disable_auto_translation",
]
