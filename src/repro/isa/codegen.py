"""Code generation: lowering CDFG behaviors to R32 assembly.

This is the *software implementation* path for a behavior.  The same
CDFG also drives high-level synthesis (:mod:`repro.hls`), so a behavior
can be compiled both ways and the two implementations cross-checked —
the unified functional understanding Section 3.2 of the paper demands of
co-synthesis tools.

The generator is deliberately simple (this is a 1996-era flow): ops are
emitted in topological order with a greedy register allocator over
``r1``-``r12`` that spills to a reserved memory window using a
farthest-next-use victim policy.  Inputs and outputs live in fixed
memory windows so a test harness (or the co-simulation backplane) can
marshal data in and out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.cdfg import CDFG, Op, OpKind
from repro.isa.assembler import Program, assemble
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa

ALLOCATABLE = list(range(1, 13))  # r1..r12; r13 scratch, r14 sp, r15 ra
SCRATCH = 13


class CodegenError(RuntimeError):
    """Raised when a CDFG cannot be lowered."""


@dataclass
class CompiledKernel:
    """The result of compiling a CDFG to R32.

    * ``asm`` — the generated assembly text;
    * ``program`` — the assembled image;
    * ``input_addrs`` / ``output_addrs`` — memory word addresses of each
      primary input/output, keyed by port name.
    """

    cdfg_name: str
    asm: str
    program: Program
    input_addrs: Dict[str, int]
    output_addrs: Dict[str, int]
    spill_slots: int

    @property
    def code_size(self) -> int:
        """Instructions + data words in the image."""
        return self.program.size

    def run(
        self,
        inputs: Dict[str, int],
        isa: Optional[Isa] = None,
        memory: Optional[Dict[int, int]] = None,
        max_instructions: int = 1_000_000,
    ) -> Tuple[Dict[str, int], int]:
        """Execute on a fresh CPU; returns (outputs, cycles).

        ``memory`` optionally pre-populates data RAM (for CDFGs with
        LOAD/STORE ops) and receives stores back.
        """
        isa = isa or Isa()
        mem = Memory()
        mem.load_image(self.program.image)
        if memory:
            mem.ram.update(memory)
        for name, addr in self.input_addrs.items():
            if name not in inputs:
                raise CodegenError(f"missing input {name!r}")
            mem.ram[addr] = inputs[name] & 0xFFFFFFFF
        cpu = Cpu(isa, mem, pc=self.program.entry)
        cycles = cpu.run(max_instructions=max_instructions)
        outputs = {
            name: mem.ram.get(addr, 0)
            for name, addr in self.output_addrs.items()
        }
        if memory is not None:
            memory.clear()
            memory.update(mem.ram)
        return outputs, cycles


class _Allocator:
    """Greedy register allocator with farthest-next-use spilling."""

    def __init__(self, emit, spill_base: int) -> None:
        self._emit = emit
        self.spill_base = spill_base
        self.reg_of: Dict[str, int] = {}
        self.owner: Dict[int, Optional[str]] = {r: None for r in ALLOCATABLE}
        self.spill_slot: Dict[str, int] = {}
        self.clean_home: Dict[str, Tuple[str, int]] = {}
        self.next_uses: Dict[str, List[int]] = {}
        self.spills = 0
        self.reloads = 0

    def set_uses(self, uses: Dict[str, List[int]]) -> None:
        self.next_uses = uses

    # ------------------------------------------------------------------
    def ensure_in_reg(self, value: str, pinned: List[int]) -> int:
        """Make sure ``value`` is in a register; returns the register."""
        if value in self.reg_of:
            return self.reg_of[value]
        reg = self._grab_reg(pinned)
        self._materialize(value, reg)
        self.reg_of[value] = reg
        self.owner[reg] = value
        return reg

    def alloc_dest(self, value: str, pinned: List[int]) -> int:
        """Allocate a destination register for a new value."""
        reg = self._grab_reg(pinned)
        self.reg_of[value] = reg
        self.owner[reg] = value
        return reg

    def mark_clean(self, value: str, kind: str, payload: int) -> None:
        """Record that ``value`` can be rematerialized (input word at
        address ``payload``, or constant ``payload``) instead of spilled."""
        self.clean_home[value] = (kind, payload)

    def drop_if_dead(self, value: str, position: int) -> None:
        """Free the register of ``value`` if it has no uses after
        ``position``."""
        remaining = [u for u in self.next_uses.get(value, []) if u > position]
        if not remaining and value in self.reg_of:
            self.owner[self.reg_of[value]] = None
            del self.reg_of[value]

    # ------------------------------------------------------------------
    def _grab_reg(self, pinned: List[int]) -> int:
        for reg in ALLOCATABLE:
            if self.owner[reg] is None and reg not in pinned:
                return reg
        victim_reg = self._pick_victim(pinned)
        self._spill(victim_reg)
        return victim_reg

    def _pick_victim(self, pinned: List[int]) -> int:
        best_reg, best_key = None, None
        for reg in ALLOCATABLE:
            if reg in pinned:
                continue
            value = self.owner[reg]
            uses = self.next_uses.get(value, [])
            key = uses[0] if uses else 10**9
            if best_key is None or key > best_key:
                best_reg, best_key = reg, key
        if best_reg is None:
            raise CodegenError("register pressure too high: all regs pinned")
        return best_reg

    def _spill(self, reg: int) -> None:
        value = self.owner[reg]
        if value not in self.clean_home:
            if value not in self.spill_slot:
                self.spill_slot[value] = self.spill_base + len(self.spill_slot)
            slot = self.spill_slot[value]
            self._emit(f"sw r{reg}, {slot}(r0)", f"spill {value}")
            self.spills += 1
        self.owner[reg] = None
        del self.reg_of[value]

    def _materialize(self, value: str, reg: int) -> None:
        if value in self.spill_slot:
            self._emit(f"lw r{reg}, {self.spill_slot[value]}(r0)",
                       f"reload {value}")
            self.reloads += 1
            return
        if value in self.clean_home:
            kind, payload = self.clean_home[value]
            if kind == "input":
                self._emit(f"lw r{reg}, {payload}(r0)", f"load input {value}")
            else:
                self._emit(f"li r{reg}, {payload}", f"const {value}")
            self.reloads += 1
            return
        raise CodegenError(f"value {value!r} lost (not in reg, spill, or home)")


@dataclass(frozen=True)
class Fusion:
    """Directive: emit ``outer`` (whose only-use input ``inner`` is folded
    in) as one custom instruction ``mnemonic`` over ``externals``.

    Produced by the ASIP pattern miner (:mod:`repro.asip.custom`); the
    custom mnemonic must be installed on the ISA passed to
    :func:`compile_cdfg`.
    """

    outer: str
    inner: str
    mnemonic: str
    externals: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.externals) <= 2:
            raise ValueError("custom instructions take 1 or 2 operands")


def compile_cdfg(
    cdfg: CDFG,
    isa: Optional[Isa] = None,
    input_base: int = 0x1000,
    output_base: int = 0x1100,
    spill_base: int = 0x1200,
    origin: int = 0,
    fusions: Optional[Dict[str, Fusion]] = None,
) -> CompiledKernel:
    """Compile a CDFG to an R32 program.

    Raises :class:`CodegenError` for CDFGs using ops the ISA cannot
    express.  ``fusions`` maps *outer* op names to :class:`Fusion`
    directives: the fused pair is emitted as a single custom instruction
    (the ASIP path of Sections 4.3/4.4).
    """
    isa = isa or Isa()
    fusions = fusions or {}
    fused_inner = {f.inner for f in fusions.values()}
    for fusion in fusions.values():
        if isa.custom_by_name(fusion.mnemonic) is None:
            raise CodegenError(
                f"fusion mnemonic {fusion.mnemonic!r} not installed on ISA"
            )
        if cdfg.uses(fusion.inner) != [fusion.outer]:
            raise CodegenError(
                f"fusion inner {fusion.inner!r} must feed only "
                f"{fusion.outer!r}"
            )
    lines: List[str] = []

    def emit(text: str, comment: str = "") -> None:
        pad = " " * max(1, 28 - len(text))
        lines.append(f"    {text}{pad}; {comment}" if comment else f"    {text}")

    alloc = _Allocator(emit, spill_base)

    input_addrs: Dict[str, int] = {}
    output_addrs: Dict[str, int] = {}
    for i, op in enumerate(cdfg.inputs()):
        input_addrs[op.name] = input_base + i
        alloc.mark_clean(op.name, "input", input_base + i)
    for i, op in enumerate(cdfg.outputs()):
        output_addrs[op.name] = output_base + i

    order = cdfg.topological_order()
    positions = {name: i for i, name in enumerate(order)}
    uses: Dict[str, List[int]] = {name: [] for name in order}
    for name in order:
        for arg in cdfg.op(name).args:
            uses[arg].append(positions[name])
    alloc.set_uses(uses)

    emit_map = _EMITTERS
    for position, name in enumerate(order):
        op = cdfg.op(name)
        if name in fused_inner:
            continue  # folded into its consumer's custom instruction
        if op.kind is OpKind.INPUT:
            continue  # loaded lazily by the allocator
        if op.kind is OpKind.CONST:
            alloc.mark_clean(name, "const", _to_signed(op.value))
            continue
        if op.kind is OpKind.OUTPUT:
            src = op.args[0]
            reg = alloc.ensure_in_reg(src, [])
            emit(f"sw r{reg}, {output_addrs[name]}(r0)", f"output {name}")
            alloc.drop_if_dead(src, position)
            continue
        if name in fusions:
            _emit_fusion(fusions[name], alloc, emit, position)
            alloc.drop_if_dead(op.name, position)
            continue
        emitter = emit_map.get(op.kind)
        if emitter is None:
            raise CodegenError(f"op kind {op.kind} not supported by codegen")
        emitter(op, alloc, emit, position)
        for arg in op.args:
            alloc.drop_if_dead(arg, position)
        alloc.drop_if_dead(op.name, position)  # frees never-used results

    emit("halt")
    asm = "\n".join(lines) + "\n"
    program = assemble(asm, isa, origin=origin)
    return CompiledKernel(
        cdfg_name=cdfg.name,
        asm=asm,
        program=program,
        input_addrs=input_addrs,
        output_addrs=output_addrs,
        spill_slots=len(alloc.spill_slot),
    )


def _to_signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value & 0x80000000 else value


def _emit_fusion(
    fusion: Fusion, alloc: _Allocator, emit, position: int
) -> None:
    ra = alloc.ensure_in_reg(fusion.externals[0], [])
    if len(fusion.externals) == 2:
        rb = alloc.ensure_in_reg(fusion.externals[1], [ra])
    else:
        rb = 0
    rd = alloc.alloc_dest(fusion.outer, [ra, rb])
    emit(
        f"{fusion.mnemonic} r{rd}, r{ra}, r{rb}",
        f"fused {fusion.inner}+{fusion.outer}",
    )
    for ext in fusion.externals:
        alloc.drop_if_dead(ext, position)


_SIMPLE_BINOPS = {
    OpKind.ADD: "add", OpKind.SUB: "sub", OpKind.MUL: "mul",
    OpKind.DIV: "div", OpKind.MOD: "mod", OpKind.AND: "and",
    OpKind.OR: "or", OpKind.XOR: "xor", OpKind.SHL: "sll",
    OpKind.SHR: "srl",
}


def _emit_binop(op: Op, alloc: _Allocator, emit, position: int) -> None:
    ra = alloc.ensure_in_reg(op.args[0], [])
    rb = alloc.ensure_in_reg(op.args[1], [ra])
    rd = alloc.alloc_dest(op.name, [ra, rb])
    emit(f"{_SIMPLE_BINOPS[op.kind]} r{rd}, r{ra}, r{rb}", op.name)


def _emit_not(op: Op, alloc: _Allocator, emit, position: int) -> None:
    ra = alloc.ensure_in_reg(op.args[0], [])
    rd = alloc.alloc_dest(op.name, [ra])
    emit(f"sub r{rd}, r0, r{ra}", f"{op.name}: ~a = -a - 1")
    emit(f"addi r{rd}, r{rd}, -1")


def _emit_neg(op: Op, alloc: _Allocator, emit, position: int) -> None:
    ra = alloc.ensure_in_reg(op.args[0], [])
    rd = alloc.alloc_dest(op.name, [ra])
    emit(f"sub r{rd}, r0, r{ra}", op.name)


def _emit_compare(op: Op, alloc: _Allocator, emit, position: int) -> None:
    ra = alloc.ensure_in_reg(op.args[0], [])
    rb = alloc.ensure_in_reg(op.args[1], [ra])
    rd = alloc.alloc_dest(op.name, [ra, rb])
    kind = op.kind
    if kind is OpKind.LT:
        emit(f"slt r{rd}, r{ra}, r{rb}", op.name)
    elif kind is OpKind.GT:
        emit(f"slt r{rd}, r{rb}, r{ra}", op.name)
    elif kind is OpKind.GE:
        emit(f"slt r{rd}, r{ra}, r{rb}", op.name)
        emit(f"xori r{rd}, r{rd}, 1")
    elif kind is OpKind.LE:
        emit(f"slt r{rd}, r{rb}, r{ra}", op.name)
        emit(f"xori r{rd}, r{rd}, 1")
    elif kind is OpKind.EQ:
        emit(f"sub r{rd}, r{ra}, r{rb}", op.name)
        emit(f"sltu r{rd}, r0, r{rd}")
        emit(f"xori r{rd}, r{rd}, 1")
    elif kind is OpKind.NE:
        emit(f"sub r{rd}, r{ra}, r{rb}", op.name)
        emit(f"sltu r{rd}, r0, r{rd}")


def _emit_mux(op: Op, alloc: _Allocator, emit, position: int) -> None:
    """Branch-free select: res = b ^ ((a ^ b) & -(cond != 0))."""
    rc = alloc.ensure_in_reg(op.args[0], [])
    ra = alloc.ensure_in_reg(op.args[1], [rc])
    rb = alloc.ensure_in_reg(op.args[2], [rc, ra])
    rd = alloc.alloc_dest(op.name, [rc, ra, rb])
    emit(f"sltu r{SCRATCH}, r0, r{rc}", f"{op.name}: cond != 0")
    emit(f"sub r{SCRATCH}, r0, r{SCRATCH}", "mask = 0 or ~0")
    emit(f"xor r{rd}, r{ra}, r{rb}")
    emit(f"and r{rd}, r{rd}, r{SCRATCH}")
    emit(f"xor r{rd}, r{rd}, r{rb}")


def _emit_load(op: Op, alloc: _Allocator, emit, position: int) -> None:
    ra = alloc.ensure_in_reg(op.args[0], [])
    rd = alloc.alloc_dest(op.name, [ra])
    emit(f"lw r{rd}, 0(r{ra})", op.name)


def _emit_store(op: Op, alloc: _Allocator, emit, position: int) -> None:
    ra = alloc.ensure_in_reg(op.args[0], [])
    rv = alloc.ensure_in_reg(op.args[1], [ra])
    emit(f"sw r{rv}, 0(r{ra})", op.name)
    # the store op's "result" is the stored value; alias it
    rd = alloc.alloc_dest(op.name, [ra, rv])
    emit(f"add r{rd}, r{rv}, r0", f"{op.name} result alias")


_EMITTERS = {
    **{kind: _emit_binop for kind in _SIMPLE_BINOPS},
    OpKind.NOT: _emit_not,
    OpKind.NEG: _emit_neg,
    OpKind.LT: _emit_compare,
    OpKind.LE: _emit_compare,
    OpKind.EQ: _emit_compare,
    OpKind.NE: _emit_compare,
    OpKind.GE: _emit_compare,
    OpKind.GT: _emit_compare,
    OpKind.MUX: _emit_mux,
    OpKind.LOAD: _emit_load,
    OpKind.STORE: _emit_store,
}
