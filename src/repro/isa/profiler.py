"""Execution profiling for the R32 processor.

Profiles drive two of the paper's methodologies:

* COSYMA-style software-first partitioning (Henkel/Ernst [17]) moves the
  *performance-critical regions* of software into hardware — found here
  as the hottest basic blocks;
* ASIP custom-instruction selection (Section 4.3) favours the operation
  patterns executed most often.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.cpu import Cpu
from repro.isa.instructions import Instruction, Isa, Opcode


@dataclass
class BasicBlock:
    """A maximal straight-line region of executed code."""

    start: int
    end: int  # inclusive
    executions: int = 0
    cycles: int = 0

    @property
    def size(self) -> int:
        """Instructions in the block."""
        return self.end - self.start + 1


class Profiler:
    """Attach to a CPU to collect execution statistics.

    Usage::

        profiler = Profiler(cpu)
        cpu.run()
        print(profiler.report(isa))

    Attaching registers an observer on the CPU, which takes
    ``run_block`` off its straight-line fast path for the duration —
    so a profiler should be detached once profiling ends.  Prefer the
    context-manager form, which detaches automatically::

        with Profiler(cpu) as profiler:
            cpu.run()
        # fast path re-engaged; profile still readable
    """

    def __init__(self, cpu: Cpu) -> None:
        self.cpu = cpu
        self.isa = cpu.isa
        self.pc_counts: Dict[int, int] = {}
        self.opcode_counts: Dict[int, int] = {}
        self.opcode_cycles: Dict[int, int] = {}
        self.executed_pairs: Dict[Tuple[int, int], int] = {}
        self._last_pc: Optional[int] = None
        cpu.observers.append(self._observe)

    def detach(self) -> None:
        """Stop observing; the collected profile stays readable.

        Removes this profiler's observer from the CPU, so with no
        other observers attached ``run_block`` returns to its
        straight-line fast path.  Idempotent.
        """
        try:
            self.cpu.observers.remove(self._observe)
        except ValueError:
            pass  # already detached

    @property
    def attached(self) -> bool:
        """Is this profiler currently observing the CPU?"""
        return self._observe in self.cpu.observers

    def __enter__(self) -> "Profiler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    def _observe(self, pc: int, instr: Instruction) -> None:
        self.pc_counts[pc] = self.pc_counts.get(pc, 0) + 1
        op = instr.opcode
        self.opcode_counts[op] = self.opcode_counts.get(op, 0) + 1
        self.opcode_cycles[op] = (
            self.opcode_cycles.get(op, 0) + self.isa.cycles_of(op)
        )
        if self._last_pc is not None:
            pair = (self._last_pc, pc)
            self.executed_pairs[pair] = self.executed_pairs.get(pair, 0) + 1
        self._last_pc = pc

    # ------------------------------------------------------------------
    @property
    def total_instructions(self) -> int:
        """Total retired instructions observed."""
        return sum(self.pc_counts.values())

    @property
    def total_cycles(self) -> int:
        """Total cycles attributed to observed instructions."""
        return sum(self.opcode_cycles.values())

    def hot_pcs(self, top: int = 10) -> List[Tuple[int, int]]:
        """The ``top`` most-executed instruction addresses."""
        return sorted(
            self.pc_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top]

    def opcode_histogram(self) -> Dict[str, int]:
        """Executed-instruction counts keyed by mnemonic."""
        return {
            self.isa.mnemonic(op): count
            for op, count in sorted(self.opcode_counts.items())
        }

    def cycle_share(self) -> Dict[str, float]:
        """Fraction of total cycles per mnemonic."""
        total = self.total_cycles
        if total == 0:
            return {}
        return {
            self.isa.mnemonic(op): cycles / total
            for op, cycles in sorted(self.opcode_cycles.items())
        }

    # ------------------------------------------------------------------
    def basic_blocks(self) -> List[BasicBlock]:
        """Reconstruct executed basic blocks from the branch structure.

        A new block starts at any pc that is entered non-sequentially (a
        branch/jump target) or follows a control transfer.
        """
        executed = sorted(self.pc_counts)
        if not executed:
            return []
        starts = {executed[0]}
        for (src, dst), _count in self.executed_pairs.items():
            if dst != src + 1:
                starts.add(dst)          # branch target
                if src + 1 in self.pc_counts:
                    starts.add(src + 1)  # fall-through after a transfer
        # also break blocks at non-contiguous executed addresses
        for prev, cur in zip(executed, executed[1:]):
            if cur != prev + 1:
                starts.add(cur)
        blocks: List[BasicBlock] = []
        current: Optional[BasicBlock] = None
        for pc in executed:
            if pc in starts or current is None:
                if current is not None:
                    blocks.append(current)
                current = BasicBlock(start=pc, end=pc,
                                     executions=self.pc_counts[pc])
            else:
                current.end = pc
            # executions of a block = executions of its first instruction
        if current is not None:
            blocks.append(current)
        return blocks

    def hot_blocks(self, top: int = 5) -> List[BasicBlock]:
        """Basic blocks ranked by total executed instructions
        (executions × size) — COSYMA's extraction candidates."""
        blocks = self.basic_blocks()
        return sorted(
            blocks, key=lambda b: (-b.executions * b.size, b.start)
        )[:top]

    def coverage(self, program_size: int) -> float:
        """Fraction of program addresses ever executed."""
        return len(self.pc_counts) / program_size if program_size else 0.0

    def to_metrics(
        self, registry, prefix: str = "isa", top_blocks: int = 5
    ):
        """Export the profile into a
        :class:`repro.cosim.metrics.MetricsRegistry` so COSYMA-style
        flows read one registry instead of two ad-hoc report formats.

        Counters: ``<prefix>.instructions``, ``<prefix>.cycles``,
        per-mnemonic ``<prefix>.op.<mn>.count`` / ``.cycles``, and per
        hot block ``<prefix>.block.<start>_<end>.executions`` /
        ``.instructions`` (the extraction candidates).  A
        ``<prefix>.block.size`` histogram records the block-length
        distribution.  Returns the registry for chaining.
        """
        registry.counter(f"{prefix}.instructions").inc(
            self.total_instructions
        )
        registry.counter(f"{prefix}.cycles").inc(self.total_cycles)
        for op, count in sorted(self.opcode_counts.items()):
            mn = self.isa.mnemonic(op)
            registry.counter(f"{prefix}.op.{mn}.count").inc(count)
            registry.counter(f"{prefix}.op.{mn}.cycles").inc(
                self.opcode_cycles.get(op, 0)
            )
        size_hist = registry.histogram(f"{prefix}.block.size")
        for block in self.basic_blocks():
            size_hist.observe(block.size)
        for block in self.hot_blocks(top_blocks):
            key = f"{prefix}.block.{block.start:#x}_{block.end:#x}"
            registry.counter(f"{key}.executions").inc(block.executions)
            registry.counter(f"{key}.instructions").inc(
                block.executions * block.size
            )
        return registry

    def report(self, top: int = 5) -> str:
        """A human-readable profile summary."""
        lines = [
            f"instructions: {self.total_instructions}",
            f"cycles:       {self.total_cycles}",
            "hot opcodes:",
        ]
        share = self.cycle_share()
        for mn, frac in sorted(share.items(), key=lambda kv: -kv[1])[:top]:
            lines.append(f"  {mn:8s} {frac * 100:5.1f}% of cycles")
        lines.append("hot blocks:")
        for block in self.hot_blocks(top):
            lines.append(
                f"  [{block.start:#x}..{block.end:#x}] "
                f"x{block.executions} ({block.size} instrs)"
            )
        return "\n".join(lines)
