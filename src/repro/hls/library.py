"""The RTL component library.

Functional units are characterized by the operation kinds they execute,
their combinational delay, and their area — the inputs every scheduler,
binder, and hardware estimator in the framework shares.  Units and
numbers are in the spirit of mid-90s datapath libraries (areas in
equivalent-gate units, delays in nanoseconds); absolute values matter
less than the *ratios* (a multiplier is ~5x an adder, a divider ~3x a
multiplier), which drive all of the trade-offs the paper discusses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.graph.cdfg import OpKind


@dataclass(frozen=True)
class Component:
    """One functional-unit type."""

    name: str
    ops: FrozenSet[OpKind]
    area: float
    delay: float  # combinational delay, ns

    def executes(self, kind: OpKind) -> bool:
        """Whether this unit can execute ``kind``."""
        return kind in self.ops

    def latency_cycles(self, cycle_time: float) -> int:
        """Clock cycles one operation occupies at ``cycle_time`` ns."""
        return max(1, math.ceil(self.delay / cycle_time))


#: Area of one 32-bit register (equivalent gates).
REGISTER_AREA = 8.0
#: Area of one 32-bit 2:1 multiplexer leg.
MUX_AREA = 3.0
#: Controller area per FSM state (state register + decode share).
STATE_AREA = 4.0
#: Controller area per distinct control signal.
SIGNAL_AREA = 1.5


class ComponentLibrary:
    """A set of component types with selection helpers."""

    def __init__(self, components: Iterable[Component]) -> None:
        self._components: List[Component] = list(components)
        if not self._components:
            raise ValueError("component library is empty")
        names = [c.name for c in self._components]
        if len(set(names)) != len(names):
            raise ValueError("duplicate component names")

    @property
    def components(self) -> List[Component]:
        """All component types."""
        return list(self._components)

    def component(self, name: str) -> Component:
        """Look up a component type by name."""
        for c in self._components:
            if c.name == name:
                return c
        raise KeyError(f"no component named {name!r}")

    def candidates(self, kind: OpKind) -> List[Component]:
        """Component types able to execute ``kind``, cheapest-area first."""
        found = [c for c in self._components if c.executes(kind)]
        return sorted(found, key=lambda c: (c.area, c.name))

    def cheapest(self, kind: OpKind) -> Component:
        """The cheapest unit for ``kind``; raises if none exists."""
        cands = self.candidates(kind)
        if not cands:
            raise KeyError(f"no component executes {kind}")
        return cands[0]

    def fastest(self, kind: OpKind) -> Component:
        """The fastest unit for ``kind``."""
        cands = self.candidates(kind)
        if not cands:
            raise KeyError(f"no component executes {kind}")
        return min(cands, key=lambda c: (c.delay, c.area, c.name))

    def supported_kinds(self) -> FrozenSet[OpKind]:
        """All op kinds with at least one implementing unit."""
        kinds = set()
        for c in self._components:
            kinds |= c.ops
        return frozenset(kinds)


_ADDER_OPS = frozenset({
    OpKind.ADD, OpKind.SUB, OpKind.NEG,
    OpKind.LT, OpKind.LE, OpKind.EQ, OpKind.NE, OpKind.GE, OpKind.GT,
})
_LOGIC_OPS = frozenset({
    OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT,
    OpKind.SHL, OpKind.SHR, OpKind.MUX,
})
_MEM_OPS = frozenset({OpKind.LOAD, OpKind.STORE})


def default_library() -> ComponentLibrary:
    """The stock library used throughout the benchmarks."""
    return ComponentLibrary([
        Component("adder", _ADDER_OPS, area=40.0, delay=8.0),
        Component("fast_adder", _ADDER_OPS, area=70.0, delay=4.0),
        Component("multiplier", frozenset({OpKind.MUL}), area=200.0,
                  delay=16.0),
        Component("fast_multiplier", frozenset({OpKind.MUL}), area=340.0,
                  delay=8.0),
        Component("divider", frozenset({OpKind.DIV, OpKind.MOD}), area=520.0,
                  delay=32.0),
        Component("logic_unit", _LOGIC_OPS, area=25.0, delay=3.0),
        Component("mem_port", _MEM_OPS, area=60.0, delay=10.0),
    ])


def register_area(n_registers: int) -> float:
    """Area of ``n_registers`` 32-bit registers."""
    return REGISTER_AREA * n_registers


def mux_area(n_inputs: int) -> float:
    """Area of an ``n_inputs``:1 multiplexer (tree of 2:1 legs)."""
    return MUX_AREA * max(0, n_inputs - 1)


def controller_area(n_states: int, n_signals: int) -> float:
    """Area of an FSM controller."""
    return STATE_AREA * n_states + SIGNAL_AREA * n_signals
