"""The top-level high-level synthesis flow.

``synthesize(cdfg, constraints)`` runs schedule → bind → datapath →
controller and returns an :class:`HlsResult` carrying:

* the hardware characterization the partitioners need (``area``,
  ``latency_cycles``, ``latency_ns``);
* a cycle-ordered functional simulation (:meth:`HlsResult.simulate`)
  used to co-verify the hardware against the CDFG reference and the
  generated software (Section 3.2's "unified understanding").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graph.cdfg import CDFG, OpKind
from repro.hls.binding import Binding, bind
from repro.hls.controller import Fsm, build_controller
from repro.hls.datapath import Datapath, build_datapath
from repro.hls.library import ComponentLibrary, default_library
from repro.hls.scheduling import (
    Schedule,
    SchedulingError,
    asap,
    force_directed,
    list_schedule,
)


@dataclass
class HlsConstraints:
    """Knobs for one synthesis run.

    * ``scheduler`` — ``"asap"`` (fastest, most parallel), ``"list"``
      (resource-constrained; requires ``resources``), or ``"force"``
      (latency-constrained resource minimization).
    * ``resources`` — component name -> instance count (list scheduling).
    * ``latency_bound`` — control steps (force-directed).
    * ``cycle_time`` — clock period in ns.
    """

    scheduler: str = "asap"
    cycle_time: float = 10.0
    resources: Optional[Dict[str, int]] = None
    latency_bound: Optional[int] = None


@dataclass
class HlsResult:
    """Everything produced by one synthesis run."""

    cdfg: CDFG
    schedule: Schedule
    binding: Binding
    datapath: Datapath
    controller: Fsm

    @property
    def latency_cycles(self) -> int:
        """Input-to-output latency in control steps."""
        return self.schedule.length

    @property
    def latency_ns(self) -> float:
        """Input-to-output latency in nanoseconds."""
        return self.schedule.latency_ns

    @property
    def area(self) -> float:
        """Total area: datapath plus controller."""
        return self.datapath.area + self.controller.area

    def breakdown(self) -> Dict[str, float]:
        """Area by category."""
        out = self.datapath.breakdown()
        out["controller"] = self.controller.area
        return out

    def simulate(
        self,
        inputs: Dict[str, int],
        memory: Optional[Dict[int, int]] = None,
    ) -> Dict[str, int]:
        """Execute the datapath cycle-by-cycle.

        Ops are evaluated in (start step, FU) order — the order the real
        datapath would produce results — and every precedence violation
        would surface as a missing operand, so this doubles as an
        executable check of the schedule.
        """
        cdfg = self.cdfg
        values: Dict[str, int] = {}
        mem = memory if memory is not None else {}
        for op in cdfg.ops:
            if op.kind is OpKind.INPUT:
                if op.name not in inputs:
                    raise KeyError(f"missing value for input {op.name!r}")
                values[op.name] = inputs[op.name] & 0xFFFFFFFF
            elif op.kind is OpKind.CONST:
                values[op.name] = op.value & 0xFFFFFFFF
        ordered = sorted(
            cdfg.compute_ops(),
            key=lambda o: (self.schedule.starts[o.name],
                           self.binding.fu_of[o.name]),
        )
        for op in ordered:
            for arg in op.args:
                if arg not in values:
                    raise SchedulingError(
                        f"datapath executed {op.name!r} before operand "
                        f"{arg!r} was available"
                    )
            values[op.name] = cdfg._eval_op(op, values, inputs, mem)
        return {
            out.name: values[out.args[0]] for out in cdfg.outputs()
        }

    def summary(self) -> str:
        """One-paragraph synthesis report."""
        usage = self.schedule.resource_usage()
        fu_text = ", ".join(f"{k}x{v}" for k, v in sorted(usage.items()))
        return (
            f"{self.cdfg.name}: {self.latency_cycles} steps "
            f"({self.latency_ns:.0f} ns), area {self.area:.0f} "
            f"[{fu_text}; {self.binding.n_registers} regs, "
            f"{self.controller.n_states} states]"
        )


def synthesize(
    cdfg: CDFG,
    constraints: Optional[HlsConstraints] = None,
    library: Optional[ComponentLibrary] = None,
) -> HlsResult:
    """Run the full HLS flow on one behavior."""
    constraints = constraints or HlsConstraints()
    library = library or default_library()
    if constraints.scheduler == "asap":
        schedule = asap(cdfg, library, constraints.cycle_time)
    elif constraints.scheduler == "list":
        if not constraints.resources:
            raise SchedulingError("list scheduling requires resources")
        schedule = list_schedule(
            cdfg, constraints.resources, library, constraints.cycle_time
        )
    elif constraints.scheduler == "force":
        schedule = force_directed(
            cdfg, constraints.latency_bound, library, constraints.cycle_time
        )
    else:
        raise SchedulingError(
            f"unknown scheduler {constraints.scheduler!r}"
        )
    binding = bind(schedule)
    datapath = build_datapath(schedule, binding, library)
    controller = build_controller(schedule, binding, datapath)
    return HlsResult(
        cdfg=cdfg,
        schedule=schedule,
        binding=binding,
        datapath=datapath,
        controller=controller,
    )


def explore(
    cdfg: CDFG,
    library: Optional[ComponentLibrary] = None,
    cycle_time: float = 10.0,
    max_latency_factor: float = 3.0,
) -> List[HlsResult]:
    """Latency/area design-space exploration with force-directed
    scheduling: sweep the latency bound from the critical path outward
    and return one result per bound (the area-latency Pareto raw data).
    """
    library = library or default_library()
    base = asap(cdfg, library, cycle_time)
    results = []
    bound = base.length
    limit = int(base.length * max_latency_factor) + 1
    while bound <= limit:
        results.append(
            synthesize(
                cdfg,
                HlsConstraints(
                    scheduler="force",
                    cycle_time=cycle_time,
                    latency_bound=bound,
                ),
                library,
            )
        )
        bound += max(1, base.length // 4)
    return results
