"""High-level (behavioral) synthesis: the hardware implementation path.

Section 2 of the paper: in a Type II system "the hardware, which is
specified by a behavioral description, can be modeled at roughly the same
level of abstraction as the software" when "designed using behavioral
synthesis techniques".  This package is that behavioral synthesis:

* :mod:`repro.hls.library` — the RTL component library (functional units
  with area/delay characterizations, registers, multiplexers);
* :mod:`repro.hls.scheduling` — ASAP/ALAP, resource-constrained list
  scheduling, and force-directed scheduling;
* :mod:`repro.hls.binding` — functional-unit binding and left-edge
  register allocation;
* :mod:`repro.hls.datapath` — the structural datapath netlist;
* :mod:`repro.hls.controller` — FSM controller generation;
* :mod:`repro.hls.synthesize` — the top-level flow producing an
  :class:`repro.hls.synthesize.HlsResult` with area, latency, and a
  cycle-by-cycle simulator for co-verification against the CDFG and the
  generated software.
"""

from repro.hls.library import Component, ComponentLibrary, default_library
from repro.hls.scheduling import Schedule, asap, alap, list_schedule, force_directed
from repro.hls.synthesize import HlsConstraints, HlsResult, synthesize

__all__ = [
    "Component",
    "ComponentLibrary",
    "default_library",
    "Schedule",
    "asap",
    "alap",
    "list_schedule",
    "force_directed",
    "HlsConstraints",
    "HlsResult",
    "synthesize",
]
