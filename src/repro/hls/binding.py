"""Functional-unit binding and register allocation.

Given a schedule, binding decides *which physical instance* executes
each operation and *which register* holds each value:

* FU binding is greedy interval coloring over each component type's
  occupancy intervals — optimal in instance count for interval graphs;
* register allocation is the classic left-edge algorithm over value
  lifetimes.

The results feed the datapath netlist and the hardware estimators
(register/mux/interconnect area is where naive estimators go wrong, and
what the incremental estimator of [18] tracks under sharing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.cdfg import CDFG, OpKind
from repro.hls.scheduling import Schedule


@dataclass
class FuInstance:
    """One physical functional unit and the ops bound to it."""

    name: str
    component: str
    ops: List[str] = field(default_factory=list)


@dataclass
class RegisterInstance:
    """One physical register and the values packed into it."""

    name: str
    values: List[str] = field(default_factory=list)


@dataclass
class Binding:
    """Complete binding: op -> FU instance, value -> register."""

    fus: List[FuInstance]
    registers: List[RegisterInstance]
    fu_of: Dict[str, str]
    reg_of: Dict[str, str]

    def fu(self, op_name: str) -> FuInstance:
        """The FU instance executing ``op_name``."""
        target = self.fu_of[op_name]
        return next(f for f in self.fus if f.name == target)

    @property
    def n_registers(self) -> int:
        return len(self.registers)

    @property
    def n_fus(self) -> int:
        return len(self.fus)


def bind_fus(schedule: Schedule) -> Tuple[List[FuInstance], Dict[str, str]]:
    """Greedy interval coloring of ops onto FU instances, per type."""
    by_comp: Dict[str, List[str]] = {}
    for op in schedule.cdfg.compute_ops():
        by_comp.setdefault(schedule.assignment[op.name], []).append(op.name)
    fus: List[FuInstance] = []
    fu_of: Dict[str, str] = {}
    for comp in sorted(by_comp):
        ops = sorted(
            by_comp[comp], key=lambda n: (schedule.starts[n], n)
        )
        instances: List[Tuple[int, FuInstance]] = []  # (free_at, instance)
        for name in ops:
            start, finish = schedule.starts[name], schedule.finish(name)
            placed = False
            for i, (free_at, inst) in enumerate(instances):
                if free_at <= start:
                    inst.ops.append(name)
                    fu_of[name] = inst.name
                    instances[i] = (finish, inst)
                    placed = True
                    break
            if not placed:
                inst = FuInstance(f"{comp}{len(instances)}", comp, [name])
                instances.append((finish, inst))
                fu_of[name] = inst.name
        fus.extend(inst for _f, inst in instances)
    return fus, fu_of


def value_lifetimes(schedule: Schedule) -> Dict[str, Tuple[int, int]]:
    """Lifetime [birth, death] of every register-resident value.

    A value is born when its producer finishes and dies when its last
    consumer *starts* (consumers read registers at their start step).
    Primary inputs are born at step 0; values feeding OUTPUT ops live
    until the output step.  Constants are not register-resident (they
    come from the controller/ROM).
    """
    cdfg = schedule.cdfg
    lifetimes: Dict[str, Tuple[int, int]] = {}
    for op in cdfg.ops:
        if op.kind is OpKind.OUTPUT or op.kind is OpKind.CONST:
            continue
        birth = schedule.finish(op.name) if op.kind.is_compute else 0
        users = cdfg.uses(op.name)
        if not users:
            continue
        death = max(schedule.starts[u] for u in users)
        lifetimes[op.name] = (birth, death)
    return lifetimes


def bind_registers(
    schedule: Schedule,
) -> Tuple[List[RegisterInstance], Dict[str, str]]:
    """Left-edge register allocation over value lifetimes.

    Values are sorted by birth; each is packed into the first register
    whose last occupant died strictly before this value is born.
    """
    lifetimes = value_lifetimes(schedule)
    ordered = sorted(
        lifetimes.items(), key=lambda kv: (kv[1][0], kv[1][1], kv[0])
    )
    registers: List[Tuple[int, RegisterInstance]] = []  # (busy_until, reg)
    reg_of: Dict[str, str] = {}
    for value, (birth, death) in ordered:
        placed = False
        for i, (busy_until, reg) in enumerate(registers):
            if busy_until < birth:
                reg.values.append(value)
                registers[i] = (death, reg)
                reg_of[value] = reg.name
                placed = True
                break
        if not placed:
            reg = RegisterInstance(f"reg{len(registers)}", [value])
            registers.append((death, reg))
            reg_of[value] = reg.name
    return [reg for _b, reg in registers], reg_of


def bind(schedule: Schedule) -> Binding:
    """Full binding: FUs then registers."""
    fus, fu_of = bind_fus(schedule)
    registers, reg_of = bind_registers(schedule)
    return Binding(fus=fus, registers=registers, fu_of=fu_of, reg_of=reg_of)
