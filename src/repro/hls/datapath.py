"""The structural datapath: FU instances, registers, and steering logic.

The datapath model is deliberately at the granularity the era's
estimators used: functional units, registers, and the multiplexer legs
implied by sharing.  Sharing an FU among more ops *saves* FU area but
*adds* mux legs on its input ports — the non-monotonic effect that makes
incremental estimation (Vahid–Gajski [18]) non-trivial, reproduced here
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.cdfg import CDFG, OpKind
from repro.hls.binding import Binding
from repro.hls.library import (
    ComponentLibrary,
    mux_area,
    register_area,
)
from repro.hls.scheduling import Schedule


@dataclass
class PortMux:
    """The steering mux on one FU input port."""

    fu: str
    port: int
    sources: List[str] = field(default_factory=list)

    @property
    def width(self) -> int:
        return len(self.sources)


@dataclass
class Datapath:
    """The bound structural datapath and its area breakdown."""

    binding: Binding
    library: ComponentLibrary
    muxes: List[PortMux]

    @property
    def fu_area(self) -> float:
        return sum(
            self.library.component(f.component).area
            for f in self.binding.fus
        )

    @property
    def register_area(self) -> float:
        return register_area(self.binding.n_registers)

    @property
    def mux_area(self) -> float:
        return sum(mux_area(m.width) for m in self.muxes)

    @property
    def area(self) -> float:
        """Total datapath area (excluding the controller)."""
        return self.fu_area + self.register_area + self.mux_area

    def breakdown(self) -> Dict[str, float]:
        """Area by category."""
        return {
            "fu": self.fu_area,
            "register": self.register_area,
            "mux": self.mux_area,
        }

    def netlist_text(self) -> str:
        """A readable structural netlist of the bound datapath."""
        lines = ["// generated datapath"]
        for fu in self.binding.fus:
            comp = self.library.component(fu.component)
            ops = ", ".join(fu.ops)
            lines.append(
                f"fu {fu.name}: {fu.component} "
                f"(area {comp.area:.0f}) executes [{ops}]"
            )
        for reg in self.binding.registers:
            lines.append(
                f"reg {reg.name}: holds [{', '.join(reg.values)}]"
            )
        for mux in self.muxes:
            if mux.width > 1:
                lines.append(
                    f"mux {mux.fu}.in{mux.port}: "
                    f"{mux.width}:1 from [{', '.join(mux.sources)}]"
                )
        return "\n".join(lines)


def build_datapath(
    schedule: Schedule,
    binding: Binding,
    library: ComponentLibrary,
) -> Datapath:
    """Derive the steering structure implied by a binding.

    For each FU input port, the distinct sources (registers or constant
    ROM) feeding it across all bound ops determine the port's mux width.
    """
    cdfg = schedule.cdfg
    port_sources: Dict[Tuple[str, int], Set[str]] = {}
    for fu in binding.fus:
        for op_name in fu.ops:
            op = cdfg.op(op_name)
            for port, arg in enumerate(op.args):
                arg_op = cdfg.op(arg)
                if arg_op.kind is OpKind.CONST:
                    source = f"const:{arg_op.value}"
                else:
                    source = binding.reg_of.get(arg, f"wire:{arg}")
                port_sources.setdefault((fu.name, port), set()).add(source)
    muxes = [
        PortMux(fu=fu_name, port=port, sources=sorted(sources))
        for (fu_name, port), sources in sorted(port_sources.items())
    ]
    return Datapath(binding=binding, library=library, muxes=muxes)
