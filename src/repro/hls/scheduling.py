"""Operation scheduling for high-level synthesis.

Three classic schedulers, all producing a :class:`Schedule`:

* :func:`asap` / :func:`alap` — unconstrained earliest/latest schedules,
  used directly and as the mobility ranges for force-directed scheduling;
* :func:`list_schedule` — resource-constrained list scheduling with
  b-level priority (the workhorse of Gupta–De Micheli-style co-synthesis
  [6]);
* :func:`force_directed` — Paulin/Knight force-directed scheduling:
  minimize resource usage under a latency bound by balancing the
  operation distribution graphs.

Multi-cycle operations are supported: an op's latency in control steps
comes from the cheapest library component for its kind at the chosen
cycle time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.cdfg import CDFG, Op, OpKind
from repro.hls.library import Component, ComponentLibrary, default_library


class SchedulingError(ValueError):
    """Raised for infeasible constraints."""


@dataclass
class Schedule:
    """A control-step assignment for every op in a CDFG.

    ``starts[op]`` is the first control step of the op; ``latencies[op]``
    how many steps it occupies (0 for inputs/constants/outputs, which are
    free).  ``assignment[op]`` names the component type chosen for each
    compute op.
    """

    cdfg: CDFG
    cycle_time: float
    starts: Dict[str, int] = field(default_factory=dict)
    latencies: Dict[str, int] = field(default_factory=dict)
    assignment: Dict[str, str] = field(default_factory=dict)

    def finish(self, name: str) -> int:
        """First step at which the op's result is available."""
        return self.starts[name] + self.latencies[name]

    @property
    def length(self) -> int:
        """Total schedule length in control steps."""
        return max(
            (self.finish(op.name) for op in self.cdfg.compute_ops()),
            default=0,
        )

    @property
    def latency_ns(self) -> float:
        """Schedule length in nanoseconds."""
        return self.length * self.cycle_time

    def verify(self) -> None:
        """Check precedence feasibility; raises on violation."""
        for op in self.cdfg.ops:
            if op.name not in self.starts:
                raise SchedulingError(f"op {op.name!r} not scheduled")
            for arg in op.args:
                if self.starts[op.name] < self.finish(arg):
                    raise SchedulingError(
                        f"op {op.name!r} starts at {self.starts[op.name]} "
                        f"before its input {arg!r} finishes at "
                        f"{self.finish(arg)}"
                    )

    def ops_active_at(self, step: int) -> List[str]:
        """Compute ops occupying control step ``step``."""
        return [
            op.name for op in self.cdfg.compute_ops()
            if self.starts[op.name] <= step < self.finish(op.name)
        ]

    def resource_usage(self) -> Dict[str, int]:
        """Peak simultaneous ops per component type — the FU count a
        binder cannot beat."""
        usage: Dict[str, int] = {}
        for step in range(self.length):
            here: Dict[str, int] = {}
            for name in self.ops_active_at(step):
                comp = self.assignment[name]
                here[comp] = here.get(comp, 0) + 1
            for comp, count in here.items():
                usage[comp] = max(usage.get(comp, 0), count)
        return usage


def _latency_and_assignment(
    cdfg: CDFG, library: ComponentLibrary, cycle_time: float,
    prefer_fast: bool = False,
) -> Tuple[Dict[str, int], Dict[str, str]]:
    latencies: Dict[str, int] = {}
    assignment: Dict[str, str] = {}
    for op in cdfg.ops:
        if not op.kind.is_compute:
            latencies[op.name] = 0
            continue
        comp = (library.fastest(op.kind) if prefer_fast
                else library.cheapest(op.kind))
        latencies[op.name] = comp.latency_cycles(cycle_time)
        assignment[op.name] = comp.name
    return latencies, assignment


def asap(
    cdfg: CDFG,
    library: Optional[ComponentLibrary] = None,
    cycle_time: float = 10.0,
) -> Schedule:
    """Earliest-possible schedule (unbounded resources)."""
    library = library or default_library()
    latencies, assignment = _latency_and_assignment(cdfg, library, cycle_time)
    starts: Dict[str, int] = {}
    for name in cdfg.topological_order():
        op = cdfg.op(name)
        starts[name] = max(
            (starts[a] + latencies[a] for a in op.args), default=0
        )
    sched = Schedule(cdfg, cycle_time, starts, latencies, assignment)
    sched.verify()
    return sched


def alap(
    cdfg: CDFG,
    library: Optional[ComponentLibrary] = None,
    cycle_time: float = 10.0,
    latency_bound: Optional[int] = None,
) -> Schedule:
    """Latest-possible schedule within ``latency_bound`` steps.

    Defaults to the ASAP length (the tightest feasible bound).
    """
    library = library or default_library()
    base = asap(cdfg, library, cycle_time)
    bound = latency_bound if latency_bound is not None else base.length
    if bound < base.length:
        raise SchedulingError(
            f"latency bound {bound} below critical path {base.length}"
        )
    latencies, assignment = base.latencies, base.assignment
    starts: Dict[str, int] = {}
    for name in reversed(cdfg.topological_order()):
        op = cdfg.op(name)
        users = cdfg.uses(name)
        if users:
            latest = min(starts[u] for u in users) - latencies[name]
        else:
            latest = bound - latencies[name]
        starts[name] = latest
    sched = Schedule(cdfg, cycle_time, starts, latencies, assignment)
    sched.verify()
    return sched


def list_schedule(
    cdfg: CDFG,
    resources: Dict[str, int],
    library: Optional[ComponentLibrary] = None,
    cycle_time: float = 10.0,
) -> Schedule:
    """Resource-constrained list scheduling.

    ``resources`` maps component names to instance counts; every compute
    op must have at least one candidate type present.  Priority is
    b-level in steps (longest path to any sink), the standard heuristic.
    """
    library = library or default_library()
    latencies, _default_assign = _latency_and_assignment(
        cdfg, library, cycle_time
    )
    # candidate component types per op, restricted to provided resources
    candidates: Dict[str, List[Component]] = {}
    for op in cdfg.compute_ops():
        cands = [
            c for c in library.candidates(op.kind)
            if resources.get(c.name, 0) > 0
        ]
        if not cands:
            raise SchedulingError(
                f"no resource for op {op.name!r} ({op.kind.value}); "
                f"available: {sorted(resources)}"
            )
        candidates[op.name] = cands

    # b-level priority (in steps, using each op's cheapest-candidate latency)
    blevel: Dict[str, float] = {}
    for name in reversed(cdfg.topological_order()):
        succ_level = max((blevel[u] for u in cdfg.uses(name)), default=0.0)
        own = latencies[name] if cdfg.op(name).kind.is_compute else 0
        blevel[name] = succ_level + own

    starts: Dict[str, int] = {}
    assignment: Dict[str, str] = {}
    # non-compute ops resolve as their preds complete
    unscheduled = {op.name for op in cdfg.compute_ops()}
    # busy[name] = list of (instance_free_step) per component type
    free_at: Dict[str, List[int]] = {
        name: [0] * count for name, count in resources.items()
    }

    def data_ready(name: str) -> int:
        op = cdfg.op(name)
        ready = 0
        for arg in op.args:
            arg_op = cdfg.op(arg)
            if arg_op.kind.is_compute:
                if arg not in starts:
                    return -1
                ready = max(ready, starts[arg] + latencies[arg])
        return ready

    order = {name: i for i, name in enumerate(cdfg.topological_order())}
    step_guard = 0
    while unscheduled:
        ready_ops = [
            (name, data_ready(name)) for name in unscheduled
        ]
        ready_ops = [(n, r) for n, r in ready_ops if r >= 0]
        if not ready_ops:
            raise SchedulingError("no ready ops: dependency cycle?")
        ready_ops.sort(key=lambda nr: (-blevel[nr[0]], order[nr[0]]))
        scheduled_any = False
        for name, ready in ready_ops:
            best: Optional[Tuple[int, str, int]] = None  # (start, comp, idx)
            for comp in candidates[name]:
                lat = comp.latency_cycles(cycle_time)
                for idx, free in enumerate(free_at[comp.name]):
                    start = max(ready, free)
                    key = (start, comp.name, idx)
                    if best is None or key < best:
                        best = key
                        best_lat = lat
            start, comp_name, idx = best
            starts[name] = start
            latencies[name] = best_lat
            assignment[name] = comp_name
            free_at[comp_name][idx] = start + best_lat
            unscheduled.discard(name)
            scheduled_any = True
        if not scheduled_any:  # pragma: no cover - defensive
            step_guard += 1
            if step_guard > len(cdfg):
                raise SchedulingError("list scheduling livelock")

    # place sources and outputs
    for op in cdfg.ops:
        if op.kind.is_compute:
            continue
        if op.kind is OpKind.OUTPUT:
            starts[op.name] = max(
                (starts[a] + latencies[a] for a in op.args), default=0
            )
        else:
            starts[op.name] = 0
        latencies[op.name] = 0
    sched = Schedule(cdfg, cycle_time, starts, latencies, assignment)
    sched.verify()
    return sched


def force_directed(
    cdfg: CDFG,
    latency_bound: Optional[int] = None,
    library: Optional[ComponentLibrary] = None,
    cycle_time: float = 10.0,
) -> Schedule:
    """Force-directed scheduling (Paulin & Knight).

    Minimizes peak resource usage under a latency bound by repeatedly
    fixing the (op, step) choice with the lowest *force* — the increase
    in the op's component-class distribution graph, so ops spread out
    over the available steps.
    """
    library = library or default_library()
    early = asap(cdfg, library, cycle_time)
    bound = latency_bound if latency_bound is not None else early.length
    late = alap(cdfg, library, cycle_time, bound)
    latencies, assignment = early.latencies, early.assignment

    compute = [op.name for op in cdfg.compute_ops()]
    lo = {n: early.starts[n] for n in compute}
    hi = {n: late.starts[n] for n in compute}

    def feasible_steps(name: str) -> List[int]:
        return list(range(lo[name], hi[name] + 1))

    def distribution(comp_name: str) -> List[float]:
        dg = [0.0] * max(bound, 1)
        for n in compute:
            if assignment[n] != comp_name:
                continue
            steps = feasible_steps(n)
            prob = 1.0 / len(steps)
            for s in steps:
                for k in range(latencies[n]):
                    if s + k < len(dg):
                        dg[s + k] += prob
        return dg

    unfixed = [n for n in compute if lo[n] != hi[n]]
    # process in a deterministic order; recompute forces each iteration
    while unfixed:
        best = None  # (force, order-key, name, step)
        dgs = {
            comp: distribution(comp)
            for comp in {assignment[n] for n in unfixed}
        }
        for name in unfixed:
            dg = dgs[assignment[name]]
            steps = feasible_steps(name)
            prob = 1.0 / len(steps)
            mean = {
                k: sum(
                    dg[s + k] for s in steps if s + k < len(dg)
                ) / len(steps)
                for k in range(latencies[name])
            }
            for step in steps:
                force = sum(
                    dg[step + k] - mean[k]
                    for k in range(latencies[name])
                    if step + k < len(dg)
                )
                key = (force, name, step)
                if best is None or key < best:
                    best = key
        _force, name, step = best
        lo[name] = hi[name] = step
        _propagate_bounds(cdfg, latencies, lo, hi, bound)
        unfixed = [n for n in unfixed if lo[n] != hi[n] and n != name]

    starts = {n: lo[n] for n in compute}
    for op in cdfg.ops:
        if op.kind.is_compute:
            continue
        if op.kind is OpKind.OUTPUT:
            starts[op.name] = max(
                (starts[a] + latencies[a] for a in op.args), default=0
            )
        else:
            starts[op.name] = 0
    sched = Schedule(cdfg, cycle_time, starts, latencies, assignment)
    sched.verify()
    return sched


def _propagate_bounds(
    cdfg: CDFG,
    latencies: Dict[str, int],
    lo: Dict[str, int],
    hi: Dict[str, int],
    bound: int,
) -> None:
    """Tighten ASAP/ALAP ranges after fixing an op (forward + backward)."""
    for name in cdfg.topological_order():
        if name not in lo:
            continue
        for arg in cdfg.op(name).args:
            if arg in lo:
                lo[name] = max(lo[name], lo[arg] + latencies[arg])
    for name in reversed(cdfg.topological_order()):
        if name not in hi:
            continue
        for user in cdfg.uses(name):
            if user in hi:
                hi[name] = min(hi[name], hi[user] - latencies[name])
        if hi[name] < lo[name]:
            raise SchedulingError(
                f"infeasible mobility range for {name!r} under bound {bound}"
            )
