"""FSM controller generation.

The controller sequences the datapath: one state per control step, with
the micro-orders (FU operation selects, register enables, mux selects)
asserted in each state.  Its area model (per-state plus per-signal) is
part of the total hardware cost the partitioners trade against software.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.graph.cdfg import OpKind
from repro.hls.binding import Binding
from repro.hls.datapath import Datapath
from repro.hls.library import controller_area
from repro.hls.scheduling import Schedule


@dataclass
class ControlState:
    """Micro-orders for one control step."""

    step: int
    fu_ops: Dict[str, str] = field(default_factory=dict)   # fu -> op started
    reg_writes: List[str] = field(default_factory=list)    # registers loaded
    mux_selects: int = 0                                    # select lines set


@dataclass
class Fsm:
    """The generated controller."""

    states: List[ControlState]
    n_signals: int

    @property
    def n_states(self) -> int:
        return len(self.states)

    @property
    def area(self) -> float:
        """Controller area under the library's FSM model."""
        return controller_area(self.n_states, self.n_signals)

    def state(self, step: int) -> ControlState:
        """The control state for ``step``."""
        return self.states[step]

    def listing(self) -> str:
        """A readable state-by-state micro-order listing."""
        lines = [f"// fsm: {self.n_states} states, "
                 f"{self.n_signals} control signals"]
        for state in self.states:
            orders = [
                f"{fu}<-{op}" for fu, op in sorted(state.fu_ops.items())
            ]
            writes = (
                f" latch [{', '.join(sorted(state.reg_writes))}]"
                if state.reg_writes else ""
            )
            lines.append(
                f"S{state.step}: {'; '.join(orders) or 'idle'}{writes}"
            )
        return "\n".join(lines)


def build_controller(
    schedule: Schedule, binding: Binding, datapath: Datapath
) -> Fsm:
    """Generate the FSM from the schedule and binding."""
    cdfg = schedule.cdfg
    length = max(schedule.length, 1)
    states = [ControlState(step=s) for s in range(length)]

    for op in cdfg.compute_ops():
        start = schedule.starts[op.name]
        fu = binding.fu_of[op.name]
        states[start].fu_ops[fu] = op.name
        # result is latched into its register at the finish step boundary
        finish = schedule.finish(op.name)
        reg = binding.reg_of.get(op.name)
        if reg is not None:
            states[min(finish, length) - 1].reg_writes.append(reg)

    # mux select lines toggled per state: one per multi-source port whose
    # active op differs from the previous state's
    for mux in datapath.muxes:
        if mux.width <= 1:
            continue
        for state in states:
            if mux.fu in state.fu_ops:
                state.mux_selects += 1

    # distinct control signals: op-select lines per FU + register enables
    # + mux select lines
    fu_signals = sum(
        max(1, len(set(f.ops)).bit_length()) for f in binding.fus
    )
    reg_signals = binding.n_registers
    mux_signals = sum(
        max(0, (m.width - 1)).bit_length() for m in datapath.muxes
    )
    return Fsm(states=states, n_signals=fu_signals + reg_signals + mux_signals)
