"""Estimation: the numbers that drive every co-design decision.

Section 3.2: co-synthesis "requires an understanding of how the overall
system cost and performance are affected by the hardware and software
organizations".  This package provides that understanding as three
estimators:

* :mod:`repro.estimate.hardware` — pre-synthesis hardware area/latency
  estimates from operation mixes, plus exact numbers via actual HLS;
* :mod:`repro.estimate.incremental` — Vahid–Gajski incremental hardware
  estimation [18]: maintains the area of the current hardware partition
  under functional-unit *sharing* and updates it in O(changed types) per
  partition move instead of re-estimating from scratch;
* :mod:`repro.estimate.software` — static software time/size estimates
  per processor characterization, cross-validated against the R32
  simulator;
* :mod:`repro.estimate.communication` — boundary-crossing transfer and
  synchronization costs (the "communication" partitioning factor).
"""

from repro.estimate.hardware import HardwareEstimate, estimate_cdfg_hardware
from repro.estimate.incremental import IncrementalEstimator, requirements_from_task
from repro.estimate.software import Processor, SoftwareEstimate, estimate_cdfg_software
from repro.estimate.communication import CommModel

__all__ = [
    "HardwareEstimate",
    "estimate_cdfg_hardware",
    "IncrementalEstimator",
    "requirements_from_task",
    "Processor",
    "SoftwareEstimate",
    "estimate_cdfg_software",
    "CommModel",
]
