"""Incremental hardware estimation with functional-unit sharing.

Reproduces the key idea of Vahid & Gajski, *Incremental Hardware
Estimation During Hardware/Software Functional Partitioning* (IEEE
Trans. VLSI 3(3), 1995), reference [18] of the paper: during iterative
partitioning, thousands of candidate moves must be evaluated, so the
hardware area of "the current hardware partition" must be maintained
*incrementally* rather than re-derived per move.

Model: functions placed in hardware execute mutually exclusively on a
shared datapath (the co-processor of Figure 8 serves one call at a
time), so the shared pool of each functional-unit type is the *maximum*
requirement over resident functions, not the sum.  Sharing is not free:
every additional function binding onto a pooled unit adds steering
(mux) area, and every resident function adds its own controller area.

The estimator keeps, per component type, a multiset of per-function
requirements; adds and removes update the pooled maximum in O(types)
and the area in O(1) from cached partial sums.  ``naive_additive_area``
gives the estimate a sharing-blind estimator would produce (each
function pays its standalone area) — the benchmark shows how far apart
the two land and how that changes accepted partitioning moves (E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.graph.cdfg import CDFG
from repro.graph.taskgraph import Task
from repro.hls.library import (
    ComponentLibrary,
    MUX_AREA,
    controller_area,
    default_library,
    register_area,
)
from repro.estimate.hardware import fu_requirements


#: steering overhead per extra function sharing one pooled FU
SHARING_MUX_LEGS = 2


def requirements_from_cdfg(
    cdfg: CDFG, library: Optional[ComponentLibrary] = None
) -> Dict[str, int]:
    """FU requirement vector of a behavior (see
    :func:`repro.estimate.hardware.fu_requirements`)."""
    return fu_requirements(cdfg, library or default_library())


def requirements_from_task(
    task: Task, library: Optional[ComponentLibrary] = None
) -> Dict[str, int]:
    """Synthesize a plausible FU requirement vector for a coarse task.

    Tasks carry only a scalar ``hw_area``; we decompose it into the stock
    adder/multiplier/logic mix of DSP datapaths (50% multiplier area,
    35% adder, 15% logic by cost), scaled by the task's parallelism.
    Deterministic, so partitioning results are reproducible.
    """
    library = library or default_library()
    mult = library.component("multiplier").area
    add = library.component("adder").area
    logic = library.component("logic_unit").area
    budget = max(task.hw_area, add)
    n_mult = max(0, int(budget * 0.5 / mult))
    n_add = max(1, int(budget * 0.35 / add))
    n_logic = max(0, int(budget * 0.15 / logic))
    out = {"adder": n_add}
    if n_mult:
        out["multiplier"] = n_mult
    if n_logic:
        out["logic_unit"] = n_logic
    return out


@dataclass
class _FunctionEntry:
    requirements: Dict[str, int]
    registers: int
    states: int


class IncrementalEstimator:
    """Maintains the area of a hardware partition under sharing.

    Usage in a partitioning inner loop::

        est = IncrementalEstimator()
        est.add("dct", {"adder": 2, "multiplier": 2}, registers=8, states=12)
        est.add("quant", {"adder": 1, "multiplier": 1}, registers=4, states=6)
        area_with_both = est.area
        est.remove("quant")      # O(types), not a re-estimate
    """

    def __init__(self, library: Optional[ComponentLibrary] = None) -> None:
        self.library = library or default_library()
        self._functions: Dict[str, _FunctionEntry] = {}
        # per component type: sorted multiset of requirements (small lists)
        self._pool: Dict[str, List[int]] = {}
        self._fu_area = 0.0
        self._mux_area = 0.0
        self.updates = 0

    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        requirements: Dict[str, int],
        registers: int = 4,
        states: int = 8,
    ) -> float:
        """Place a function into the hardware partition; returns the new
        total area."""
        if name in self._functions:
            raise ValueError(f"function {name!r} already resident")
        entry = _FunctionEntry(dict(requirements), registers, states)
        self._functions[name] = entry
        for comp, count in requirements.items():
            self._apply_pool_change(comp, count, adding=True)
        self._recount_mux()
        self.updates += 1
        return self.area

    def remove(self, name: str) -> float:
        """Remove a function from the partition; returns the new area."""
        entry = self._functions.pop(name, None)
        if entry is None:
            raise KeyError(f"function {name!r} not resident")
        for comp, count in entry.requirements.items():
            self._apply_pool_change(comp, count, adding=False)
        self._recount_mux()
        self.updates += 1
        return self.area

    def would_add(self, requirements: Dict[str, int]) -> float:
        """Marginal area of adding a function with ``requirements``
        (without mutating the estimator) — the quantity a partitioner
        compares against the function's software cost."""
        delta = 0.0
        for comp, count in requirements.items():
            pool = self._pool.get(comp, [])
            current_max = pool[-1] if pool else 0
            if count > current_max:
                delta += (count - current_max) * \
                    self.library.component(comp).area
            else:
                delta += SHARING_MUX_LEGS * MUX_AREA * min(count, current_max)
        return delta

    # ------------------------------------------------------------------
    def _apply_pool_change(self, comp: str, count: int, adding: bool) -> None:
        pool = self._pool.setdefault(comp, [])
        old_max = pool[-1] if pool else 0
        if adding:
            # insert keeping sorted order (pools are tiny)
            lo = 0
            while lo < len(pool) and pool[lo] < count:
                lo += 1
            pool.insert(lo, count)
        else:
            pool.remove(count)
        new_max = pool[-1] if pool else 0
        if new_max != old_max:
            self._fu_area += (new_max - old_max) * \
                self.library.component(comp).area
        if not pool:
            del self._pool[comp]

    def _recount_mux(self) -> None:
        """Steering area: each function beyond the first sharing a pooled
        type adds mux legs proportional to its requirement."""
        total = 0.0
        for comp, pool in self._pool.items():
            if len(pool) <= 1:
                continue
            # all but the largest requirement share existing units
            for count in pool[:-1]:
                total += SHARING_MUX_LEGS * MUX_AREA * count
        self._mux_area = total

    # ------------------------------------------------------------------
    @property
    def resident(self) -> List[str]:
        """Names of functions currently in the hardware partition."""
        return list(self._functions)

    @property
    def fu_area(self) -> float:
        """Area of the shared functional-unit pool."""
        return self._fu_area

    @property
    def area(self) -> float:
        """Total estimated hardware area of the partition."""
        regs = sum(e.registers for e in self._functions.values())
        states = sum(e.states for e in self._functions.values())
        signals = sum(sum(e.requirements.values())
                      for e in self._functions.values())
        ctrl = controller_area(states, signals) if self._functions else 0.0
        return self._fu_area + self._mux_area + register_area(regs) + ctrl

    def naive_additive_area(self) -> float:
        """What a sharing-blind estimator reports: every function pays
        its standalone FU + register + controller area."""
        total = 0.0
        for entry in self._functions.values():
            fu = sum(
                self.library.component(comp).area * count
                for comp, count in entry.requirements.items()
            )
            ctrl = controller_area(
                entry.states, sum(entry.requirements.values())
            )
            total += fu + register_area(entry.registers) + ctrl
        return total

    def sharing_savings(self) -> float:
        """Area saved by sharing vs the naive additive estimate."""
        return self.naive_additive_area() - self.area

    def __len__(self) -> int:
        return len(self._functions)


# ----------------------------------------------------------------------
# cache-aware set evaluation
# ----------------------------------------------------------------------
#
# The incremental estimator makes one *moving* partition cheap to track;
# a sweep evaluates thousands of *unrelated* partitions, many of which
# recur (different heuristics on the same problem probe overlapping
# subsets, and a re-run probes all of them again).  ``shared_area``
# memoizes the from-scratch evaluation of a whole function set under a
# canonical key.  Area does not depend on function *names* — only on the
# multiset of (requirements, registers, states) — so the key drops names
# entirely, which lets distinct tasks with identical characterizations
# share one cache line.

#: canonical form of one resident function:
#: (sorted (component, count) pairs, registers, states)
EntryKey = Tuple[Tuple[Tuple[str, int], ...], int, int]


def entry_key(
    requirements: Dict[str, int], registers: int, states: int
) -> EntryKey:
    """Canonical, hashable form of one function's area inputs."""
    return (tuple(sorted(requirements.items())), registers, states)


def _build_area(entries: Tuple[EntryKey, ...],
                library: Optional[ComponentLibrary]) -> float:
    est = IncrementalEstimator(library)
    for i, (req_items, registers, states) in enumerate(entries):
        est.add(f"f{i}", dict(req_items), registers=registers, states=states)
    return est.area


@lru_cache(maxsize=65536)
def _shared_area_default(entries: Tuple[EntryKey, ...]) -> float:
    return _build_area(entries, None)


def shared_area(
    entries: Tuple[EntryKey, ...],
    library: Optional[ComponentLibrary] = None,
) -> float:
    """Sharing-aware area of a set of functions, memoized.

    ``entries`` is a tuple of :func:`entry_key` values; order does not
    affect the estimate, so callers should pass the tuple sorted to
    maximize cache hits.  Only default-library queries are cached (a
    custom library is not hashable and rare on hot paths).
    """
    if not entries:
        return 0.0
    if library is None:
        return _shared_area_default(entries)
    return _build_area(entries, library)


def shared_area_cache_info():
    """Hit/miss statistics of the memoized set evaluator."""
    return _shared_area_default.cache_info()


def clear_shared_area_cache() -> None:
    """Drop every memoized set evaluation (for tests and benchmarks)."""
    _shared_area_default.cache_clear()
