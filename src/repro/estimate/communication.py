"""Communication cost modeling.

Section 3.3: "The overhead of synchronization and transfer among the
hardware and software components is likely to have a significant impact
on overall performance.  This fact favors partitions that localize
communication, even at the expense of other considerations."

A :class:`CommModel` prices one boundary crossing: a fixed
synchronization overhead plus a per-word transfer time.  The parameters
can be derived from a :class:`repro.cosim.bus.SystemBus` so the analytic
numbers used by partitioners agree with what co-simulation would
measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cosim.bus import SystemBus
    from repro.graph.taskgraph import TaskGraph


@dataclass(frozen=True)
class CommModel:
    """Cost of moving data across the hardware/software boundary.

    * ``sync_overhead_ns`` — per-transfer fixed cost (interrupt or
      polling handshake, bus arbitration, driver entry/exit);
    * ``word_time_ns`` — per-word transfer time on the system bus.
    """

    sync_overhead_ns: float = 10.0
    word_time_ns: float = 0.5

    def __post_init__(self) -> None:
        if self.sync_overhead_ns < 0 or self.word_time_ns < 0:
            raise ValueError("communication costs must be non-negative")

    def transfer_ns(self, words: float) -> float:
        """Time to move ``words`` words across the boundary."""
        if words <= 0:
            return 0.0
        return self.sync_overhead_ns + words * self.word_time_ns

    def edge_cost(self, volume: float, crosses_boundary: bool) -> float:
        """Cost charged on one task-graph edge."""
        return self.transfer_ns(volume) if crosses_boundary else 0.0

    def cut_cost(self, graph: "TaskGraph", hw_tasks: Iterable[str]) -> float:
        """Total communication time of a partition: every edge crossing
        the hardware/software boundary pays a transfer."""
        hw = set(hw_tasks)
        return sum(
            self.transfer_ns(e.volume)
            for e in graph.edges
            if (e.src in hw) != (e.dst in hw)
        )

    @classmethod
    def from_bus(cls, bus: "SystemBus", driver_overhead_ns: float = 10.0)\
            -> "CommModel":
        """Derive a model from transaction-bus parameters so analytic and
        simulated costs agree."""
        return cls(
            sync_overhead_ns=(
                bus.arbitration_time + bus.setup_time + driver_overhead_ns
            ),
            word_time_ns=bus.word_time,
        )


#: A fast, tightly-coupled interface (co-processor on the CPU bus).
TIGHT = CommModel(sync_overhead_ns=4.0, word_time_ns=0.25)
#: The default board-level bus interface.
DEFAULT = CommModel()
#: A slow, loosely-coupled interface (peripheral behind bridge/driver).
LOOSE = CommModel(sync_overhead_ns=120.0, word_time_ns=6.0)
