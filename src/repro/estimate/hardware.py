"""Hardware area/latency estimation.

Two fidelities, as in real flows:

* :func:`estimate_cdfg_hardware` — a fast pre-synthesis estimate from the
  operation mix and dependence depth (no scheduling), for the inner loop
  of partitioning algorithms;
* :func:`synthesize_cdfg_hardware` — exact numbers from an actual HLS run
  (schedule + bind + datapath + controller), for final evaluation.

Both return a :class:`HardwareEstimate`, so callers can swap fidelity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.graph.cdfg import CDFG, OpKind
from repro.hls.library import (
    ComponentLibrary,
    controller_area,
    default_library,
    mux_area,
    register_area,
)
from repro.hls.synthesize import HlsConstraints, synthesize


@dataclass(frozen=True)
class HardwareEstimate:
    """Area (gates) and latency (ns) of one hardware implementation."""

    area: float
    latency_ns: float
    detail: str = "quick"

    def __post_init__(self) -> None:
        if self.area < 0 or self.latency_ns < 0:
            raise ValueError("estimates must be non-negative")


def fu_requirements(
    cdfg: CDFG,
    library: Optional[ComponentLibrary] = None,
    parallelism: float = 2.0,
) -> Dict[str, int]:
    """Estimate the functional units a behavior needs.

    Without a schedule, the requirement for a component type is the op
    count divided by the expected serialization (depth / parallelism),
    bounded to [1, count].  This mirrors the pre-scheduling estimators
    the partitioning literature used.
    """
    library = library or default_library()
    hist = cdfg.op_histogram()
    depth = max(1, cdfg.depth())
    needs: Dict[str, int] = {}
    for kind, count in hist.items():
        if not kind.is_compute:
            continue
        comp = library.cheapest(kind)
        width = count / depth * parallelism
        needed = max(1, min(count, math.ceil(width)))
        needs[comp.name] = max(needs.get(comp.name, 0), needed)
    return needs


def estimate_cdfg_hardware(
    cdfg: CDFG,
    library: Optional[ComponentLibrary] = None,
    cycle_time: float = 10.0,
) -> HardwareEstimate:
    """Fast pre-synthesis hardware estimate for one behavior."""
    library = library or default_library()
    needs = fu_requirements(cdfg, library)
    fu_area = sum(
        library.component(name).area * count
        for name, count in needs.items()
    )
    n_compute = len(cdfg.compute_ops())
    n_values = n_compute + len(cdfg.inputs())
    # roughly half the values are live simultaneously on DSP dataflow
    regs = max(1, n_values // 2) if n_compute else 0
    # sharing factor: ops per FU instance drives mux cost
    total_fus = max(1, sum(needs.values()))
    shares = max(0.0, n_compute / total_fus - 1.0)
    est_mux = mux_area(2) * shares * total_fus
    # latency: depth steps, each one cycle of the slowest chosen FU
    steps = cdfg.depth()
    latency = steps * cycle_time
    ctrl = controller_area(max(1, steps), total_fus + regs)
    return HardwareEstimate(
        area=fu_area + register_area(regs) + est_mux + ctrl,
        latency_ns=latency,
        detail="quick",
    )


def synthesize_cdfg_hardware(
    cdfg: CDFG,
    library: Optional[ComponentLibrary] = None,
    cycle_time: float = 10.0,
    resources: Optional[Dict[str, int]] = None,
) -> HardwareEstimate:
    """Exact hardware numbers from a real HLS run."""
    constraints = (
        HlsConstraints(scheduler="list", resources=resources,
                       cycle_time=cycle_time)
        if resources else
        HlsConstraints(scheduler="asap", cycle_time=cycle_time)
    )
    result = synthesize(cdfg, constraints, library)
    return HardwareEstimate(
        area=result.area,
        latency_ns=result.latency_ns,
        detail="synthesis",
    )


def estimation_error(quick: HardwareEstimate, exact: HardwareEstimate) -> float:
    """Relative area error of the quick estimate vs synthesis."""
    if exact.area == 0:
        return 0.0
    return abs(quick.area - exact.area) / exact.area
