"""Static software execution-time and code-size estimation.

A :class:`Processor` characterizes an instruction-set processor the way
the heterogeneous-multiprocessor synthesizers of Section 4.2 need it:
clock period, per-operation cycle costs, and a dollar/area cost.  The
static estimator predicts a behavior's execution time on a processor
from its operation mix; the tests cross-validate against cycle counts
from actually running the generated code on the R32 model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.graph.cdfg import CDFG, OpKind


@dataclass(frozen=True)
class Processor:
    """An instruction-set processor characterization.

    ``speed_factor`` scales instruction throughput relative to the
    reference R32 (2.0 = twice as fast); ``cost`` is the component price
    used by cost-minimizing co-synthesis; ``mem_words`` is the on-board
    program memory, the second dimension of the vector-bin-packing
    synthesizer (Beck [13]).
    """

    name: str
    clock_ns: float = 10.0
    speed_factor: float = 1.0
    cost: float = 100.0
    mem_words: float = 4096.0

    def __post_init__(self) -> None:
        if self.clock_ns <= 0 or self.speed_factor <= 0:
            raise ValueError("clock_ns and speed_factor must be positive")
        if self.cost < 0:
            raise ValueError("cost must be non-negative")
        if self.mem_words <= 0:
            raise ValueError("mem_words must be positive")

    def time_for_cycles(self, cycles: float) -> float:
        """Nanoseconds to retire ``cycles`` reference cycles."""
        return cycles * self.clock_ns / self.speed_factor


#: Reference per-op cycle costs on R32-class processors, including the
#: operand load/store traffic the compiler generates around each op.
OP_CYCLES: Dict[OpKind, float] = {
    OpKind.CONST: 1.0,
    OpKind.INPUT: 2.0,   # load from input buffer
    OpKind.OUTPUT: 2.0,  # store to output buffer
    OpKind.ADD: 1.0,
    OpKind.SUB: 1.0,
    OpKind.MUL: 4.0,
    OpKind.DIV: 12.0,
    OpKind.MOD: 12.0,
    OpKind.SHL: 1.0,
    OpKind.SHR: 1.0,
    OpKind.AND: 1.0,
    OpKind.OR: 1.0,
    OpKind.XOR: 1.0,
    OpKind.NOT: 2.0,
    OpKind.NEG: 1.0,
    OpKind.LT: 1.0,
    OpKind.LE: 2.0,
    OpKind.EQ: 3.0,
    OpKind.NE: 2.0,
    OpKind.GE: 2.0,
    OpKind.GT: 1.0,
    OpKind.MUX: 5.0,     # branch-free select sequence
    OpKind.LOAD: 2.0,
    OpKind.STORE: 3.0,
}

#: Estimated instructions per op for code-size purposes.
OP_WORDS: Dict[OpKind, float] = {
    OpKind.CONST: 1.0,
    OpKind.INPUT: 1.0,
    OpKind.OUTPUT: 1.0,
    OpKind.MUX: 5.0,
    OpKind.NOT: 2.0,
    OpKind.EQ: 3.0,
    OpKind.NE: 2.0,
    OpKind.GE: 2.0,
    OpKind.LE: 2.0,
    OpKind.STORE: 2.0,
}


@dataclass(frozen=True)
class SoftwareEstimate:
    """Predicted cycles, time, and code size for one behavior on one
    processor."""

    cycles: float
    time_ns: float
    code_words: int


def estimate_cdfg_software(
    cdfg: CDFG,
    processor: Optional[Processor] = None,
    spill_overhead: float = 0.10,
) -> SoftwareEstimate:
    """Static estimate from the operation mix.

    ``spill_overhead`` adds a fraction for register-pressure spill code;
    10% matches the generated code on the kernel library to within the
    tolerances asserted in the test suite.
    """
    processor = processor or Processor("r32")
    cycles = 0.0
    words = 0.0
    for op in cdfg.ops:
        cycles += OP_CYCLES[op.kind]
        words += OP_WORDS.get(op.kind, 1.0)
    cycles *= (1.0 + spill_overhead)
    words *= (1.0 + spill_overhead)
    cycles += 1  # halt
    words += 1
    return SoftwareEstimate(
        cycles=cycles,
        time_ns=processor.time_for_cycles(cycles),
        code_words=int(round(words)),
    )


def measure_cdfg_software(
    cdfg: CDFG, processor: Optional[Processor] = None
) -> SoftwareEstimate:
    """Exact numbers by compiling and running on the R32 model."""
    from repro.isa.codegen import compile_cdfg

    processor = processor or Processor("r32")
    compiled = compile_cdfg(cdfg)
    inputs = {op.name: 1 for op in cdfg.inputs()}
    _outputs, cycles = compiled.run(inputs)
    return SoftwareEstimate(
        cycles=float(cycles),
        time_ns=processor.time_for_cycles(cycles),
        code_words=compiled.code_size,
    )


def default_processor_library() -> Dict[str, Processor]:
    """The stock processor library for multiprocessor co-synthesis
    (Section 4.2): five types spanning a 8x speed range and a 10x cost
    range — slow parts are disproportionately cheap, which is what makes
    the parallel-but-cheap vs serial-but-fast trade-off interesting."""
    return {
        p.name: p for p in (
            Processor("micro8", clock_ns=40.0, speed_factor=0.5, cost=25.0,
                      mem_words=256.0),
            Processor("micro16", clock_ns=25.0, speed_factor=0.8, cost=45.0,
                      mem_words=1024.0),
            Processor("r32", clock_ns=10.0, speed_factor=1.0, cost=100.0,
                      mem_words=4096.0),
            Processor("r32_fast", clock_ns=6.0, speed_factor=1.5, cost=190.0,
                      mem_words=8192.0),
            Processor("dsp", clock_ns=8.0, speed_factor=2.5, cost=260.0,
                      mem_words=8192.0),
        )
    }
