"""Chrome trace-event / Perfetto JSON export and schema validation.

The JSON Array/Object trace-event format (the ``chrome://tracing``
format, which Perfetto's UI loads directly) is the lingua franca for
"show me a timeline with lanes".  We emit:

* ``"ph": "X"`` complete events — one per finished :class:`Span`, with
  microsecond ``ts``/``dur`` normalized to the earliest span;
* ``"ph": "i"`` instant events — one per :class:`SpanEvent`
  (convergence samples, cache hits);
* ``"ph": "M"`` metadata events — ``process_name`` per pid lane, so a
  merged multi-worker sweep shows named worker swimlanes.

``validate_trace_events`` is the structural gate the tests and the CI
smoke step use: every event must carry the required keys (``ph``,
``ts``, ``pid``, ``tid``, ``name``), completes need a non-negative
``dur``, and the document must be loadable JSON of the object form
``{"traceEvents": [...]}``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.cosim.trace import Tracer
    from repro.obs.spans import SpanTracer

#: Keys every trace event must carry (the CI schema check).
REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")


def to_trace_events(
    tracer: "SpanTracer", unfinished: bool = False
) -> List[Dict[str, Any]]:
    """The tracer's merged timeline as a list of trace-event dicts.

    Timestamps are normalized to the earliest recorded instant and
    scaled to microseconds (the trace-event unit).

    ``unfinished=True`` additionally dumps still-open spans — the
    regions in flight when a run crashed or a post-mortem snapshot was
    taken — as complete events with a synthetic end at dump time and
    ``"unfinished": true`` in their args, so a crash-time trace still
    passes :func:`validate_trace_events` instead of requiring a
    cleanly exited tracer.
    """
    spans = tracer.finished
    events = tracer.events
    open_spans = list(tracer.open_spans) if unfinished else []
    starts = ([s.start for s in spans] + [e.time for e in events]
              + [s.start for s in open_spans])
    origin = min(starts) if starts else 0.0

    def us(t: float) -> float:
        return round((t - origin) * 1e6, 3)

    out: List[Dict[str, Any]] = []
    pids = set(tracer.pids())
    pids.update(s.pid for s in open_spans)
    for pid in sorted(pids):
        label = tracer.lane_names.get(pid, f"pid {pid}")
        out.append({
            "ph": "M", "ts": 0, "pid": pid, "tid": 0,
            "name": "process_name", "args": {"name": label},
        })
    for span in sorted(spans, key=lambda s: (s.start, s.depth)):
        out.append({
            "ph": "X", "ts": us(span.start), "dur": us(span.end) - us(span.start),
            "pid": span.pid, "tid": span.tid, "name": span.name,
            "cat": "span", "args": dict(span.attrs),
        })
    if open_spans:
        # synthetic end: dump time, never before the span's own start
        dump_t = max([tracer.now()] + [s.start for s in open_spans])
        for span in sorted(open_spans,
                           key=lambda s: (s.start, s.depth)):
            out.append({
                "ph": "X", "ts": us(span.start),
                "dur": max(us(dump_t) - us(span.start), 0.0),
                "pid": span.pid, "tid": span.tid, "name": span.name,
                "cat": "span",
                "args": {**span.attrs, "unfinished": True},
            })
    for event in sorted(events, key=lambda e: e.time):
        out.append({
            "ph": "i", "ts": us(event.time), "pid": event.pid,
            "tid": event.tid, "name": event.name, "s": "t",
            "cat": "event", "args": dict(event.attrs),
        })
    return out


def to_perfetto_json(
    tracer: "SpanTracer", indent: Optional[int] = None,
    unfinished: bool = False,
) -> str:
    """The JSON Object Format document Perfetto/chrome://tracing load."""
    doc = {
        "traceEvents": to_trace_events(tracer, unfinished=unfinished),
        "displayTimeUnit": "ms",
    }
    return json.dumps(doc, indent=indent)


def kernel_trace_events(
    tracer: "Tracer",
    pid: int = 0,
    tid: int = 0,
    ns_per_us: float = 1000.0,
) -> List[Dict[str, Any]]:
    """Bridge a kernel :class:`repro.cosim.trace.Tracer` onto the same
    timeline format, on *model* time.

    Point records (``resume``, ``event``, ``signal``, ...) become
    instants; resource occupancy becomes ``X`` spans from each grant to
    its non-handoff release, one tid lane per resource, so bus
    utilization renders exactly like the VCD's busy wires but in
    Perfetto.  Model nanoseconds map to trace microseconds via
    ``ns_per_us``.
    """
    from repro.cosim.trace import RES_GRANT, RES_RELEASE

    def us(t: float) -> float:
        return round(t / ns_per_us, 6)

    out: List[Dict[str, Any]] = [{
        "ph": "M", "ts": 0, "pid": pid, "tid": tid,
        "name": "process_name", "args": {"name": "cosim kernel"},
    }]
    open_grants: Dict[str, float] = {}
    lanes: Dict[str, int] = {}
    for record in tracer.records:
        if record.kind == RES_GRANT:
            # a handoff grant on an already-open resource extends the
            # current span; only the first grant opens one
            open_grants.setdefault(record.name, record.time)
            continue
        if record.kind == RES_RELEASE:
            if record.data.get("handoff"):
                continue
            start = open_grants.pop(record.name, record.time)
            lane = lanes.setdefault(record.name, tid + 1 + len(lanes))
            out.append({
                "ph": "X", "ts": us(start),
                "dur": max(us(record.time) - us(start), 0.0),
                "pid": pid, "tid": lane,
                "name": f"{record.name}.busy", "cat": "resource",
                "args": {},
            })
            continue
        out.append({
            "ph": "i", "ts": us(record.time), "pid": pid, "tid": tid,
            "name": f"{record.kind}:{record.name}", "s": "t",
            "cat": record.kind, "args": dict(record.data),
        })
    for name, start in sorted(open_grants.items()):  # still held at end
        lane = lanes.setdefault(name, tid + 1 + len(lanes))
        out.append({
            "ph": "X", "ts": us(start), "dur": 0.0, "pid": pid,
            "tid": lane, "name": f"{name}.busy", "cat": "resource",
            "args": {"open": True},
        })
    return out


def validate_trace_events(doc: Any) -> List[str]:
    """Structural schema check; returns a list of problems (empty =
    valid).  ``doc`` may be a JSON string or an already-parsed object.
    """
    problems: List[str] = []
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["object form must carry a 'traceEvents' list"]
    elif isinstance(doc, list):
        events = doc
    else:
        return [f"expected object or array form, got {type(doc).__name__}"]

    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in REQUIRED_KEYS:
            if key not in event:
                problems.append(f"event {i}: missing required key {key!r}")
        ph = event.get("ph")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"event {i}: complete event needs non-negative dur"
                )
        ts = event.get("ts")
        if ts is not None and not isinstance(ts, (int, float)):
            problems.append(f"event {i}: ts must be numeric")
    return problems
