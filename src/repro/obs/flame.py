"""Aligned-text flamegraph rendering for span traces.

A flamegraph answers "where did the wall-clock go?" without leaving
the terminal: spans are folded into name-paths (``sweep;cell;greedy``),
durations aggregated per path across all lanes, and each path rendered
as an indented row whose bar width is proportional to its share of the
total traced time.  The hierarchy is re-derived from time containment
per (pid, tid) lane, so merged worker spans fold correctly even though
they carry no parent pointers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.spans import Span, SpanTracer


def fold_spans(tracer: "SpanTracer") -> Dict[Tuple[str, ...], Dict]:
    """Aggregate spans into ``path → {"time": s, "count": n}``.

    The path of a span is the chain of names of the spans that contain
    it in its own lane (same pid/tid, enclosing time range, smaller
    depth), ending in its own name.
    """
    lanes: Dict[Tuple[int, int], List["Span"]] = {}
    for span in tracer.finished:
        lanes.setdefault((span.pid, span.tid), []).append(span)

    folded: Dict[Tuple[str, ...], Dict] = {}
    for spans in lanes.values():
        spans.sort(key=lambda s: (s.start, s.depth))
        stack: List["Span"] = []
        for span in spans:
            while stack and not (
                stack[-1].depth < span.depth
                and stack[-1].start <= span.start
                and span.end <= stack[-1].end + 1e-12
            ):
                stack.pop()
            path = tuple(s.name for s in stack) + (span.name,)
            agg = folded.setdefault(path, {"time": 0.0, "count": 0})
            agg["time"] += span.duration
            agg["count"] += 1
            stack.append(span)
    return folded


def render_flamegraph(tracer: "SpanTracer", width: int = 72) -> str:
    """The folded spans as an aligned, indented text table.

    Rows are ordered depth-first with siblings by descending time;
    bars are scaled to the total root time, so a child's bar can never
    exceed its parent's.
    """
    folded = fold_spans(tracer)
    if not folded:
        return "(no spans recorded)"
    total = sum(v["time"] for p, v in folded.items() if len(p) == 1)
    total = max(total, 1e-12)

    # depth-first order: sort children under their parent prefix
    def sort_key(item):
        path, agg = item
        # build a sortable key: at each level, (-time of that prefix)
        key = []
        for i in range(1, len(path) + 1):
            prefix = path[:i]
            key.append((-folded[prefix]["time"], prefix[-1]))
        return key

    rows = sorted(folded.items(), key=sort_key)
    label_width = max(
        len("  " * (len(path) - 1) + path[-1]) for path, _ in rows
    )
    bar_width = max(width - label_width - 30, 10)
    lines = [
        f"flamegraph: {total:.4f}s total across "
        f"{len(tracer.pids())} lane(s)"
    ]
    for path, agg in rows:
        label = "  " * (len(path) - 1) + path[-1]
        share = agg["time"] / total
        bar = "#" * max(1, int(round(share * bar_width)))
        lines.append(
            f"{label:<{label_width}}  {agg['time']:>9.4f}s "
            f"{share:>6.1%} x{agg['count']:<5d} {bar}"
        )
    return "\n".join(lines)
