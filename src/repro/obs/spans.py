"""Hierarchical span tracing across every layer of the reproduction.

PR 1's :class:`repro.cosim.trace.Tracer` records the co-simulation
kernel's primitive happenings on *model* time.  A :class:`SpanTracer`
records *wall-clock* work — which partitioner ran, which sweep cell,
which phase inside it — as nested spans with attributes and point
events, in any process.  Worker-side tracers serialize their spans with
each sweep-cell result and the parent merges them into one timeline
with per-worker pid/tid lanes, which is what makes a 2-worker sweep
render as two parallel swimlanes in Perfetto.

Timestamps come from ``time.perf_counter()`` (CLOCK_MONOTONIC on
Linux), which is system-wide on one machine, so spans recorded in pool
workers align with the parent's without clock negotiation; exporters
normalize to the earliest span anyway.

Same zero-cost discipline as the kernel tracer: callers guard every
use with ``if span_tracer is not None``; an unobserved run allocates
nothing span-related.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional
from contextlib import contextmanager


@dataclass(slots=True)
class Span:
    """One timed region of work.

    ``start``/``end`` are perf-counter seconds; ``depth`` is the
    nesting level at record time (0 = top level); ``pid``/``tid``
    identify the lane (worker process / thread) the work ran in.
    """

    name: str
    start: float
    end: float
    pid: int
    tid: int
    depth: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (worker → parent transport)."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "tid": self.tid,
            "depth": self.depth,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=data["name"], start=data["start"], end=data["end"],
            pid=data["pid"], tid=data["tid"], depth=data["depth"],
            attrs=dict(data.get("attrs", {})),
        )


@dataclass(slots=True)
class SpanEvent:
    """One instantaneous happening (a convergence sample, a cache hit)."""

    name: str
    time: float
    pid: int
    tid: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        return {
            "name": self.name,
            "time": self.time,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanEvent":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=data["name"], time=data["time"],
            pid=data["pid"], tid=data["tid"],
            attrs=dict(data.get("attrs", {})),
        )


class SpanTracer:
    """Collects nested :class:`Span` regions and :class:`SpanEvent`
    points for one process, and merges other tracers' output into a
    single timeline.

    Usage::

        spans = SpanTracer()
        with spans.span("sweep", cells=64):
            with spans.span("cell", heuristic="greedy"):
                ...
            spans.event("cache.hit", fingerprint=fp)

    Spans land in :attr:`finished` when closed (innermost first, as
    usual for region traces); :meth:`to_perfetto` / the flamegraph
    renderer re-derive the hierarchy from time containment, so merged
    foreign spans need no parent pointers.
    """

    def __init__(
        self,
        pid: Optional[int] = None,
        tid: Optional[int] = None,
        clock=time.perf_counter,
    ) -> None:
        self.pid = os.getpid() if pid is None else pid
        self.tid = threading.get_ident() % 100000 if tid is None else tid
        self.finished: List[Span] = []
        self.events: List[SpanEvent] = []
        self._clock = clock
        self._stack: List[Span] = []
        #: pid → human label, rendered as Perfetto process_name metadata.
        self.lane_names: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span for the duration of the ``with`` body."""
        record = Span(
            name=name, start=self._clock(), end=0.0,
            pid=self.pid, tid=self.tid,
            depth=len(self._stack), attrs=attrs,
        )
        self._stack.append(record)
        try:
            yield record
        finally:
            self._stack.pop()
            record.end = self._clock()
            self.finished.append(record)

    def event(self, name: str, **attrs: Any) -> None:
        """Record one instantaneous event at the current time."""
        self.events.append(
            SpanEvent(name, self._clock(), self.pid, self.tid, attrs)
        )

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def open_spans(self) -> List[Span]:
        """Every still-open span, outermost first.

        Normally empty at export time; after a crash or SIGKILL these
        are exactly the regions that were in flight, which the
        Perfetto exporter can dump with synthetic ends
        (``unfinished=True``).
        """
        return list(self._stack)

    def now(self) -> float:
        """The tracer's clock (the exporter's synthetic end time)."""
        return self._clock()

    def name_lane(self, pid: int, label: str) -> None:
        """Attach a human label to a pid lane (worker naming)."""
        self.lane_names[pid] = label

    # ------------------------------------------------------------------
    # transport and merging
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Everything recorded so far, JSON-serializable — the payload
        a pool worker ships back with its result."""
        return {
            "pid": self.pid,
            "tid": self.tid,
            "spans": [s.to_dict() for s in self.finished],
            "events": [e.to_dict() for e in self.events],
            "lane_names": {str(k): v for k, v in self.lane_names.items()},
        }

    def merge_snapshot(
        self, snap: Dict[str, Any], lane: Optional[str] = None
    ) -> None:
        """Fold a foreign tracer's :meth:`snapshot` into this timeline.

        The foreign spans keep their own pid/tid, so each worker gets
        its own lane in the merged trace; ``lane`` labels that lane.
        """
        for data in snap.get("spans", ()):
            self.finished.append(Span.from_dict(data))
        for data in snap.get("events", ()):
            self.events.append(SpanEvent.from_dict(data))
        for pid_str, label in snap.get("lane_names", {}).items():
            self.lane_names[int(pid_str)] = label
        if lane is not None:
            self.lane_names[snap["pid"]] = lane

    # ------------------------------------------------------------------
    # queries and exporters
    # ------------------------------------------------------------------
    def spans_named(self, name: str) -> List[Span]:
        """All finished spans with this name, in start order."""
        return sorted(
            (s for s in self.finished if s.name == name),
            key=lambda s: s.start,
        )

    def pids(self) -> List[int]:
        """Every pid lane present, sorted."""
        out = {s.pid for s in self.finished}
        out.update(e.pid for e in self.events)
        return sorted(out)

    def total_time(self) -> float:
        """Wall-clock extent of the trace (earliest start → latest end)."""
        if not self.finished:
            return 0.0
        return (max(s.end for s in self.finished)
                - min(s.start for s in self.finished))

    def to_perfetto(self, indent: Optional[int] = None,
                    unfinished: bool = False) -> str:
        """The merged timeline as Chrome trace-event / Perfetto JSON.

        ``unfinished=True`` also dumps still-open spans with a
        synthetic end at dump time (marked ``unfinished`` in their
        args) — the crash/post-mortem form, which still passes the
        schema validator.
        """
        from repro.obs.perfetto import to_perfetto_json
        return to_perfetto_json(self, indent=indent,
                                unfinished=unfinished)

    def write_perfetto(self, path: str, indent: Optional[int] = None,
                       unfinished: bool = False) -> None:
        """Write :meth:`to_perfetto` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_perfetto(indent=indent,
                                      unfinished=unfinished))

    def flamegraph(self, width: int = 72) -> str:
        """Aligned-text flamegraph of the span hierarchy."""
        from repro.obs.flame import render_flamegraph
        return render_flamegraph(self, width=width)

    def __len__(self) -> int:
        return len(self.finished)

    def __repr__(self) -> str:
        return (
            f"SpanTracer({len(self.finished)} spans, "
            f"{len(self.events)} events, {len(self.pids())} lanes)"
        )
